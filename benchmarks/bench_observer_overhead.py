"""Observer overhead benchmark: disabled tracing must stay < 2 %.

The whole point of threading an :class:`repro.observe.Observer` through
the hot formation loops is that it costs (almost) nothing when nobody
is watching: the default :data:`repro.observe.NULL_OBSERVER` answers
``span()`` with one shared do-nothing context manager and every hot
loop guards its attr-dict construction behind ``obs.enabled``.  This
benchmark measures that claim on the single-thread formation path —
the worst case, because it has the most span sites per unit of work —
and reports the enabled-tracing cost alongside for context (that one
is allowed to cost real time; it buys a trace).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_observer_overhead.py \
        --n 40 --repeats 5 --out BENCH_observer.json

Exit status is nonzero when the disabled-observer overhead exceeds the
acceptance bar (default 2 %), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.strategies import SingleThread  # noqa: E402
from repro.core.templates import get_template  # noqa: E402
from repro.observe import Observer  # noqa: E402


def _device(n: int, seed: int = 1234) -> np.ndarray:
    rng = np.random.default_rng(seed + n)
    return rng.uniform(500.0, 1500.0, (n, n))


def _best_of(fn, repeats: int) -> float:
    """Best (minimum) wall time over ``repeats`` runs — the standard
    noise filter for sub-second kernels on a shared machine."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(n: int, repeats: int, formation: str) -> dict:
    z = _device(n)
    get_template(n)  # warm: template build is a one-off, not overhead
    strategy = SingleThread(formation=formation)

    strategy.run(z)  # warm-up run (imports, allocator, caches)

    baseline = _best_of(lambda: strategy.run(z), repeats)
    # observer=None resolves to the global NullObserver — the exact
    # code path every un-instrumented caller takes.
    disabled = _best_of(lambda: strategy.run(z, observer=None), repeats)

    def traced():
        obs = Observer()  # in-memory: measures span cost, not disk
        strategy.run(z, observer=obs)

    enabled = _best_of(traced, repeats)

    disabled_overhead = disabled / baseline - 1.0
    enabled_overhead = enabled / baseline - 1.0
    return {
        "n": n,
        "formation": formation,
        "repeats": repeats,
        "baseline_seconds": baseline,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=40, help="device side")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--formation", default="cached",
                        choices=["cached", "legacy"])
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="acceptance bar for disabled tracing")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    result = run(args.n, args.repeats, args.formation)
    print(
        f"observer overhead at n={result['n']} ({result['formation']}, "
        f"best of {result['repeats']}):"
    )
    print(f"  baseline (no observer arg): {result['baseline_seconds']:.4f} s")
    print(
        f"  null observer:              {result['disabled_seconds']:.4f} s "
        f"({result['disabled_overhead']:+.2%})"
    )
    print(
        f"  tracing enabled:            {result['enabled_seconds']:.4f} s "
        f"({result['enabled_overhead']:+.2%})"
    )

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    if result["disabled_overhead"] > args.max_overhead:
        print(
            f"FAIL: disabled-observer overhead "
            f"{result['disabled_overhead']:.2%} exceeds "
            f"{args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    print(
        f"PASS: disabled-observer overhead within {args.max_overhead:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
