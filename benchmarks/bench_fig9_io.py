"""E4 / Figure 9 — end-to-end time including disk I/O.

The paper measures generating the equations AND writing them to disk,
per (n, k).  Findings to reproduce: I/O-inclusive time shows clear
separation between parallelism levels from n >= 20 ("spawning more
threads is preferable for larger workloads such that the overhead can
be amortized").

Real measurement: the benchmark entries run the actual strategies with
per-worker part files on local disk.  The (n, k) series is then
regenerated on the simulated clock with a measured bytes/second disk
rate — results/fig9_io.txt.
"""

import time  # noqa: F401  (kept for ad-hoc profiling of the real path)

import numpy as np
import pytest

from conftest import bench_ks, bench_ns
from repro.core.equations import SystemStats
from repro.core.partition import partition_betti
from repro.core.strategies import PyMPStrategy, SingleThread, item_costs_seconds
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.wetlab import quick_device_data
from repro.parallel.simcluster import Z820_SMP

PROTOTYPE_SLOWDOWN = 25.0


@pytest.mark.benchmark(group="fig9-real-io")
@pytest.mark.parametrize("k", [1, 2, 4])
def test_real_formation_with_disk(benchmark, tmp_path_factory, k):
    _, z = quick_device_data(16, seed=104)
    strategy = PyMPStrategy(k) if k > 1 else SingleThread()
    counter = iter(range(10_000))

    def run():
        out = tmp_path_factory.mktemp(f"io{k}-{next(counter)}")
        return strategy.run(z, output_dir=out)

    report = benchmark(run)
    assert report.bytes_written > 0


@pytest.fixture(scope="module")
def disk_rate():
    """Per-client write rate (bytes/s) used by the simulated series.

    Pinned to a representative GPFS per-client figure rather than
    measured: page-cache effects make a measured local rate swing by
    >10x between runs, which would make the regenerated figure
    non-deterministic.  The *real* write path is still exercised and
    timed by ``test_real_formation_with_disk`` above.
    """
    return 200 * 2**20  # 200 MiB/s


def simulated_end_to_end(n, k, spt, rate):
    """Formation + serialization + write, per (n, k).

    Each worker writes its own part file (the real code path), so the
    write time divides by k as long as the disk is not saturated; the
    paper's cluster uses GPFS where per-client rates scale similarly.
    """
    part = partition_betti(n, k)
    costs = item_costs_seconds(part, spt * PROTOTYPE_SLOWDOWN)
    bytes_total = SystemStats.for_device(n).bytes_estimate
    per_item_bytes = bytes_total / len(costs)
    loads = np.zeros(part.num_workers)
    for c, w in zip(costs, part.worker_of):
        loads[w] += c + per_item_bytes / rate
    makespan = float(loads.max())
    if k == 1:
        return makespan
    return makespan + Z820_SMP.startup_per_rank * (np.ceil(np.log2(k)) + 1)


@pytest.mark.benchmark(group="fig9-table")
def test_fig9_table(benchmark, emit, sec_per_term, disk_rate):
    ks = bench_ks()

    def build():
        return {
            n: [simulated_end_to_end(n, k, sec_per_term, disk_rate) for k in ks]
            for n in bench_ns()
        }

    grid = benchmark(build)
    table = ResultTable(
        f"Fig. 9 — end-to-end time incl. disk I/O (disk {disk_rate / 2**20:.0f} MiB/s)",
        ["n"] + [f"k={k}" for k in ks],
    )
    for n, times in grid.items():
        table.add_row(n, *[human_seconds(t) for t in times])
    emit(table, "fig9_io")

    for n, times in grid.items():
        if n >= 20:
            # Clear separation: k=32 at least 2x faster than k=2.
            assert times[0] / times[-1] > 2.0
    # At n = 10 extra threads are NOT clearly preferable.
    t10 = grid[10]
    assert t10[0] / t10[-1] < 2.0
