"""Supervision overhead benchmark: heartbeats must stay < 3 %.

Supervised parallel regions add three costs on the fault-free path: a
shared-memory heartbeat tick per work chunk, the parent's WNOHANG poll
loop in place of a blocking ``waitpid``, and the one-off heartbeat
board allocation per region.  The whole design rests on those being
noise — a watchdog nobody would enable is a watchdog nobody runs with.
This benchmark runs the full n = 20 solve (fork, form, solve, detect)
with and without a :class:`repro.resilience.supervise.Supervisor`
attached and fails when the supervised run is more than 3 % slower.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_supervision_overhead.py \
        --n 20 --repeats 7 --out BENCH_supervision.json

Exit status is nonzero when the overhead exceeds the acceptance bar
(default 3 %), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.engine import ParmaEngine  # noqa: E402
from repro.core.templates import get_template  # noqa: E402
from repro.mea.synthetic import paper_like_spec  # noqa: E402
from repro.mea.wetlab import run_campaign  # noqa: E402
from repro.parallel.pymp import fork_available  # noqa: E402


def _interleaved_best(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best (minimum) wall time of each fn over ``repeats`` rounds.

    The two candidates alternate within each round so machine drift
    (thermal throttling, a background process) taxes both equally —
    essential here, where the effect measured (~1 ms of heartbeat and
    poll overhead) is the same size as fork-timing noise.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def run(n: int, repeats: int, workers: int, stall_timeout: float) -> dict:
    meas = run_campaign(paper_like_spec(n, seed=11), seed=11).campaign.measurements[0]
    get_template(n)  # warm: template build is a one-off, not overhead

    plain = ParmaEngine(strategy="pymp", num_workers=workers)
    supervised = ParmaEngine(
        strategy="pymp", num_workers=workers, stall_timeout=stall_timeout
    )
    assert supervised.supervisor is not None

    plain.parametrize(meas)  # warm-up (imports, allocator, caches)
    supervised.parametrize(meas)

    baseline, watched = _interleaved_best(
        lambda: plain.parametrize(meas),
        lambda: supervised.parametrize(meas),
        repeats,
    )

    return {
        "n": n,
        "workers": workers,
        "repeats": repeats,
        "stall_timeout": stall_timeout,
        "baseline_seconds": baseline,
        "supervised_seconds": watched,
        "overhead": watched / baseline - 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20, help="device side")
    parser.add_argument("--repeats", type=int, default=15)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--stall-timeout", type=float, default=30.0,
                        help="watchdog timeout on the supervised run "
                             "(never fires: the run is fault-free)")
    parser.add_argument("--max-overhead", type=float, default=0.03,
                        help="acceptance bar for supervised regions")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    if not fork_available():  # pragma: no cover - test platforms fork
        print("SKIP: os.fork unavailable, nothing to supervise")
        return 0

    result = run(args.n, args.repeats, args.workers, args.stall_timeout)
    print(
        f"supervision overhead at n={result['n']} "
        f"(pymp x{result['workers']}, best of {result['repeats']}):"
    )
    print(f"  unsupervised solve: {result['baseline_seconds']:.4f} s")
    print(
        f"  supervised solve:   {result['supervised_seconds']:.4f} s "
        f"({result['overhead']:+.2%})"
    )

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    if result["overhead"] > args.max_overhead:
        print(
            f"FAIL: supervision overhead {result['overhead']:.2%} exceeds "
            f"{args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: supervision overhead within {args.max_overhead:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
