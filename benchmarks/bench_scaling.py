"""Elastic-dispatch scaling benchmark: the 1,024-rank artifact.

Two halves, matching ``parma scale``:

1. A *real* elastic formation campaign per size — a quiet run and a
   churn run (one worker SIGKILLed, the pool shrunk then grown
   mid-campaign) through :func:`repro.parallel.elastic.run_elastic_formation`.
   The churn run must commit part files byte-identical to the quiet
   run's; the elapsed ratio is the measured churn overhead.
2. A *simulated* strategy × rank-count strong-scaling sweep on the
   deterministic cluster clock (powers of two up to ``--max-ranks``,
   default 1,024), anchored to this machine's measured per-term cost,
   plus failover and heterogeneous-awareness reference points.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scaling.py \
        --sizes 20 --max-ranks 1024 --out BENCH_scaling.json

The JSON report is the ``elastic_scaling`` trajectory consumed by
``parma runs regress``: each entry of ``sizes`` carries
``elastic_formation_seconds`` (quiet + churn campaign wall time, the
same interval the ``parma scale`` ``formation`` span records), gating
later ``--bench-tag scaling`` runs.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.partition import make_items  # noqa: E402
from repro.core.strategies import calibrate_sec_per_term  # noqa: E402
from repro.parallel.elastic import (  # noqa: E402
    part_files_identical,
    run_elastic_formation,
    sweep_scaling_curves,
)
from repro.parallel.heterogeneous import HeterogeneousCluster  # noqa: E402
from repro.parallel.pymp import fork_available  # noqa: E402
from repro.parallel.simcluster import (  # noqa: E402
    HPC_FDR,
    simulate_with_failures,
)
from repro.parallel.workstealing import (  # noqa: E402
    simulate_stealing_with_failures,
)
from repro.resilience.faults import FaultPlan  # noqa: E402


def _device(n: int, seed: int = 1234) -> np.ndarray:
    rng = np.random.default_rng(seed + n)
    return rng.uniform(500.0, 1500.0, (n, n))


def run_campaigns(
    sizes: list[int], *, workers: int, chunk_items: int, seed: int
) -> list[dict]:
    """Quiet + churn elastic campaign per size (real forked workers)."""
    rows = []
    for n in sizes:
        z = _device(n)
        with tempfile.TemporaryDirectory() as td:
            td = Path(td)
            quiet = run_elastic_formation(
                z,
                workers=workers,
                chunk_items=chunk_items,
                output_dir=td / "quiet",
            )
            chunks = quiet.chunks_total
            churn = run_elastic_formation(
                z,
                workers=workers,
                chunk_items=chunk_items,
                output_dir=td / "churn",
                faults=FaultPlan(
                    seed=seed,
                    kill_workers=(1,),
                    kill_signal=int(signal.SIGKILL),
                ),
                resize_schedule=[
                    (max(1, chunks // 3), max(1, workers - 1)),
                    (max(2, 2 * chunks // 3), workers),
                ],
            )
            identical, detail = part_files_identical(
                td / "quiet", td / "churn"
            )
        if not identical:
            raise RuntimeError(
                f"n={n}: churn campaign diverged from the quiet run "
                f"({detail})"
            )
        overhead = churn.elapsed_seconds / quiet.elapsed_seconds - 1.0
        row = {
            "n": n,
            "chunks": chunks,
            "terms": quiet.terms_formed,
            "quiet_seconds": quiet.elapsed_seconds,
            "churn_seconds": churn.elapsed_seconds,
            "churn_overhead": overhead,
            "leases_reassigned": churn.leases_reassigned,
            "pool_resizes": churn.pool_resizes,
            "workers_respawned": churn.workers_respawned,
            "part_files_identical": True,
            # The regress baseline: the whole campaign interval (quiet
            # + churn), matching the `parma scale` formation span.
            "elastic_formation_seconds": (
                quiet.elapsed_seconds + churn.elapsed_seconds
            ),
        }
        rows.append(row)
        print(
            f"n={n:3d}: quiet {quiet.elapsed_seconds:.3f}s, churn "
            f"{churn.elapsed_seconds:.3f}s ({overhead * 100:+.1f}%); "
            f"{detail}; {churn.leases_reassigned} lease(s) reassigned, "
            f"{churn.pool_resizes} resize(s)"
        )
    return rows


def run_sweep(n: int, max_ranks: int) -> dict:
    """Strategy × rank sweep + failover/heterogeneous reference points."""
    rank_counts = []
    r = 1
    while r <= max_ranks:
        rank_counts.append(r)
        r *= 2
    calib_start = time.perf_counter()
    sec_per_term = calibrate_sec_per_term(n)
    calib_seconds = time.perf_counter() - calib_start
    curves = sweep_scaling_curves(n, rank_counts, sec_per_term=sec_per_term)
    for curve in curves.values():
        peak = int(np.argmax(curve.speedup))
        print(
            f"  {curve.strategy:>10s}: peak speedup "
            f"{curve.speedup[peak]:.1f}x at {curve.rank_counts[peak]} "
            f"ranks (efficiency {curve.efficiency[peak]:.3f}); at "
            f"{curve.rank_counts[-1]} ranks speedup "
            f"{curve.speedup[-1]:.1f}x"
        )

    items = make_items(n)
    costs = np.array([it.cost for it in items], dtype=np.float64)
    costs *= sec_per_term
    failover_ranks = min(256, max(2, max_ranks))
    recovery = simulate_with_failures(
        costs, failover_ranks, HPC_FDR, failed_ranks=(1,)
    )
    steal = simulate_stealing_with_failures(
        costs, num_workers=8, death_times={1: float(costs.sum()) / 16.0}
    )
    hetero_ranks = min(64, max(2, max_ranks))
    hetero = HeterogeneousCluster(
        {
            "old": (hetero_ranks // 2, 1.0),
            "new": (hetero_ranks - hetero_ranks // 2, 1.8),
        },
        HPC_FDR,
    )
    awareness = hetero.awareness_gain(costs)
    print(
        f"  failover at {failover_ranks} ranks: "
        f"{recovery.total / recovery.baseline_total - 1.0:+.1%} over the "
        f"quiet makespan; heterogeneous awareness gain at "
        f"{hetero_ranks} ranks: {awareness:.2f}x"
    )
    return {
        "sec_per_term": sec_per_term,
        "calibration_seconds": calib_seconds,
        "model": "HPC_FDR",
        "curves": {
            name: {
                "rank_counts": list(c.rank_counts),
                "total_seconds": list(c.total_seconds),
                "speedup": list(c.speedup),
                "efficiency": list(c.efficiency),
            }
            for name, c in curves.items()
        },
        "failover": {
            "ranks": failover_ranks,
            "failed_ranks": [1],
            "baseline_seconds": recovery.baseline_total,
            "recovered_seconds": recovery.total,
            "overhead": recovery.total / recovery.baseline_total - 1.0,
            "tasks_redispatched": recovery.tasks_redispatched,
            "stealing_tasks_rerun": steal.tasks_rerun,
            "stealing_lost_work_seconds": steal.lost_work_seconds,
        },
        "heterogeneous": {
            "ranks": hetero_ranks,
            "classes": {"old": [hetero_ranks // 2, 1.0],
                        "new": [hetero_ranks - hetero_ranks // 2, 1.8]},
            "awareness_gain": awareness,
        },
    }


def run_benchmark(
    sizes: list[int],
    *,
    max_ranks: int,
    workers: int,
    chunk_items: int,
    seed: int,
    sweep_n: int | None = None,
) -> dict:
    if fork_available():
        rows = run_campaigns(
            sizes, workers=workers, chunk_items=chunk_items, seed=seed
        )
    else:  # pragma: no cover - fork always available on test platforms
        print("elastic campaign skipped: fork unavailable on this host")
        rows = []
    sweep_n = sweep_n if sweep_n is not None else max(sizes)
    print(f"simulated sweep at n={sweep_n}, up to {max_ranks} ranks:")
    sweep = run_sweep(sweep_n, max_ranks)
    return {
        "benchmark": "elastic_scaling",
        "description": (
            "elastic campaign dispatch (quiet vs churn: one SIGKILLed "
            "worker, pool shrunk then grown mid-run, part files verified "
            "byte-identical) plus the simulated strategy x rank "
            "strong-scaling sweep to 1,024 ranks"
        ),
        "seed": seed,
        "workers": workers,
        "chunk_items": chunk_items,
        "max_ranks": max_ranks,
        "sweep_n": sweep_n,
        "sweep": sweep,
        "sizes": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[20],
        help="device sides for the real elastic campaign",
    )
    parser.add_argument(
        "--max-ranks", type=int, default=1024,
        help="largest simulated rank count (powers of two up to this)",
    )
    parser.add_argument(
        "--sweep-n", type=int, default=None,
        help="device side for the simulated sweep (default: the largest "
        "campaign size; bigger devices keep scaling further out)",
    )
    parser.add_argument(
        "--workers", type=int, default=3,
        help="elastic pool size for the real campaign",
    )
    parser.add_argument(
        "--chunk-items", type=int, default=16,
        help="items leased per work chunk",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (default: print only)",
    )
    parser.add_argument(
        "--max-churn-overhead", type=float, default=None, metavar="X",
        help="exit nonzero if any size's churn overhead exceeds X "
        "(e.g. 3.0 = 300%%)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        args.sizes,
        max_ranks=args.max_ranks,
        workers=args.workers,
        chunk_items=args.chunk_items,
        seed=args.seed,
        sweep_n=args.sweep_n,
    )
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.max_churn_overhead is not None and report["sizes"]:
        worst = max(row["churn_overhead"] for row in report["sizes"])
        if worst > args.max_churn_overhead:
            print(
                f"FAIL: worst churn overhead {worst:.2f} exceeds the "
                f"{args.max_churn_overhead:.2f} bar",
                file=sys.stderr,
            )
            return 1
        print(
            f"churn-overhead bar met: worst {worst:.2f} "
            f"<= {args.max_churn_overhead:.2f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
