"""E12 / §IV-B — the k-dimensional generalization, measured.

The paper's k-dim claims are asymptotic; this bench grounds them:

* the parallelism budget (unit cells) and the loop count the physics
  actually needs (mesh analysis) for k ∈ {1, 2, 3};
* the §IV-B headline ratio  O(n^{k+1}) constraints / (n−1)^k cells
  ≈ 2n, tabulated;
* real face-to-face solves on 3-D lattices against the closed form.
"""

import pytest

from repro.instrument.report import ResultTable, human_seconds
from repro.mea.kdim import KDimMEA
from repro.mea.lattice import LatticeDevice, uniform_face_resistance_exact
from repro.utils.timing import measure


@pytest.mark.benchmark(group="kdim-physics")
@pytest.mark.parametrize("n,k", [(4, 2), (6, 2), (3, 3)])
def test_face_to_face_solve_cost(benchmark, n, k):
    dev = LatticeDevice.uniform(n, k, ohms=1000.0)
    z = benchmark(dev.face_to_face_resistance, 0)
    expected = uniform_face_resistance_exact(n, k, 1000.0)
    assert z == pytest.approx(expected, rel=1e-5)


@pytest.mark.benchmark(group="kdim-table")
def test_kdim_table(benchmark, emit):
    def build():
        rows = []
        for n, k in ((10, 1), (5, 2), (10, 2), (20, 2), (3, 3), (5, 3)):
            mea = KDimMEA(n, k)
            dev = LatticeDevice.uniform(min(n, 6), k)
            t_mesh = measure(dev.mesh_loop_count, repeats=1)
            rows.append((
                n,
                k,
                mea.num_sites,
                mea.num_unit_cells,
                mea.cyclomatic_number(),
                mea.joint_constraint_count(),
                mea.theoretical_parallel_time_units(),
                t_mesh,
            ))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ResultTable(
        "§IV-B — k-dim MEA accounting (constraints / cells ≈ 2n)",
        ["n", "k", "sites", "cells (n-1)^k", "beta1", "constraints",
         "per-cell share", "mesh-count time"],
    )
    for n, k, sites, cells, beta1, cons, share, t in rows:
        table.add_row(n, k, sites, cells, beta1, cons, share,
                      human_seconds(t))
    emit(table, "kdim_accounting")

    for n, k, sites, cells, beta1, cons, share, _ in rows:
        # The paper's O(n) headline: per-cell share within a factor
        # (n/(n-1))^k of 2n.
        assert 2 * n <= share <= 2 * n * (n / (n - 1)) ** k + 1
        if k == 1:
            assert beta1 == 0 and cells == n - 1  # path graph: no loops
        if k == 2:
            assert cells == beta1  # squares ARE the loops in 2-D
        if k == 3:
            assert cells < beta1  # cube relations (see kdim docs)
