"""E1 / Figure 6 — equation-formation time per strategy.

The paper compares *Parallel*, *Balanced Parallel* and *PyMP* on the
32-core Z820 for n in {10..100}.  Here:

* the pytest-benchmark entries measure the *real* strategies (forked
  workers) at a fixed representative n, so regressions in formation
  cost are caught;
* the figure's full series is regenerated on the simulated Z820 clock
  (this container has one core — DESIGN.md §2) from per-item costs
  calibrated on the real formation code, and written to
  ``results/fig6_strategies.txt``.

Expected shape (paper §V-C): PyMP wins for n >= 20; Balanced Parallel
wins at n = 10 where fine-grained overhead outweighs the speedup.
"""

import numpy as np
import pytest

from conftest import bench_ns
from repro.core.partition import partition
from repro.core.strategies import (
    BalancedParallel,
    ParallelStrategy,
    PyMPStrategy,
    SingleThread,
    item_costs_seconds,
)
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.wetlab import quick_device_data
from repro.parallel.simcluster import Z820_SMP
from repro.parallel.workstealing import lpt_schedule

BENCH_N = 16
WORKERS = 4  # the Z820 experiment's per-strategy region width


@pytest.fixture(scope="module")
def z_bench():
    _, z = quick_device_data(BENCH_N, seed=101)
    return z


@pytest.mark.benchmark(group="fig6-formation")
def test_single_thread_formation(benchmark, z_bench):
    report = benchmark(SingleThread().run, z_bench)
    assert report.terms_formed == 2 * BENCH_N**4


@pytest.mark.benchmark(group="fig6-formation")
def test_parallel_formation(benchmark, z_bench):
    report = benchmark(ParallelStrategy().run, z_bench)
    assert report.terms_formed == 2 * BENCH_N**4


@pytest.mark.benchmark(group="fig6-formation")
def test_balanced_parallel_formation(benchmark, z_bench):
    report = benchmark(BalancedParallel(WORKERS).run, z_bench)
    assert report.terms_formed == 2 * BENCH_N**4


@pytest.mark.benchmark(group="fig6-formation")
def test_pymp_formation(benchmark, z_bench):
    report = benchmark(PyMPStrategy(WORKERS).run, z_bench)
    assert report.terms_formed == 2 * BENCH_N**4


#: Cost rescale from this repo's vectorized formation to the paper's
#: pure-Python prototype (2,600 LoC, per-term string/loop processing).
#: The absolute y-axis is arbitrary for shape reproduction; 25x makes
#: the simulated PyMP/Balanced crossover land between n = 10 and 20,
#: as published.  See EXPERIMENTS.md E1.
PROTOTYPE_SLOWDOWN = 25.0


def _simulated_time(n, scheme, workers, spt):
    """Simulated Z820 formation time of one strategy at scale n.

    Makespan of the strategy's *own* static assignment (not an ideal
    LPT) at prototype-scale per-item costs, plus the fork startup of
    its region width.
    """
    part = partition(n, workers, scheme)
    costs = item_costs_seconds(part, spt * PROTOTYPE_SLOWDOWN)
    loads = np.zeros(part.num_workers)
    for item_cost, w in zip(costs, part.worker_of):
        loads[w] += item_cost
    makespan = float(loads.max())
    if part.num_workers == 1:
        return makespan
    startup = Z820_SMP.startup_per_rank * (
        np.ceil(np.log2(part.num_workers)) + 1
    )
    return makespan + startup


@pytest.mark.benchmark(group="fig6-table")
def test_fig6_table(benchmark, emit, sec_per_term):
    """Regenerate the Figure 6 series on the simulated Z820.

    Worker counts follow the paper: *Parallel* and *Balanced Parallel*
    are inherently 4-thread (one per category / category stealing);
    *PyMP* is fine-grained and uses all 32 Z820 cores.
    """

    def build():
        rows = []
        for n in bench_ns():
            single = _simulated_time(n, "balanced", 1, sec_per_term)
            par = _simulated_time(n, "category", 4, sec_per_term)
            bal = _simulated_time(n, "balanced", 4, sec_per_term)
            pymp = _simulated_time(n, "betti", 32, sec_per_term)
            best = min(
                ("parallel", par), ("balanced", bal), ("pymp", pymp),
                key=lambda kv: kv[1],
            )[0]
            rows.append((n, single, par, bal, pymp, best))
        return rows

    rows = benchmark(build)
    table = ResultTable(
        "Fig. 6 — formation time by strategy (simulated Z820, "
        f"sec/term = {sec_per_term:.3e}, prototype x{PROTOTYPE_SLOWDOWN:g})",
        ["n", "single", "parallel(4)", "balanced(4)", "pymp(32)", "winner"],
    )
    for n, single, par, bal, pymp, best in rows:
        table.add_row(
            n,
            human_seconds(single),
            human_seconds(par),
            human_seconds(bal),
            human_seconds(pymp),
            best,
        )
    emit(table, "fig6_strategies")
    # Paper shape: PyMP wins for n >= 20; at n = 10 the fine-grained
    # overhead leaves Balanced Parallel ahead of PyMP.
    for n, single, par, bal, pymp, best in rows:
        if n >= 20:
            assert pymp <= bal and pymp <= par and pymp < single
        if n == 10:
            assert bal < pymp
        assert bal <= par + 1e-12  # balancing never hurts
