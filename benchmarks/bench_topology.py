"""E7 / §III — Betti numbers of MEA complexes at device scales.

Verifies β = (1, (n-1)^2) for the joint complex by three independent
routes (homology over GF(2), spanning-tree cyclomatic count, analytic
formula) and benchmarks the homology computation itself — the cost of
"identifying the intrinsic parallelism".
"""

import pytest

from conftest import bench_ns
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.device import MEAGrid
from repro.mea.graph import device_complex, expected_betti, joint_graph
from repro.topology.cycles import cyclomatic_number, fundamental_cycles
from repro.topology.homology import HomologyCalculator
from repro.utils.timing import measure


@pytest.mark.benchmark(group="topology-homology")
@pytest.mark.parametrize("n", [4, 8, 12])
def test_betti_computation_cost(benchmark, n):
    complex_ = device_complex(MEAGrid(n))

    def compute():
        return HomologyCalculator(complex_).betti_numbers()

    betti = benchmark(compute)
    assert betti == (1, (n - 1) ** 2)


@pytest.mark.benchmark(group="topology-cycles")
@pytest.mark.parametrize("n", [8, 16, 32])
def test_fundamental_cycle_cost(benchmark, n):
    g = joint_graph(MEAGrid(n), include_terminals=False)
    nodes, edges = list(g.nodes), list(g.edges)
    basis = benchmark(fundamental_cycles, nodes, edges)
    assert len(basis) == (n - 1) ** 2


@pytest.mark.benchmark(group="topology-table")
def test_topology_table(benchmark, emit):
    def build():
        rows = []
        for n in [n for n in bench_ns() if n <= 40] or [10]:
            grid = MEAGrid(min(n, 16))  # homology cost grows fast
            g = joint_graph(grid, include_terminals=False)
            nodes, edges = list(g.nodes), list(g.edges)
            maxwell = cyclomatic_number(nodes, edges)
            analytic = expected_betti(grid)[1]
            t_basis = measure(
                lambda: fundamental_cycles(nodes, edges), repeats=1
            )
            rows.append((grid.n, maxwell, analytic, t_basis))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ResultTable(
        "§III — holes (parallelism units) of the device complex",
        ["n", "Maxwell |E|-|V|+1", "(n-1)^2", "cycle-basis time"],
    )
    for n, maxwell, analytic, t in rows:
        table.add_row(n, maxwell, analytic, human_seconds(t))
    emit(table, "topology_holes")
    for n, maxwell, analytic, _ in rows:
        assert maxwell == analytic == (n - 1) ** 2
