"""E8 / §IV-A — the O(n^n) -> O(n^3) constraint reduction, counted.

Regenerates the accounting the paper argues from: exponential path
terms vs the 2n^3 joint-constraint equations with (2n-1) n^2 unknowns,
plus measured formation throughput of the polynomial system.
"""

import pytest

from conftest import bench_ns
from repro.core.categories import total_equations, total_terms, total_unknowns
from repro.core.strategies import SingleThread
from repro.instrument.report import ResultTable, human_seconds
from repro.kirchhoff.paths import total_paths_paper
from repro.mea.wetlab import quick_device_data


@pytest.mark.benchmark(group="formation-throughput")
@pytest.mark.parametrize("n", [10, 20, 40])
def test_formation_throughput(benchmark, n):
    _, z = quick_device_data(n, seed=106)
    report = benchmark(SingleThread().run, z)
    assert report.terms_formed == total_terms(n)


@pytest.mark.benchmark(group="counts-table")
def test_reduction_table(benchmark, emit):
    def build():
        rows = []
        for n in bench_ns():
            rows.append((
                n,
                total_paths_paper(n),
                total_equations(n),
                total_unknowns(n),
                total_terms(n),
            ))
        return rows

    rows = benchmark(build)
    table = ResultTable(
        "§IV-A — constraint reduction: exponential paths vs 2n^3 joints",
        ["n", "paths (n^(n+1))", "equations (2n^3)", "unknowns",
         "flow terms (2n^4)"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "equation_counts")
    ratios = []
    for n, paths, eqs, unknowns, terms in rows:
        assert eqs == 2 * n**3
        assert unknowns == (2 * n - 1) * n**2
        ratios.append(paths / eqs)
        if n >= 20:
            assert paths > 10**9 * eqs  # the reduction is astronomical
    # And the gap widens superexponentially with n.
    assert all(b > 10 * a for a, b in zip(ratios, ratios[1:]))
