"""Subprocess-executor overhead benchmark: isolation must stay < 5 %.

Crash isolation moves every served solve across a fork boundary: the
request is re-serialized to the executor child, solved there, and the
response framed back.  That buys worker-death survival, but only if
the fault-free path stays cheap — a service nobody runs with isolation
on is a service with no isolation.  This benchmark stands up two
otherwise-identical solve services — one with in-process thread
execution, one with forked subprocess executors — and compares the
p50 client-observed latency of warm n = 10 solves, failing when the
subprocess path is more than 5 % slower.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve_overhead.py \
        --n 10 --requests 40 --out BENCH_serve_overhead.json

Exit status is nonzero when the overhead exceeds the acceptance bar
(default 5 %), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.mea.synthetic import paper_like_spec  # noqa: E402
from repro.mea.wetlab import run_campaign  # noqa: E402
from repro.parallel.pymp import fork_available  # noqa: E402
from repro.serve import ServiceConfig, SolveClient, SolveService  # noqa: E402


def _service(root: Path, executor: str) -> tuple[SolveService, SolveClient]:
    config = ServiceConfig(
        socket_path=root / f"{executor}.sock",
        results_dir=root / f"{executor}-results",
        linger=0.0,
        executor=executor,
        serve_workers=1,
    )
    svc = SolveService(config)
    svc.start()
    client = SolveClient(config.socket_path, timeout=60.0)
    if not client.wait_ready(timeout=10.0):
        svc.stop()
        raise RuntimeError(f"{executor} service did not come up")
    return svc, client


def run(n: int, requests: int, warmup: int) -> dict:
    meas = run_campaign(
        paper_like_spec(n, seed=11), seed=11
    ).campaign.measurements[0]
    z = meas.z_kohm

    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        thread_svc, thread_client = _service(root, "thread")
        sub_svc, sub_client = _service(root, "subprocess")
        try:
            if sub_svc.executor_mode != "subprocess":
                raise RuntimeError("fork unavailable; nothing to compare")
            latencies: dict[str, list[float]] = {"thread": [], "subprocess": []}
            # Warm both hosts (template build, allocator, engine pools),
            # then interleave so machine drift taxes both equally.
            for _ in range(warmup):
                assert thread_client.solve(z).ok
                assert sub_client.solve(z).ok
            for _ in range(requests):
                for name, client in (
                    ("thread", thread_client),
                    ("subprocess", sub_client),
                ):
                    start = time.perf_counter()
                    response = client.solve(z)
                    elapsed = time.perf_counter() - start
                    assert response.ok, response.error
                    assert response.cache_warm
                    latencies[name].append(elapsed)
        finally:
            thread_svc.stop()
            sub_svc.stop()

    p50_thread = statistics.median(latencies["thread"])
    p50_sub = statistics.median(latencies["subprocess"])
    return {
        "n": n,
        "requests": requests,
        "warmup": warmup,
        "thread_p50_seconds": p50_thread,
        "subprocess_p50_seconds": p50_sub,
        "overhead": p50_sub / p50_thread - 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10, help="device side")
    parser.add_argument("--requests", type=int, default=40,
                        help="timed solves per executor host")
    parser.add_argument("--warmup", type=int, default=5,
                        help="untimed warm-up solves per host")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="acceptance bar for the subprocess path")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    if not fork_available():  # pragma: no cover - test platforms fork
        print("SKIP: os.fork unavailable, no subprocess executors")
        return 0

    result = run(args.n, args.requests, args.warmup)
    print(
        f"serve executor overhead at n={result['n']} "
        f"(p50 of {result['requests']} warm solves per host):"
    )
    print(f"  thread executor:     {result['thread_p50_seconds']:.4f} s")
    print(
        f"  subprocess executor: {result['subprocess_p50_seconds']:.4f} s "
        f"({result['overhead']:+.2%})"
    )

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    if result["overhead"] > args.max_overhead:
        print(
            f"FAIL: subprocess executor overhead {result['overhead']:.2%} "
            f"exceeds {args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: subprocess executor overhead within {args.max_overhead:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
