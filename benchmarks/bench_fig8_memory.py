"""E3 / Figure 8 — CDFs of memory usage per (n, k).

Paper findings to reproduce:

* peak memory is about the same regardless of parallelism k;
* at large n, higher k spends a *smaller fraction of time* at low
  footprint (workers allocate their blocks sooner);
* memory grows with n and stays well under 20 GB at n = 100
  (extrapolated analytically from the per-block accounting here).

This benchmark REALLY measures RSS: the formation loop samples
/proc/self/statm between work items while blocks are retained, giving
the usage-over-time trace the CDF summarises.
"""

import numpy as np
import pytest

from conftest import bench_ns
from repro.core.equations import SystemStats, form_pair_block
from repro.core.partition import partition_betti
from repro.instrument.memory import MemorySampler, fraction_below, usage_cdf
from repro.instrument.report import ResultTable, human_bytes
from repro.mea.wetlab import quick_device_data


def formation_memory_trace(n: int, k: int, seed: int = 103) -> np.ndarray:
    """RSS samples over a retained formation run with k-interleaving.

    Blocks are retained (as the paper's in-memory pipeline does) and
    formed in the order a k-worker round-robin would interleave them,
    so the *trajectory* (not the peak) depends on k the way Fig. 8
    shows: more workers -> the heavy early ramp happens earlier in
    relative time.
    """
    _, z = quick_device_data(n, seed=seed)
    part = partition_betti(n, k)
    per_worker = [np.flatnonzero(part.worker_of == w) for w in range(k)]
    order = []
    cursor = [0] * k
    remaining = sum(map(len, per_worker))
    while remaining:
        for w in range(k):
            if cursor[w] < len(per_worker[w]):
                order.append(part.items[per_worker[w][cursor[w]]])
                cursor[w] += 1
                remaining -= 1
    sampler = MemorySampler()
    retained = []
    sampler.sample()
    for item in order:
        retained.append(
            form_pair_block(
                n, item.row, item.col, z[item.row, item.col],
                categories=[item.category],
            )
        )
        if len(retained) % max(1, len(order) // 64) == 0:
            sampler.sample()
    samples = sampler.as_array()
    del retained
    return samples


@pytest.mark.benchmark(group="fig8-memory")
@pytest.mark.parametrize("k", [1, 4])
def test_memory_trace_measured(benchmark, k):
    samples = benchmark(formation_memory_trace, 20, k)
    assert len(samples) > 10


@pytest.mark.benchmark(group="fig8-memory")
def test_fig8_table(benchmark, emit):
    ns = [n for n in bench_ns() if n >= 20]
    ks = (1, 2, 4)
    table = ResultTable(
        "Fig. 8 — memory usage CDF summary (measured RSS)",
        ["n", "k", "peak", "p50", "frac below p50(k=1)"],
    )

    def collect():
        return {
            (n, k): formation_memory_trace(n, k) for n in ns for k in ks
        }

    traces = benchmark.pedantic(collect, rounds=1, iterations=1)
    for n in ns:
        base_median = float(np.percentile(traces[(n, 1)], 50))
        for k in ks:
            t = traces[(n, k)]
            table.add_row(
                n,
                k,
                human_bytes(t.max()),
                human_bytes(np.percentile(t, 50)),
                f"{fraction_below(t, base_median):.2f}",
            )
    emit(table, "fig8_memory")

    for n in ns:
        peaks = [traces[(n, k)].max() for k in ks]
        base = traces[(n, ks[0])]
        # Peak memory ~ independent of k (paper's headline): the spread
        # across k is small relative to the amount allocated.
        allocated = base.max() - base.min()
        if allocated > 0:
            assert (max(peaks) - min(peaks)) < 0.25 * allocated + 2**22


@pytest.mark.benchmark(group="fig8-memory")
def test_fig8_extrapolation_under_20gb(benchmark, emit):
    """Paper: 'memory usage ... is under 20 GB for a 100 x 100 array'.

    Our SoA block encoding is leaner than the prototype's Python
    objects; verify the analytic footprint stays under 20 GB with two
    orders of margin to spare for solver workspace.
    """
    stats = benchmark(SystemStats.for_device, 100)
    table = ResultTable(
        "Fig. 8 (annotation) — analytic footprint of the full system",
        ["n", "terms", "bytes", "under 20 GB?"],
    )
    for n in (10, 20, 50, 100):
        s = SystemStats.for_device(n)
        table.add_row(
            n, s.num_terms, human_bytes(s.bytes_estimate),
            str(s.bytes_estimate < 20 * 2**30),
        )
    emit(table, "fig8_footprint")
    assert stats.bytes_estimate < 20 * 2**30
