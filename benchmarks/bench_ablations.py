"""E10 — ablations of the design choices DESIGN.md calls out.

1. Scheduling: category vs deterministic-LPT vs Betti-aware vs runtime
   stealing (with its per-steal overhead) — §IV-C's determinism
   trade-off, quantified.
2. Parallelism budget: worker counts beyond the (n-1)^2 hole count buy
   nothing (§IV-B's bound).
3. Solver formulation: nested variable-projection vs the paper's full
   joint system — same answer, very different cost profile.
4. Serialization: binary vs text equation files (the I/O experiment's
   hidden constant).
"""

import numpy as np
import pytest

from repro.core.partition import (
    effective_parallelism,
    partition_balanced,
    partition_betti,
    partition_by_category,
)
from repro.core.solver import solve_full, solve_nested
from repro.core.strategies import SingleThread, item_costs_seconds
from repro.instrument.report import ResultTable, human_seconds
from repro.io.equations_io import save_blocks_binary, save_blocks_text
from repro.core.equations import form_all_blocks
from repro.mea.wetlab import quick_device_data
from repro.parallel.workstealing import simulate_runtime_stealing


@pytest.mark.benchmark(group="ablation-scheduling")
def test_scheduling_ablation(benchmark, emit):
    n, workers = 24, 8

    def build():
        cat = partition_by_category(n)
        bal = partition_balanced(n, workers)
        betti = partition_betti(n, workers)
        costs = [it.cost for it in bal.items]
        steal_free = simulate_runtime_stealing(costs, workers)
        steal_paid = simulate_runtime_stealing(
            costs, workers, steal_overhead=np.mean(costs)
        )
        return cat, bal, betti, steal_free, steal_paid

    cat, bal, betti, steal_free, steal_paid = benchmark(build)
    table = ResultTable(
        f"E10.1 — scheduling makespans (n={n}, {workers} workers, "
        "cost unit = one term)",
        ["scheme", "makespan", "imbalance", "notes"],
    )
    table.add_row("category (Parallel)", cat.makespan(), f"{cat.imbalance():.2f}",
                  "4 workers by construction")
    table.add_row("balanced LPT", bal.makespan(), f"{bal.imbalance():.2f}",
                  "deterministic plan")
    table.add_row("betti round-robin", betti.makespan(),
                  f"{betti.imbalance():.2f}", "hole-local")
    table.add_row("runtime stealing", steal_free.makespan, "-",
                  f"{steal_free.steals} steals, zero overhead")
    table.add_row("runtime stealing (paid)", steal_paid.makespan, "-",
                  "steal cost = 1 mean task")
    emit(table, "ablation_scheduling")

    # Deterministic LPT matches zero-overhead runtime stealing and
    # beats the category split; paid stealing gives back some gain.
    assert bal.makespan() <= cat.makespan()
    assert bal.makespan() <= steal_paid.makespan * 1.05
    assert betti.makespan() <= cat.makespan()


@pytest.mark.benchmark(group="ablation-budget")
def test_parallelism_budget_ablation(benchmark, emit):
    n = 6  # 25 holes

    def build():
        rows = []
        for k in (1, 4, 16, 25, 64, 256):
            p = partition_betti(n, k)
            used = len(np.unique(p.worker_of))
            rows.append((k, used, effective_parallelism(n, k), p.makespan()))
        return rows

    rows = benchmark(build)
    table = ResultTable(
        f"E10.2 — workers beyond the (n-1)^2 = {(n-1)**2} holes (n={n})",
        ["workers", "used", "effective", "makespan"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "ablation_budget")
    by_k = {r[0]: r for r in rows}
    assert by_k[64][1] == by_k[256][1] == 25  # capped at hole count
    assert by_k[64][3] == by_k[256][3]  # no further makespan gain


@pytest.mark.benchmark(group="ablation-solver")
def test_solver_formulation_ablation(benchmark, emit):
    n = 6
    r_true, z = quick_device_data(n, seed=109)

    def build():
        nested = solve_nested(z)
        full = solve_full(z)
        return nested, full

    nested, full = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ResultTable(
        f"E10.3 — solver formulations (n={n})",
        ["solver", "unknowns", "max rel err", "time"],
    )
    table.add_row("nested (var. projection)", n * n,
                  nested.max_relative_error(r_true),
                  human_seconds(nested.elapsed_seconds))
    table.add_row("full joint (paper)", (2 * n - 1) * n**2,
                  full.max_relative_error(r_true),
                  human_seconds(full.elapsed_seconds))
    emit(table, "ablation_solver")
    assert nested.max_relative_error(r_true) < 1e-8
    assert full.max_relative_error(r_true) < 1e-4
    np.testing.assert_allclose(
        nested.r_estimate, full.r_estimate, rtol=1e-3
    )


@pytest.mark.benchmark(group="ablation-serialization")
def test_serialization_ablation(benchmark, emit, tmp_path):
    _, z = quick_device_data(12, seed=110)
    blocks = form_all_blocks(z)

    def write_both():
        b_bytes = save_blocks_binary(blocks, tmp_path / "eq.bin")
        t_bytes = save_blocks_text(blocks, tmp_path / "eq.txt")
        return b_bytes, t_bytes

    b_bytes, t_bytes = benchmark(write_both)
    from repro.utils.timing import measure

    t_bin = measure(lambda: save_blocks_binary(blocks, tmp_path / "a.bin"), 3)
    t_txt = measure(lambda: save_blocks_text(blocks, tmp_path / "a.txt"), 3)
    table = ResultTable(
        "E10.4 — equation serialization formats (n=12)",
        ["format", "bytes", "write time", "bytes/term"],
    )
    terms = sum(b.num_terms for b in blocks)
    table.add_row("binary", b_bytes, human_seconds(t_bin), f"{b_bytes / terms:.1f}")
    table.add_row("text", t_bytes, human_seconds(t_txt), f"{t_bytes / terms:.1f}")
    emit(table, "ablation_serialization")
    assert b_bytes < t_bytes  # binary is denser
    assert t_bin < t_txt  # and faster to write


@pytest.mark.benchmark(group="ablation-heterogeneous")
def test_heterogeneous_cluster_ablation(benchmark, emit, sec_per_term):
    """E10.5 / §VII future work — heterogeneous-node clusters.

    A mixed pool of old (1.0x) and new (2.0x) nodes runs the n = 40
    formation workload.  Speed-aware deterministic scheduling vs the
    speed-blind plan quantifies what ignoring heterogeneity costs.
    """
    from repro.core.partition import partition_betti
    from repro.parallel.heterogeneous import (
        HeterogeneousCluster,
        ideal_heterogeneous_time,
    )
    from repro.parallel.simcluster import HPC_FDR

    part = partition_betti(40, 1)
    costs = item_costs_seconds(part, sec_per_term * 25)

    def build():
        rows = []
        for label, classes in (
            ("uniform 16x1.0", {"all": (16, 1.0)}),
            ("8x1.0 + 8x2.0", {"old": (8, 1.0), "new": (8, 2.0)}),
            ("12x1.0 + 4x4.0", {"old": (12, 1.0), "new": (4, 4.0)}),
        ):
            cluster = HeterogeneousCluster(classes=classes, model=HPC_FDR)
            aware = cluster.simulate(costs, aware=True).total
            blind = cluster.simulate(costs, aware=False).total
            ideal = ideal_heterogeneous_time(costs, cluster.speeds())
            rows.append((label, aware, blind, blind / aware, ideal))
        return rows

    rows = benchmark(build)
    table = ResultTable(
        "E10.5 — heterogeneous clusters (n=40 workload, future work §VII)",
        ["cluster", "aware", "blind", "blind/aware", "ideal bound"],
    )
    for label, aware, blind, gain, ideal in rows:
        table.add_row(label, human_seconds(aware), human_seconds(blind),
                      f"{gain:.2f}x", human_seconds(ideal))
    emit(table, "ablation_heterogeneous")
    uniform, mixed, skewed = rows
    assert uniform[3] == pytest.approx(1.0, abs=0.01)  # no gain if uniform
    assert skewed[3] > mixed[3] > 1.0  # gain grows with skew
