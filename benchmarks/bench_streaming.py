"""Streaming formation at the paper's largest scale (n up to 100).

§V-A evaluates "up to 100 x 100 arrays".  The streaming mode forms the
full 2·10⁸-term system of an n = 100 device with O(n²) memory, so this
repository can actually execute the paper's largest workload on a
small container.  Measured throughput here also back-fills the
calibration used by the simulated-cluster figures.

Quick scale runs n = 50 (12.5M terms, a few seconds); set
``REPRO_BENCH_SCALE=full`` to run the true n = 100 system.
"""

import os

import numpy as np
import pytest

from conftest import SCALE
from repro.core.categories import total_terms
from repro.core.streaming import CountingSink, stream_formation, stream_to_file
from repro.instrument.memory import rss_bytes
from repro.instrument.report import ResultTable, human_bytes, human_seconds
from repro.mea.wetlab import quick_device_data

BIG_N = 100 if SCALE == "full" else 50


@pytest.mark.benchmark(group="streaming")
def test_stream_formation_at_scale(benchmark, emit):
    _, z = quick_device_data(BIG_N, seed=301)
    before = rss_bytes()

    def run():
        sink = CountingSink()
        report = stream_formation(z, sink)
        return report, sink

    report, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    after = rss_bytes()
    assert sink.terms == total_terms(BIG_N)
    assert sink.equations == 2 * BIG_N**3

    table = ResultTable(
        f"Streaming formation at n = {BIG_N} (paper's §V-A scale)",
        ["metric", "value"],
    )
    table.add_row("terms formed", report.terms_formed)
    table.add_row("equations", sink.equations)
    table.add_row("wall time", human_seconds(report.elapsed_seconds))
    table.add_row("throughput (terms/s)", f"{report.terms_per_second():.3e}")
    table.add_row("RSS growth", human_bytes(max(0, after - before)))
    emit(table, "streaming_scale")
    # Memory must stay bounded: far below the materialized system size.
    from repro.core.equations import SystemStats

    full_bytes = SystemStats.for_device(BIG_N).bytes_estimate
    assert max(0, after - before) < 0.25 * full_bytes


@pytest.mark.benchmark(group="streaming")
def test_stream_to_disk_medium(benchmark, tmp_path):
    """Disk-backed streaming at a medium size (per-round fresh file)."""
    _, z = quick_device_data(24, seed=302)
    counter = iter(range(100000))

    def run():
        return stream_to_file(z, tmp_path / f"s{next(counter)}.bin")

    report, nbytes = benchmark(run)
    assert report.terms_formed == total_terms(24)
    assert nbytes > 0
