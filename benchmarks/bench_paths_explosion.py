"""E6 / §II-C — the path explosion that motivates Parma.

Regenerates the table behind "there are overall n^(n+1) possible
paths" and "[the] path-based approach is unfeasible ... when n > 6":
exact counts (closed form, cross-checked by enumeration where
feasible), the paper's estimate, storage estimates, and measured
enumeration time growth.
"""

import pytest

from repro.instrument.report import ResultTable, human_bytes, human_seconds
from repro.kirchhoff.paths import (
    count_paths_exact,
    count_paths_paper,
    enumerate_paths,
    storage_estimate_bytes,
    total_paths_exact,
)
from repro.mea.device import MEAGrid
from repro.utils.timing import measure


@pytest.mark.benchmark(group="paths-enumeration")
@pytest.mark.parametrize("n", [3, 4, 5])
def test_enumeration_cost(benchmark, n):
    grid = MEAGrid(n)
    paths = benchmark(enumerate_paths, grid, 0, 0)
    assert len(paths) == count_paths_exact(n, n)


@pytest.mark.benchmark(group="paths-table")
def test_path_explosion_table(benchmark, emit):
    def build():
        rows = []
        for n in range(2, 11):
            exact = count_paths_exact(n, n)
            paper = count_paths_paper(n)
            storage = storage_estimate_bytes(n)
            if n <= 6:
                t = measure(lambda n=n: enumerate_paths(MEAGrid(n), 0, 0), 1)
            else:
                t = None
            rows.append((n, exact, paper, total_paths_exact(n, n), storage, t))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ResultTable(
        "§II-C — path explosion (exact vs paper's n^(n-1) estimate)",
        ["n", "paths/pair", "paper est.", "all pairs", "storage",
         "enum time/pair"],
    )
    for n, exact, paper, total, storage, t in rows:
        table.add_row(
            n, exact, paper, total, human_bytes(storage),
            human_seconds(t) if t is not None else "infeasible",
        )
    emit(table, "paths_explosion")

    by_n = {r[0]: r for r in rows}
    # Paper's estimate is exact at n = 3 (the worked example).
    assert by_n[3][1] == by_n[3][2] == 9
    # Superexponential growth; storage infeasible past n = 6.
    assert by_n[6][4] < 2**30 < by_n[7][4]
    assert by_n[10][4] > 10 * 2**40
    # Measured time grows by > 10x from n=5 to n=6.
    if by_n[5][5] and by_n[6][5]:
        assert by_n[6][5] > 10 * by_n[5][5]
