"""E2 / Figure 7 — PyMP compute time (no I/O) at k in {2..32}.

The paper sweeps the PyMP parallelism level on the HPC cluster and
reports near-linear decrease of compute time per workload for n >= 20,
with inconsistent behaviour at n = 10 (overhead-bound).

Real measurement: the pytest-benchmark entries execute the actual
PyMP strategy with small fork counts (what one core can host).  The
figure's (n, k) grid is regenerated on the simulated cluster clock
from calibrated per-item costs — results/fig7_pymp.txt.
"""

import numpy as np
import pytest

from conftest import bench_ks, bench_ns
from repro.core.partition import partition_betti
from repro.core.strategies import PyMPStrategy, item_costs_seconds
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.wetlab import quick_device_data
from repro.parallel.simcluster import Z820_SMP

PROTOTYPE_SLOWDOWN = 25.0  # see bench_fig6_strategies.py


@pytest.mark.benchmark(group="fig7-real")
@pytest.mark.parametrize("k", [1, 2, 4])
def test_real_pymp_formation(benchmark, k):
    _, z = quick_device_data(16, seed=102)
    report = benchmark(PyMPStrategy(k).run, z)
    assert report.terms_formed == 2 * 16**4


def simulated_pymp_time(n: int, k: int, spt: float) -> float:
    """Simulated formation time of PyMP-k at scale n (no I/O)."""
    part = partition_betti(n, k)
    costs = item_costs_seconds(part, spt * PROTOTYPE_SLOWDOWN)
    loads = np.zeros(part.num_workers)
    for c, w in zip(costs, part.worker_of):
        loads[w] += c
    makespan = float(loads.max())
    if k == 1:
        return makespan
    startup = Z820_SMP.startup_per_rank * (np.ceil(np.log2(k)) + 1)
    return makespan + startup


@pytest.mark.benchmark(group="fig7-table")
def test_fig7_table(benchmark, emit, sec_per_term):
    ks = bench_ks()

    def build():
        return {
            n: [simulated_pymp_time(n, k, sec_per_term) for k in ks]
            for n in bench_ns()
        }

    grid = benchmark(build)
    table = ResultTable(
        "Fig. 7 — PyMP compute time (no I/O), simulated cluster",
        ["n"] + [f"k={k}" for k in ks] + ["k32 speedup"],
    )
    for n, times in grid.items():
        speedup = times[0] * 2 / times[-1] / ks[-1] * ks[0]  # vs k=2
        table.add_row(
            n, *[human_seconds(t) for t in times],
            f"{times[0] / times[-1]:.1f}x",
        )
    emit(table, "fig7_pymp")

    for n, times in grid.items():
        if n >= 20:
            # Improvement with k for real workloads (within 10% slack
            # at the tail, where startup nibbles at the gain)...
            assert all(b <= a * 1.10 for a, b in zip(times, times[1:]))
        if n >= 30:
            assert all(b < a for a, b in zip(times, times[1:]))
        if n >= 40:
            # ...and near-linear k2 -> k32 gain at scale (>= 8x of the
            # ideal 16x once startup is paid).
            assert times[0] / times[-1] > 8.0
    # n = 10 is overhead-bound: more workers do NOT keep helping.
    t10 = grid[10]
    assert t10[-1] > min(t10) * 0.99
