"""Formation fast-path benchmark: template cache vs legacy per-pair.

Times full-device equation formation (all ``n^2`` pair blocks,
``2 n^4`` terms) through the legacy from-scratch path
(:func:`repro.core.equations.iter_pair_blocks`) and the template-cached
batched path (:func:`repro.core.templates.iter_pair_batches`), then
writes a machine-readable JSON report.  The acceptance bar for the
cached path is a >= 5x formation speedup at n = 60.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_formation_cache.py \
        --sizes 10 20 40 60 --out BENCH_formation.json

Template build time is excluded from the cached timing (the cache is
warmed first) but reported separately — it is a one-off per device
size and amortizes over every subsequent formation of that size.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.categories import total_terms  # noqa: E402
from repro.core.equations import iter_pair_blocks  # noqa: E402
from repro.core.templates import (  # noqa: E402
    clear_template_cache,
    get_template,
    iter_pair_batches,
)


def _device(n: int, seed: int = 1234) -> np.ndarray:
    rng = np.random.default_rng(seed + n)
    return rng.uniform(500.0, 1500.0, (n, n))


def _time_legacy(z: np.ndarray, repeats: int) -> tuple[float, float]:
    best = float("inf")
    checksum = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        checksum = 0.0
        for block in iter_pair_blocks(z):
            checksum += block.checksum()
        best = min(best, time.perf_counter() - start)
    return best, checksum


def _time_cached(z: np.ndarray, repeats: int) -> tuple[float, float]:
    get_template(z.shape[0])  # warm: build time measured separately
    best = float("inf")
    checksum = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        checksum = 0.0
        for batch in iter_pair_batches(z):
            checksum += float(batch.checksums().sum())
        best = min(best, time.perf_counter() - start)
    return best, checksum


def run_benchmark(sizes: list[int], repeats: int) -> dict:
    rows = []
    for n in sizes:
        z = _device(n)
        clear_template_cache()
        build_start = time.perf_counter()
        tpl = get_template(n)
        build_seconds = time.perf_counter() - build_start
        legacy_s, legacy_sum = _time_legacy(z, repeats)
        cached_s, cached_sum = _time_cached(z, repeats)
        if cached_sum != legacy_sum:
            raise RuntimeError(
                f"checksum mismatch at n={n}: "
                f"cached {cached_sum!r} != legacy {legacy_sum!r}"
            )
        pairs = n * n
        row = {
            "n": n,
            "pairs": pairs,
            "terms": total_terms(n),
            "legacy_seconds": legacy_s,
            "cached_seconds": cached_s,
            "template_build_seconds": build_seconds,
            "template_bytes": tpl.nbytes(),
            "legacy_us_per_pair": 1e6 * legacy_s / pairs,
            "cached_us_per_pair": 1e6 * cached_s / pairs,
            "speedup": legacy_s / cached_s,
            "checksum": legacy_sum,
        }
        rows.append(row)
        print(
            f"n={n:3d}: legacy {1e6 * legacy_s / pairs:8.1f} us/pair, "
            f"cached {1e6 * cached_s / pairs:8.1f} us/pair, "
            f"speedup {row['speedup']:.2f}x "
            f"(template build {1e3 * build_seconds:.2f} ms, "
            f"{tpl.nbytes()} B resident)"
        )
    return {
        "benchmark": "formation_cache",
        "description": (
            "full-device equation formation, template-cached batched "
            "path vs legacy per-pair path (best of repeats, checksums "
            "verified identical)"
        ),
        "repeats": repeats,
        "target_speedup_at_n60": 5.0,
        "sizes": rows,
    }


def write_manifests(
    report: dict, directory: Path, catalog_db: Path | None = None
) -> None:
    """One bench-tagged run manifest per size, for the run catalog.

    Each size becomes a ``bench-formation-n<N>/manifest.json`` whose
    ``formation`` phase carries the cached-path time and whose
    ``extra.bench = "formation"`` tag is what ``parma runs regress``
    matches against ``BENCH_formation.json``.
    """
    from repro.observe.observer import Observer

    directory.mkdir(parents=True, exist_ok=True)
    for row in report["sizes"]:
        obs = Observer(trace_dir=directory / f"bench-formation-n{row['n']}")
        # Span timestamps are perf_counter coordinates; anchor the
        # synthesized span so the manifest wall equals the bench time.
        obs.add_span(
            "formation",
            ts=time.perf_counter() - row["cached_seconds"],
            dur=row["cached_seconds"],
            n=row["n"],
        )
        obs.gauge("bench.speedup", row["speedup"])
        obs.finalize(
            config={
                "command": "bench-formation",
                "n": row["n"],
                "formation": "cached",
                "status": "ok",
            },
            extra={"bench": "formation"},
        )
    print(f"wrote {len(report['sizes'])} bench manifest(s) under {directory}")
    if catalog_db is not None:
        from repro.observe.catalog import Catalog

        with Catalog(catalog_db) as catalog:
            ingested = catalog.ingest([directory])
            print(f"catalog: {ingested.summary()} -> {catalog_db}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20, 40, 60],
        help="device sides to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per path (best is reported)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (default: print only)",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="exit nonzero unless every size reaches X-fold speedup",
    )
    parser.add_argument(
        "--manifests", type=Path, default=None, metavar="DIR",
        help="also write one bench-tagged run manifest per size under "
        "DIR (ingestable by `parma runs ingest`)",
    )
    parser.add_argument(
        "--catalog", type=Path, default=None, metavar="DB",
        help="ingest the --manifests output into this run catalog",
    )
    args = parser.parse_args(argv)
    if args.catalog is not None and args.manifests is None:
        parser.error("--catalog requires --manifests DIR")
    report = run_benchmark(args.sizes, args.repeats)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.manifests is not None:
        write_manifests(report, args.manifests, catalog_db=args.catalog)
    if args.require_speedup is not None:
        worst = min(row["speedup"] for row in report["sizes"])
        if worst < args.require_speedup:
            print(
                f"FAIL: worst speedup {worst:.2f}x is below the "
                f"{args.require_speedup:.1f}x bar",
                file=sys.stderr,
            )
            return 1
        print(f"speedup bar met: worst {worst:.2f}x "
              f">= {args.require_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
