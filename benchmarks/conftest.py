"""Shared benchmark fixtures and result-table emission.

Every benchmark regenerates one of the paper's figures as a text table
(the series the figure plots).  Tables are printed and also written to
``benchmarks/results/<name>.txt`` so the artifact survives pytest's
output capture; EXPERIMENTS.md references those files.

Scale control: set ``REPRO_BENCH_SCALE=full`` to run the paper's full
n-range (n to 100; minutes on one core).  The default ``quick`` range
keeps the whole suite under ~2 minutes while preserving every curve's
shape (crossovers happen by n = 20-40).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: The paper sweeps n in {10, 20, ..., 100}.
FULL_NS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
QUICK_NS = (10, 20, 30, 40)

#: PyMP parallelism levels of Fig. 7/9.
FULL_KS = (2, 4, 8, 16, 32)
QUICK_KS = (2, 4, 8, 16, 32)


def bench_ns():
    return FULL_NS if SCALE == "full" else QUICK_NS


def bench_ks():
    return FULL_KS if SCALE == "full" else QUICK_KS


@pytest.fixture(scope="session")
def emit():
    """Write a rendered ResultTable to results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(table, name: str) -> None:
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _emit


@pytest.fixture(scope="session")
def sec_per_term():
    """Measured formation cost per term on this machine (calibration
    for every simulated-cluster figure)."""
    from repro.core.strategies import calibrate_sec_per_term

    return calibrate_sec_per_term(40, sample_pairs=64)
