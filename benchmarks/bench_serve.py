"""Fleet SLO benchmark: latency percentiles and scale-out throughput.

``parma fleet`` promises two things the single-process service cannot:
that warm-path latency holds under concurrent clients (the front sheds
or reroutes instead of queueing unboundedly), and that adding shards
adds throughput.  This benchmark stands up both topologies behind the
same TCP transport, drives them with a closed-loop load generator
sweeping concurrent clients over a mixed interactive/batch priority
workload, and reports p50/p95/p99 client-observed latency plus
throughput for each sweep point.

Honesty note for one-box CI: this container has a single CPU core, so
two shard processes time-slice one core and *measured* fleet
throughput cannot exceed single-process throughput here.  The report
therefore carries two kinds of rows, explicitly labelled:

* ``measured-1host`` — real wall-clock numbers from this machine.
  These are what ``parma runs regress --kind serve`` gates on (the
  per-``n`` ``warm_p95_seconds`` in ``sizes``).
* ``projected-multihost`` — a deterministic closed-loop queueing
  replay of the *measured* warm service-time samples across ``K``
  independent shard hosts, each request paying the *measured* front
  forwarding overhead.  No RNG, no wall clock: the projection is a
  pure function of the measured samples, so it is reproducible from
  the checked-in report.  This is the same convention
  ``BENCH_scaling.json`` uses for its 1,024-rank projection.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --sizes 8 12 --clients 1 2 4 8 --out BENCH_serve.json

Exit status is nonzero when the projected fleet throughput at the
highest swept concurrency falls below ``--require-speedup`` (default
1.5x) of projected single-process throughput, so CI can gate on the
scale-out claim.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.mea.synthetic import paper_like_spec  # noqa: E402
from repro.mea.wetlab import run_campaign  # noqa: E402
from repro.observe import Observer  # noqa: E402
from repro.parallel.pymp import fork_available  # noqa: E402
from repro.serve import (  # noqa: E402
    FleetConfig,
    ServiceConfig,
    SolveClient,
    SolveFleet,
    SolveService,
)
from repro.serve.protocol import format_address  # noqa: E402

PRIORITY_PERIOD = 4  # every 4th request per client is interactive


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile; defined for any non-empty sample."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, min(len(ordered), int(round(q * len(ordered) + 0.5))))
    return ordered[rank - 1]


def _measurements(sizes: list[int], seed: int = 11):
    out = []
    for n in sizes:
        campaign = run_campaign(paper_like_spec(n, seed=seed), seed=seed)
        out.append((n, campaign.campaign.measurements[0]))
    return out


def _single_topology(root: Path) -> tuple[SolveService, str]:
    config = ServiceConfig(
        socket_path=root / "single.sock",
        results_dir=root / "single-results",
        linger=0.0,
        executor="thread",
        serve_workers=1,
        tcp="127.0.0.1:0",
    )
    svc = SolveService(config)
    svc.start()
    host, port = svc.tcp_address
    return svc, f"{host}:{port}"


def _fleet_topology(root: Path, shards: int) -> tuple[SolveFleet, str]:
    config = FleetConfig(
        listen="127.0.0.1:0",
        results_dir=root / "fleet-results",
        shards=shards,
        linger=0.0,
        shard_executor="thread",
        serve_workers=1,
        max_inflight_per_shard=64,  # bench measures latency, not shedding
        processes=fork_available(),
    )
    fleet = SolveFleet(config)
    fleet.start()
    return fleet, format_address(fleet.tcp_address)


def _probe_sizes(address: str, measurements, warm_probes: int) -> list[dict]:
    """Cold + warm per-``n`` latency on a fresh topology (single client).

    The first solve per ``n`` pays template build + engine warm-up and
    is recorded as the cold latency; the following ``warm_probes``
    solves give the warm percentiles that ``sizes`` (and the regress
    baseline) carry.
    """
    client = SolveClient(address, timeout=120.0)
    rows = []
    for n, meas in measurements:
        start = time.perf_counter()
        response = client.solve(meas.z_kohm, voltage=meas.voltage, hour=meas.hour)
        cold = time.perf_counter() - start
        assert response.ok, response.error
        warm: list[float] = []
        for _ in range(warm_probes):
            start = time.perf_counter()
            response = client.solve(
                meas.z_kohm, voltage=meas.voltage, hour=meas.hour
            )
            warm.append(time.perf_counter() - start)
            assert response.ok, response.error
            assert response.cache_warm
        rows.append(
            {
                "n": n,
                "cold_seconds": cold,
                "warm_p50_seconds": _percentile(warm, 0.50),
                "warm_p95_seconds": _percentile(warm, 0.95),
                "warm_p99_seconds": _percentile(warm, 0.99),
                "warm_samples": warm,
            }
        )
    return rows


def _sweep(
    address: str, measurements, clients: int, requests_per_client: int
) -> dict:
    """Closed-loop load: each client resubmits as soon as it completes."""
    lock = threading.Lock()
    barrier = threading.Barrier(clients)
    warm_latencies: list[float] = []
    cold_latencies: list[float] = []
    by_priority = {"interactive": [], "batch": []}
    shed = [0]
    failures: list[str] = []
    t_start = [float("inf")]
    t_end = [0.0]

    def worker(ci: int) -> None:
        client = SolveClient(address, timeout=120.0)
        barrier.wait()
        begin = time.perf_counter()
        for j in range(requests_per_client):
            n, meas = measurements[(ci + j) % len(measurements)]
            priority = (
                "interactive" if j % PRIORITY_PERIOD == 0 else "batch"
            )
            start = time.perf_counter()
            response = client.solve(
                meas.z_kohm,
                voltage=meas.voltage,
                hour=meas.hour,
                priority=priority,
                client_id=f"bench-{ci}",
            )
            elapsed = time.perf_counter() - start
            with lock:
                if response.ok:
                    bucket = warm_latencies if response.cache_warm else cold_latencies
                    bucket.append(elapsed)
                    by_priority[priority].append(elapsed)
                elif response.retriable:
                    shed[0] += 1
                else:
                    failures.append(response.error or response.status)
        done = time.perf_counter()
        with lock:
            t_start[0] = min(t_start[0], begin)
            t_end[0] = max(t_end[0], done)

    threads = [
        threading.Thread(target=worker, args=(ci,), daemon=True)
        for ci in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise RuntimeError(f"sweep saw hard failures: {failures[:3]}")
    completed = len(warm_latencies) + len(cold_latencies)
    wall = max(t_end[0] - t_start[0], 1e-9)
    return {
        "clients": clients,
        "requests": completed,
        "shed": shed[0],
        "p50_seconds": _percentile(warm_latencies, 0.50),
        "p95_seconds": _percentile(warm_latencies, 0.95),
        "p99_seconds": _percentile(warm_latencies, 0.99),
        "cold_requests": len(cold_latencies),
        "interactive_p95_seconds": _percentile(by_priority["interactive"], 0.95),
        "batch_p95_seconds": _percentile(by_priority["batch"], 0.95),
        "throughput_rps": completed / wall,
        "wall_seconds": wall,
    }


def _project(
    samples: list[float],
    clients: int,
    servers: int,
    per_request_overhead: float,
    rounds: int,
) -> tuple[dict, float]:
    """Deterministic closed-loop replay of measured service times.

    ``clients`` submitters each resubmit the moment their previous
    request completes; requests go to the earliest-free of ``servers``
    independent hosts and take the next measured sample (round-robin
    through ``samples``) plus the front-forwarding overhead.  Returns
    (latency percentiles, throughput).
    """
    ready: list[tuple[float, int]] = [(0.0, c) for c in range(clients)]
    heapq.heapify(ready)
    server_free = [0.0] * servers
    submitted = [0] * clients
    latencies: list[float] = []
    total = clients * rounds
    makespan = 0.0
    for idx in range(total):
        t_ready, c = heapq.heappop(ready)
        s = min(range(servers), key=server_free.__getitem__)
        start = max(t_ready, server_free[s])
        end = start + samples[idx % len(samples)] + per_request_overhead
        server_free[s] = end
        latencies.append(end - t_ready)
        makespan = max(makespan, end)
        submitted[c] += 1
        if submitted[c] < rounds:
            heapq.heappush(ready, (end, c))
    stats = {
        "p50_seconds": _percentile(latencies, 0.50),
        "p95_seconds": _percentile(latencies, 0.95),
        "p99_seconds": _percentile(latencies, 0.99),
    }
    return stats, total / makespan


def run(
    sizes: list[int],
    clients_sweep: list[int],
    requests_per_client: int,
    shards: int,
    warm_probes: int,
) -> dict:
    measurements = _measurements(sizes)
    sweeps: list[dict] = []

    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        svc, single_addr = _single_topology(root)
        try:
            single_sizes = _probe_sizes(single_addr, measurements, warm_probes)
            for clients in clients_sweep:
                row = _sweep(
                    single_addr, measurements, clients, requests_per_client
                )
                row.update(mode="measured-1host", topology="single-process")
                sweeps.append(row)
        finally:
            svc.stop()

        fleet, fleet_addr = _fleet_topology(root, shards)
        try:
            fleet_sizes = _probe_sizes(fleet_addr, measurements, warm_probes)
            for clients in clients_sweep:
                row = _sweep(
                    fleet_addr, measurements, clients, requests_per_client
                )
                row.update(
                    mode="measured-1host", topology=f"fleet-{shards}shard"
                )
                sweeps.append(row)
        finally:
            fleet.stop()

    # Front-forwarding overhead: the extra hop the fleet adds on top of
    # the shard's own service time, measured warm at one client.
    single_p50 = _percentile(
        [s for row in single_sizes for s in row["warm_samples"]], 0.50
    )
    fleet_p50 = _percentile(
        [s for row in fleet_sizes for s in row["warm_samples"]], 0.50
    )
    overhead = max(0.0, fleet_p50 - single_p50)

    # Deterministic multi-host projection from the measured samples.
    samples = [s for row in single_sizes for s in row["warm_samples"]]
    projection_rounds = max(requests_per_client, 16)
    for clients in clients_sweep:
        for topology, servers, per_req in (
            ("single-process", 1, 0.0),
            (f"fleet-{shards}shard", shards, overhead),
        ):
            stats, throughput = _project(
                samples, clients, servers, per_req, projection_rounds
            )
            sweeps.append(
                {
                    "mode": "projected-multihost",
                    "topology": topology,
                    "clients": clients,
                    "requests": clients * projection_rounds,
                    "shed": 0,
                    "throughput_rps": throughput,
                    **stats,
                }
            )

    max_clients = max(clients_sweep)

    def _throughput(mode: str, topology: str) -> float:
        for row in sweeps:
            if (
                row["mode"] == mode
                and row["topology"] == topology
                and row["clients"] == max_clients
            ):
                return row["throughput_rps"]
        raise KeyError((mode, topology, max_clients))

    proj_single = _throughput("projected-multihost", "single-process")
    proj_fleet = _throughput("projected-multihost", f"fleet-{shards}shard")
    meas_single = _throughput("measured-1host", "single-process")
    meas_fleet = _throughput("measured-1host", f"fleet-{shards}shard")

    for row in single_sizes + fleet_sizes:
        del row["warm_samples"]

    return {
        "benchmark": "serve_slo",
        "host": {
            "cpus": os.cpu_count(),
            "note": (
                "measured rows are real wall-clock on this host; "
                "projected rows replay the measured warm service-time "
                "samples across independent shard hosts "
                "(deterministic, no RNG)"
            ),
        },
        "config": {
            "sizes": sizes,
            "clients_sweep": clients_sweep,
            "requests_per_client": requests_per_client,
            "shards": shards,
            "warm_probes": warm_probes,
            "priority_mix": {
                "interactive": 1 / PRIORITY_PERIOD,
                "batch": 1 - 1 / PRIORITY_PERIOD,
            },
            "transport": "tcp",
            "executor": "thread",
        },
        "sizes": single_sizes,
        "fleet_sizes": fleet_sizes,
        "sweeps": sweeps,
        "headline": {
            "max_clients": max_clients,
            "front_overhead_seconds": overhead,
            "measured_single_throughput_rps": meas_single,
            "measured_fleet_throughput_rps": meas_fleet,
            "projected_single_throughput_rps": proj_single,
            "projected_fleet_throughput_rps": proj_fleet,
            "projected_fleet_speedup": proj_fleet / proj_single,
        },
    }


def write_manifests(
    report: dict, directory: Path, catalog_db: Path | None = None
) -> None:
    """One bench-tagged run manifest per size, for the run catalog.

    Each size becomes a ``bench-serve-n<N>/manifest.json`` whose
    ``solve`` phase carries the measured single-host warm p95 and
    whose ``extra.bench = "serve"`` tag is what ``parma runs regress
    --kind serve`` matches against ``BENCH_serve.json``.
    """
    directory.mkdir(parents=True, exist_ok=True)
    for row in report["sizes"]:
        obs = Observer(trace_dir=directory / f"bench-serve-n{row['n']}")
        obs.add_span(
            "solve",
            ts=time.perf_counter() - row["warm_p95_seconds"],
            dur=row["warm_p95_seconds"],
            n=row["n"],
        )
        obs.gauge("bench.cold_seconds", row["cold_seconds"])
        obs.finalize(
            config={
                "command": "bench-serve",
                "n": row["n"],
                "solver": "nested",
                "backend": "numpy",
                "status": "ok",
            },
            extra={"bench": "serve"},
        )
    print(f"wrote {len(report['sizes'])} bench manifest(s) under {directory}")
    if catalog_db is not None:
        from repro.observe.catalog import Catalog

        with Catalog(catalog_db) as catalog:
            ingested = catalog.ingest([directory])
            print(f"catalog: {ingested.summary()} -> {catalog_db}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[8, 12],
                        help="device sides to serve")
    parser.add_argument("--clients", type=int, nargs="+", default=[1, 2, 4, 8],
                        help="concurrent-client sweep points")
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client per sweep point")
    parser.add_argument("--shards", type=int, default=2,
                        help="fleet shard count")
    parser.add_argument("--warm-probes", type=int, default=15,
                        help="warm solves per size for the SLO baseline")
    parser.add_argument("--require-speedup", type=float, default=1.5,
                        help="projected fleet/single throughput bar")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--manifests", type=Path, default=None,
                        help="write bench-tagged run manifests here")
    parser.add_argument("--catalog", type=Path, default=None,
                        help="ingest the manifests into this catalog db")
    args = parser.parse_args(argv)

    report = run(
        args.sizes, args.clients, args.requests, args.shards, args.warm_probes
    )

    print(f"{'mode':<20} {'topology':<16} {'C':>3} "
          f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'rps':>8}")
    for row in report["sweeps"]:
        print(
            f"{row['mode']:<20} {row['topology']:<16} {row['clients']:>3} "
            f"{row['p50_seconds'] * 1e3:>8.2f} "
            f"{row['p95_seconds'] * 1e3:>8.2f} "
            f"{row['p99_seconds'] * 1e3:>8.2f} "
            f"{row['throughput_rps']:>8.1f}"
        )
    head = report["headline"]
    print(
        f"projected fleet speedup at C={head['max_clients']}: "
        f"{head['projected_fleet_speedup']:.2f}x "
        f"(front overhead {head['front_overhead_seconds'] * 1e3:.2f} ms)"
    )

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if args.manifests is not None:
        write_manifests(report, args.manifests, args.catalog)

    if head["projected_fleet_speedup"] < args.require_speedup:
        print(
            f"FAIL: projected fleet speedup "
            f"{head['projected_fleet_speedup']:.2f}x < "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
