"""E5 / Figure 10 — MPI strong scaling up to 1,024 processes.

Paper findings: linear strong scalability for practical workloads
(50x50 and larger); for 10x10 / 20x20 the inter-node parallelism is
not effective and intra-node parallelization is recommended.

Two layers here:

* **correctness** — the actual Parma decomposition runs under the
  repo's MPI runtime with real forked ranks (small rank counts), and
  the union of rank shares equals the single-thread formation exactly;
* **scaling series** — the 1,024-rank sweep replays calibrated per-item
  costs on the simulated FDR-InfiniBand cluster model (one physical
  core here — DESIGN.md §2) — results/fig10_mpi.txt.
"""

import numpy as np
import pytest

from repro.core.equations import form_pair_block
from repro.core.partition import partition_betti
from repro.core.strategies import SingleThread, item_costs_seconds
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.wetlab import quick_device_data
from repro.parallel.mpi import run_mpi
from repro.parallel.simcluster import HPC_FDR, scaling_sweep, speedup_curve

PROTOTYPE_SLOWDOWN = 25.0
RANKS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
WORKLOADS = (10, 20, 50, 100)


def mpi_formation_program(comm, z):
    """SPMD Parma formation: rank r forms its Betti-partition share."""
    rank, size = comm.Get_rank(), comm.Get_size()
    n = z.shape[0]
    part = partition_betti(n, size)
    terms = 0
    checksum = 0.0
    for idx in np.flatnonzero(part.worker_of == rank):
        item = part.items[idx]
        block = form_pair_block(
            n, item.row, item.col, z[item.row, item.col],
            categories=[item.category],
        )
        terms += block.num_terms
        checksum += block.checksum()
    totals = comm.allreduce(np.array([terms, checksum]))
    return totals


@pytest.mark.benchmark(group="fig10-real-mpi")
@pytest.mark.parametrize("size", [2, 4])
def test_real_mpi_formation(benchmark, size):
    _, z = quick_device_data(10, seed=105)
    reference = SingleThread().run(z)

    def run():
        return run_mpi(mpi_formation_program, size, args=(z,))

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    for totals in results:
        assert int(totals[0]) == reference.terms_formed
        assert totals[1] == pytest.approx(reference.checksum)


@pytest.mark.benchmark(group="fig10-table")
def test_fig10_table(benchmark, emit, sec_per_term):
    def build():
        out = {}
        for n in WORKLOADS:
            part = partition_betti(n, 1)
            costs = item_costs_seconds(part, sec_per_term * PROTOTYPE_SLOWDOWN)
            out[n] = scaling_sweep(costs, RANKS, HPC_FDR)
        return out

    sweeps = benchmark(build)
    table = ResultTable(
        "Fig. 10 — MPI strong scaling (simulated FDR cluster)",
        ["n"] + [f"p={p}" for p in RANKS],
    )
    for n, points in sweeps.items():
        table.add_row(n, *[human_seconds(pt.total) for pt in points])
    speed_table = ResultTable(
        "Fig. 10 (speedups vs p=1)",
        ["n"] + [f"p={p}" for p in RANKS],
    )
    for n, points in sweeps.items():
        sp = speedup_curve(points)
        speed_table.add_row(n, *[f"{s:.1f}" for s in sp])
    emit(table, "fig10_mpi")
    emit(speed_table, "fig10_mpi_speedup")

    # Paper shape assertions.
    sp100 = speedup_curve(sweeps[100])
    sp50 = speedup_curve(sweeps[50])
    sp10 = speedup_curve(sweeps[10])
    # 50x50+ : keeps improving all the way to 1,024 ranks...
    assert (np.diff([pt.total for pt in sweeps[100]]) < 0).all()
    assert (np.diff([pt.total for pt in sweeps[50]]) < 0).all()
    # ...with near-linear efficiency through 64 ranks.
    idx64 = RANKS.index(64)
    assert sp100[idx64] > 0.7 * 64
    assert sp50[idx64] > 0.6 * 64
    # 10x10: inter-node parallelism ineffective (peak speedup tiny and
    # reached well before 1,024).
    assert sp10.max() < 16
    assert int(np.argmax(sp10)) < len(RANKS) - 1
