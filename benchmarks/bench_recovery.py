"""E9 — recovery quality: R from Z, scored against ground truth.

The paper's wet-lab data has no ground truth, so it can only report
runtime; our simulated lab (DESIGN.md §2) lets the reproduction close
the loop: exact recovery on noise-free measurements, graceful (and
quantified) degradation under instrument noise — the ill-posedness the
paper's introduction cites as the field's core difficulty.
"""

import numpy as np
import pytest

from repro.anomaly.detect import detect_anomalies
from repro.anomaly.metrics import field_relative_error, score_mask
from repro.core.solver import solve_nested
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.synthetic import anomaly_mask, paper_like_spec
from repro.mea.wetlab import quick_device_data


@pytest.mark.benchmark(group="recovery-solve")
@pytest.mark.parametrize("n", [10, 20, 30])
def test_solve_cost(benchmark, n):
    r_true, z = quick_device_data(n, seed=107)
    result = benchmark(solve_nested, z)
    assert result.max_relative_error(r_true) < 1e-7


@pytest.mark.benchmark(group="recovery-table")
def test_recovery_table(benchmark, emit):
    noise_levels = (0.0, 0.001, 0.005, 0.02)

    def build():
        rows = []
        for n in (8, 12, 16):
            for noise in noise_levels:
                r_true, z = quick_device_data(n, seed=108, noise_rel=noise)
                result = solve_nested(z, tol=1e-9)
                stats = field_relative_error(result.r_estimate, r_true)
                rows.append(
                    (n, noise, stats["median"], stats["max"],
                     result.elapsed_seconds)
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ResultTable(
        "E9 — R-recovery error vs instrument noise (nested solver)",
        ["n", "noise", "median rel err", "max rel err", "solve time"],
    )
    for n, noise, med, mx, t in rows:
        table.add_row(n, noise, med, mx, human_seconds(t))
    emit(table, "recovery")
    for n, noise, med, mx, _ in rows:
        if noise == 0.0:
            assert mx < 1e-7  # exact on clean data
        else:
            assert med < 40 * noise + 0.02  # bounded amplification


@pytest.mark.benchmark(group="recovery-detection")
def test_detection_quality(benchmark, emit):
    def build():
        rows = []
        for seed in (201, 202, 203):
            spec = paper_like_spec(12, num_anomalies=1, seed=seed)
            from repro.mea.synthetic import generate_field
            from repro.mea.wetlab import WetLabConfig, simulate_measurement
            from repro.utils.rng import derive_seed

            r_true = generate_field(spec, seed=derive_seed(seed, "field"))
            meas = simulate_measurement(
                r_true, WetLabConfig(noise_rel=0.0)
            )
            est = solve_nested(meas.z_kohm).r_estimate
            det = detect_anomalies(est, threshold_sigmas=3.0)
            score = score_mask(det.mask, anomaly_mask(spec))
            rows.append((seed, score.precision, score.recall, score.iou))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ResultTable(
        "E9 — anomaly detection on recovered fields (noise-free)",
        ["seed", "precision", "recall", "IoU"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "detection_quality")
    precisions = [r[1] for r in rows]
    recalls = [r[2] for r in rows]
    assert min(precisions) > 0.5
    assert np.mean(recalls) > 0.3


@pytest.mark.benchmark(group="recovery-regularized")
def test_regularization_table(benchmark, emit):
    """E9b — Tikhonov regularization vs the ill-posedness (paper §I).

    With instrument noise, the unregularized inverse amplifies error
    ~10x; the smoothness prior claws most of it back.  λ swept over an
    L-curve; the discrepancy-principle pick is marked.
    """
    from repro.core.regularized import l_curve, pick_lambda_by_discrepancy

    noise = 0.01
    n = 10

    def build():
        r_true, z = quick_device_data(n, seed=120, noise_rel=noise)
        plain = solve_nested(z, tol=1e-9)
        lams = [1e-6, 1e-4, 1e-3, 3e-3, 1e-2, 1e-1]
        points = l_curve(z, lams)
        chosen = pick_lambda_by_discrepancy(points, noise, z.size)
        return r_true, plain, points, chosen

    r_true, plain, points, chosen = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    table = ResultTable(
        f"E9b — regularized recovery (n={n}, {noise:.0%} noise)",
        ["lambda", "field err (mean rel)", "data misfit", "picked"],
    )
    table.add_row("0 (plain)", plain.mean_relative_error(r_true), "-", "")
    best_err = None
    for p in points:
        err = p.result.mean_relative_error(r_true)
        best_err = err if best_err is None else min(best_err, err)
        table.add_row(
            f"{p.lam:g}", err, f"{p.data_misfit:.3f}",
            "<- discrepancy" if p.lam == chosen.lam else "",
        )
    emit(table, "recovery_regularized")
    assert best_err < plain.mean_relative_error(r_true)
