"""Solver fast-path benchmark: cached Cholesky + refined direct steps.

Times full nested solves (noise-free data, so convergence behavior is
deterministic) through the fast path — cached Laplacian Cholesky
factorizations, batched multi-RHS drives, blocked Jacobian assembly,
refined direct Gauss–Newton steps — against the retained historical
reference solver (:func:`repro.core.solver.solve_nested_reference`),
and checks numpy/compiled backend parity on the same data.  Writes a
machine-readable JSON report.

The acceptance bar for the fast path is a >= 3x full-solve speedup at
n = 60 and an n = 100 solve inside the 300 s budget.  The reference
solver is only timed at n <= 60 (its O(iterations x n^6) normal
equations make n = 100 a multi-hour run).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_solver.py \
        --sizes 10 20 40 60 100 --out BENCH_solver.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.solver import (  # noqa: E402
    solve_nested,
    solve_nested_reference,
)
from repro.core.solver_backends import backend_status  # noqa: E402
from repro.kirchhoff import forward  # noqa: E402
from repro.observe.observer import Observer  # noqa: E402

#: Largest device side the legacy reference solver is timed at.
REFERENCE_SIZE_CAP = 60

#: Wall-clock budget for one fast-path solve at n = 100 (seconds).
N100_BUDGET_SECONDS = 300.0


def _device(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    r_true = np.exp(rng.normal(np.log(8.0), 0.35, (n, n)))
    return r_true, forward.measure(r_true)


def _timed_solve(z: np.ndarray, backend: str) -> tuple[float, object, dict]:
    obs = Observer()
    start = time.perf_counter()
    result = solve_nested(z, backend=backend, observer=obs)
    elapsed = time.perf_counter() - start
    hist = obs.metrics.snapshot().get("solver.iteration.seconds", {})
    return elapsed, result, hist


def _max_rel(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b) / np.abs(b)))


def bench_size(n: int, with_reference: bool) -> dict:
    r_true, z = _device(n)

    # Cold: every Laplacian factorization is built from scratch.
    forward.clear_laplacian_cache()
    cold_s, cold, cold_hist = _timed_solve(z, backend="numpy")
    cold_stats = forward.laplacian_cache_stats()
    # Warm: the iterate sequence is identical, so every factor hits.
    warm_s, warm, warm_hist = _timed_solve(z, backend="numpy")
    warm_stats = forward.laplacian_cache_stats()
    if not np.array_equal(cold.r_estimate, warm.r_estimate):
        raise RuntimeError(f"warm-cache solve diverged at n={n}")

    # Backend parity on the warm cache.  Without numba the compiled
    # request falls back to numpy (bit-identical by construction);
    # with numba the parity bar is the suite's 1e-12.
    comp_s, comp, _ = _timed_solve(z, backend="compiled")
    parity = _max_rel(comp.r_estimate, warm.r_estimate)
    if comp.iterations != warm.iterations or parity > 1e-12:
        raise RuntimeError(
            f"backend parity violated at n={n}: "
            f"{comp.iterations} vs {warm.iterations} iterations, "
            f"max rel {parity:.3e}"
        )

    row = {
        "n": n,
        "unknowns": n * n,
        "fast_cold_seconds": cold_s,
        "fast_warm_seconds": warm_s,
        "compiled_seconds": comp_s,
        "compiled_backend_used": comp.backend,
        "backend_parity_max_rel": parity,
        "iterations": cold.iterations,
        "iteration_seconds_mean": (
            cold_hist.get("sum", 0.0) / cold_hist["count"]
            if cold_hist.get("count") else None
        ),
        "converged": bool(cold.converged),
        "max_rel_error": _max_rel(cold.r_estimate, r_true),
        "factor_cache_cold": {
            "hits": cold_stats.hits,
            "misses": cold_stats.misses,
            "pinv_materializations": cold_stats.pinv_materializations,
        },
        "factor_cache_warm_extra_misses": warm_stats.misses - cold_stats.misses,
    }

    if with_reference:
        ref_start = time.perf_counter()
        ref = solve_nested_reference(z)
        ref_s = time.perf_counter() - ref_start
        row["reference_seconds"] = ref_s
        row["reference_iterations"] = ref.iterations
        row["speedup_vs_reference"] = ref_s / cold_s
        row["reference_max_rel_error"] = _max_rel(ref.r_estimate, r_true)
    else:
        row["reference_seconds"] = None
        row["speedup_vs_reference"] = None
        row["n100_budget_seconds"] = N100_BUDGET_SECONDS
        row["within_budget"] = cold_s <= N100_BUDGET_SECONDS

    return row


def run_benchmark(sizes: list[int]) -> dict:
    rows = []
    for n in sizes:
        row = bench_size(n, with_reference=n <= REFERENCE_SIZE_CAP)
        rows.append(row)
        speedup = row["speedup_vs_reference"]
        print(
            f"n={n:3d}: fast cold {row['fast_cold_seconds']:8.3f} s "
            f"({row['iterations']} iters), warm "
            f"{row['fast_warm_seconds']:8.3f} s, "
            + (
                f"reference {row['reference_seconds']:8.3f} s, "
                f"speedup {speedup:.2f}x"
                if speedup is not None
                else f"budget {N100_BUDGET_SECONDS:.0f} s "
                f"({'ok' if row['within_budget'] else 'OVER'})"
            )
        )
    return {
        "benchmark": "solver_fastpath",
        "description": (
            "nested variable-projection solve, fast path (cached "
            "Cholesky factors, batched drives, blocked Jacobian, "
            "refined direct steps) vs retained reference solver; "
            "numpy vs compiled backend parity checked per size"
        ),
        "seed": 7,
        "target_speedup_at_n60": 3.0,
        "n100_budget_seconds": N100_BUDGET_SECONDS,
        "reference_size_cap": REFERENCE_SIZE_CAP,
        "backend_status": backend_status(),
        "sizes": rows,
    }


def write_manifests(
    report: dict, directory: Path, catalog_db: Path | None = None
) -> None:
    """One bench-tagged run manifest per size, for the run catalog.

    Each size becomes a ``bench-solver-n<N>/manifest.json`` whose
    ``solve`` phase carries the measured cold time and whose
    ``extra.bench = "solver"`` tag is what ``parma runs regress``
    matches against ``BENCH_solver.json``.
    """
    directory.mkdir(parents=True, exist_ok=True)
    for row in report["sizes"]:
        obs = Observer(trace_dir=directory / f"bench-solver-n{row['n']}")
        # Span timestamps are perf_counter coordinates; anchor the
        # synthesized span so the manifest wall equals the bench time.
        obs.add_span(
            "solve",
            ts=time.perf_counter() - row["fast_cold_seconds"],
            dur=row["fast_cold_seconds"],
            n=row["n"],
        )
        obs.gauge("bench.iterations", row["iterations"])
        obs.finalize(
            config={
                "command": "bench-solver",
                "n": row["n"],
                "solver": "nested",
                "backend": "numpy",
                "status": "ok" if row["converged"] else "unconverged",
            },
            extra={"bench": "solver"},
        )
    print(f"wrote {len(report['sizes'])} bench manifest(s) under {directory}")
    if catalog_db is not None:
        from repro.observe.catalog import Catalog

        with Catalog(catalog_db) as catalog:
            ingested = catalog.ingest([directory])
            print(f"catalog: {ingested.summary()} -> {catalog_db}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20, 40, 60, 100],
        help="device sides to benchmark",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (default: print only)",
    )
    parser.add_argument(
        "--manifests", type=Path, default=None, metavar="DIR",
        help="also write one bench-tagged run manifest per size under "
        "DIR (ingestable by `parma runs ingest`)",
    )
    parser.add_argument(
        "--catalog", type=Path, default=None, metavar="DB",
        help="ingest the --manifests output into this run catalog",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="exit nonzero unless the largest reference-timed size "
        "reaches an X-fold speedup (small sizes are sub-millisecond "
        "and timing noise dominates them)",
    )
    args = parser.parse_args(argv)
    if args.catalog is not None and args.manifests is None:
        parser.error("--catalog requires --manifests DIR")
    report = run_benchmark(args.sizes)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.manifests is not None:
        write_manifests(report, args.manifests, catalog_db=args.catalog)
    failures = []
    for row in report["sizes"]:
        if row.get("within_budget") is False:
            failures.append(
                f"n={row['n']} took {row['fast_cold_seconds']:.1f} s, "
                f"over the {N100_BUDGET_SECONDS:.0f} s budget"
            )
    if args.require_speedup is not None:
        timed = [r for r in report["sizes"] if r["speedup_vs_reference"]]
        gate = max(timed, key=lambda r: r["n"])
        speedup = gate["speedup_vs_reference"]
        if speedup < args.require_speedup:
            failures.append(
                f"speedup {speedup:.2f}x at n={gate['n']} is below "
                f"the {args.require_speedup:.1f}x bar"
            )
        else:
            print(
                f"speedup bar met: {speedup:.2f}x at n={gate['n']} "
                f">= {args.require_speedup:.1f}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
