#!/usr/bin/env python
"""Wound-surface monitoring: the paper's §II-C biomedical scenario.

An MEA sits on a patient's wound (or a cell medium) for a day; the
instrument reads all pairwise resistances at 0, 6, 12 and 24 hours.
A proliferating anomaly raises local resistance over time.  This
example runs the full monitoring pipeline:

* each timepoint is parametrized by Parma;
* the per-timepoint fields show the anomaly growing;
* the drift detector localizes the *growing* region — robust even when
  the absolute field is heterogeneous.

Usage::

    python examples/wound_monitoring.py [n] [seed]
"""

import sys

import numpy as np

from repro import ParmaEngine, run_pipeline
from repro.anomaly.metrics import localization_errors, score_mask
from repro.mea.synthetic import anomaly_mask, paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign


def sparkline(values, width=32):
    """Tiny text heat summary of a field row."""
    glyphs = " .:-=+*#%@"
    lo, hi = float(np.min(values)), float(np.max(values))
    span = hi - lo or 1.0
    idx = ((np.asarray(values) - lo) / span * (len(glyphs) - 1)).astype(int)
    return "".join(glyphs[i] for i in idx[:width])


def main(n: int = 10, seed: int = 11) -> None:
    print(f"== 24-hour wound monitoring, {n}x{n} device ==\n")
    spec = paper_like_spec(n, num_anomalies=1, seed=seed)
    config = WetLabConfig(noise_rel=0.002, growth_per_hour=0.03)
    run = run_campaign(spec, config, seed=seed)

    engine = ParmaEngine(strategy="balanced", num_workers=4)
    out = run_pipeline(run.campaign, engine=engine, growth_threshold=0.15)

    blob = spec.blobs[0]
    row = int(round(blob.center[0]))
    print(f"anomaly row {row} of the recovered field over the day:")
    for res in out.results:
        field = res.resistance
        peak = field.max()
        print(f"  t={res.measurement.hour:>4.0f} h  "
              f"|{sparkline(field[row])}|  peak {peak:7.0f} kΩ  "
              f"({res.detection.num_regions} region(s) flagged)")

    print("\ndrift analysis (0 h -> 24 h):")
    drift = out.drift_detection
    assert drift is not None
    print(f"  {drift.num_regions} growing region(s) above "
          f"{drift.threshold:.0%} relative growth")
    truth = anomaly_mask(spec)
    score = score_mask(drift.mask, truth)
    print(f"  vs ground truth: precision {score.precision:.2f}, "
          f"recall {score.recall:.2f}")
    if drift.regions:
        errs = localization_errors(
            [r.centroid for r in drift.regions], [blob.center]
        )
        print(f"  localization error: {errs[0]:.2f} sites")

    # Clinical readout: how fast is the lesion growing?
    series = out.resistance_series()
    peaks = series.reshape(len(series), -1).max(axis=1)
    growth = (peaks[-1] / peaks[0]) ** (1 / 24.0) - 1.0
    print(f"\npeak-resistance growth rate: {growth:.1%} per hour "
          f"(simulated {config.growth_per_hour:.1%})")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
