#!/usr/bin/env python
"""A guided tour of the paper's topological machinery on Figure 1.

Walks through §II/§III with the actual 3x3 device:

* the physical structure (wires A-C and I-III, joints 0..17);
* the nine paths from wire C to wire I the paper lists;
* the device as an abstract simplicial complex (Proposition 1);
* chain groups, the boundary operator, and the §III-B example cycle;
* homology: β1 = 4 holes = Maxwell's cyclomatic number = the
  number of independent Kirchhoff L2 equations.

Usage::

    python examples/topology_tour.py
"""

from repro.kirchhoff.laws import Circuit, ResistorEdge
from repro.kirchhoff.paths import enumerate_paths
from repro.mea.device import MEAGrid
from repro.mea.graph import device_complex, joint_graph, wire_graph
from repro.topology.boundary import boundary_chain
from repro.topology.chains import Chain
from repro.topology.cycles import cyclomatic_number, fundamental_cycles
from repro.topology.homology import HomologyCalculator
from repro.topology.simplex import Simplex


def main() -> None:
    grid = MEAGrid(3)
    print("== 1. The physical device (paper Fig. 1) ==")
    print(f"horizontal wires: {grid.horizontal_wires()}")
    print(f"vertical wires:   {grid.vertical_wires()}")
    print(f"{grid.num_resistors} resistors, {grid.num_joints} joints:")
    for res in grid.resistors():
        print(f"  {res.name}: joints ({res.h_joint}, {res.v_joint})")

    print("\n== 2. The nine C -> I paths (paper §IV-A) ==")
    paths = enumerate_paths(grid, 2, 0)  # C is row 2, I is column 0
    for k, p in enumerate(paths, 1):
        hops = " -> ".join(f"R_{r + 1}{c + 1}" for r, c in p.resistors)
        print(f"  ({k}) C -> {hops} -> I")
    print(f"total: {len(paths)} = n^(n-1) = {3 ** 2}")

    print("\n== 3. Proposition 1: the device is a 1-dim complex ==")
    complex_ = device_complex(grid)
    print(f"{complex_!r}")
    complex_.verify_simplicial()
    print("simplicial property: verified")

    print("\n== 4. Chain groups and the boundary operator (§III-B) ==")
    # The paper's example cycle through R11, R12, R22, R21:
    loop_edges = [(0, 1), (1, 3), (3, 2), (2, 8), (8, 9), (9, 7), (7, 6),
                  (6, 0)]
    cycle = Chain(Simplex(e) for e in loop_edges)
    print(f"example loop 0-1-3-2-8-9-7-6-0: {len(cycle)} edges")
    print(f"boundary of the loop: {boundary_chain(cycle)!r} "
          "(empty = it is a cycle)")
    # And the mod-2 star operation:
    s1 = Chain([Simplex(["a", "b"])])
    s2 = Chain([Simplex(["b", "c"])])
    print(f"{{a,b}} * {{b,c}} keeps both edges: {sorted(s1 + s2)}")

    print("\n== 5. Homology: the parallelism budget ==")
    calc = HomologyCalculator(complex_)
    betti = calc.betti_numbers()
    print(f"Betti numbers: beta_0 = {betti[0]}, beta_1 = {betti[1]}")
    g = joint_graph(grid, include_terminals=False)
    maxwell = cyclomatic_number(list(g.nodes), list(g.edges))
    print(f"Maxwell cyclomatic number |E| - |V| + 1 = {maxwell}")
    basis = fundamental_cycles(list(g.nodes), list(g.edges))
    print(f"fundamental cycle basis: {len(basis)} independent holes")

    print("\n== 6. ... and Kirchhoff agrees ==")
    wg = wire_graph(grid)
    circuit = Circuit(
        [ResistorEdge(u, v, 1000.0) for u, v in wg.edges]
    )
    print(f"collapsed electrical graph: |V| = {circuit.num_nodes}, "
          f"|E| = {circuit.num_edges}")
    print(f"independent L1 equations: {circuit.num_independent_l1()}")
    print(f"independent L2 equations: {circuit.num_independent_l2()} "
          "(= the holes of the wire graph)")
    print(f"L1 + L2 = {circuit.num_independent_l1() + circuit.num_independent_l2()} "
          f"= |E| unknown currents — Kirchhoff's 1847 theorem")

    assert betti == (1, 4)
    assert maxwell == 4 == len(basis)


if __name__ == "__main__":
    main()
