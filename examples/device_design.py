#!/usr/bin/env python
"""Device design study: how big an MEA can you afford to read?

A lab choosing a device size trades spatial resolution against the
inverse problem's conditioning: bigger crossbars give more pixels but
every measurement averages over more parallel paths, so recovering
each pixel gets harder.  This study quantifies the trade-off with the
library's diagnostics:

* κ(J) and worst-case noise amplification per size (spectral);
* empirical RMS amplification (Monte-Carlo re-solves);
* the recovered-field error you'd actually see at the paper's
  instrument quality, with and without Tikhonov regularization;
* where the hardest-to-recover field pattern lives (always the
  high-frequency checkerboard — the regularizer's justification).

Usage::

    python examples/device_design.py
"""

import numpy as np

from repro.core.conditioning import (
    analyze_conditioning,
    empirical_noise_amplification,
)
from repro.core.regularized import solve_regularized
from repro.core.solver import solve_nested
from repro.instrument.heatmap import render_field
from repro.instrument.report import ResultTable
from repro.mea.wetlab import quick_device_data

NOISE = 0.02  # a poor instrument: where regularization starts to pay


def main() -> None:
    table = ResultTable(
        f"device-size trade-off at {NOISE:.1%} instrument noise",
        ["n", "kappa(J)", "worst amp", "RMS amp", "plain err",
         "regularized err"],
    )
    worst_pattern = None
    for n in (4, 6, 8, 10, 12):
        uniform = np.full((n, n), 3000.0)
        rep = analyze_conditioning(uniform)
        rms_amp = empirical_noise_amplification(uniform, trials=4)
        r_true, z = quick_device_data(n, seed=77, noise_rel=NOISE)
        plain = solve_nested(z, tol=1e-9).mean_relative_error(r_true)
        # Pick lambda by the discrepancy principle (no ground truth).
        from repro.core.regularized import l_curve, pick_lambda_by_discrepancy

        points = l_curve(z, [1e-5, 1e-4, 1e-3, 1e-2])
        chosen = pick_lambda_by_discrepancy(points, NOISE, z.size)
        reg = chosen.result.mean_relative_error(r_true)
        table.add_row(
            n,
            f"{rep.condition_number:.1f}",
            f"{rep.noise_amplification:.1f}x",
            f"{rms_amp:.1f}x",
            f"{plain:.1%}",
            f"{reg:.1%}",
        )
        if n == 10:
            worst_pattern = rep.worst_direction
    table.print()

    print(
        "\nreading the table: κ and the amplification factors grow with n\n"
        "— the ill-posedness the paper cites [13, 14].  Regularization\n"
        "pays where amplified noise exceeds the anomaly contrast (larger\n"
        "n / noisier instruments); at small n plain inversion still wins\n"
        "because the prior blurs the anomaly more than the noise hurts.\n"
    )
    if worst_pattern is not None:
        print("hardest-to-recover field pattern at n = 10 (log-R units):")
        print(render_field(worst_pattern))
        print(
            "\nnote the sign-alternating, spatially rough structure (high\n"
            "lattice-Laplacian energy): exactly the component the\n"
            "regularizer damps."
        )


if __name__ == "__main__":
    main()
