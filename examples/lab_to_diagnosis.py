#!/usr/bin/env python
"""The full lab workflow: Excel workbook → Parma → tracked diagnosis.

Mirrors the paper's §V-B data pipeline end to end:

1. the (simulated) wet lab saves a day of readings as an Excel-style
   workbook — one CSV sheet per timepoint plus a metadata sheet;
2. the workbook is converted to the Parma measurement text format
   ("The data are originally saved as Excel files and converted into
   text files before being fed to the Parma system prototype");
3. every timepoint is parametrized (warm-started);
4. detected regions are linked into longitudinal *tracks* and each
   lesion gets a growth rate, drift velocity, and persistence verdict;
5. the device's measurement *sensitivity* is mapped to show where the
   diagnosis is well-supported.

Usage::

    python examples/lab_to_diagnosis.py [n] [seed]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import ParmaEngine, run_pipeline
from repro.anomaly.tracking import track_regions
from repro.instrument.heatmap import render_field
from repro.io.textformat import load_campaign
from repro.io.workbook import convert_workbook, export_workbook
from repro.kirchhoff.sensitivity import aggregate_sensitivity
from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign


def main(n: int = 10, seed: int = 23) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="parma-lab-"))
    print(f"== Lab-to-diagnosis on a {n}x{n} device (workdir {workdir}) ==\n")

    # 1. The lab's day: simulated campaign, exported as a workbook.
    spec = paper_like_spec(n, num_anomalies=2, seed=seed)
    config = WetLabConfig(noise_rel=0.002, growth_per_hour=0.03)
    run = run_campaign(spec, config, seed=seed)
    workbook = export_workbook(run.campaign, workdir / "device-A7")
    sheets = sorted(p.name for p in workbook.iterdir())
    print(f"1. lab export: {workbook.name} with {sheets}")

    # 2. The paper's conversion step.
    text_path = workdir / "device-A7.txt"
    convert_workbook(workbook, text_path)
    campaign = load_campaign(text_path)
    print(f"2. converted to {text_path.name}: "
          f"{len(campaign)} timepoints at hours {campaign.hours}")

    # 3. Parametrize the whole day.
    engine = ParmaEngine(strategy="pymp", num_workers=4,
                         threshold_sigmas=3.0)
    out = run_pipeline(campaign, engine=engine, warm_start=True)
    print("3. parametrized all timepoints "
          f"({out.total_formation_terms()} terms formed)")

    # 4. Track lesions across the day.
    detections = [r.detection for r in out.results]
    tracking = track_regions(detections, list(out.hours), max_jump=2.5)
    print(f"\n4. lesion tracks ({tracking.num_tracks} total):")
    for track in tracking.tracks:
        peaks = track.peaks()
        status = (
            "persistent" if track.observations == len(out.hours)
            else f"seen {track.observations}/{len(out.hours)} timepoints"
        )
        print(
            f"   track {track.track_id}: {status}; "
            f"first at t={track.first_seen:g} h near "
            f"({track.regions[0].centroid[0]:.1f}, "
            f"{track.regions[0].centroid[1]:.1f}); "
            f"peak {peaks[0]:.0f} -> {peaks[-1]:.0f} kΩ; "
            f"growth {track.growth_rate_per_hour():+.1%}/h; "
            f"drift {track.drift_velocity():.2f} sites/h"
        )
    fastest = tracking.fastest_growing()
    if fastest is not None:
        print(f"   fastest-growing lesion: track {fastest.track_id}")

    # 5. Where is the diagnosis well-supported?
    final = out.results[-1]
    print("\n5. final recovered field with detections (X):")
    print(render_field(final.resistance, mask=final.detection.mask))
    coverage = aggregate_sensitivity(final.resistance)
    print("\n   measurement coverage (device blind spots read dim):")
    print(render_field(coverage, legend=True))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
