#!/usr/bin/env python
"""Non-orthogonal MEAs and the manifold machinery (paper §IV-B).

Real devices need not be perfect grids — a flexible MEA wrapped on a
wound surface is sheared and stretched.  §IV-B argues the calculus
still works locally through the Jacobian of the chart map.  This
example:

* builds a sheared + radially-stretched chart for a device;
* checks frame invertibility (and shows how a fold is detected);
* pulls a physical voltage gradient back to lattice coordinates and
  verifies the chain rule;
* validates the discrete Stokes identity on the voltage field of a
  live drive — circulation around every patch equals the enclosed
  curl (zero: Kirchhoff L2);
* shows how repeated noisy measurements recover smoothness.

Usage::

    python examples/warped_device.py [n]
"""

import sys

import numpy as np

from repro.manifold.frames import (
    ChartMap,
    degenerate_cells,
    jacobian_determinants,
    orthogonality_defect,
)
from repro.manifold.smooth import RepeatedMeasurement, smoothness_index
from repro.manifold.stokes import stokes_gap, verify_stokes
from repro.manifold.vectorfield import grad, voltage_field_from_drive
from repro.mea.wetlab import quick_device_data
from repro.utils.rng import default_rng


def warped_chart(n: int) -> ChartMap:
    """Shear + gentle radial stretch, as a flexed device would sit."""

    def fn(r, c):
        cx = (n - 1) / 2.0
        rad = 1.0 + 0.08 * np.hypot(r - cx, c - cx) / max(n - 1, 1)
        return (r + 0.25 * c) * rad, c * rad

    return ChartMap.from_function(n, fn)


def main(n: int = 10) -> None:
    print(f"== Warped {n}x{n} device ==\n")
    chart = warped_chart(n)
    dets = jacobian_determinants(chart)
    defect = orthogonality_defect(chart)
    print("1. local frames")
    print(f"   cell areas (det J): {dets.min():.3f} .. {dets.max():.3f}")
    print(f"   orthogonality defect |cos angle|: mean {defect.mean():.3f}")
    print(f"   degenerate cells: {int(degenerate_cells(chart).sum())}")

    # A folded device IS detected:
    folded = ChartMap.from_function(
        n, lambda r, c: (np.minimum(r, n - 2 - r * 0), c)
    )
    bad = int((jacobian_determinants(folded) <= 0).sum())
    print(f"   (a folded chart shows {bad} non-positive-area cells)")

    print("\n2. Stokes' theorem on a live drive (Kirchhoff L2)")
    r_field, _ = quick_device_data(n, seed=5)
    field = voltage_field_from_drive(r_field, n // 2, n // 3)
    gx, gy = grad(field)
    worst = 0.0
    for top in range(0, n - 2, 2):
        for left in range(0, n - 2, 2):
            worst = max(worst, stokes_gap(gx, gy, top, left, 2, 2))
            assert verify_stokes(gx, gy, top, left, 2, 2, rtol=1e-6) or True
    print(f"   max |circulation - patch sum| over all 2x2 patches: "
          f"{worst:.2e}")
    assert worst < 1e-9

    print("\n3. repeated measurements restore smoothness")
    rng = default_rng(9)
    noisy = np.stack(
        [field + 0.05 * rng.standard_normal(field.shape) for _ in range(32)]
    )
    rm = RepeatedMeasurement(replicas=noisy)
    print(f"   single-shot smoothness index: "
          f"{smoothness_index(noisy[0]):.3f}")
    print(f"   32-replica mean smoothness index: "
          f"{smoothness_index(rm.mean_field()):.3f}")
    print(f"   gain: {rm.smoothness_gain():.1f}x  "
          f"(noise scale {rm.noise_scale():.4f})")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
