#!/usr/bin/env python
"""Serving quickstart: a persistent solve service and three clients.

Runs in a few seconds, entirely in-process (no daemon left behind):

1. start a :class:`repro.serve.SolveService` on a temporary unix
   socket — the same server that ``parma serve`` runs;
2. simulate two devices (different grid sizes) with the wet-lab
   generator;
3. submit three solve requests concurrently from client threads —
   two at one grid size (they share the warm per-``n`` template
   cache; with a linger window they may ride the same batch) and one
   at another;
4. print each request's status, batch/caching telemetry, and the run
   manifest path written under the service's results directory.

Usage::

    python examples/serve_client.py [n_small] [n_large] [seed]

The same flow over the CLI, against a long-lived daemon::

    parma serve --socket /tmp/parma.sock --results /tmp/parma-results &
    parma submit day.json --socket /tmp/parma.sock --hour 6

See ``docs/SERVING.md`` for the wire protocol and semantics.
"""

import sys
import tempfile
import threading
from pathlib import Path

from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import run_campaign
from repro.observe import Observer
from repro.serve import ServiceConfig, SolveClient, SolveService


def main(n_small: int = 10, n_large: int = 14, seed: int = 7) -> None:
    print(f"== Parma serving quickstart: n={n_small} and n={n_large} ==\n")

    # Two simulated devices; three measurements to serve.
    small = run_campaign(paper_like_spec(n_small, seed=seed), seed=seed)
    large = run_campaign(paper_like_spec(n_large, seed=seed), seed=seed + 1)
    jobs = [
        ("small-h0", small.campaign.measurements[0]),
        ("small-h6", small.campaign.measurements[1]),
        ("large-h0", large.campaign.measurements[0]),
    ]

    with tempfile.TemporaryDirectory(prefix="parma-serve-") as tmp:
        config = ServiceConfig(
            socket_path=Path(tmp) / "parma.sock",
            results_dir=Path(tmp) / "results",
            linger=0.05,  # hold the batch open so the second n_small
                          # request can join the first one's formation pass
            observer=Observer(),  # service-level serve.* metrics for `stats`
        )
        service = SolveService(config)
        service.start()
        try:
            client = SolveClient(config.socket_path)
            client.wait_ready()
            print(f"service up on {config.socket_path}\n")

            # Submit all three concurrently, as independent clients would.
            responses: dict[str, object] = {}

            def submit(name: str, measurement) -> None:
                responses[name] = client.solve(
                    measurement.z_kohm,
                    voltage=measurement.voltage,
                    hour=measurement.hour,
                    id=name,
                )

            threads = [
                threading.Thread(target=submit, args=job) for job in jobs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            for name, _ in jobs:
                r = responses[name]
                caches = "warm" if r.cache_warm else "cold"
                print(f"[{name}] {r.status} in {r.elapsed_seconds:.3f}s "
                      f"(batch of {r.batch_size}, {caches} caches)")
                print(f"  {r.summary}")
                print(f"  manifest: {r.manifest_path}")

            stats = client.stats()
            print(f"\nservice totals: {stats['requests']:g} requests, "
                  f"{stats['metrics']['serve.batches']['value']:g} batches")
        finally:
            service.stop()
        print("service drained and stopped.")


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:4]))
