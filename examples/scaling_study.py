#!/usr/bin/env python
"""Scaling study: run every parallelization strategy, then project.

Part 1 executes the four strategies for real (forked workers) on this
machine and verifies they produce identical equation systems.

Part 2 calibrates the per-term formation cost and replays it on the
simulated Z820 (32-core SMP) and FDR-InfiniBand cluster models, up to
1,024 ranks — the projection behind the paper's Figures 6/7/10.  See
DESIGN.md §2 for why large-scale numbers are simulated.

Usage::

    python examples/scaling_study.py [n]
"""

import sys

import numpy as np

from repro.core.partition import partition_betti
from repro.core.strategies import (
    BalancedParallel,
    ParallelStrategy,
    PyMPStrategy,
    SingleThread,
    calibrate_sec_per_term,
    item_costs_seconds,
)
from repro.instrument.report import ResultTable, human_seconds
from repro.mea.wetlab import quick_device_data
from repro.parallel.simcluster import (
    HPC_FDR,
    crossover_rank,
    scaling_sweep,
    speedup_curve,
)


def main(n: int = 16) -> None:
    _, z = quick_device_data(n, seed=3)

    print(f"== Part 1: real execution on this machine (n = {n}) ==")
    table = ResultTable(
        "strategy execution (forked workers)",
        ["strategy", "workers", "terms", "wall time", "per-worker terms"],
    )
    reference = None
    for strategy in (
        SingleThread(),
        ParallelStrategy(),
        BalancedParallel(4),
        PyMPStrategy(4),
    ):
        report = strategy.run(z)
        if reference is None:
            reference = report
        assert report.terms_formed == reference.terms_formed
        assert np.isclose(report.checksum, reference.checksum)
        table.add_row(
            report.strategy,
            report.num_workers,
            report.terms_formed,
            human_seconds(report.elapsed_seconds),
            str(report.per_worker_terms.tolist()),
        )
    table.print()
    print("all strategies formed identical systems (checksums match)\n")

    print("== Part 2: simulated cluster projection ==")
    spt = calibrate_sec_per_term(n)
    print(f"calibrated formation cost: {spt:.2e} s/term\n")
    ranks = (1, 4, 16, 64, 256, 1024)
    proj = ResultTable(
        "strong scaling on the simulated FDR cluster",
        ["n"] + [f"p={p}" for p in ranks] + ["best p"],
    )
    for n_sim in (10, 20, 50, 100):
        part = partition_betti(n_sim, 1)
        costs = item_costs_seconds(part, spt * 25)  # prototype scale
        points = scaling_sweep(costs, ranks, HPC_FDR)
        best = crossover_rank(costs, HPC_FDR)
        proj.add_row(
            n_sim,
            *[human_seconds(pt.total) for pt in points],
            best,
        )
    proj.print()
    print(
        "\nshape check (paper §V-F): small devices stop scaling early;"
        "\n50x50 and larger keep gaining through 1,024 ranks."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
