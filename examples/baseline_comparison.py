#!/usr/bin/env python
"""Parma vs the path-enumeration baseline ([15], paper §II-C).

Head-to-head on the same measurements:

* the **baseline** enumerates every conduction path and solves the
  parallel-paths system ``Z^{-1} = Σ P_k^{-1}(R)`` — exponential cost,
  and (above n = 2) approximate *physics*, because paths share
  resistors;
* **Parma** forms the polynomial joint-constraint system and inverts
  the exact network model.

The table shows both effects at once: the baseline's cost explodes
while its accuracy degrades; Parma stays cheap and exact.  Ground
truth is known (simulated lab), so errors are real errors.

Usage::

    python examples/baseline_comparison.py
"""

import numpy as np

from repro.core.solver import solve_nested
from repro.instrument.heatmap import render_comparison
from repro.instrument.report import ResultTable, human_seconds
from repro.kirchhoff.forward import measure
from repro.kirchhoff.paths import count_paths_exact
from repro.kirchhoff.pathsystem import build_path_system, solve_path_system
from repro.mea.device import MEAGrid
from repro.utils.rng import default_rng
from repro.utils.timing import Timer


def main() -> None:
    rng = default_rng(17)
    table = ResultTable(
        "baseline (path enumeration) vs Parma (joint constraints)",
        ["n", "paths/pair", "baseline err", "baseline time",
         "parma err", "parma time"],
    )
    last = None
    # Iteration caps keep the diverging large-n baseline runs bounded;
    # past n = 3 the path model cannot fit exact physics at all and
    # the optimizer chases an unattainable fit to absurd R values.
    for n, max_nfev in ((2, 2000), (3, 500), (4, 30)):
        r_true = rng.uniform(2000.0, 9000.0, size=(n, n))
        z = measure(r_true)

        with Timer() as t_base:
            system = build_path_system(MEAGrid(n))
            r_base = solve_path_system(system, z, max_nfev=max_nfev)
        base_err = float(np.max(np.abs(r_base - r_true) / r_true))

        with Timer() as t_parma:
            result = solve_nested(z)
        parma_err = result.max_relative_error(r_true)

        table.add_row(
            n,
            count_paths_exact(n, n),
            f"{base_err:.2e}",
            human_seconds(t_base.elapsed),
            f"{parma_err:.2e}",
            human_seconds(t_parma.elapsed),
        )
        if n == 3:
            last = (n, r_true, r_base, result.r_estimate)

    table.print()
    print(
        "\nn = 2 is the only size where the path model is exact physics\n"
        "(no two paths share a resistor); beyond it the baseline's\n"
        "error is structural, not numerical.  At n = 6 enumeration\n"
        "already needs ~180 MB; at n = 7, ~10 GB (see\n"
        "benchmarks/results/paths_explosion.txt).\n"
    )

    n, r_true, r_base, r_parma = last
    print(f"recovered fields at n = {n} (baseline left, Parma right):")
    print(render_comparison(r_base, r_parma, labels=("baseline", "parma")))
    print("\nground truth vs Parma:")
    print(render_comparison(r_true, r_parma, labels=("truth", "parma")))


if __name__ == "__main__":
    main()
