#!/usr/bin/env python
"""Quickstart: parametrize a simulated MEA and find the anomaly.

Runs in a few seconds:

1. build a synthetic 12x12 device sitting on a medium with one
   anomalous region (ground truth known);
2. simulate the instrument reading (pairwise resistances Z at 5 V);
3. run Parma: form the joint-constraint system with the Betti-aware
   PyMP strategy, recover the internal resistance field, detect the
   anomaly;
4. compare against ground truth.

Usage::

    python examples/quickstart.py [n] [seed]
"""

import sys

import numpy as np

from repro import ParmaEngine
from repro.anomaly.metrics import field_relative_error, score_mask
from repro.mea.synthetic import anomaly_mask, paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign


def main(n: int = 12, seed: int = 7) -> None:
    print(f"== Parma quickstart: {n}x{n} device, seed {seed} ==\n")

    # 1-2. Simulated wet lab: ground-truth field + instrument readings.
    spec = paper_like_spec(n, num_anomalies=1, seed=seed)
    run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=seed)
    measurement = run.campaign.measurements[0]
    truth = run.ground_truth[0]
    print(f"measured Z range: {measurement.z_kohm.min():.1f}"
          f"-{measurement.z_kohm.max():.1f} kΩ at "
          f"{measurement.voltage:g} V")

    # 3. Parma.
    engine = ParmaEngine(strategy="pymp", num_workers=4,
                         threshold_sigmas=3.0)
    result = engine.parametrize(measurement)
    print(result.summary())

    # 4. Score against ground truth.
    err = field_relative_error(result.resistance, truth)
    print(f"\nfield recovery error: median {err['median']:.2e}, "
          f"max {err['max']:.2e}")
    score = score_mask(result.detection.mask, anomaly_mask(spec))
    print(f"anomaly detection: precision {score.precision:.2f}, "
          f"recall {score.recall:.2f}")
    for region in result.detection.regions:
        print(f"  region {region.label}: {region.size} sites, "
              f"centroid {tuple(round(c, 1) for c in region.centroid)}, "
              f"peak {region.peak_resistance:.0f} kΩ")

    true_center = spec.blobs[0].center
    print(f"  (true anomaly center: "
          f"{tuple(round(c, 1) for c in true_center)})")
    assert err["max"] < 1e-5, "noise-free recovery should be exact"


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
