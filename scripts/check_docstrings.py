#!/usr/bin/env python
"""Docstring conventions checker for the serving subsystem.

A small, dependency-free subset of pydocstyle, scoped (by default) to
``src/repro/serve/`` — the package whose public surface is a wire
protocol other tools build against, so its docstrings are part of the
contract.  Rules enforced:

- every module has a docstring;
- every public class, function and method (name not starting with
  ``_``) has a docstring;
- the docstring's first line is a one-line summary ending with a
  period (or a colon introducing a literal block);
- multi-line docstrings have a blank line after the summary.

Usage::

    python scripts/check_docstrings.py [paths...]

Exits non-zero listing every violation; silent rules stay silent.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_SCOPE = REPO_ROOT / "src" / "repro" / "serve"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _summary_ok(doc: str) -> bool:
    first = doc.strip().splitlines()[0].rstrip()
    return first.endswith((".", ":", "!", "?"))


def _blank_after_summary(doc: str) -> bool:
    lines = doc.strip().splitlines()
    return len(lines) == 1 or lines[1].strip() == ""


def _check_docstring(doc: str | None, where: str, kind: str) -> list[str]:
    if doc is None or not doc.strip():
        return [f"{where}: missing docstring on {kind}"]
    problems = []
    if not _summary_ok(doc):
        problems.append(
            f"{where}: {kind} docstring summary should end with a period"
        )
    if not _blank_after_summary(doc):
        problems.append(
            f"{where}: {kind} docstring needs a blank line after the summary"
        )
    return problems


def check_file(path: Path, root: Path) -> list[str]:
    """All docstring violations in one python file."""
    rel = path.relative_to(root)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems = _check_docstring(ast.get_docstring(tree), str(rel), "module")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                name = f"{prefix}{child.name}"
                if _is_public(child.name):
                    problems.extend(
                        _check_docstring(
                            ast.get_docstring(child),
                            f"{rel}:{child.lineno} ({name})",
                            "class",
                        )
                    )
                visit(child, f"{name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                if _is_public(child.name):
                    problems.extend(
                        _check_docstring(
                            ast.get_docstring(child),
                            f"{rel}:{child.lineno} ({name})",
                            "function",
                        )
                    )
                # Nested defs are implementation detail: not checked.

    visit(tree, "")
    return problems


def main(argv: list[str] | None = None) -> int:
    targets = [Path(a) for a in (argv if argv is not None else sys.argv[1:])]
    if not targets:
        targets = [DEFAULT_SCOPE]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        else:
            files.append(target)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path.resolve(), REPO_ROOT))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} docstring problem(s)", file=sys.stderr)
        return 1
    print(f"docstrings: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
