#!/usr/bin/env python
"""Documentation checker: links, anchors, CLI snippets, index coverage.

Three classes of rot this catches, all of which have bitten real
projects silently:

1. **Broken relative links.**  Every ``[text](path)`` /
   ``[text](path#anchor)`` in the checked markdown files must point
   at a file that exists, and — when an anchor is given — at a
   heading that renders to that anchor under GitHub's slug rules.
   External (``http(s):``, ``mailto:``) links are not fetched.

2. **Stale CLI snippets.**  Every line starting with ``parma `` inside
   a fenced code block is parsed against the *real* argument parser
   (``repro.cli.build_parser``) — flags renamed or removed in the CLI
   fail the docs build instead of lingering in the README.  Commands
   are only parsed, never executed.

3. **Orphaned docs pages.**  Every ``docs/*.md`` file must be linked
   from the README (its docs index) — a page nobody can reach from
   the front door rots unnoticed.

Usage::

    python scripts/check_docs.py [--root DIR]

Exits non-zero listing every problem; prints a summary when clean.
"""

from __future__ import annotations

import argparse
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Files whose links and snippets are checked (relative to the root).
DEFAULT_FILES = ("README.md", "docs")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE_RE = re.compile(r"^(\s*)(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "chrome://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line.

    Lowercase; markdown emphasis/code markers dropped; anything that
    is not alphanumeric, space, hyphen or underscore removed; spaces
    become hyphens (consecutive spaces become consecutive hyphens,
    matching GitHub's behaviour for ``A & B`` headings).
    """
    text = heading.strip().lower()
    text = text.replace("`", "").replace("*", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path, targets=DEFAULT_FILES) -> list[Path]:
    """Resolve the default file set under ``root`` (files or dirs)."""
    out: list[Path] = []
    for name in targets:
        path = root / name
        if path.is_dir():
            out.extend(sorted(path.rglob("*.md")))
        elif path.is_file():
            out.append(path)
    return out


def _display(path: Path, root: Path) -> str:
    """Path shown in problem reports: root-relative when possible."""
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def heading_anchors(path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes (fences excluded)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(1))
        # GitHub de-duplicates repeated headings with -1, -2, ...
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield number, match.group(1)


def check_links(files: list[Path], root: Path) -> list[str]:
    """Validate every relative link (and its anchor) in ``files``."""
    problems: list[str] = []
    for path in files:
        for number, target in iter_links(path):
            where = f"{_display(path, root)}:{number}"
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            base, _, fragment = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                if not resolved.exists():
                    problems.append(f"{where}: broken link -> {target}")
                    continue
            else:
                resolved = path  # pure in-page anchor: #section
            if fragment:
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    continue  # anchors into non-markdown: not checkable
                if fragment not in heading_anchors(resolved):
                    problems.append(
                        f"{where}: missing anchor #{fragment} in {base or path.name}"
                    )
    return problems


def iter_cli_snippets(path: Path):
    """Yield ``(line_number, argv)`` for each ``parma`` command line.

    Looks only inside fenced code blocks; strips ``$ `` prompts,
    trailing ``&`` backgrounding and line continuations.  Lines that
    do not start with ``parma`` (pipes into other tools, ``kill``,
    comments) are skipped.
    """
    in_fence = False
    pending = ""
    for number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(raw):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        line = line.lstrip("$ ").strip()
        if not line.startswith("parma "):
            continue
        line = line.split("#", 1)[0].strip()
        if line.endswith("&"):
            line = line[:-1].rstrip()
        try:
            argv = shlex.split(line)[1:]
        except ValueError:
            yield number, None  # unbalanced quotes
            continue
        yield number, argv


def check_index(files: list[Path], root: Path) -> list[str]:
    """Every ``docs/*.md`` page must be reachable from the README.

    A runbook nobody can find is a runbook nobody follows: the README
    keeps a docs index table, and a page added under ``docs/`` without
    a row there is invisible to anyone browsing the repo front page.
    Flags each checked docs page that no README link points at.
    """
    readme = root / "README.md"
    if not readme.is_file():
        return []
    linked: set[Path] = set()
    for _, target in iter_links(readme):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        base, _, _ = target.partition("#")
        if base:
            linked.add((readme.parent / base).resolve())
    problems: list[str] = []
    for path in files:
        if path.resolve() == readme.resolve():
            continue
        if path.resolve() not in linked:
            problems.append(
                f"{_display(path, root)}: not linked from README.md "
                "(add a docs-index row)"
            )
    return problems


def check_snippets(files: list[Path], root: Path) -> list[str]:
    """Parse every documented ``parma`` invocation with the real CLI."""
    sys.path.insert(0, str(root / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)

    problems: list[str] = []
    checked = 0
    for path in files:
        for number, argv in iter_cli_snippets(path):
            where = f"{_display(path, root)}:{number}"
            if argv is None:
                problems.append(f"{where}: unparseable shell quoting")
                continue
            checked += 1
            parser = build_parser()
            try:
                parser.parse_args(argv)
            except SystemExit:
                problems.append(
                    f"{where}: `parma {' '.join(argv)}` rejected by the CLI"
                )
    if not problems:
        print(f"snippets: {checked} `parma` command(s) validated")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT, help="repository root"
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 2
    problems = (
        check_links(files, root)
        + check_index(files, root)
        + check_snippets(files, root)
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"links: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
