"""Tests for the global joint-system residual and sparse Jacobian."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import total_equations, total_unknowns
from repro.core.residual import JointSystem
from repro.kirchhoff.forward import solve_all_drives
from repro.mea.wetlab import quick_device_data


def ground_truth_state(n, seed=3):
    r, z = quick_device_data(n, seed=seed)
    system = JointSystem(n=n, z=z, voltage=5.0)
    ua = np.empty((n * n, n - 1))
    ub = np.empty((n * n, n - 1))
    for sol in solve_all_drives(r, voltage=5.0):
        p = sol.row * n + sol.col
        ua[p] = sol.ua()
        ub[p] = sol.ub()
    return system, system.pack(r, ua, ub), r


class TestLayout:
    def test_sizes_match_paper_formulas(self):
        system = JointSystem(n=6, z=np.full((6, 6), 500.0), voltage=5.0)
        assert system.num_residuals == total_equations(6)
        assert system.num_unknowns == total_unknowns(6)

    def test_pack_unpack_roundtrip(self):
        system, x, r = ground_truth_state(4)
        r2, ua2, ub2 = system.unpack(x)
        np.testing.assert_allclose(r2, r)
        x2 = system.pack(r2, ua2, ub2)
        np.testing.assert_allclose(x, x2)

    def test_pack_shape_validation(self):
        system = JointSystem(n=3, z=np.full((3, 3), 500.0), voltage=5.0)
        with pytest.raises(ValueError):
            system.pack(np.ones((2, 2)), np.ones((9, 2)), np.ones((9, 2)))

    def test_unpack_length_validation(self):
        system = JointSystem(n=3, z=np.full((3, 3), 500.0), voltage=5.0)
        with pytest.raises(ValueError):
            system.unpack(np.zeros(7))

    def test_z_validation(self):
        with pytest.raises(ValueError):
            JointSystem(n=3, z=np.full((3, 4), 500.0), voltage=5.0)
        with pytest.raises(ValueError):
            JointSystem(n=3, z=-np.ones((3, 3)), voltage=5.0)

    def test_index_spaces_disjoint(self):
        system = JointSystem(n=4, z=np.full((4, 4), 500.0), voltage=5.0)
        pairs = np.arange(16)
        kp = np.zeros(16, dtype=int)
        theta_max = system.theta_index(np.array([3]), np.array([3]))[0]
        ua_min = system.ua_index(pairs, kp).min()
        ua_max = system.ua_index(pairs, kp + 2).max()
        ub_min = system.ub_index(pairs, kp).min()
        assert theta_max < ua_min
        assert ua_max < ub_min
        assert system.ub_index(pairs, kp + 2).max() == system.num_unknowns - 1


class TestResidual:
    @given(st.integers(2, 6), st.integers(0, 50))
    @settings(max_examples=12, deadline=None)
    def test_zero_at_ground_truth(self, n, seed):
        system, x, _ = ground_truth_state(n, seed=seed)
        res = system.residual(x)
        assert res.shape == (system.num_residuals,)
        assert np.max(np.abs(res)) < 1e-9

    def test_residual_matches_pair_blocks(self):
        """Global residual agrees with per-pair PairBlock residuals."""
        from repro.core.equations import form_pair_block

        n = 4
        system, x, r = ground_truth_state(n, seed=9)
        rng = np.random.default_rng(1)
        x_perturbed = x * (1 + 0.05 * rng.standard_normal(x.shape))
        res = system.residual(x_perturbed)
        r_p, ua_p, ub_p = system.unpack(x_perturbed)
        for pair in (0, 5, 15):
            i, j = divmod(pair, n)
            blk = form_pair_block(n, i, j, z=system.z[i, j], voltage=5.0)
            blk_res = blk.residuals(r_p, ua_p[pair], ub_p[pair])
            scale = system.z[i, j] / 5.0
            lo = 2 * n * pair
            np.testing.assert_allclose(
                res[lo : lo + 2 * n], blk_res * scale, rtol=1e-9, atol=1e-12
            )

    def test_nonzero_when_perturbed(self):
        system, x, _ = ground_truth_state(3)
        x2 = x.copy()
        x2[0] += 0.3  # bump one theta
        assert np.max(np.abs(system.residual(x2))) > 1e-3


class TestJacobian:
    @given(st.integers(2, 5), st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_matches_finite_differences(self, n, seed):
        system, x, _ = ground_truth_state(n, seed=seed)
        rng = np.random.default_rng(seed)
        x0 = x * (1 + 0.02 * rng.standard_normal(x.shape))
        jac = system.jacobian(x0).toarray()
        f0 = system.residual(x0)
        eps = 1e-7
        cols = rng.choice(len(x0), min(20, len(x0)), replace=False)
        for c in cols:
            xp = x0.copy()
            xp[c] += eps
            fd = (system.residual(xp) - f0) / eps
            np.testing.assert_allclose(jac[:, c], fd, atol=5e-5, rtol=5e-4)

    def test_sparsity(self):
        system, x, _ = ground_truth_state(5)
        jac = system.jacobian(x)
        assert jac.shape == (system.num_residuals, system.num_unknowns)
        # Per pair at most ~6 n^2 nonzeros; density is O(1/n^2).
        density = jac.nnz / (jac.shape[0] * jac.shape[1])
        assert density < 0.1

    def test_initial_state_is_feasible(self):
        n = 4
        _, z = quick_device_data(n, seed=5)
        system = JointSystem(n=n, z=z, voltage=5.0)
        x0 = system.initial_state()
        res = system.residual(x0)
        # Voltages consistent with R0: the only residual sources are
        # the SOURCE/DEST drive mismatches, bounded by the Z misfit.
        assert np.isfinite(res).all()
        r0, ua0, ub0 = system.unpack(x0)
        assert np.all(r0 > 0)
        interior = np.abs(res[np.arange(len(res)) % (2 * n) >= 2])
        assert np.max(interior) < 1e-9


class TestJacobianStructureCache:
    def test_cached_equals_reference_across_value_updates(self):
        from repro.core.residual import clear_jacobian_cache

        clear_jacobian_cache()
        for n in (2, 3, 5):
            system, x, _ = ground_truth_state(n, seed=n)
            rng = np.random.default_rng(n)
            # Several value-only updates against the one cached pattern.
            for trial in range(4):
                xt = x * (1 + 0.05 * rng.standard_normal(x.shape))
                cached = system.jacobian(xt)
                ref = system.jacobian_reference(xt)
                assert cached.shape == ref.shape
                diff = (cached - ref).toarray()
                scale = max(1.0, np.abs(ref.toarray()).max())
                assert np.max(np.abs(diff)) <= 1e-12 * scale

    def test_pattern_is_identical_to_reference(self):
        system, x, _ = ground_truth_state(4, seed=2)
        cached = system.jacobian(x)
        ref = system.jacobian_reference(x).tocsr()
        ref.sum_duplicates()
        ref.sort_indices()
        np.testing.assert_array_equal(cached.indptr, ref.indptr)
        np.testing.assert_array_equal(cached.indices, ref.indices)

    def test_structure_cached_once_per_n(self):
        from repro.core.residual import (
            clear_jacobian_cache,
            jacobian_cache_stats,
        )

        clear_jacobian_cache()
        system, x, _ = ground_truth_state(3, seed=1)
        system.jacobian(x)
        system.jacobian(x * 1.01)
        stats = jacobian_cache_stats()
        assert stats.entries == 1
        assert stats.misses == 1
        assert stats.hits >= 1
        assert stats.bytes_resident > 0
