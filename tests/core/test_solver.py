"""Tests for the R-recovery solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import (
    nested_jacobian,
    predict_z,
    solve,
    solve_full,
    solve_nested,
)
from repro.kirchhoff.forward import measure
from repro.mea.wetlab import quick_device_data


class TestNestedJacobian:
    @given(st.integers(2, 5), st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_matches_finite_differences(self, n, seed):
        rng = np.random.default_rng(seed)
        r = rng.uniform(1000, 8000, size=(n, n))
        jac = nested_jacobian(r)
        theta = np.log(r)
        eps = 1e-6
        for col in rng.choice(n * n, min(8, n * n), replace=False):
            tp = theta.ravel().copy()
            tm = theta.ravel().copy()
            tp[col] += eps
            tm[col] -= eps
            zp = predict_z(np.exp(tp).reshape(n, n)).ravel()
            zm = predict_z(np.exp(tm).reshape(n, n)).ravel()
            fd = (zp - zm) / (2 * eps)  # central: O(eps^2) truncation
            # atol covers FD round-off: Z ~ 1e3, so differences carry
            # ~1e-4 absolute cancellation noise at eps = 1e-6.
            np.testing.assert_allclose(jac[:, col], fd, rtol=2e-4, atol=1e-3)

    def test_jacobian_nonnegative(self):
        """dZ/dθ >= 0: raising any resistance raises every Z."""
        rng = np.random.default_rng(1)
        r = rng.uniform(1000, 8000, size=(4, 4))
        assert np.all(nested_jacobian(r) >= -1e-15)


class TestSolveNested:
    @given(st.integers(2, 8), st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_exact_recovery_noise_free(self, n, seed):
        r_true, z = quick_device_data(n, seed=seed)
        result = solve_nested(z)
        assert result.converged
        assert result.max_relative_error(r_true) < 1e-8

    def test_recovers_strong_anomaly(self):
        r_true = np.full((6, 6), 3000.0)
        r_true[2, 3] = 11000.0  # a hot spot
        result = solve_nested(measure(r_true))
        assert result.max_relative_error(r_true) < 1e-8

    def test_custom_initial_point(self):
        r_true, z = quick_device_data(4, seed=2)
        result = solve_nested(z, r0=np.full((4, 4), 5000.0))
        assert result.max_relative_error(r_true) < 1e-8

    def test_rejects_bad_r0(self):
        _, z = quick_device_data(4, seed=2)
        with pytest.raises(ValueError):
            solve_nested(z, r0=np.zeros((4, 4)))

    def test_noise_robustness_degrades_gracefully(self):
        """With 0.5 % instrument noise the field error stays bounded
        (the ill-posedness amplifies noise ~15x, not unboundedly)."""
        r_true, z = quick_device_data(8, seed=4, noise_rel=0.005)
        result = solve_nested(z, tol=1e-9)
        assert result.mean_relative_error(r_true) < 0.25

    def test_estimates_positive(self):
        _, z = quick_device_data(5, seed=1)
        result = solve_nested(z)
        assert np.all(result.r_estimate > 0)

    def test_result_metadata(self):
        r_true, z = quick_device_data(3, seed=1)
        result = solve_nested(z)
        assert result.method == "nested"
        assert result.iterations >= 1
        assert result.elapsed_seconds >= 0.0


class TestSolveFull:
    def test_exact_recovery_small(self):
        r_true, z = quick_device_data(4, seed=3)
        result = solve_full(z)
        assert result.max_relative_error(r_true) < 1e-5

    def test_agrees_with_nested(self):
        _, z = quick_device_data(4, seed=8)
        r_a = solve_nested(z).r_estimate
        r_b = solve_full(z).r_estimate
        np.testing.assert_allclose(r_a, r_b, rtol=1e-4)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            solve_full(np.ones((2, 3)))

    def test_method_field(self):
        _, z = quick_device_data(3, seed=1)
        assert solve_full(z).method == "full"


class TestDispatch:
    def test_solve_by_name(self):
        _, z = quick_device_data(3, seed=1)
        assert solve(z, method="nested").method == "nested"
        assert solve(z, method="full").method == "full"

    def test_unknown_method(self):
        _, z = quick_device_data(3, seed=1)
        with pytest.raises(ValueError):
            solve(z, method="alchemy")
