"""Tests for Tikhonov-regularized recovery (ill-posedness remedy)."""

import numpy as np
import pytest

from repro.core.regularized import (
    l_curve,
    log_laplacian_operator,
    pick_lambda_by_discrepancy,
    solve_regularized,
)
from repro.core.solver import solve_nested
from repro.mea.wetlab import quick_device_data


class TestLaplacianOperator:
    def test_constant_in_null_space(self):
        lop = log_laplacian_operator(4, 5)
        np.testing.assert_allclose(lop @ np.ones(20), 0.0, atol=1e-12)

    def test_symmetric_psd(self):
        lop = log_laplacian_operator(3, 3)
        np.testing.assert_allclose(lop, lop.T)
        eigs = np.linalg.eigvalsh(lop)
        assert eigs.min() > -1e-12

    def test_interior_degree(self):
        lop = log_laplacian_operator(3, 3)
        center = 1 * 3 + 1
        assert lop[center, center] == 4.0
        corner = 0
        assert lop[corner, corner] == 2.0

    def test_penalizes_variation(self):
        lop = log_laplacian_operator(3, 3)
        spiky = np.zeros(9)
        spiky[4] = 1.0
        assert np.linalg.norm(lop @ spiky) > 0


class TestSolveRegularized:
    def test_lambda_zero_matches_nested(self):
        r_true, z = quick_device_data(6, seed=51)
        a = solve_regularized(z, lam=0.0)
        b = solve_nested(z)
        np.testing.assert_allclose(a.r_estimate, b.r_estimate, rtol=1e-6)
        assert a.method == "regularized"

    def test_noise_free_small_lambda_still_accurate(self):
        r_true, z = quick_device_data(6, seed=52)
        result = solve_regularized(z, lam=1e-8)
        assert result.max_relative_error(r_true) < 1e-3

    def test_regularization_reduces_noise_amplification(self):
        """The headline: with 1 % instrument noise, a moderate λ beats
        the unregularized solve on field error."""
        r_true, z = quick_device_data(10, seed=53, noise_rel=0.01)
        plain = solve_nested(z, tol=1e-9)
        reg = solve_regularized(z, lam=3e-3)
        assert (
            reg.mean_relative_error(r_true)
            < plain.mean_relative_error(r_true)
        )

    def test_large_lambda_flattens_field(self):
        r_true, z = quick_device_data(8, seed=54)
        result = solve_regularized(z, lam=100.0)
        spread = result.r_estimate.max() / result.r_estimate.min()
        assert spread < r_true.max() / r_true.min()

    def test_negative_lambda_rejected(self):
        _, z = quick_device_data(4, seed=55)
        with pytest.raises(ValueError):
            solve_regularized(z, lam=-1.0)

    def test_estimates_positive(self):
        _, z = quick_device_data(5, seed=56, noise_rel=0.02)
        result = solve_regularized(z, lam=1e-2)
        assert np.all(result.r_estimate > 0)


class TestLCurve:
    def test_monotone_trade_off(self):
        _, z = quick_device_data(6, seed=57, noise_rel=0.01)
        lams = [1e-6, 1e-4, 1e-2, 1.0]
        points = l_curve(z, lams)
        misfits = [p.data_misfit for p in points]
        priors = [p.prior_norm for p in points]
        # Misfit grows with lambda; prior norm shrinks.
        assert all(b >= a - 1e-9 for a, b in zip(misfits, misfits[1:]))
        assert all(b <= a + 1e-9 for a, b in zip(priors, priors[1:]))

    def test_discrepancy_principle_picks_reasonable_lambda(self):
        noise = 0.01
        _, z = quick_device_data(6, seed=58, noise_rel=noise)
        lams = [1e-6, 1e-4, 1e-3, 1e-2, 1e-1]
        points = l_curve(z, lams)
        chosen = pick_lambda_by_discrepancy(points, noise, z.size)
        assert chosen.lam in lams
        # The chosen misfit does not exceed the noise target wildly.
        assert chosen.data_misfit <= 3 * noise * np.sqrt(z.size)

    def test_discrepancy_fallback(self):
        _, z = quick_device_data(4, seed=59, noise_rel=0.05)
        points = l_curve(z, [10.0, 100.0])
        chosen = pick_lambda_by_discrepancy(points, 1e-9, z.size)
        assert chosen.lam == 10.0  # nothing qualifies -> smallest λ
