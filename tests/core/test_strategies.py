"""Tests for the four formation strategies (real forked execution)."""

import numpy as np
import pytest

from repro.core.categories import total_terms
from repro.core.strategies import (
    BalancedParallel,
    ParallelStrategy,
    PyMPStrategy,
    SingleThread,
    calibrate_sec_per_term,
    item_costs_seconds,
    make_strategy,
)
from repro.core.partition import partition_balanced
from repro.io.equations_io import load_blocks_binary
from repro.mea.wetlab import quick_device_data


@pytest.fixture(scope="module")
def device8():
    return quick_device_data(8, seed=5)


@pytest.fixture(scope="module")
def baseline8(device8):
    _, z = device8
    return SingleThread().run(z)


class TestSingleThread:
    def test_forms_all_terms(self, baseline8):
        assert baseline8.terms_formed == total_terms(8)
        assert baseline8.num_workers == 1
        assert baseline8.strategy == "single-thread"

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            SingleThread().run(np.ones((3, 4)))

    def test_rejects_tiny_device(self):
        with pytest.raises(ValueError):
            SingleThread().run(np.ones((1, 1)))

    def test_terms_per_second_positive(self, baseline8):
        assert baseline8.terms_per_second() > 0


class TestParallelStrategies:
    """Each strategy must form exactly the same work as the baseline."""

    @pytest.mark.parametrize(
        "strategy",
        [
            ParallelStrategy(),
            BalancedParallel(2),
            BalancedParallel(3),
            PyMPStrategy(2),
            PyMPStrategy(3, schedule="dynamic"),
        ],
        ids=["parallel4", "balanced2", "balanced3", "pymp2", "pymp3dyn"],
    )
    def test_same_terms_and_checksum(self, strategy, device8, baseline8):
        _, z = device8
        rep = strategy.run(z)
        assert rep.terms_formed == baseline8.terms_formed
        assert rep.checksum == pytest.approx(baseline8.checksum)
        assert rep.per_worker_terms.sum() == rep.terms_formed

    def test_parallel_shows_category_skew(self, device8):
        """Workers 2/3 (UA/UB) carry (n-1)x the terms of workers 0/1."""
        _, z = device8
        rep = ParallelStrategy().run(z)
        per = rep.per_worker_terms
        assert per[2] == per[3] == 7 * per[0]
        assert per[0] == per[1]

    def test_balanced_is_balanced(self, device8):
        _, z = device8
        rep = BalancedParallel(4).run(z)
        per = rep.per_worker_terms.astype(float)
        assert per.max() / per.mean() < 1.05

    def test_pymp_static_deterministic(self, device8):
        _, z = device8
        a = PyMPStrategy(3).run(z)
        b = PyMPStrategy(3).run(z)
        np.testing.assert_array_equal(a.per_worker_terms, b.per_worker_terms)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            BalancedParallel(0)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            PyMPStrategy(2, schedule="guided")


class TestIO:
    def test_part_files_reassemble(self, device8, baseline8, tmp_path):
        _, z = device8
        rep = PyMPStrategy(3).run(z, output_dir=tmp_path)
        assert rep.bytes_written > 0
        assert len(rep.part_files) == 3
        blocks = []
        for f in rep.part_files:
            blocks.extend(load_blocks_binary(f))
        assert sum(b.num_terms for b in blocks) == baseline8.terms_formed
        assert sum(b.checksum() for b in blocks) == pytest.approx(
            baseline8.checksum
        )

    def test_text_format_output(self, device8, tmp_path):
        _, z = device8
        rep = SingleThread().run(z, output_dir=tmp_path, fmt="text")
        assert rep.bytes_written > 0
        content = open(rep.part_files[0]).read()
        assert "SOURCE:" in content and "/R[" in content

    def test_unknown_format(self, device8, tmp_path):
        _, z = device8
        with pytest.raises(ValueError):
            SingleThread().run(z, output_dir=tmp_path, fmt="yaml")


class TestFactoryAndCalibration:
    def test_make_strategy_names(self):
        assert isinstance(make_strategy("single"), SingleThread)
        assert isinstance(make_strategy("parallel"), ParallelStrategy)
        assert isinstance(make_strategy("balanced", 3), BalancedParallel)
        assert isinstance(make_strategy("pymp", 3), PyMPStrategy)
        assert make_strategy("pymp-dynamic", 3).schedule == "dynamic"

    def test_make_strategy_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("gpu")

    def test_calibration_positive(self):
        spt = calibrate_sec_per_term(10)
        assert 0 < spt < 1e-3  # a term costs well under a millisecond

    def test_item_costs(self):
        part = partition_balanced(6, 2)
        costs = item_costs_seconds(part, 1e-7)
        assert costs.shape == (len(part.items),)
        assert costs.sum() == pytest.approx(total_terms(6) * 1e-7)


class TestFormationModes:
    @pytest.mark.parametrize(
        "make",
        [
            lambda f: SingleThread(formation=f),
            lambda f: ParallelStrategy(formation=f),
            lambda f: BalancedParallel(3, formation=f),
            lambda f: PyMPStrategy(3, formation=f),
        ],
    )
    def test_cached_part_files_byte_identical_to_legacy(
        self, make, device8, tmp_path
    ):
        _, z = device8
        cached_dir = tmp_path / "cached"
        legacy_dir = tmp_path / "legacy"
        rc = make("cached").run(z, output_dir=cached_dir)
        rl = make("legacy").run(z, output_dir=legacy_dir)
        assert rc.terms_formed == rl.terms_formed
        assert rc.checksum == rl.checksum
        assert [p.rsplit("/", 1)[-1] for p in rc.part_files] == [
            p.rsplit("/", 1)[-1] for p in rl.part_files
        ]
        for pc, pl in zip(rc.part_files, rl.part_files):
            with open(pc, "rb") as fc, open(pl, "rb") as fl:
                assert fc.read() == fl.read()

    def test_dynamic_schedule_totals_match(self, device8):
        _, z = device8
        rc = PyMPStrategy(2, schedule="dynamic", formation="cached").run(z)
        rl = PyMPStrategy(2, schedule="dynamic", formation="legacy").run(z)
        assert rc.terms_formed == rl.terms_formed
        assert rc.checksum == rl.checksum

    def test_make_strategy_threads_formation(self):
        assert make_strategy("single", formation="legacy").formation == "legacy"
        assert make_strategy("pymp", 2).formation == "cached"
        with pytest.raises(ValueError):
            make_strategy("single", formation="nope")

    def test_calibration_cached_mode(self):
        assert calibrate_sec_per_term(6, sample_pairs=4,
                                      formation="cached") > 0
