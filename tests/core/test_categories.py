"""Tests for constraint-category accounting (§IV-A counts)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import (
    Category,
    category_costs,
    equations_per_device,
    equations_per_pair,
    terms_per_pair,
    total_equations,
    total_terms,
    total_unknowns,
)


class TestPerPair:
    @given(st.integers(2, 100))
    @settings(max_examples=25, deadline=None)
    def test_sums_to_2n(self, n):
        per = equations_per_pair(n)
        assert sum(per.values()) == 2 * n

    def test_structure(self):
        per = equations_per_pair(5)
        assert per[Category.SOURCE] == 1
        assert per[Category.DEST] == 1
        assert per[Category.UA] == 4
        assert per[Category.UB] == 4

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            equations_per_pair(1)


class TestPerDevice:
    @given(st.integers(2, 60))
    @settings(max_examples=25, deadline=None)
    def test_total_is_2n_cubed(self, n):
        """§IV-A: 'The total number of nonlinear equations for the
        entire n x n array is 2n^3'."""
        assert sum(equations_per_device(n).values()) == total_equations(n)
        assert total_equations(n) == 2 * n**3

    @given(st.integers(2, 60))
    @settings(max_examples=25, deadline=None)
    def test_unknowns_formula(self, n):
        """§IV-A: '(2n - 1) n^2 unknowns'."""
        assert total_unknowns(n) == (2 * n - 1) * n**2
        # Decomposition: n^2 R's + 2 (n-1) n^2 voltages.
        assert total_unknowns(n) == n**2 + 2 * (n - 1) * n**2

    @given(st.integers(2, 40))
    @settings(max_examples=20, deadline=None)
    def test_equations_exceed_unknowns_by_n_squared(self, n):
        """One redundant KCL equation per pair (flow conservation)."""
        assert total_equations(n) - total_unknowns(n) == n**2

    def test_category_skew(self):
        """§IV-C.1: intermediates carry ~n-1 times the source/dest
        load — 'roughly the cubic order of the former'."""
        per = equations_per_device(10)
        assert per[Category.UA] == 9 * per[Category.SOURCE]
        assert per[Category.UB] == per[Category.UA]


class TestTerms:
    @given(st.integers(2, 60))
    @settings(max_examples=20, deadline=None)
    def test_terms_per_pair_and_total(self, n):
        assert terms_per_pair(n) == 2 * n * n
        assert total_terms(n) == n * n * terms_per_pair(n) == 2 * n**4

    def test_costs_proportional_to_terms(self):
        costs = category_costs(8)
        total = sum(costs.values())
        assert total == total_terms(8)
        assert costs[Category.UA] == costs[Category.UB]
