"""Tests for joint-constraint equation formation.

The central invariant (the whole reproduction hangs on it): plugging
the *ground-truth* resistances and the *exact forward-solved* internal
voltages into every generated equation must give ~0 residual.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import Category
from repro.core.equations import (
    ALL_CATEGORIES,
    SystemStats,
    form_all_blocks,
    form_pair_block,
    iter_pair_blocks,
)
from repro.kirchhoff.forward import solve_drive
from repro.mea.wetlab import quick_device_data


class TestStructure:
    def test_full_block_counts(self):
        blk = form_pair_block(6, 2, 3, z=800.0)
        assert blk.num_equations == 12  # 2n
        assert blk.num_terms == 72  # 2n^2
        assert blk.pair_index == 15

    def test_every_equation_has_n_terms(self):
        blk = form_pair_block(5, 1, 1, z=500.0)
        counts = np.bincount(blk.eq_id, minlength=blk.num_equations)
        assert (counts == 5).all()

    def test_category_layout(self):
        n = 4
        blk = form_pair_block(n, 0, 0, z=700.0)
        cats = blk.category
        assert cats[0] == Category.SOURCE
        assert cats[1] == Category.DEST
        assert (cats[2 : 2 + n - 1] == Category.UA).all()
        assert (cats[n + 1 :] == Category.UB).all()

    def test_rhs_only_on_source_dest(self):
        blk = form_pair_block(4, 1, 2, z=700.0, voltage=5.0)
        assert blk.rhs[0] == pytest.approx(5.0 / 700.0)
        assert blk.rhs[1] == pytest.approx(5.0 / 700.0)
        assert (blk.rhs[2:] == 0.0).all()

    def test_source_terms_reference_row_i(self):
        blk = form_pair_block(5, 3, 1, z=700.0)
        src_terms = blk.eq_id == 0
        assert (blk.r_row[src_terms] == 3).all()

    def test_dest_terms_reference_col_j(self):
        blk = form_pair_block(5, 3, 1, z=700.0)
        dst_terms = blk.eq_id == 1
        assert (blk.r_col[dst_terms] == 1).all()

    def test_bounds_validation(self):
        with pytest.raises(IndexError):
            form_pair_block(4, 4, 0, z=100.0)
        with pytest.raises(ValueError):
            form_pair_block(4, 0, 0, z=-1.0)
        with pytest.raises(ValueError):
            form_pair_block(1, 0, 0, z=100.0)

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            form_pair_block(
                4, 0, 0, z=100.0,
                categories=[Category.UA, Category.UA],
            )

    def test_nbytes_positive_and_scales(self):
        small = form_pair_block(4, 0, 0, z=100.0).nbytes()
        large = form_pair_block(8, 0, 0, z=100.0).nbytes()
        assert 0 < small < large


class TestCategorySubsets:
    def test_single_category_counts(self):
        n = 6
        assert form_pair_block(n, 0, 0, z=1.0, categories=[Category.SOURCE]).num_terms == n
        assert form_pair_block(n, 0, 0, z=1.0, categories=[Category.UA]).num_terms == n * (n - 1)

    def test_subsets_partition_full_block(self):
        full = form_pair_block(5, 2, 3, z=900.0)
        parts = [
            form_pair_block(5, 2, 3, z=900.0, categories=[c])
            for c in ALL_CATEGORIES
        ]
        assert sum(p.num_terms for p in parts) == full.num_terms
        assert sum(p.num_equations for p in parts) == full.num_equations
        assert sum(p.checksum() for p in parts) == pytest.approx(full.checksum())

    def test_subset_residuals_match_full(self):
        n = 5
        r, z = quick_device_data(n, seed=11)
        sol = solve_drive(r, 1, 3, voltage=5.0)
        full = form_pair_block(n, 1, 3, z=sol.z, voltage=5.0)
        res_full = full.residuals(r, sol.ua(), sol.ub())
        offset = 0
        for cat in ALL_CATEGORIES:
            part = form_pair_block(
                n, 1, 3, z=sol.z, voltage=5.0, categories=[cat]
            )
            res_part = part.residuals(r, sol.ua(), sol.ub())
            np.testing.assert_allclose(
                res_part, res_full[offset : offset + part.num_equations]
            )
            offset += part.num_equations


class TestGroundTruthResiduals:
    """Ground truth + forward voltages must satisfy every equation."""

    @given(st.integers(2, 7), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_residual_is_machine_zero(self, n, seed):
        r, z = quick_device_data(n, seed=seed)
        rng = np.random.default_rng(seed)
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        sol = solve_drive(r, i, j, voltage=5.0)
        blk = form_pair_block(n, i, j, z=sol.z, voltage=5.0)
        assert blk.max_relative_residual(r, sol.ua(), sol.ub()) < 1e-10

    def test_wrong_resistance_breaks_residual(self):
        n = 4
        r, z = quick_device_data(n, seed=2)
        sol = solve_drive(r, 0, 0, voltage=5.0)
        blk = form_pair_block(n, 0, 0, z=sol.z, voltage=5.0)
        assert blk.max_relative_residual(2 * r, sol.ua(), sol.ub()) > 0.01

    def test_wrong_voltages_break_residual(self):
        n = 4
        r, z = quick_device_data(n, seed=2)
        sol = solve_drive(r, 0, 0, voltage=5.0)
        blk = form_pair_block(n, 0, 0, z=sol.z, voltage=5.0)
        bad_ua = sol.ua() * 1.2
        assert blk.max_relative_residual(r, bad_ua, sol.ub()) > 0.01

    def test_residual_shape_checks(self):
        blk = form_pair_block(4, 0, 0, z=100.0)
        with pytest.raises(ValueError):
            blk.residuals(np.ones((3, 3)), np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            blk.residuals(np.ones((4, 4)), np.ones(2), np.ones(3))


class TestIterationAndStats:
    def test_iter_covers_all_pairs(self):
        _, z = quick_device_data(3, seed=1)
        blocks = list(iter_pair_blocks(z))
        assert [(b.row, b.col) for b in blocks] == [
            (i, j) for i in range(3) for j in range(3)
        ]

    def test_iter_requires_square(self):
        with pytest.raises(ValueError):
            list(iter_pair_blocks(np.ones((2, 3))))

    def test_form_all_blocks_matches_stats(self):
        _, z = quick_device_data(4, seed=1)
        blocks = form_all_blocks(z)
        stats = SystemStats.for_device(4)
        assert sum(b.num_terms for b in blocks) == stats.num_terms
        assert sum(b.num_equations for b in blocks) == stats.num_equations

    def test_stats_paper_formulas(self):
        stats = SystemStats.for_device(10)
        assert stats.num_equations == 2000
        assert stats.num_unknowns == 1900
        assert stats.num_terms == 20000
        assert stats.bytes_estimate > stats.num_terms  # > 1 byte/term
