"""Tests for ParmaEngine and the campaign pipeline."""

import numpy as np
import pytest

from repro.anomaly.metrics import score_mask
from repro.core.engine import ParmaEngine
from repro.core.pipeline import run_pipeline
from repro.mea.synthetic import anomaly_mask, paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign, simulate_measurement
from repro.mea.synthetic import FieldSpec, generate_field


@pytest.fixture(scope="module")
def noise_free_run():
    spec = paper_like_spec(8, num_anomalies=1, seed=13)
    return spec, run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=13)


class TestEngine:
    def test_parametrize_recovers_truth(self, noise_free_run):
        _, run = noise_free_run
        engine = ParmaEngine(strategy="single")
        result = engine.parametrize(run.campaign.measurements[0])
        err = result.solve.max_relative_error(run.ground_truth[0])
        assert err < 1e-6
        assert result.formation.terms_formed == 2 * 8**4
        assert set(result.laps) == {"formation", "solve", "detect"}

    def test_detects_planted_anomaly(self, noise_free_run):
        spec, run = noise_free_run
        engine = ParmaEngine(strategy="single", threshold_sigmas=3.0)
        result = engine.parametrize(run.campaign.measurements[0])
        truth = anomaly_mask(spec)
        score = score_mask(result.detection.mask, truth)
        # The blob's cosine falloff leaves edge pixels barely elevated,
        # so recall captures the core (not the rim) at high precision.
        assert score.recall >= 0.4
        assert score.precision >= 0.9

    def test_strategy_choice_does_not_change_solution(self, noise_free_run):
        _, run = noise_free_run
        meas = run.campaign.measurements[0]
        r_single = ParmaEngine(strategy="single").parametrize(meas)
        r_pymp = ParmaEngine(strategy="pymp", num_workers=2).parametrize(meas)
        np.testing.assert_allclose(
            r_single.resistance, r_pymp.resistance, rtol=1e-9
        )

    def test_equations_persisted(self, noise_free_run, tmp_path):
        _, run = noise_free_run
        engine = ParmaEngine(strategy="pymp", num_workers=2)
        result = engine.parametrize(
            run.campaign.measurements[0], output_dir=tmp_path
        )
        assert result.formation.bytes_written > 0
        assert len(list(tmp_path.iterdir())) == 2

    def test_summary_mentions_key_facts(self, noise_free_run):
        _, run = noise_free_run
        engine = ParmaEngine(strategy="single")
        text = engine.parametrize(run.campaign.measurements[0]).summary()
        assert "8x8" in text and "converged=True" in text

    def test_full_solver_option(self):
        spec = FieldSpec(n=3, noise_rel=0.0)
        r = generate_field(spec)
        meas = simulate_measurement(r, WetLabConfig(noise_rel=0.0))
        result = ParmaEngine(strategy="single", solver="full").parametrize(meas)
        assert result.solve.method == "full"
        np.testing.assert_allclose(result.resistance, r, rtol=1e-4)


class TestPipeline:
    def test_campaign_all_timepoints(self, noise_free_run):
        _, run = noise_free_run
        out = run_pipeline(run.campaign, engine=ParmaEngine(strategy="single"))
        assert out.hours == (0.0, 6.0, 12.0, 24.0)
        assert out.resistance_series().shape == (4, 8, 8)
        assert out.total_formation_terms() == 4 * 2 * 8**4

    def test_drift_detects_growth(self, noise_free_run):
        spec, run = noise_free_run
        out = run_pipeline(
            run.campaign,
            engine=ParmaEngine(strategy="single"),
            growth_threshold=0.10,
        )
        assert out.drift_detection is not None
        assert out.drift_detection.num_regions >= 1
        # The growing region overlaps the planted blob.
        truth = anomaly_mask(spec)
        overlap = out.drift_detection.mask & truth
        assert overlap.any()

    def test_no_drift_on_static_field(self):
        spec = FieldSpec(n=6, noise_rel=0.05)  # no anomalies
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=3)
        out = run_pipeline(run.campaign, engine=ParmaEngine(strategy="single"))
        assert out.drift_detection.num_regions == 0

    def test_summary_structure(self, noise_free_run):
        _, run = noise_free_run
        out = run_pipeline(run.campaign, engine=ParmaEngine(strategy="single"))
        text = out.summary()
        assert text.count("Parma 8x8") == 4
        assert "drift" in text


class TestWarmStart:
    def test_warm_start_reduces_iterations(self, noise_free_run):
        _, run = noise_free_run
        engine = ParmaEngine(strategy="single")
        warm = run_pipeline(run.campaign, engine=engine, warm_start=True)
        cold = run_pipeline(run.campaign, engine=engine, warm_start=False)
        warm_iters = sum(r.solve.iterations for r in warm.results[1:])
        cold_iters = sum(r.solve.iterations for r in cold.results[1:])
        assert warm_iters <= cold_iters
        # And the answers agree regardless of the seed point.
        np.testing.assert_allclose(
            warm.resistance_series(), cold.resistance_series(), rtol=1e-6
        )

    def test_first_timepoint_never_warm(self, noise_free_run):
        _, run = noise_free_run
        engine = ParmaEngine(strategy="single")
        warm = run_pipeline(run.campaign, engine=engine, warm_start=True)
        cold = run_pipeline(run.campaign, engine=engine, warm_start=False)
        assert warm.results[0].solve.iterations == \
            cold.results[0].solve.iterations


class TestRegularizedEngine:
    def test_engine_with_regularized_solver(self):
        spec = paper_like_spec(6, num_anomalies=1, seed=91)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.01), seed=91)
        engine = ParmaEngine(strategy="single", solver="regularized")
        result = engine.parametrize(
            run.campaign.measurements[0], solver_kwargs={"lam": 1e-3}
        )
        assert result.solve.method == "regularized"
        assert np.all(result.resistance > 0)

    def test_unknown_solver_name_raises(self):
        spec = paper_like_spec(4, num_anomalies=0, seed=92)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=92)
        engine = ParmaEngine(strategy="single", solver="quantum")
        with pytest.raises(ValueError, match="unknown method"):
            engine.parametrize(run.campaign.measurements[0])
