"""Template-cached formation must be bit-identical to the reference."""

import numpy as np
import pytest

from repro.core.categories import Category
from repro.core.equations import (
    ALL_CATEGORIES,
    form_pair_block,
    iter_pair_blocks,
)
from repro.core.templates import (
    cache_stats,
    check_formation_mode,
    clear_template_cache,
    form_all_pairs,
    form_worker_share,
    get_template,
    iter_pair_blocks_cached,
    stamp_pair_block,
    warm_template_cache,
)
from repro.core.partition import partition_betti
from repro.mea.wetlab import quick_device_data

SIZES = (2, 3, 5, 8)

CATEGORY_SUBSETS = (
    tuple(ALL_CATEGORIES),
    (Category.SOURCE,),
    (Category.DEST,),
    (Category.UA,),
    (Category.UB,),
    (Category.SOURCE, Category.UB),
)


def assert_blocks_identical(fast, ref):
    """Bit-for-bit equality: values, dtypes and scalar metadata."""
    assert fast.n == ref.n
    assert fast.row == ref.row and fast.col == ref.col
    assert fast.z == ref.z and fast.voltage == ref.voltage
    for name in ("eq_id", "sign", "r_row", "r_col", "v_plus", "v_minus",
                 "rhs", "category"):
        a, b = getattr(fast, name), getattr(ref, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


def sample_pairs(n, count=12, seed=0):
    rng = np.random.default_rng(seed + n)
    pairs = rng.integers(0, n, size=(count, 2))
    z = rng.uniform(200.0, 2000.0, size=count)
    return pairs[:, 0], pairs[:, 1], z


class TestStampBitIdentity:
    @pytest.mark.parametrize("n", SIZES)
    def test_full_block(self, n):
        rows, cols, zs = sample_pairs(n)
        for row, col, z in zip(rows, cols, zs):
            fast = stamp_pair_block(n, int(row), int(col), float(z))
            ref = form_pair_block(n, int(row), int(col), float(z))
            assert_blocks_identical(fast, ref)

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("cats", CATEGORY_SUBSETS)
    def test_category_restricted(self, n, cats):
        rows, cols, zs = sample_pairs(n, count=6)
        for row, col, z in zip(rows, cols, zs):
            fast = stamp_pair_block(
                n, int(row), int(col), float(z), voltage=3.3, categories=cats
            )
            ref = form_pair_block(
                n, int(row), int(col), float(z), voltage=3.3, categories=cats
            )
            assert_blocks_identical(fast, ref)

    def test_checksum_matches_reference(self):
        fast = stamp_pair_block(6, 2, 4, 731.0)
        ref = form_pair_block(6, 2, 4, 731.0)
        assert fast.checksum() == ref.checksum()

    def test_rejects_out_of_range_pair(self):
        with pytest.raises(IndexError):
            stamp_pair_block(4, 4, 0, 500.0)

    def test_rejects_nonpositive_z(self):
        with pytest.raises(ValueError):
            stamp_pair_block(4, 1, 1, 0.0)


class TestBatchedFormation:
    @pytest.mark.parametrize("n", SIZES)
    def test_batch_blocks_bit_identical(self, n):
        rows, cols, zs = sample_pairs(n, count=10, seed=7)
        batch = form_all_pairs(n, rows, cols, zs, voltage=4.0)
        assert batch.num_pairs == len(rows)
        for p in range(batch.num_pairs):
            ref = form_pair_block(
                n, int(rows[p]), int(cols[p]), float(zs[p]), voltage=4.0
            )
            assert_blocks_identical(batch.block(p), ref)

    @pytest.mark.parametrize("cats", CATEGORY_SUBSETS)
    def test_category_restricted_batches(self, cats):
        n = 5
        rows, cols, zs = sample_pairs(n, count=8, seed=11)
        batch = form_all_pairs(n, rows, cols, zs, categories=cats)
        for p in range(batch.num_pairs):
            ref = form_pair_block(
                n, int(rows[p]), int(cols[p]), float(zs[p]), categories=cats
            )
            assert_blocks_identical(batch.block(p), ref)

    @pytest.mark.parametrize("n", SIZES)
    def test_checksums_exactly_equal_reference(self, n):
        rows, cols, zs = sample_pairs(n, count=10, seed=3)
        batch = form_all_pairs(n, rows, cols, zs)
        ref = np.array(
            [
                form_pair_block(n, int(r), int(c), float(z)).checksum()
                for r, c, z in zip(rows, cols, zs)
            ]
        )
        # Bit-exact, not approximately equal: every partial sum is an
        # integer below 2^53.
        assert np.array_equal(batch.checksums(), ref)

    def test_iteration_yields_blocks_in_order(self):
        n = 4
        rows, cols, zs = sample_pairs(n, count=5, seed=2)
        batch = form_all_pairs(n, rows, cols, zs)
        seen = [(b.row, b.col) for b in batch]
        assert seen == list(zip(rows.tolist(), cols.tolist()))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            form_all_pairs(4, np.array([0, 1]), np.array([0]), np.array([1.0]))


class TestCachedIterator:
    @pytest.mark.parametrize("n", (2, 5, 9))
    def test_matches_reference_stream(self, n):
        _, z = quick_device_data(n, seed=21)
        fast = list(iter_pair_blocks_cached(z, voltage=5.0))
        ref = list(iter_pair_blocks(z, voltage=5.0))
        assert len(fast) == len(ref) == n * n
        for f, r in zip(fast, ref):
            assert_blocks_identical(f, r)


class TestWorkerShare:
    @pytest.mark.parametrize("workers", (1, 3))
    def test_share_matches_per_item_loop(self, workers):
        n = 6
        _, z = quick_device_data(n, seed=9)
        part = partition_betti(n, workers)
        for w in range(workers):
            mine = np.flatnonzero(part.worker_of == w)
            batches, placement = form_worker_share(n, part.items, mine, z)
            assert sorted(placement) == [int(i) for i in mine]
            for idx in mine:
                item = part.items[idx]
                cat, pos = placement[int(idx)]
                assert cat == item.category
                ref = form_pair_block(
                    n,
                    item.row,
                    item.col,
                    z[item.row, item.col],
                    categories=[item.category],
                )
                assert_blocks_identical(batches[cat].block(pos), ref)


class TestCacheBookkeeping:
    def test_hits_misses_and_residency(self):
        clear_template_cache()
        get_template(5)
        stats = cache_stats()
        assert (stats.entries, stats.misses, stats.hits) == (1, 1, 0)
        assert stats.bytes_resident > 0
        assert stats.build_seconds > 0
        get_template(5)
        stats = cache_stats()
        assert (stats.entries, stats.misses, stats.hits) == (1, 1, 1)
        get_template(5, (Category.UA,))
        assert cache_stats().entries == 2
        clear_template_cache()
        stats = cache_stats()
        assert (stats.entries, stats.bytes_resident) == (0, 0)

    def test_warm_prebuilds_without_double_counting(self):
        clear_template_cache()
        warm_template_cache(4, [(Category.SOURCE,), (Category.DEST,)])
        stats = cache_stats()
        assert stats.entries == 2
        assert stats.misses == 2

    def test_templates_are_read_only(self):
        tpl = get_template(3)
        with pytest.raises(ValueError):
            tpl.lookup[0, 0] = 99

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            get_template(4, (Category.UA, Category.UA))

    def test_formation_mode_validation(self):
        assert check_formation_mode("cached") == "cached"
        assert check_formation_mode("legacy") == "legacy"
        with pytest.raises(ValueError):
            check_formation_mode("turbo")
