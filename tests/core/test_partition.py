"""Tests for the three work decompositions of §IV."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import Category
from repro.core.partition import (
    effective_parallelism,
    hole_of_pair,
    make_items,
    partition,
    partition_balanced,
    partition_betti,
    partition_by_category,
)
from repro.core.categories import total_terms


class TestItems:
    @given(st.integers(2, 20))
    @settings(max_examples=15, deadline=None)
    def test_item_costs_sum_to_total_terms(self, n):
        items = make_items(n)
        assert len(items) == 4 * n * n
        assert sum(it.cost for it in items) == total_terms(n)

    def test_item_cost_values(self):
        items = make_items(5)
        light = [it for it in items if it.category == Category.SOURCE]
        heavy = [it for it in items if it.category == Category.UA]
        assert all(it.cost == 5 for it in light)
        assert all(it.cost == 20 for it in heavy)


class TestCategoryPartition:
    def test_always_four_workers(self):
        p = partition_by_category(6)
        assert p.num_workers == 4

    def test_worker_equals_category(self):
        p = partition_by_category(4)
        for item, w in zip(p.items, p.worker_of):
            assert w == int(item.category)

    def test_skew_grows_with_n(self):
        """The category split's imbalance approaches 2x as n grows
        (heavy categories dominate)."""
        imb_small = partition_by_category(3).imbalance()
        imb_large = partition_by_category(30).imbalance()
        assert imb_large > imb_small
        assert imb_large > 1.8


class TestBalancedPartition:
    @given(st.integers(2, 15), st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_every_item_assigned(self, n, k):
        p = partition_balanced(n, k)
        assert len(p.worker_of) == len(p.items)
        assert p.worker_of.max() < k

    @given(st.integers(3, 15), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_balanced_beats_category_makespan(self, n, k):
        """LPT with >= 4 workers is never worse than the 4-category
        split (the whole point of Balanced Parallel)."""
        if k < 4:
            k = 4
        balanced = partition_balanced(n, k)
        category = partition_by_category(n)
        assert balanced.makespan() <= category.makespan() + 1e-9

    def test_near_perfect_balance(self):
        p = partition_balanced(10, 8)
        assert p.imbalance() < 1.05

    def test_deterministic(self):
        a = partition_balanced(8, 5)
        b = partition_balanced(8, 5)
        np.testing.assert_array_equal(a.worker_of, b.worker_of)


class TestBettiPartition:
    def test_holes_bound_useful_workers(self):
        """With more workers than holes, extra workers get nothing."""
        n = 3  # 4 holes
        p = partition_betti(n, 10)
        used = np.unique(p.worker_of)
        assert len(used) == (n - 1) ** 2 == 4
        assert effective_parallelism(n, 10) == 4

    def test_hole_of_pair_mapping(self):
        n = 4
        assert hole_of_pair(0, 0, n) == 0
        assert hole_of_pair(3, 3, n) == 8  # folded to last cell
        assert hole_of_pair(1, 2, n) == 1 * 3 + 2

    @given(st.integers(3, 12), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_all_items_of_a_hole_share_a_worker(self, n, k):
        p = partition_betti(n, k)
        hole_worker: dict[int, int] = {}
        for item, w in zip(p.items, p.worker_of):
            hole = hole_of_pair(item.row, item.col, n)
            assert hole_worker.setdefault(hole, int(w)) == int(w)

    @given(st.integers(4, 14), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_reasonable_balance(self, n, k):
        """Round-robin over holes stays within ~2x of perfect balance
        when holes per worker >= 2."""
        if (n - 1) ** 2 < 2 * k:
            return
        p = partition_betti(n, k)
        assert p.imbalance() < 2.0


class TestDispatch:
    def test_partition_by_name(self):
        assert partition(5, 3, "balanced").scheme == "balanced"
        assert partition(5, 3, "betti").scheme == "betti"
        assert partition(5, 3, "category").scheme == "category"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            partition(5, 3, "magic")

    def test_loads_sum_to_total(self):
        for scheme in ("category", "balanced", "betti"):
            p = partition(6, 4, scheme)
            assert p.loads().sum() == pytest.approx(p.total_cost())

    def test_tasks_of_worker(self):
        p = partition_balanced(4, 3)
        all_items = sorted(
            idx for w in range(3) for idx in np.flatnonzero(p.worker_of == w)
        )
        assert all_items == list(range(len(p.items)))
