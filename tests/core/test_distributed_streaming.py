"""Tests for MPI-style distributed formation and streaming formation."""

import numpy as np
import pytest

from repro.core.distributed import MPIFormation
from repro.core.streaming import (
    BinaryFileSink,
    CountingSink,
    MemoryWatermarkSink,
    TeeSink,
    stream_formation,
    stream_to_file,
)
from repro.core.strategies import SingleThread
from repro.io.equations_io import load_blocks_binary
from repro.mea.wetlab import quick_device_data


@pytest.fixture(scope="module")
def device6():
    return quick_device_data(6, seed=31)


@pytest.fixture(scope="module")
def baseline6(device6):
    _, z = device6
    return SingleThread().run(z)


class TestMPIFormation:
    @pytest.mark.parametrize("size", [1, 2, 3])
    def test_matches_single_thread(self, device6, baseline6, size):
        _, z = device6
        report = MPIFormation(size).run(z)
        assert report.terms_formed == baseline6.terms_formed
        assert report.checksum == pytest.approx(baseline6.checksum)
        assert report.num_workers == size
        assert report.per_worker_terms.sum() == report.terms_formed

    def test_part_files_reassemble(self, device6, baseline6, tmp_path):
        _, z = device6
        report = MPIFormation(2).run(z, output_dir=tmp_path)
        assert len(report.part_files) == 2
        blocks = []
        for f in report.part_files:
            blocks.extend(load_blocks_binary(f))
        assert sum(b.checksum() for b in blocks) == pytest.approx(
            baseline6.checksum
        )
        assert report.bytes_written == sum(
            len(open(f, "rb").read()) for f in report.part_files
        )

    def test_validation(self, device6):
        _, z = device6
        with pytest.raises(ValueError):
            MPIFormation(0)
        with pytest.raises(ValueError):
            MPIFormation(2).run(np.ones((2, 3)))
        with pytest.raises(ValueError):
            MPIFormation(2).run(z, fmt="text")


class TestStreaming:
    def test_counting_sink_matches_baseline(self, device6, baseline6):
        _, z = device6
        sink = CountingSink()
        report = stream_formation(z, sink)
        assert sink.terms == baseline6.terms_formed
        assert sink.checksum == pytest.approx(baseline6.checksum)
        assert sink.equations == 2 * 6**3
        assert report.pairs_formed == 36
        assert report.terms_per_second() > 0

    def test_stream_to_file_roundtrip(self, device6, baseline6, tmp_path):
        _, z = device6
        path = tmp_path / "stream.bin"
        report, nbytes = stream_to_file(z, path)
        assert nbytes == path.stat().st_size
        blocks = load_blocks_binary(path)
        assert sum(b.num_terms for b in blocks) == baseline6.terms_formed

    def test_tee_sink(self, device6, tmp_path):
        _, z = device6
        counting = CountingSink()
        with open(tmp_path / "t.bin", "wb") as fh:
            tee = TeeSink(sinks=(counting, BinaryFileSink(fh=fh)))
            stream_formation(z, tee)
        assert counting.terms == 2 * 6**4

    def test_memory_bounded_at_scale(self, tmp_path):
        """Streaming a 50x50 system (12.5M terms) must not grow RSS by
        more than a small constant — the whole point of the mode."""
        from repro.instrument.memory import rss_bytes

        _, z = quick_device_data(50, seed=32)
        before = rss_bytes()
        watermark = MemoryWatermarkSink(every=100)
        with open(tmp_path / "big.bin", "wb") as fh:
            tee = TeeSink(sinks=(BinaryFileSink(fh=fh), watermark))
            report = stream_formation(z, tee)
        assert report.terms_formed == 2 * 50**4
        growth = watermark.peak - before
        # Full in-memory system would be ~205 MB; streaming stays
        # within a 64 MB envelope (page cache noise included).
        assert growth < 64 * 2**20

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            stream_formation(np.ones((2, 3)), CountingSink())
