"""Tests for the installation self-test."""

import numpy as np
import pytest

from repro.core.selftest import CheckResult, SelfTestReport, run_selftest


class TestRunSelftest:
    def test_all_checks_pass(self):
        report = run_selftest(n=4)
        assert report.passed
        assert report.num_failed == 0
        assert len(report.checks) == 5

    def test_check_names_stable(self):
        report = run_selftest(n=4)
        names = [c.name for c in report.checks]
        assert names == [
            "forward/inverse round-trip",
            "joint-constraint consistency",
            "topology/physics agreement",
            "parallel strategy equivalence",
            "equation serialization round-trip",
        ]

    def test_render_mentions_every_check(self):
        report = run_selftest(n=4)
        text = report.render()
        assert text.count("[PASS]") == 5
        assert "all invariants hold" in text

    def test_timings_recorded(self):
        report = run_selftest(n=4)
        assert all(c.elapsed_seconds >= 0 for c in report.checks)

    def test_failure_reported_not_raised(self):
        """A failing check lands in the report; others still run."""
        failing = CheckResult(
            name="synthetic", passed=False, detail="boom",
            elapsed_seconds=0.0,
        )
        report = SelfTestReport(checks=(failing,))
        assert not report.passed
        assert report.num_failed == 1
        assert "FAILED" in report.render()
        assert "boom" in report.render()


class TestCLIIntegration:
    def test_cli_selftest_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
