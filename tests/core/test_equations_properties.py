"""Hypothesis property tests on equation-formation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import Category
from repro.core.equations import (
    ALL_CATEGORIES,
    NODE_DRIVE,
    NODE_FIRST_UA,
    NODE_GROUND,
    form_pair_block,
)
from repro.io.equations_io import read_blocks_binary, write_block_binary

pair_params = st.integers(2, 12).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.floats(1.0, 1e5),
    )
)


class TestStructuralInvariants:
    @given(pair_params)
    @settings(max_examples=60, deadline=None)
    def test_indices_in_range(self, params):
        n, i, j, z = params
        blk = form_pair_block(n, i, j, z=z)
        assert blk.r_row.min() >= 0 and blk.r_row.max() < n
        assert blk.r_col.min() >= 0 and blk.r_col.max() < n
        max_code = NODE_FIRST_UA + 2 * (n - 1) - 1
        assert blk.v_plus.min() >= 0 and blk.v_plus.max() <= max_code
        assert blk.v_minus.min() >= 0 and blk.v_minus.max() <= max_code
        assert set(np.unique(blk.sign)) <= {-1, 1}

    @given(pair_params)
    @settings(max_examples=60, deadline=None)
    def test_every_equation_has_n_terms(self, params):
        n, i, j, z = params
        blk = form_pair_block(n, i, j, z=z)
        counts = np.bincount(blk.eq_id, minlength=2 * n)
        assert (counts == n).all()

    @given(pair_params)
    @settings(max_examples=60, deadline=None)
    def test_every_resistor_row_or_col_touches_pair(self, params):
        """Each term's resistor lies on the driven row, the driven
        column, or an intermediate crossing — never fully unrelated
        to the pair's current flow (all current enters at H_i and
        leaves at V_j)."""
        n, i, j, z = params
        blk = form_pair_block(n, i, j, z=z)
        # SOURCE terms: resistor on row i; DEST: on column j.
        src = blk.category[blk.eq_id] == Category.SOURCE
        # eq_id indexes equations; map term -> its category:
        term_cat = blk.category[blk.eq_id]
        assert (blk.r_row[term_cat == Category.SOURCE] == i).all()
        assert (blk.r_col[term_cat == Category.DEST] == j).all()

    @given(pair_params)
    @settings(max_examples=40, deadline=None)
    def test_drive_node_only_on_driven_side(self, params):
        """The drive voltage U appears only in terms whose resistor
        touches the driven horizontal wire."""
        n, i, j, z = params
        blk = form_pair_block(n, i, j, z=z)
        drives = blk.v_plus == NODE_DRIVE
        assert (blk.r_row[drives] == i).all()

    @given(pair_params)
    @settings(max_examples=40, deadline=None)
    def test_ground_only_on_driven_column(self, params):
        n, i, j, z = params
        blk = form_pair_block(n, i, j, z=z)
        grounds = blk.v_minus == NODE_GROUND
        assert (blk.r_col[grounds] == j).all()

    @given(pair_params)
    @settings(max_examples=40, deadline=None)
    def test_each_resistor_used_bounded_times(self, params):
        """No resistor appears in more than 4 terms of a pair block
        (once per category at most — each current crosses a resistor
        from at most both of its endpoints' balance equations)."""
        n, i, j, z = params
        blk = form_pair_block(n, i, j, z=z)
        flat = blk.r_row.astype(np.int64) * n + blk.r_col
        counts = np.bincount(flat, minlength=n * n)
        assert counts.max() <= 4

    @given(pair_params, st.sampled_from(list(Category)))
    @settings(max_examples=40, deadline=None)
    def test_category_subset_is_slice_of_full(self, params, cat):
        n, i, j, z = params
        sub = form_pair_block(n, i, j, z=z, categories=[cat])
        assert (sub.category == cat).all()
        full = form_pair_block(n, i, j, z=z)
        assert sub.num_terms == int((full.category[full.eq_id] == cat).sum())


class TestSerializationProperties:
    @given(pair_params, st.sets(st.sampled_from(list(Category)), min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_binary_roundtrip_arbitrary_blocks(self, params, cats):
        import io

        n, i, j, z = params
        cats_sorted = [c for c in ALL_CATEGORIES if c in cats]
        blk = form_pair_block(n, i, j, z=z, categories=cats_sorted)
        buf = io.BytesIO()
        write_block_binary(blk, buf)
        buf.seek(0)
        (back,) = read_blocks_binary(buf)
        np.testing.assert_array_equal(back.eq_id, blk.eq_id)
        np.testing.assert_array_equal(back.sign, blk.sign)
        np.testing.assert_array_equal(back.r_row, blk.r_row)
        np.testing.assert_array_equal(back.r_col, blk.r_col)
        np.testing.assert_array_equal(back.v_plus, blk.v_plus)
        np.testing.assert_array_equal(back.v_minus, blk.v_minus)
        np.testing.assert_array_equal(back.rhs, blk.rhs)
        np.testing.assert_array_equal(back.category, blk.category)
        assert back.z == blk.z and back.voltage == blk.voltage
        assert back.checksum() == pytest.approx(blk.checksum())
