"""Regression tests for the Gauss–Newton fast path.

These pin the behaviors the solver rewrite introduced: factorization
reuse within an iteration (residual and Jacobian share one cached
Cholesky factor), lazy pinv materialization, robustness to non-finite
trial costs, and agreement with the retained reference solver.
"""

import numpy as np
import pytest

from repro.core.solver import (
    solve,
    solve_nested,
    solve_nested_reference,
)
from repro.kirchhoff import forward
from repro.observe.observer import Observer


def _field(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(np.log(8.0), 0.35, (n, n)))


class TestFactorReuse:
    """One Laplacian factorization per visited field, not per use."""

    def test_residual_and_jacobian_share_factor(self):
        r_true = _field(5, seed=1)
        z = forward.measure(r_true)
        forward.clear_laplacian_cache()
        result = solve_nested(z)
        assert result.converged
        stats = forward.laplacian_cache_stats()
        # Each GN iteration visits at most a couple of candidate fields
        # (accepted step + line-search trials).  The forward residual
        # and the Jacobian of an accepted field must share one factor:
        # misses therefore count *fields*, never uses.  Every Jacobian
        # assembly is a cache hit on the factor its residual built.
        # (The final iteration detects convergence before assembling a
        # Jacobian, hence ``iterations - 1`` working iterations.)
        assert stats.misses <= result.iterations * 2 + 2
        assert stats.hits >= result.iterations - 1

    def test_drive_only_workload_never_materializes_pinv(self):
        r = _field(6, seed=2)
        forward.clear_laplacian_cache()
        forward.solve_all_drives(r)
        forward.solve_drive(r, 0, 0)
        stats = forward.laplacian_cache_stats()
        # Drives run through factor.solve() only; the dense pinv stays
        # unmaterialized.  (measure/effective_resistance_matrix DO
        # materialize it — that is their documented O(N³) route.)
        assert stats.pinv_materializations == 0

    def test_solver_materializes_one_pinv_per_field(self):
        r_true = _field(4, seed=3)
        z = forward.measure(r_true)
        forward.clear_laplacian_cache()
        result = solve_nested(z)
        assert result.converged
        stats = forward.laplacian_cache_stats()
        # The Jacobian needs the dense pinv once per *accepted* field;
        # rejected line-search trials only run the batched drives.
        assert 1 <= stats.pinv_materializations <= result.iterations + 1

    def test_repeat_solve_hits_warm_cache(self):
        r_true = _field(4, seed=4)
        z = forward.measure(r_true)
        forward.clear_laplacian_cache()
        solve_nested(z)
        cold = forward.laplacian_cache_stats()
        solve_nested(z)
        warm = forward.laplacian_cache_stats()
        # The second solve walks the identical iterate sequence, so
        # every factorization it needs is already cached.
        assert warm.misses == cold.misses
        assert warm.hits > cold.hits


class TestRobustness:
    @pytest.mark.filterwarnings("ignore::scipy.linalg.LinAlgWarning")
    def test_nonfinite_trial_cost_is_rejected_not_raised(self):
        # Heavy noise used to push line-search trials into exp()
        # overflow, where forward.measure raised ValueError from deep
        # inside the drive solve.  The fast path treats a non-finite
        # trial as infinite cost and keeps halving the step.
        rng = np.random.default_rng(11)
        r_true = _field(6, seed=11)
        z = forward.measure(r_true) * np.exp(rng.normal(0.0, 0.6, (6, 6)))
        result = solve_nested(z, max_iter=30)
        assert np.isfinite(result.residual_norm)
        assert np.all(np.isfinite(result.r_estimate))
        assert np.all(result.r_estimate > 0)

    def test_result_records_backend(self):
        z = forward.measure(_field(4, seed=6))
        assert solve_nested(z).backend == "numpy"
        assert solve(z, method="nested").backend == "numpy"


class TestReferenceAgreement:
    """The fast path must land on the reference solver's answer."""

    @pytest.mark.parametrize("n", [4, 8])
    def test_noise_free_agreement(self, n):
        r_true = _field(n, seed=20 + n)
        z = forward.measure(r_true)
        fast = solve_nested(z)
        ref = solve_nested_reference(z)
        assert fast.converged and ref.converged
        for result in (fast, ref):
            max_rel = np.max(np.abs(result.r_estimate - r_true) / r_true)
            assert max_rel < 1e-8
        cross = np.max(np.abs(fast.r_estimate - ref.r_estimate) / r_true)
        assert cross < 1e-10

    def test_fast_path_is_not_slower_in_iterations(self):
        r_true = _field(8, seed=30)
        z = forward.measure(r_true)
        fast = solve_nested(z)
        ref = solve_nested_reference(z)
        # The refined direct solve yields near-exact GN steps, so the
        # fast path converges in no more iterations than the
        # normal-equations reference.
        assert fast.iterations <= ref.iterations


class TestObservability:
    def test_iteration_histogram_recorded(self):
        obs = Observer()
        z = forward.measure(_field(4, seed=7))
        result = solve_nested(z, observer=obs)
        snapshot = obs.metrics.snapshot()
        hist = snapshot["solver.iteration.seconds"]
        # The final iteration detects convergence and breaks before
        # the timing observation, so a converged solve records one
        # fewer sample than ``iterations``.
        assert result.converged
        assert hist["count"] == result.iterations - 1

    def test_cache_gauges_include_pinv_materializations(self):
        from repro.observe.metrics import MetricsRegistry, sync_cache_gauges

        forward.clear_laplacian_cache()
        z = forward.measure(_field(4, seed=8))
        solve_nested(z)
        registry = MetricsRegistry()
        sync_cache_gauges(registry)
        snapshot = registry.snapshot()
        key = "cache.laplacian-pinv.pinv_materializations"
        assert snapshot[key]["value"] >= 1.0
