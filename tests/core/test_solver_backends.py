"""Backend parity, fallback, and blocked-kernel bit-parity tests.

The compiled backend's contract is *bit-identity* with the numpy
backend (same floating-point operations in the same order), so the
parity suite asserts exact array equality and identical iteration
counts — not tolerances.  When numba is absent (the common CI case),
a pure-Python ``njit`` shim stands in so the compiled code path is
still exercised end to end; the dedicated fallback tests then assert
the graceful degradation the production path takes.
"""

import sys
import types

import numpy as np
import pytest

from repro.core import solver_backends as sb
from repro.core.solver import (
    nested_jacobian,
    nested_jacobian_reference,
    solve,
    solve_nested,
)
from repro.kirchhoff import forward
from repro.observe.observer import Observer


def _field(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(np.log(8.0), 0.35, (n, n)))


@pytest.fixture
def fake_numba(monkeypatch):
    """Make the compiled backend importable via a pure-Python njit shim.

    The jit kernels are plain loops + ``np.dot``, so running them
    uncompiled is slow but exact — which is the point: the parity
    tests exercise the *compiled code path* (kernel selection,
    argument marshalling, operation order) without requiring numba.
    """
    module = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate

    module.njit = njit
    module.__version__ = "shim"
    monkeypatch.setitem(sys.modules, "numba", module)
    monkeypatch.setattr(sb, "_NUMBA_AVAILABLE", True)
    monkeypatch.setattr(sb, "_NUMBA_KERNELS", None)
    yield module
    sb._NUMBA_KERNELS = None


@pytest.fixture
def no_numba(monkeypatch):
    """Force the numba-absent environment regardless of the machine."""
    monkeypatch.setitem(sys.modules, "numba", None)
    monkeypatch.setattr(sb, "_NUMBA_AVAILABLE", False)


class TestKnobValidation:
    def test_accepts_known_modes(self):
        assert sb.check_backend_mode("numpy") == "numpy"
        assert sb.check_backend_mode("compiled") == "compiled"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="backend"):
            sb.check_backend_mode("fortran")

    def test_solve_rejects_unknown_backend(self):
        z = forward.measure(_field(4, 0))
        with pytest.raises(ValueError, match="backend"):
            solve_nested(z, backend="fortran")

    def test_engine_rejects_unknown_backend(self):
        from repro.core.engine import ParmaEngine

        with pytest.raises(ValueError, match="backend"):
            ParmaEngine(backend="fortran")


class TestBlockedJacobianParity:
    """The blocked kernel must be bit-identical to the historical one."""

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_blocked_matches_reference_exactly(self, n):
        r = _field(n, seed=n)
        assert np.array_equal(nested_jacobian(r), nested_jacobian_reference(r))

    def test_blocked_matches_when_blocks_split_rows(self, monkeypatch):
        # Shrink the block target so even n=6 assembles in many blocks.
        monkeypatch.setattr(sb, "JACOBIAN_BLOCK_TARGET_BYTES", 8 * 6 * 6 * 6)
        r = _field(6, seed=3)
        assert sb.jacobian_row_block(6, 6) == 1
        assert np.array_equal(nested_jacobian(r), nested_jacobian_reference(r))

    def test_fused_row_scaling_matches_two_pass(self):
        r = _field(5, seed=9)
        z = forward.measure(r)
        pinv = forward.laplacian_pinv_cached(r)
        fused = sb.transfer_jacobian(pinv, r, z=z)
        two_pass = nested_jacobian_reference(r) / z.ravel()[:, None]
        assert np.array_equal(fused, two_pass)

    def test_row_block_bounds(self):
        assert sb.jacobian_row_block(100, 100) >= 1
        # One block must stay under the documented byte target unless
        # even a single row exceeds it.
        block = sb.jacobian_row_block(60, 60)
        assert block * 8 * 60 * 60 * 60 <= sb.JACOBIAN_BLOCK_TARGET_BYTES
        # Tiny devices take the whole matrix in one block.
        assert sb.jacobian_row_block(4, 4) == 4


class TestCompiledBackendParity:
    @pytest.mark.parametrize("n", [3, 5])
    def test_jacobian_bit_identical(self, fake_numba, n):
        r = _field(n, seed=n)
        z = forward.measure(r)
        pinv = forward.laplacian_pinv_cached(r)
        assert np.array_equal(
            sb.transfer_jacobian(pinv, r, backend="compiled"),
            sb.transfer_jacobian(pinv, r, backend="numpy"),
        )
        assert np.array_equal(
            sb.transfer_jacobian(pinv, r, z=z, backend="compiled"),
            sb.transfer_jacobian(pinv, r, z=z, backend="numpy"),
        )

    def test_fused_jtj_grad_close(self, fake_numba):
        rng = np.random.default_rng(0)
        jac = rng.normal(size=(16, 16))
        res = rng.normal(size=16)
        jtj_c, grad_c = sb.fused_jtj_grad(jac, res, backend="compiled")
        jtj_n, grad_n = sb.fused_jtj_grad(jac, res, backend="numpy")
        np.testing.assert_allclose(jtj_c, jtj_n, rtol=1e-15)
        np.testing.assert_allclose(grad_c, grad_n, rtol=1e-15)

    @pytest.mark.parametrize("method", ["nested", "regularized", "bounded"])
    @pytest.mark.parametrize("n", [4, 6])
    def test_solve_parity_across_methods(self, fake_numba, method, n):
        """r_estimate parity ≤ 1e-12 and identical iteration counts."""
        r_true = _field(n, seed=10 + n)
        z = forward.measure(r_true)
        kwargs = {"lam": 1e-3} if method == "regularized" else {}
        a = solve(z, method=method, backend="numpy", **kwargs)
        b = solve(z, method=method, backend="compiled", **kwargs)
        assert b.backend == "compiled"
        assert a.iterations == b.iterations
        max_rel = np.max(np.abs(b.r_estimate - a.r_estimate) / a.r_estimate)
        assert max_rel <= 1e-12

    def test_solve_parity_with_warm_cache(self, fake_numba):
        """Parity holds whether or not the factor cache is warm."""
        r_true = _field(5, seed=21)
        z = forward.measure(r_true)
        forward.clear_laplacian_cache()
        cold = solve_nested(z, backend="compiled")
        warm = solve_nested(z, backend="compiled")
        baseline = solve_nested(z, backend="numpy")
        for result in (cold, warm):
            assert result.iterations == baseline.iterations
            assert np.array_equal(result.r_estimate, baseline.r_estimate)

    def test_backend_status_reports_shim(self, fake_numba):
        status = sb.backend_status()
        assert status["numba_available"] is True
        assert status["numba_version"] == "shim"


class TestNumbaFallback:
    def test_resolve_falls_back_and_records_metric(self, no_numba):
        obs = Observer()
        assert sb.resolve_backend("compiled", obs) == "numpy"
        snapshot = obs.metrics.snapshot()
        assert snapshot["solver.backend.fallback"]["value"] == 1.0

    def test_solve_compiled_without_numba_is_not_an_error(self, no_numba):
        z = forward.measure(_field(4, seed=2))
        result = solve_nested(z, backend="compiled")
        assert result.converged
        assert result.backend == "numpy"  # records what actually ran

    def test_import_error_is_cached_and_quiet(self, no_numba):
        assert sb.numba_available() is False
        status = sb.backend_status()
        assert status["numba_available"] is False
        assert status["numba_version"] is None

    def test_numpy_backend_never_touches_numba(self, no_numba):
        z = forward.measure(_field(4, seed=5))
        result = solve_nested(z, backend="numpy")
        assert result.converged and result.backend == "numpy"
