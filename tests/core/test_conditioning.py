"""Tests for the ill-posedness diagnostics."""

import numpy as np
import pytest

from repro.core.conditioning import (
    analyze_conditioning,
    conditioning_vs_size,
    empirical_noise_amplification,
)


class TestAnalyze:
    def test_report_fields(self):
        rep = analyze_conditioning(np.full((4, 4), 3000.0))
        assert rep.sigma_max >= rep.sigma_min > 0
        assert rep.condition_number == pytest.approx(
            rep.sigma_max / rep.sigma_min
        )
        assert rep.worst_direction.shape == (4, 4)
        assert rep.noise_amplification == pytest.approx(1 / rep.sigma_min)

    def test_condition_grows_with_size(self):
        """The design curve: κ increases with n (more parallel paths
        washing out each resistor's signature)."""
        reports = conditioning_vs_size([3, 5, 8])
        kappas = [r.condition_number for r in reports]
        assert kappas[0] < kappas[1] < kappas[2]

    def test_worst_direction_is_oscillatory(self):
        """The hardest-to-see perturbation is high-frequency: its
        lattice-Laplacian energy exceeds that of the easiest one."""
        r = np.full((5, 5), 3000.0)
        rep = analyze_conditioning(r)
        from repro.core.regularized import log_laplacian_operator

        lop = log_laplacian_operator(5, 5)
        worst_rough = np.linalg.norm(lop @ rep.worst_direction.ravel())
        # Compare against a smooth pattern of the same norm.
        smooth = np.ones(25) / 5.0
        smooth_rough = np.linalg.norm(lop @ smooth)
        assert worst_rough > 10 * smooth_rough

    def test_scale_invariance(self):
        """κ depends on the field's shape, not its scale (log/relative
        normalizations cancel a global factor)."""
        a = analyze_conditioning(np.full((4, 4), 1000.0))
        b = analyze_conditioning(np.full((4, 4), 9000.0))
        assert a.condition_number == pytest.approx(
            b.condition_number, rel=1e-9
        )


class TestEmpirical:
    def test_amplification_within_spectral_bounds(self):
        r = np.full((5, 5), 3000.0)
        rep = analyze_conditioning(r)
        amp = empirical_noise_amplification(r, trials=4)
        # RMS amplification lies between the best and worst case.
        assert 1.0 / rep.sigma_max <= amp <= rep.noise_amplification * 1.1

    def test_amplification_grows_with_size(self):
        small = empirical_noise_amplification(
            np.full((3, 3), 3000.0), trials=4
        )
        large = empirical_noise_amplification(
            np.full((7, 7), 3000.0), trials=4
        )
        assert large > small
