"""Failover models: rank death, re-dispatch, and orphan stealing."""

import numpy as np
import pytest

from repro.parallel.simcluster import (
    Z820_SMP,
    simulate_strong_scaling,
    simulate_with_failures,
)
from repro.parallel.workstealing import (
    simulate_runtime_stealing,
    simulate_stealing_with_failures,
)


def uniform_costs(count, each=1e-3):
    return np.full(count, each)


class TestClusterFailover:
    def test_failure_costs_more_than_clean_run(self):
        costs = uniform_costs(256)
        clean = simulate_strong_scaling(costs, 8, Z820_SMP)
        failed = simulate_with_failures(costs, 8, Z820_SMP, failed_ranks=(3,))
        assert failed.total > clean.total
        assert failed.failure_overhead > 0
        assert failed.baseline_total == pytest.approx(clean.total)

    def test_lost_work_and_redispatch_accounted(self):
        failed = simulate_with_failures(
            uniform_costs(256), 8, Z820_SMP,
            failed_ranks=(3,), failure_fraction=0.5,
        )
        assert failed.lost_work > 0
        assert failed.tasks_redispatched > 0
        assert failed.failed_ranks == (3,)

    def test_deterministic(self):
        kwargs = dict(failed_ranks=(1, 5), failure_fraction=0.25)
        a = simulate_with_failures(uniform_costs(128), 8, Z820_SMP, **kwargs)
        b = simulate_with_failures(uniform_costs(128), 8, Z820_SMP, **kwargs)
        assert a == b

    def test_more_deaths_cost_more(self):
        costs = uniform_costs(256)
        one = simulate_with_failures(costs, 8, Z820_SMP, failed_ranks=(3,))
        three = simulate_with_failures(
            costs, 8, Z820_SMP, failed_ranks=(3, 5, 6)
        )
        assert three.total > one.total

    def test_all_ranks_dead_rejected(self):
        with pytest.raises(ValueError):
            simulate_with_failures(
                uniform_costs(16), 2, Z820_SMP, failed_ranks=(0, 1)
            )


class TestStealingFailover:
    def test_survivors_finish_all_tasks(self):
        costs = uniform_costs(64, each=1.0)
        trace = simulate_stealing_with_failures(
            costs, 4, death_times={1: 3.0}
        )
        assert trace.failed_workers == (1,)
        assert trace.tasks_rerun >= 0
        clean = simulate_runtime_stealing(costs, 4)
        assert trace.makespan >= clean.makespan
        assert trace.overhead_vs(clean) >= 0

    def test_mid_task_death_loses_partial_work(self):
        # Worker 1 dies halfway through a 2-second task: that second
        # of execution is lost and the task reruns elsewhere.
        costs = np.full(8, 2.0)
        trace = simulate_stealing_with_failures(
            costs, 4, death_times={1: 1.0}
        )
        assert trace.lost_work_seconds > 0
        assert trace.tasks_rerun > 0

    def test_detection_latency_delays_recovery(self):
        costs = uniform_costs(32, each=1.0)
        fast = simulate_stealing_with_failures(
            costs, 4, death_times={1: 2.0}, detection_latency=0.0
        )
        slow = simulate_stealing_with_failures(
            costs, 4, death_times={1: 2.0}, detection_latency=5.0
        )
        assert slow.makespan >= fast.makespan

    def test_deterministic(self):
        costs = uniform_costs(50, each=0.7)
        a, b = (
            simulate_stealing_with_failures(
                costs, 5, death_times={2: 1.0, 4: 3.0}, detection_latency=0.5
            )
            for _ in range(2)
        )
        assert a.makespan == b.makespan
        assert a.steals == b.steals
        assert np.array_equal(a.finish_times, b.finish_times)
        assert a.failed_workers == b.failed_workers
        assert a.lost_work_seconds == b.lost_work_seconds

    def test_all_workers_dead_raises(self):
        with pytest.raises(RuntimeError, match="all workers died"):
            simulate_stealing_with_failures(
                np.full(16, 10.0), 2,
                death_times={0: 1.0, 1: 1.0},
            )


class TestFailoverObservability:
    """Both failover simulators report what they redispatched."""

    def test_redispatch_event_and_counters(self):
        from repro.observe.observer import Observer

        obs = Observer()
        result = simulate_with_failures(
            uniform_costs(256), 8, Z820_SMP, failed_ranks=(3,), observer=obs
        )
        events = [s for s in obs.tracer.spans
                  if s.name == "simcluster.redispatch"]
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["failed_ranks"] == [3]
        assert attrs["tasks_redispatched"] == result.tasks_redispatched
        snapshot = obs.metrics.snapshot()
        assert snapshot["simcluster.failures"]["value"] == 1
        assert (
            snapshot["simcluster.tasks_redispatched"]["value"]
            == result.tasks_redispatched
        )

    def test_no_failures_no_event(self):
        from repro.observe.observer import Observer

        obs = Observer()
        simulate_with_failures(
            uniform_costs(64), 4, Z820_SMP, failed_ranks=(), observer=obs
        )
        assert not [s for s in obs.tracer.spans
                    if s.name == "simcluster.redispatch"]

    def test_stealing_failover_event(self):
        from repro.observe.observer import Observer

        obs = Observer()
        trace = simulate_stealing_with_failures(
            uniform_costs(64, each=1.0), 4, death_times={1: 2.0},
            observer=obs,
        )
        events = [s for s in obs.tracer.spans
                  if s.name == "workstealing.failover"]
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["failed_workers"] == [1]
        assert attrs["tasks_rerun"] == trace.tasks_rerun
        snapshot = obs.metrics.snapshot()
        if trace.tasks_rerun:
            assert (
                snapshot["workstealing.tasks_rerun"]["value"]
                == trace.tasks_rerun
            )
