"""Tests for the PyMP-style fork/join regions (real forked processes)."""

import os
import signal

import numpy as np
import pytest

from repro.parallel.pymp import (
    Parallel,
    ParallelError,
    fork_available,
    shared_array,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires os.fork"
)


class TestSharedArray:
    def test_initialised_to_zero(self):
        arr = shared_array((4, 3))
        assert arr.shape == (4, 3)
        assert (arr == 0).all()

    def test_dtype_respected(self):
        arr = shared_array((5,), dtype=np.int64)
        assert arr.dtype == np.int64

    def test_visible_across_fork(self):
        arr = shared_array((2,))
        pid = os.fork()
        if pid == 0:
            arr[1] = 42.0
            os._exit(0)
        os.waitpid(pid, 0)
        assert arr[1] == 42.0


class TestParallelRegion:
    def test_single_member_runs_inline(self):
        out = shared_array((5,))
        with Parallel(1) as p:
            assert p.thread_num == 0
            for i in p.range(5):
                out[i] = i
        np.testing.assert_array_equal(out, np.arange(5.0))

    def test_static_range_covers_all_indices(self):
        out = shared_array((50,), dtype=np.int64)
        with Parallel(4) as p:
            for i in p.range(50):
                out[i] += 1
        assert (out == 1).all()

    def test_static_range_with_start_step(self):
        out = shared_array((30,), dtype=np.int64)
        with Parallel(3) as p:
            for i in p.range(6, 30, 2):
                out[i] += 1
        expected = np.zeros(30, dtype=np.int64)
        expected[6:30:2] = 1
        np.testing.assert_array_equal(out, expected)

    def test_block_range_is_contiguous_cover(self):
        out = shared_array((23,), dtype=np.int64)
        marks = shared_array((23,), dtype=np.int64)
        with Parallel(4) as p:
            for i in p.block_range(23):
                out[i] += 1
                marks[i] = p.thread_num
        assert (out == 1).all()
        # Each worker's indices form one contiguous run.
        for w in range(4):
            idx = np.flatnonzero(marks == w)
            if idx.size:
                assert (np.diff(idx) == 1).all()

    def test_dynamic_range_covers_all_indices(self):
        out = shared_array((40,), dtype=np.int64)
        with Parallel(3) as p:
            for i in p.xrange(40):
                out[i] += 1
        assert (out == 1).all()

    def test_iterate_sequence(self):
        items = [10, 20, 30, 40, 50]
        out = shared_array((5,), dtype=np.int64)
        with Parallel(2) as p:
            for val in p.iterate(items):
                out[items.index(val)] = val
        np.testing.assert_array_equal(out, items)

    def test_thread_numbers_distinct(self):
        seen = shared_array((3,), dtype=np.int64)
        with Parallel(3) as p:
            seen[p.thread_num] += 1
        assert (seen == 1).all()

    def test_lock_protects_counter(self):
        counter = shared_array((1,), dtype=np.int64)
        with Parallel(4) as p:
            for _ in p.range(200):
                with p.lock:
                    counter[0] += 1
        assert counter[0] == 200

    def test_child_failure_raises_in_parent(self):
        with pytest.raises(ParallelError):
            with Parallel(2) as p:
                if p.thread_num == 1:
                    raise RuntimeError("worker exploded")

    def test_nested_region_rejected(self):
        with pytest.raises(ParallelError):
            with Parallel(1):
                with Parallel(1):
                    pass

    def test_worksharing_outside_region_rejected(self):
        p = Parallel(2)
        with pytest.raises(ParallelError):
            list(p.range(5))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Parallel(0)

    def test_range_bad_step(self):
        with Parallel(1) as p:
            with pytest.raises(ValueError):
                list(p.range(0, 10, -1))

    def test_region_reusable_after_exit(self):
        out = shared_array((10,), dtype=np.int64)
        for _ in range(2):
            with Parallel(2) as p:
                for i in p.xrange(10):
                    out[i] += 1
        assert (out == 2).all()


class TestNonBlockingReap:
    """The join reaps children in completion order (WNOHANG poll)."""

    def test_failures_reported_in_rank_order(self):
        # Ranks 1 and 3 die with distinct codes, in reverse completion
        # order (rank 3 exits first); diagnostics stay rank-ordered.
        with pytest.raises(ParallelError) as err:
            with Parallel(4) as p:
                if p.thread_num == 1:
                    import time

                    time.sleep(0.3)
                    os._exit(11)
                if p.thread_num == 3:
                    os._exit(13)
        assert err.value.failed_ranks == (1, 3)
        assert err.value.exit_codes == (11, 13)

    def test_slow_rank_does_not_mask_fast_crash(self):
        # Rank 1 sleeps while rank 2 crashes immediately: the reap must
        # still collect rank 2's status promptly and rank 1's at exit.
        import time

        start = time.monotonic()
        with pytest.raises(ParallelError) as err:
            with Parallel(3) as p:
                if p.thread_num == 1:
                    time.sleep(0.5)
                if p.thread_num == 2:
                    os._exit(21)
        assert err.value.failed_ranks == (2,)
        assert time.monotonic() - start < 5.0

    def test_message_names_ranks_and_codes(self):
        with pytest.raises(ParallelError, match=r"ranks \(2,\)"):
            with Parallel(3) as p:
                if p.thread_num == 2:
                    os._exit(9)


class TestSignalDeath:
    """Workers killed by signals surface negative exit codes."""

    @pytest.mark.parametrize("sig", [signal.SIGKILL, signal.SIGTERM])
    def test_signal_number_is_negative_exit_code(self, sig):
        with pytest.raises(ParallelError) as err:
            with Parallel(2) as p:
                if p.thread_num == 1:
                    os.kill(os.getpid(), sig)
                    import time

                    time.sleep(30)  # pragma: no cover - signal races
        assert err.value.failed_ranks == (1,)
        assert err.value.exit_codes == (-int(sig),)

    def test_mixed_signal_and_exit_codes(self):
        with pytest.raises(ParallelError) as err:
            with Parallel(3) as p:
                if p.thread_num == 1:
                    os._exit(5)
                if p.thread_num == 2:
                    os.kill(os.getpid(), signal.SIGKILL)
        codes = dict(zip(err.value.failed_ranks, err.value.exit_codes))
        assert codes == {1: 5, 2: -int(signal.SIGKILL)}
