"""Tests for the mpi4py-like message-passing runtime (real processes)."""

import numpy as np
import pytest

from repro.parallel.mpi import ANY_TAG, MPIError, run_mpi


class TestPointToPoint:
    def test_send_recv_object(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send({"payload": [1, 2, 3]}, dest=1)
                return None
            return comm.recv(source=0)

        results = run_mpi(prog, 2)
        assert results[1] == {"payload": [1, 2, 3]}

    def test_send_recv_numpy_buffer(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(10, dtype="i"), dest=1)
                return None
            buf = np.empty(10, dtype="i")
            comm.Recv(buf, source=0)
            return buf.tolist()

        results = run_mpi(prog, 2)
        assert results[1] == list(range(10))

    def test_recv_buffer_mismatch(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(4, dtype="i"), dest=1)
                return True
            buf = np.empty(9, dtype="i")
            try:
                comm.Recv(buf, source=0)
            except MPIError:
                return "caught"
            return "missed"

        assert run_mpi(prog, 2)[1] == "caught"

    def test_tag_selective_receive(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)  # out of order
            first = comm.recv(source=0, tag=1)  # buffered
            return (first, second)

        assert run_mpi(prog, 2)[1] == ("first", "second")

    def test_any_tag(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("x", dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=ANY_TAG)

        assert run_mpi(prog, 2)[1] == "x"

    def test_send_to_self_rejected(self):
        def prog(comm):
            try:
                comm.send("oops", dest=comm.Get_rank())
            except MPIError:
                return "rejected"
            return "allowed"

        assert run_mpi(prog, 2) == ["rejected", "rejected"]


class TestCollectives:
    def test_bcast(self):
        def prog(comm):
            data = {"n": 17} if comm.Get_rank() == 0 else None
            return comm.bcast(data, root=0)["n"]

        assert run_mpi(prog, 3) == [17, 17, 17]

    def test_bcast_buffer(self):
        def prog(comm):
            buf = (
                np.arange(5.0)
                if comm.Get_rank() == 0
                else np.empty(5, dtype=np.float64)
            )
            comm.Bcast(buf, root=0)
            return buf.sum()

        assert run_mpi(prog, 3) == [10.0, 10.0, 10.0]

    def test_scatter_gather_roundtrip(self):
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            chunks = [i * 10 for i in range(size)] if rank == 0 else None
            mine = comm.scatter(chunks, root=0)
            return comm.gather(mine + 1, root=0)

        results = run_mpi(prog, 4)
        assert results[0] == [1, 11, 21, 31]
        assert results[1] is None

    def test_scatter_wrong_chunk_count(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                try:
                    comm.scatter([1], root=0)
                except MPIError:
                    # Unblock peers so the run terminates cleanly.
                    for r in range(1, comm.Get_size()):
                        comm.send(None, r, tag=-1001)
                    return "caught"
            else:
                comm.recv(0, tag=-1001)
            return "ok"

        assert run_mpi(prog, 2)[0] == "caught"

    def test_allreduce(self):
        def prog(comm):
            return comm.allreduce(comm.Get_rank() + 1)

        assert run_mpi(prog, 4) == [10, 10, 10, 10]

    def test_allreduce_buffer(self):
        def prog(comm):
            send = np.full(3, float(comm.Get_rank()))
            recv = np.empty(3)
            comm.Allreduce(send, recv)
            return recv.tolist()

        assert run_mpi(prog, 3) == [[3.0, 3.0, 3.0]] * 3

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.Get_rank() ** 2)

        assert run_mpi(prog, 3) == [[0, 1, 4]] * 3

    def test_reduce_custom_op(self):
        def prog(comm):
            return comm.reduce(comm.Get_rank() + 1, op=lambda a, b: a * b)

        assert run_mpi(prog, 4)[0] == 24

    def test_barrier(self):
        def prog(comm):
            comm.barrier()
            return comm.Get_rank()

        assert run_mpi(prog, 3) == [0, 1, 2]


class TestRuntime:
    def test_single_rank(self):
        assert run_mpi(lambda comm: comm.Get_size(), 1) == [1]

    def test_rank_failure_propagates(self):
        def prog(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("rank down")
            return "ok"

        with pytest.raises(MPIError):
            run_mpi(prog, 2)

    def test_extra_args(self):
        def prog(comm, offset):
            return comm.Get_rank() + offset

        assert run_mpi(prog, 2, args=(100,)) == [100, 101]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_mpi(lambda c: None, 0)

    def test_parallel_pi_like_reduction(self):
        """The mpi4py tutorial's compute-pi pattern (guide example)."""

        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            n = 200
            h = 1.0 / n
            s = sum(
                4.0 / (1.0 + ((i + 0.5) * h) ** 2)
                for i in range(rank, n, size)
            )
            return comm.allreduce(s * h)

        results = run_mpi(prog, 4)
        assert results[0] == pytest.approx(np.pi, abs=1e-4)
        assert all(r == results[0] for r in results)
