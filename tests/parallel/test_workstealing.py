"""Tests for deterministic balanced scheduling and the stealing sim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.workstealing import (
    category_schedule,
    contiguous_schedule,
    lpt_schedule,
    simulate_runtime_stealing,
)

cost_lists = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60
)


class TestLPT:
    def test_empty_tasks(self):
        a = lpt_schedule([], 3)
        assert a.makespan == 0.0
        assert a.loads.tolist() == [0.0, 0.0, 0.0]

    def test_known_optimal(self):
        a = lpt_schedule([5, 3, 3, 2, 2, 1], 2)
        assert a.makespan == 8.0  # perfectly balanced

    @given(cost_lists, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_all_tasks_assigned_and_loads_consistent(self, costs, k):
        a = lpt_schedule(costs, k)
        assert len(a.worker_of) == len(costs)
        for w in range(k):
            expected = sum(costs[i] for i in a.tasks_of(w))
            assert a.loads[w] == pytest.approx(expected)

    @given(cost_lists, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_lpt_within_list_scheduling_bound(self, costs, k):
        """Graham's list-scheduling bound against the LP lower bound:
        makespan <= total/k + (1 - 1/k) * max_cost."""
        a = lpt_schedule(costs, k)
        total = sum(costs)
        biggest = max(costs, default=0.0)
        assert a.makespan <= total / k + (1 - 1 / k) * biggest + 1e-9
        # And never below the true lower bound.
        assert a.makespan >= max(total / k, biggest) - 1e-9

    @given(cost_lists, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_within_approximation_factor_of_contiguous(self, costs, k):
        """LPT is a (4/3 - 1/(3k))-approximation of the optimum, and a
        contiguous split is never better than the optimum — so LPT can
        exceed contiguous (e.g. [2, 58, 90, 59, 91] on 2 workers), but
        never by more than that factor."""
        factor = 4.0 / 3.0 - 1.0 / (3.0 * k)
        assert (
            lpt_schedule(costs, k).makespan
            <= factor * contiguous_schedule(costs, k).makespan + 1e-9
        )

    def test_deterministic(self):
        costs = [3.0, 3.0, 1.0, 7.0, 2.0]
        a = lpt_schedule(costs, 3)
        b = lpt_schedule(costs, 3)
        np.testing.assert_array_equal(a.worker_of, b.worker_of)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            lpt_schedule([-1.0], 2)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            lpt_schedule([1.0], 0)

    def test_imbalance_metric(self):
        perfect = lpt_schedule([1.0] * 8, 4)
        assert perfect.imbalance() == pytest.approx(1.0)


class TestContiguous:
    def test_blocks_are_contiguous(self):
        a = contiguous_schedule([1.0] * 10, 3)
        blocks = [a.tasks_of(w) for w in range(3)]
        assert [len(b) for b in blocks] == [4, 3, 3]
        for b in blocks:
            assert (np.diff(b) == 1).all()

    def test_skewed_costs_imbalance(self):
        costs = [10.0, 10.0, 1.0, 1.0]
        assert contiguous_schedule(costs, 2).imbalance() > 1.5


class TestCategorySchedule:
    def test_one_worker_per_category(self):
        costs = [5.0, 1.0, 5.0, 1.0]
        cats = [0, 1, 0, 1]
        a = category_schedule(costs, cats)
        assert a.num_workers == 2
        assert a.loads.tolist() == [10.0, 2.0]

    def test_extra_workers_idle(self):
        a = category_schedule([1.0, 2.0], [0, 1], num_workers=4)
        assert a.loads[2] == 0.0 and a.loads[3] == 0.0

    def test_too_few_workers_rejected(self):
        with pytest.raises(ValueError):
            category_schedule([1.0, 2.0, 3.0], [0, 1, 2], num_workers=2)

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            category_schedule([1.0], [0, 1])


class TestRuntimeStealing:
    @given(cost_lists, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_completes_all_work(self, costs, k):
        trace = simulate_runtime_stealing(costs, k)
        assert trace.makespan >= max(costs, default=0.0) - 1e-9
        assert trace.finish_times.sum() == pytest.approx(sum(costs))

    def test_stealing_fixes_contiguous_skew(self):
        costs = [10.0] * 2 + [1.0] * 20
        static = contiguous_schedule(costs, 4).makespan
        stolen = simulate_runtime_stealing(costs, 4).makespan
        assert stolen < static

    def test_steal_overhead_counts(self):
        costs = [10.0, 1.0, 1.0, 1.0]
        free = simulate_runtime_stealing(costs, 2, steal_overhead=0.0)
        paid = simulate_runtime_stealing(costs, 2, steal_overhead=5.0)
        if paid.steals:
            assert paid.makespan >= free.makespan

    def test_strided_initial_split(self):
        trace = simulate_runtime_stealing([1.0] * 10, 3, initial="strided")
        assert trace.makespan == pytest.approx(4.0)

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            simulate_runtime_stealing([1.0], 2, initial="random")
