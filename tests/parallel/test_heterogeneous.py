"""Tests for heterogeneous-cluster scheduling (paper §VII extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.heterogeneous import (
    HeterogeneousCluster,
    blind_schedule_speeds,
    ideal_heterogeneous_time,
    lpt_schedule_speeds,
)
from repro.parallel.simcluster import HPC_FDR
from repro.parallel.workstealing import lpt_schedule

cost_lists = st.lists(st.floats(0.1, 50.0), min_size=1, max_size=50)


class TestSpeedAwareLPT:
    def test_reduces_to_plain_lpt_for_uniform_speeds(self):
        costs = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        aware = lpt_schedule_speeds(costs, [1.0, 1.0])
        plain = lpt_schedule(costs, 2)
        assert aware.makespan == pytest.approx(plain.makespan)
        np.testing.assert_array_equal(aware.worker_of, plain.worker_of)

    def test_fast_worker_gets_more_work(self):
        costs = [1.0] * 30
        aware = lpt_schedule_speeds(costs, [1.0, 3.0])
        counts = np.bincount(aware.worker_of, minlength=2)
        assert counts[1] > 2 * counts[0]

    def test_loads_are_wall_clock(self):
        aware = lpt_schedule_speeds([4.0], [2.0])
        assert aware.loads[0] == pytest.approx(2.0)  # 4 units at 2x

    @given(cost_lists, st.lists(st.floats(0.5, 4.0), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_never_below_ideal_bound(self, costs, speeds):
        aware = lpt_schedule_speeds(costs, speeds)
        ideal = ideal_heterogeneous_time(costs, speeds)
        assert aware.makespan >= ideal - 1e-9

    @given(cost_lists, st.lists(st.floats(0.5, 4.0), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_aware_within_2x_of_optimal(self, costs, speeds):
        """Gonzalez–Ibarra–Sahni: LPT on uniform machines <= 2 OPT.

        (Aware is NOT always <= blind pointwise — hypothesis found
        costs [2,2,3] / speeds [3,4] where blind wins 1.0 vs 1.25 —
        the guarantee is against OPT, and the *systematic* gain on
        skewed clusters is asserted separately below.)
        """
        aware = lpt_schedule_speeds(costs, speeds)
        lower = max(
            ideal_heterogeneous_time(costs, speeds),
            max(costs) / max(speeds),
        )
        assert aware.makespan <= 2.0 * lower + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_schedule_speeds([1.0], [])
        with pytest.raises(ValueError):
            lpt_schedule_speeds([1.0], [0.0])
        with pytest.raises(ValueError):
            lpt_schedule_speeds([-1.0], [1.0])

    def test_deterministic(self):
        costs = list(np.random.default_rng(0).uniform(1, 10, 20))
        a = lpt_schedule_speeds(costs, [1.0, 2.0, 1.5])
        b = lpt_schedule_speeds(costs, [1.0, 2.0, 1.5])
        np.testing.assert_array_equal(a.worker_of, b.worker_of)


class TestHeterogeneousCluster:
    def cluster(self):
        return HeterogeneousCluster(
            classes={"old": (8, 1.0), "new": (8, 2.0)},
            model=HPC_FDR,
        )

    def test_rank_accounting(self):
        c = self.cluster()
        assert c.num_ranks == 16
        assert c.total_speed() == pytest.approx(24.0)
        assert len(c.speeds()) == 16

    def test_simulate_totals(self):
        c = self.cluster()
        costs = np.full(400, 1e-2)
        point = c.simulate(costs)
        assert point.total > point.compute_time
        # Close to the ideal work/total-speed bound.
        ideal = ideal_heterogeneous_time(
            costs * (1 - HPC_FDR.serial_fraction), c.speeds()
        )
        assert point.compute_time < 1.3 * ideal

    def test_awareness_gain_with_skewed_classes(self):
        c = HeterogeneousCluster(
            classes={"slow": (4, 1.0), "fast": (4, 4.0)},
            model=HPC_FDR,
        )
        costs = np.full(64, 1.0)
        gain = c.awareness_gain(costs)
        assert gain > 1.2  # blind scheduling wastes the fast nodes

    def test_uniform_cluster_has_no_gain(self):
        c = HeterogeneousCluster(
            classes={"only": (8, 1.0)}, model=HPC_FDR
        )
        assert c.awareness_gain(np.full(64, 1.0)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousCluster(classes={}, model=HPC_FDR)
        with pytest.raises(ValueError):
            HeterogeneousCluster(classes={"x": (0, 1.0)}, model=HPC_FDR)
        with pytest.raises(ValueError):
            HeterogeneousCluster(classes={"x": (2, -1.0)}, model=HPC_FDR)
