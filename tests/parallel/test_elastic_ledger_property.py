"""Property tests: the WorkLedger under arbitrary interleavings.

Drives lease grant / expiry / worker death / pool resize in any order
hypothesis can dream up and checks the two core invariants from
ISSUE: every chunk completes exactly once, and no lease is ever held
by two workers at the same time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.elastic import ElasticError, WorkChunk, WorkLedger


def _chunks(count):
    return [
        WorkChunk(
            chunk_id=i,
            item_lo=i * 10,
            item_hi=(i + 1) * 10,
            expected_terms=100 + i,
            expected_checksum=float(i) * 1.5,
        )
        for i in range(count)
    ]


def _check_lease_maps(ledger):
    """No chunk owned twice, and the two owner maps mirror each other."""
    owners = ledger._owner_of_chunk
    held = ledger._chunk_of_worker
    assert len(set(owners.values())) == len(owners)
    assert {c: w for w, c in held.items()} == dict(owners)


# An interleaving step: which action, applied to which worker (by
# index into a rotating roster, so death/resize keep ids meaningful).
steps = st.lists(
    st.tuples(
        st.sampled_from(["lease", "complete", "expire", "die", "shrink",
                         "grow"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


class TestLedgerInterleavings:
    @settings(max_examples=200, deadline=None)
    @given(chunk_count=st.integers(min_value=1, max_value=12), ops=steps)
    def test_every_chunk_completes_exactly_once(self, chunk_count, ops):
        chunks = _chunks(chunk_count)
        ledger = WorkLedger(chunks)
        alive = set(range(1, 4))
        next_id = 4
        completed_chunks = []

        for action, pick in ops:
            workers = sorted(alive)
            if not workers:
                alive.add(next_id)
                next_id += 1
                continue
            worker = workers[pick % len(workers)]
            if action == "lease":
                if ledger.lease_of(worker) is None:
                    ledger.lease(worker)
            elif action == "complete":
                cid = ledger.lease_of(worker)
                if cid is not None:
                    chunk = ledger.chunk(cid)
                    assert ledger.complete(
                        worker, cid, chunk.expected_terms,
                        chunk.expected_checksum,
                    )
                    completed_chunks.append(cid)
            elif action in ("expire", "die"):
                # Watchdog expiry and crash reap both funnel through
                # forfeit; racing them must re-enqueue once.
                ledger.forfeit(worker)
                if action == "expire":
                    ledger.forfeit(worker)  # the racing second observer
                else:
                    alive.discard(worker)
            elif action == "shrink":
                ledger.forfeit(worker)
                alive.discard(worker)
            elif action == "grow":
                alive.add(next_id)
                next_id += 1
            _check_lease_maps(ledger)

        # Drain: surviving (or fresh) workers finish whatever is left.
        if not alive:
            alive.add(next_id)
            next_id += 1
        guard = 0
        while not ledger.done:
            guard += 1
            assert guard < 10_000
            for worker in sorted(alive):
                if ledger.lease_of(worker) is None:
                    if ledger.lease(worker) is None:
                        continue
                cid = ledger.lease_of(worker)
                chunk = ledger.chunk(cid)
                ledger.complete(
                    worker, cid, chunk.expected_terms, chunk.expected_checksum
                )
                completed_chunks.append(cid)
            _check_lease_maps(ledger)

        assert sorted(completed_chunks) == list(range(chunk_count))
        assert ledger.completions == chunk_count
        assert ledger.pending_count == 0
        assert ledger.leased_count == 0

    @settings(max_examples=100, deadline=None)
    @given(ops=steps)
    def test_stale_completions_never_double_complete(self, ops):
        """A dead worker's late result can never finish a chunk twice."""
        chunks = _chunks(6)
        ledger = WorkLedger(chunks)
        ghosts = []  # (worker, chunk) pairs whose lease was lost
        alive = {1, 2, 3}
        next_id = 4
        for action, pick in ops:
            workers = sorted(alive)
            if not workers:
                break
            worker = workers[pick % len(workers)]
            if action == "lease" and ledger.lease_of(worker) is None:
                ledger.lease(worker)
            elif action == "complete":
                cid = ledger.lease_of(worker)
                if cid is not None:
                    chunk = ledger.chunk(cid)
                    ledger.complete(
                        worker, cid, chunk.expected_terms,
                        chunk.expected_checksum,
                    )
            elif action in ("expire", "die", "shrink"):
                cid = ledger.lease_of(worker)
                if cid is not None:
                    ghosts.append((worker, cid))
                ledger.forfeit(worker)
                if action != "expire":
                    alive.discard(worker)
                    alive.add(next_id)
                    next_id += 1
        before = ledger.completions
        replayed = 0
        for worker, cid in ghosts:
            chunk = ledger.chunk(cid)
            if ledger._owner_of_chunk.get(cid) == worker:
                continue  # legitimately re-leased to the same id
            assert not ledger.complete(
                worker, cid, chunk.expected_terms, chunk.expected_checksum
            )
            replayed += 1
        assert ledger.completions == before
        assert ledger.stale_results >= replayed


class TestLedgerBasicsViaProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_double_lease_always_rejected(self, chunk_count):
        ledger = WorkLedger(_chunks(chunk_count))
        assert ledger.lease(1) is not None
        with pytest.raises(ElasticError):
            ledger.lease(1)
