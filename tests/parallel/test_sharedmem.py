"""Tests for named shared-memory arrays."""

import os

import numpy as np
import pytest

from repro.parallel.sharedmem import SharedArray, shared_zeros


class TestLifecycle:
    def test_create_and_close(self):
        arr = SharedArray.create((4, 4))
        assert (arr.arr == 0).all()
        arr.close()

    def test_context_manager(self):
        with SharedArray.create((3,)) as arr:
            arr.arr[:] = 7.0
            assert (arr.arr == 7.0).all()

    def test_from_array_copies(self):
        src = np.arange(6.0).reshape(2, 3)
        with SharedArray.from_array(src) as arr:
            np.testing.assert_array_equal(arr.arr, src)
            src[0, 0] = 99.0  # source mutation must not propagate
            assert arr.arr[0, 0] == 0.0

    def test_dtype_preserved(self):
        with SharedArray.create((5,), dtype=np.int32) as arr:
            assert arr.arr.dtype == np.int32

    def test_attach_by_name(self):
        owner = SharedArray.create((4,))
        owner.arr[:] = [1.0, 2.0, 3.0, 4.0]
        try:
            other = SharedArray.attach(owner.name, (4,), np.float64)
            np.testing.assert_array_equal(other.arr, owner.arr)
            other.arr[0] = 9.0
            assert owner.arr[0] == 9.0  # same physical pages
            other.close()
        finally:
            owner.close()

    def test_shared_zeros_alias(self):
        with shared_zeros((2, 2)) as arr:
            assert arr.shape == (2, 2)

    def test_empty_shape(self):
        with SharedArray.create((0,)) as arr:
            assert arr.arr.size == 0


class TestForkVisibility:
    def test_child_writes_visible_to_parent(self):
        with SharedArray.create((3,)) as arr:
            pid = os.fork()
            if pid == 0:
                arr.arr[2] = 123.0
                os._exit(0)
            os.waitpid(pid, 0)
            assert arr.arr[2] == 123.0

    def test_two_children_write_disjoint_slices(self):
        with SharedArray.create((10,), dtype=np.int64) as arr:
            pids = []
            for w in range(2):
                pid = os.fork()
                if pid == 0:
                    arr.arr[w * 5 : (w + 1) * 5] = w + 1
                    os._exit(0)
                pids.append(pid)
            for pid in pids:
                os.waitpid(pid, 0)
            assert (arr.arr[:5] == 1).all() and (arr.arr[5:] == 2).all()
