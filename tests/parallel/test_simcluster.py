"""Tests for the deterministic simulated-cluster clock."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.simcluster import (
    HPC_FDR,
    Z820_SMP,
    ClusterModel,
    amdahl_bound,
    crossover_rank,
    parallel_efficiency,
    scaling_sweep,
    simulate_strong_scaling,
    speedup_curve,
)


def uniform_costs(count, each=1e-3):
    return np.full(count, each)


class TestSinglePoint:
    def test_one_rank_is_pure_compute(self):
        pt = simulate_strong_scaling(uniform_costs(100), 1, Z820_SMP)
        assert pt.startup_time == 0.0 and pt.comm_time == 0.0
        assert pt.total == pytest.approx(0.1)

    def test_compute_shrinks_with_ranks(self):
        costs = uniform_costs(1024)
        t4 = simulate_strong_scaling(costs, 4, Z820_SMP).compute_time
        t16 = simulate_strong_scaling(costs, 16, Z820_SMP).compute_time
        assert t16 == pytest.approx(t4 / 4, rel=0.01)

    def test_overhead_grows_with_ranks(self):
        costs = uniform_costs(64)
        p2 = simulate_strong_scaling(costs, 2, HPC_FDR)
        p64 = simulate_strong_scaling(costs, 64, HPC_FDR)
        assert p64.startup_time > p2.startup_time

    def test_serial_fraction_respected(self):
        model = Z820_SMP.with_overrides(serial_fraction=0.5)
        pt = simulate_strong_scaling(uniform_costs(100), 1000, model)
        assert pt.serial_time == pytest.approx(0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_strong_scaling(uniform_costs(4), 0, Z820_SMP)
        with pytest.raises(ValueError):
            simulate_strong_scaling([-1.0], 2, Z820_SMP)


class TestPaperShapes:
    """The qualitative shapes of Fig. 7/10 must emerge from the model."""

    def test_large_workload_scales_linearly(self):
        """50x50-sized formation work (prototype-scale per-item costs,
        ~20 s serial): near-linear to hundreds of ranks on FDR."""
        costs = uniform_costs(4 * 50 * 50, each=2e-3)
        points = scaling_sweep(costs, [1, 4, 16, 64, 256], HPC_FDR)
        eff = parallel_efficiency(points)
        assert eff[2] > 0.9  # 16 ranks
        assert eff[4] > 0.5  # 256 ranks

    def test_small_workload_stops_scaling(self):
        """10x10-sized work: inter-node parallelism is not effective
        (paper §V-F recommends intra-node for small n)."""
        costs = uniform_costs(4 * 10 * 10, each=2e-5)  # ~8 ms serial
        cross = crossover_rank(costs, HPC_FDR)
        assert cross <= 16

    def test_large_workload_crossover_beyond_512(self):
        costs = uniform_costs(4 * 100 * 100, each=2e-3)  # ~80 s serial
        cross = crossover_rank(costs, HPC_FDR, max_ranks=1024)
        assert cross >= 512

    def test_speedup_monotone_until_crossover(self):
        costs = uniform_costs(2000, each=1e-3)
        points = scaling_sweep(costs, [1, 2, 4, 8, 16, 32], Z820_SMP)
        sp = speedup_curve(points)
        assert (np.diff(sp) > 0).all()

    @given(st.integers(1, 1024))
    @settings(max_examples=30, deadline=None)
    def test_speedup_never_exceeds_amdahl(self, ranks):
        model = Z820_SMP.with_overrides(serial_fraction=0.02)
        costs = uniform_costs(4096, each=1e-3)
        base = simulate_strong_scaling(costs, 1, model).total
        t = simulate_strong_scaling(costs, ranks, model).total
        assert base / t <= amdahl_bound(0.02, ranks) + 1e-9


class TestHelpers:
    def test_amdahl_limits(self):
        assert amdahl_bound(0.0, 8) == pytest.approx(8.0)
        assert amdahl_bound(1.0, 8) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            amdahl_bound(1.5, 4)
        with pytest.raises(ValueError):
            amdahl_bound(0.5, 0)

    def test_speedup_empty_raises(self):
        with pytest.raises(ValueError, match="scaling point"):
            speedup_curve([])

    def test_efficiency_empty_raises(self):
        with pytest.raises(ValueError, match="scaling point"):
            parallel_efficiency([])

    def test_model_overrides(self):
        model = Z820_SMP.with_overrides(alpha=1.0)
        assert model.alpha == 1.0
        assert model.beta == Z820_SMP.beta

    def test_deterministic(self):
        costs = uniform_costs(100)
        a = simulate_strong_scaling(costs, 16, HPC_FDR)
        b = simulate_strong_scaling(costs, 16, HPC_FDR)
        assert a == b
