"""Elastic campaign dispatch: ledger, pool, churn and the sweep."""

import signal

import numpy as np
import pytest

from repro.observe import Observer
from repro.parallel.elastic import (
    ElasticError,
    ElasticPool,
    LeaseVerificationError,
    WorkLedger,
    part_files_identical,
    plan_chunks,
    run_elastic_formation,
    scaling_strategy_schedulers,
    sweep_scaling_curves,
)
from repro.parallel.pymp import fork_available
from repro.resilience.faults import FaultPlan

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")


def _device(n, seed=123):
    rng = np.random.default_rng(seed)
    return rng.uniform(500.0, 1500.0, (n, n))


class TestPlanChunks:
    def test_covers_every_item_exactly_once(self):
        chunks = plan_chunks(8, chunk_items=10)
        spans = [(c.item_lo, c.item_hi) for c in chunks]
        assert spans[0][0] == 0
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo
        assert spans[-1][1] == 4 * 8 * 8  # 4 n^2 items

    def test_chunk_ids_are_dense(self):
        chunks = plan_chunks(6, chunk_items=7)
        assert [c.chunk_id for c in chunks] == list(range(len(chunks)))

    def test_expectations_match_a_real_formation(self):
        """The O(1) planning expectations equal actually-formed totals."""
        from repro.core.partition import make_items
        from repro.core.templates import form_worker_share

        n = 6
        z = _device(n)
        items = make_items(n)
        chunks = plan_chunks(n, chunk_items=50, items=items)
        chunk = chunks[0]
        indices = np.arange(chunk.item_lo, chunk.item_hi)
        batches, placement = form_worker_share(n, items, indices, z, 5.0)
        terms = 0
        checksum = 0.0
        for i in indices:
            cat, pos = placement[int(i)]
            block = batches[cat].block(pos)
            terms += int(block.num_terms)
            checksum += block.checksum()
        assert terms == chunk.expected_terms
        assert checksum == pytest.approx(chunk.expected_checksum, rel=1e-9)

    def test_rejects_bad_chunk_items(self):
        with pytest.raises(ValueError):
            plan_chunks(5, chunk_items=0)


class TestWorkLedger:
    def _ledger(self, n=4):
        chunks = plan_chunks(n, chunk_items=16)
        return WorkLedger(chunks), chunks

    def test_lease_complete_lifecycle(self):
        ledger, chunks = self._ledger()
        chunk = ledger.lease(1)
        assert chunk is chunks[0]
        assert ledger.lease_of(1) == chunk.chunk_id
        assert ledger.complete(
            1, chunk.chunk_id, chunk.expected_terms, chunk.expected_checksum
        )
        assert ledger.lease_of(1) is None
        assert ledger.completed_count == 1

    def test_one_lease_per_worker(self):
        ledger, _ = self._ledger()
        ledger.lease(1)
        with pytest.raises(ElasticError, match="already holds"):
            ledger.lease(1)

    def test_forfeit_requeues_at_front_once(self):
        ledger, chunks = self._ledger()
        first = ledger.lease(1)
        assert ledger.forfeit(1) == first.chunk_id
        # Idempotent: the second observer of the same loss is a no-op.
        assert ledger.forfeit(1) is None
        assert ledger.requeues[first.chunk_id] == 1
        # The lost chunk comes back before untouched work.
        assert ledger.lease(2) is first

    def test_stale_duplicate_discarded(self):
        ledger, _ = self._ledger()
        chunk = ledger.lease(1)
        ledger.forfeit(1)
        release = ledger.lease(2)
        assert release is chunk
        # Worker 1's late result must not complete worker 2's lease.
        assert not ledger.complete(
            1, chunk.chunk_id, chunk.expected_terms, chunk.expected_checksum
        )
        assert ledger.stale_results == 1
        assert ledger.lease_of(2) == chunk.chunk_id

    def test_verification_failure_keeps_the_lease(self):
        ledger, _ = self._ledger()
        chunk = ledger.lease(1)
        with pytest.raises(LeaseVerificationError):
            ledger.complete(
                1, chunk.chunk_id, chunk.expected_terms + 1,
                chunk.expected_checksum,
            )
        with pytest.raises(LeaseVerificationError):
            ledger.complete(
                1, chunk.chunk_id, chunk.expected_terms,
                chunk.expected_checksum + 1.0,
            )
        assert ledger.lease_of(1) == chunk.chunk_id
        assert ledger.completed_count == 0

    def test_done_after_all_complete(self):
        ledger, chunks = self._ledger()
        for chunk in chunks:
            got = ledger.lease(9)
            ledger.complete(
                9, got.chunk_id, got.expected_terms, got.expected_checksum
            )
        assert ledger.done
        assert ledger.lease(9) is None

    def test_duplicate_chunk_ids_rejected(self):
        chunks = plan_chunks(4, chunk_items=16)
        with pytest.raises(ValueError):
            WorkLedger(list(chunks) + [chunks[0]])


@needs_fork
class TestElasticPool:
    def test_quiet_run_completes_everything(self, tmp_path):
        report = run_elastic_formation(
            _device(8), workers=2, chunk_items=16, output_dir=tmp_path
        )
        assert report.chunks_completed == report.chunks_total
        assert report.leases_reassigned == 0
        assert report.workers_respawned == 0
        assert len(report.part_files) == report.chunks_total

    def test_killed_worker_lease_reassigned(self, tmp_path):
        obs = Observer()
        report = run_elastic_formation(
            _device(8),
            workers=2,
            chunk_items=16,
            output_dir=tmp_path,
            faults=FaultPlan(
                seed=3, kill_workers=(1,), kill_signal=int(signal.SIGKILL)
            ),
            observer=obs,
        )
        assert report.chunks_completed == report.chunks_total
        assert report.leases_reassigned >= 1
        assert report.workers_respawned >= 1
        snapshot = obs.metrics.snapshot()
        assert snapshot["elastic.lease_reassigned"]["value"] >= 1
        assert snapshot["elastic.workers_respawned"]["value"] >= 1

    def test_churn_output_is_bit_identical(self, tmp_path):
        z = _device(8)
        quiet = run_elastic_formation(
            z, workers=2, chunk_items=16, output_dir=tmp_path / "quiet"
        )
        chunks = quiet.chunks_total
        churn = run_elastic_formation(
            z,
            workers=3,
            chunk_items=16,
            output_dir=tmp_path / "churn",
            faults=FaultPlan(
                seed=3, kill_workers=(1,), kill_signal=int(signal.SIGKILL)
            ),
            resize_schedule=[(max(1, chunks // 3), 2),
                             (max(2, 2 * chunks // 3), 3)],
        )
        assert churn.pool_resizes == 2
        identical, detail = part_files_identical(
            tmp_path / "quiet", tmp_path / "churn"
        )
        assert identical, detail

    def test_hung_worker_expires_and_recovers(self, tmp_path):
        report = run_elastic_formation(
            _device(8),
            workers=2,
            chunk_items=16,
            output_dir=tmp_path,
            lease_timeout=0.5,
            faults=FaultPlan(seed=3, hang_workers=(1,), hang_after_items=1),
        )
        assert report.chunks_completed == report.chunks_total
        assert report.leases_reassigned >= 1

    def test_repeat_offender_quarantined(self, tmp_path):
        obs = Observer()
        # Every worker dies on every chunk forever: after
        # quarantine_after losses per slot nothing is spawnable.
        with pytest.raises(ElasticError, match="no live workers"):
            run_elastic_formation(
                _device(8),
                workers=2,
                chunk_items=16,
                output_dir=tmp_path,
                quarantine_after=2,
                faults=FaultPlan(
                    seed=3,
                    kill_probability=1.0,
                    kill_attempts=10**9,
                    kill_signal=int(signal.SIGKILL),
                ),
                observer=obs,
            )
        snapshot = obs.metrics.snapshot()
        assert snapshot["elastic.quarantined"]["value"] >= 2

    def test_resize_events_counted(self, tmp_path):
        obs = Observer()
        report = run_elastic_formation(
            _device(8),
            workers=3,
            chunk_items=16,
            output_dir=tmp_path,
            resize_schedule=[(1, 2), (2, 3)],
            observer=obs,
        )
        assert report.pool_resizes == 2
        assert obs.metrics.snapshot()["elastic.pool_resized"]["value"] == 2

    def test_pool_validates_arguments(self):
        runner = lambda chunk, ctx: (0, 0.0, 0)  # noqa: E731
        with pytest.raises(ValueError):
            ElasticPool(0, runner)
        with pytest.raises(ValueError):
            ElasticPool(2, runner, lease_timeout=0.0)
        with pytest.raises(ValueError):
            ElasticPool(2, runner, quarantine_after=0)


class TestPartFilesIdentical:
    def test_empty_dirs_are_not_identical(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        identical, detail = part_files_identical(
            tmp_path / "a", tmp_path / "b"
        )
        assert not identical
        assert "no part files" in detail

    def test_tmp_orphans_ignored(self, tmp_path):
        for d in ("a", "b"):
            (tmp_path / d).mkdir()
            (tmp_path / d / "equations-chunk00000.bin").write_bytes(b"same")
        (tmp_path / "a" / "equations-chunk00001.bin.tmp").write_bytes(b"junk")
        identical, _ = part_files_identical(tmp_path / "a", tmp_path / "b")
        assert identical

    def test_differing_bytes_detected(self, tmp_path):
        for d, payload in (("a", b"x"), ("b", b"y")):
            (tmp_path / d).mkdir()
            (tmp_path / d / "equations-chunk00000.bin").write_bytes(payload)
        identical, detail = part_files_identical(
            tmp_path / "a", tmp_path / "b"
        )
        assert not identical
        assert "differs" in detail


class TestScalingSweep:
    def test_strategies_present(self):
        schedulers = scaling_strategy_schedulers(6)
        assert set(schedulers) == {
            "contiguous", "balanced", "betti", "category"
        }

    def test_curves_have_matching_lengths(self):
        curves = sweep_scaling_curves(
            6, [1, 2, 4, 8], sec_per_term=1e-6
        )
        for curve in curves.values():
            assert (
                len(curve.rank_counts)
                == len(curve.total_seconds)
                == len(curve.speedup)
                == len(curve.efficiency)
            )
            assert curve.speedup[0] == pytest.approx(1.0)
            assert curve.efficiency[0] == pytest.approx(1.0)

    def test_category_needs_four_ranks(self):
        curves = sweep_scaling_curves(6, [1, 2], sec_per_term=1e-6)
        assert "category" not in curves
        curves = sweep_scaling_curves(6, [2, 4, 8], sec_per_term=1e-6)
        assert curves["category"].rank_counts == (4, 8)

    def test_empty_rank_counts_rejected(self):
        with pytest.raises(ValueError):
            sweep_scaling_curves(6, [], sec_per_term=1e-6)

    def test_deterministic(self):
        a = sweep_scaling_curves(6, [1, 4, 16], sec_per_term=1e-6)
        b = sweep_scaling_curves(6, [1, 4, 16], sec_per_term=1e-6)
        assert a == b
