"""Additional simulated-cluster coverage: scheduler choice effects."""

import numpy as np
import pytest

from repro.parallel.simcluster import (
    HPC_FDR,
    Z820_SMP,
    contiguous_schedule,
    simulate_strong_scaling,
)
from repro.parallel.workstealing import lpt_schedule


def skewed_costs(seed=0, count=256):
    rng = np.random.default_rng(seed)
    costs = rng.uniform(1e-4, 1e-3, size=count)
    costs[:4] *= 50  # a few hefty tasks (the category skew shape)
    return costs


class TestSchedulerChoice:
    def test_lpt_beats_contiguous_on_skewed_work(self):
        costs = skewed_costs()
        lpt = simulate_strong_scaling(costs, 16, HPC_FDR, lpt_schedule)
        naive = simulate_strong_scaling(
            costs, 16, HPC_FDR, contiguous_schedule
        )
        assert lpt.compute_time < naive.compute_time

    def test_scheduler_irrelevant_for_uniform_work(self):
        costs = np.full(256, 5e-4)
        lpt = simulate_strong_scaling(costs, 16, HPC_FDR, lpt_schedule)
        naive = simulate_strong_scaling(
            costs, 16, HPC_FDR, contiguous_schedule
        )
        assert lpt.compute_time == pytest.approx(naive.compute_time)

    def test_overheads_identical_across_schedulers(self):
        costs = skewed_costs(1)
        a = simulate_strong_scaling(costs, 32, Z820_SMP, lpt_schedule)
        b = simulate_strong_scaling(costs, 32, Z820_SMP, contiguous_schedule)
        assert a.startup_time == b.startup_time
        assert a.comm_time == b.comm_time
        assert a.serial_time == b.serial_time

    def test_single_heavy_task_caps_scaling(self):
        """One indivisible task bounds the makespan at any p (the
        reason the §IV-C fine-grained decomposition matters)."""
        costs = np.concatenate([[1.0], np.full(100, 1e-3)])
        pt = simulate_strong_scaling(costs, 1024, HPC_FDR)
        assert pt.compute_time >= 1.0 * (1 - HPC_FDR.serial_fraction) - 1e-9

    def test_total_is_sum_of_parts(self):
        costs = skewed_costs(2)
        pt = simulate_strong_scaling(costs, 8, HPC_FDR)
        assert pt.total == pytest.approx(
            pt.compute_time + pt.startup_time + pt.comm_time + pt.serial_time
        )
