"""Tests for equation-block serialization (Fig. 9's write path)."""

import io

import numpy as np
import pytest

from repro.core.categories import Category
from repro.core.equations import form_all_blocks, form_pair_block
from repro.io.equations_io import (
    load_blocks_binary,
    read_blocks_binary,
    save_blocks_binary,
    save_blocks_text,
    write_block_binary,
    write_block_text,
)
from repro.mea.wetlab import quick_device_data


def blocks_for(n=4, seed=1):
    _, z = quick_device_data(n, seed=seed)
    return form_all_blocks(z)


class TestBinaryFormat:
    def test_roundtrip_exact(self, tmp_path):
        blocks = blocks_for(4)
        path = tmp_path / "eq.bin"
        written = save_blocks_binary(blocks, path)
        assert written == path.stat().st_size
        back = load_blocks_binary(path)
        assert len(back) == len(blocks)
        for a, b in zip(blocks, back):
            assert (a.n, a.row, a.col) == (b.n, b.row, b.col)
            assert a.z == b.z and a.voltage == b.voltage
            np.testing.assert_array_equal(a.eq_id, b.eq_id)
            np.testing.assert_array_equal(a.sign, b.sign)
            np.testing.assert_array_equal(a.r_row, b.r_row)
            np.testing.assert_array_equal(a.r_col, b.r_col)
            np.testing.assert_array_equal(a.v_plus, b.v_plus)
            np.testing.assert_array_equal(a.v_minus, b.v_minus)
            np.testing.assert_array_equal(a.rhs, b.rhs)
            np.testing.assert_array_equal(a.category, b.category)

    def test_reloaded_blocks_evaluate_identically(self, tmp_path):
        from repro.kirchhoff.forward import solve_drive

        r, z = quick_device_data(3, seed=7)
        block = form_pair_block(3, 1, 2, z=z[1, 2])
        path = tmp_path / "one.bin"
        save_blocks_binary([block], path)
        back = load_blocks_binary(path)[0]
        sol = solve_drive(r, 1, 2)
        ref = block.residuals(r, sol.ua(), sol.ub())
        got = back.residuals(r, sol.ua(), sol.ub())
        np.testing.assert_array_equal(ref, got)

    def test_category_subset_blocks_roundtrip(self, tmp_path):
        block = form_pair_block(5, 0, 0, z=700.0, categories=[Category.UA])
        path = tmp_path / "ua.bin"
        save_blocks_binary([block], path)
        back = load_blocks_binary(path)[0]
        assert back.num_equations == 4
        assert (back.category == Category.UA).all()

    def test_corrupt_magic_rejected(self):
        buf = io.BytesIO(b"NOTMAGIC" + b"\x00" * 50)
        with pytest.raises(ValueError, match="magic"):
            list(read_blocks_binary(buf))

    def test_empty_file_yields_nothing(self):
        assert list(read_blocks_binary(io.BytesIO(b""))) == []

    def test_streaming_read(self, tmp_path):
        blocks = blocks_for(3)
        path = tmp_path / "s.bin"
        save_blocks_binary(iter(blocks), path)
        count = 0
        with open(path, "rb") as fh:
            for _ in read_blocks_binary(fh):
                count += 1
        assert count == 9


class TestTextFormat:
    def test_output_is_readable(self, tmp_path):
        block = form_pair_block(3, 1, 2, z=800.0, voltage=5.0)
        path = tmp_path / "eq.txt"
        save_blocks_text([block], path)
        content = path.read_text()
        assert "pair i=2 j=3" in content
        assert "SOURCE:" in content and "DEST:" in content
        assert "UA:" in content and "UB:" in content
        assert "(U - Ua_1)/R[2,1]" in content

    def test_equation_count_in_text(self, tmp_path):
        blocks = blocks_for(3)
        path = tmp_path / "all.txt"
        save_blocks_text(blocks, path)
        lines = path.read_text().splitlines()
        eq_lines = [l for l in lines if not l.startswith("##")]
        assert len(eq_lines) == 2 * 3**3  # 2n^3

    def test_rhs_appears(self):
        block = form_pair_block(3, 0, 0, z=500.0, voltage=5.0)
        buf = io.StringIO()
        write_block_text(block, buf)
        assert f"{5.0 / 500.0:.10g}" in buf.getvalue()

    def test_write_returns_char_count(self):
        block = form_pair_block(3, 0, 0, z=500.0)
        buf = io.StringIO()
        n = write_block_text(block, buf)
        assert n == len(buf.getvalue())

    def test_binary_write_returns_byte_count(self):
        block = form_pair_block(3, 0, 0, z=500.0)
        buf = io.BytesIO()
        n = write_block_binary(block, buf)
        assert n == len(buf.getvalue())
