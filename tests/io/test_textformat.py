"""Tests for the wet-lab measurement text format."""

import numpy as np
import pytest

from repro.io.textformat import (
    FormatError,
    dumps_measurement,
    load_campaign,
    load_measurement,
    loads_measurement,
    save_campaign,
    save_measurement,
)
from repro.mea.dataset import Measurement, MeasurementCampaign
from repro.mea.wetlab import quick_device_data


def sample_measurement(n=4, hour=6.0):
    _, z = quick_device_data(n, seed=1)
    return Measurement(
        z_kohm=z, voltage=5.0, hour=hour, meta={"source": "wetlab-sim"}
    )


class TestRoundTrip:
    def test_string_roundtrip(self):
        meas = sample_measurement()
        text = dumps_measurement(meas)
        back = loads_measurement(text)
        np.testing.assert_allclose(back.z_kohm, meas.z_kohm, rtol=1e-9)
        assert back.voltage == meas.voltage
        assert back.hour == meas.hour
        assert back.meta["source"] == "wetlab-sim"

    def test_file_roundtrip(self, tmp_path):
        meas = sample_measurement()
        path = tmp_path / "m.txt"
        save_measurement(meas, path)
        back = load_measurement(path)
        np.testing.assert_allclose(back.z_kohm, meas.z_kohm, rtol=1e-9)

    def test_campaign_roundtrip(self, tmp_path):
        campaign = MeasurementCampaign(
            measurements=tuple(
                sample_measurement(hour=h) for h in (0.0, 6.0, 12.0, 24.0)
            )
        )
        path = tmp_path / "day.txt"
        save_campaign(campaign, path)
        back = load_campaign(path)
        assert back.hours == (0.0, 6.0, 12.0, 24.0)
        for a, b in zip(campaign, back):
            np.testing.assert_allclose(a.z_kohm, b.z_kohm, rtol=1e-9)

    def test_rectangular_device(self):
        z = np.full((2, 5), 777.0)
        meas = Measurement(z_kohm=z)
        back = loads_measurement(dumps_measurement(meas))
        assert back.shape == (2, 5)

    def test_precision_survives(self):
        z = np.array([[1234.56789012, 2.00000001], [3.5, 9999.99999]])
        meas = Measurement(z_kohm=z)
        back = loads_measurement(dumps_measurement(meas))
        np.testing.assert_allclose(back.z_kohm, z, rtol=1e-9)


class TestStrictParsing:
    def test_missing_magic(self):
        with pytest.raises(FormatError, match="magic"):
            loads_measurement("# rows: 2\n1 2\n3 4\n")

    def test_wrong_row_count(self):
        text = dumps_measurement(sample_measurement(3))
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(FormatError, match="data rows"):
            loads_measurement(truncated)

    def test_ragged_row(self):
        text = dumps_measurement(sample_measurement(3))
        lines = text.splitlines()
        lines[-1] = "1.0 2.0"  # too few values
        with pytest.raises(FormatError, match="values"):
            loads_measurement("\n".join(lines) + "\n")

    def test_non_numeric_value(self):
        text = dumps_measurement(sample_measurement(2))
        bad = text.replace(text.splitlines()[-1], "1.0 banana")
        with pytest.raises(FormatError):
            loads_measurement(bad)

    def test_missing_header_field(self):
        text = dumps_measurement(sample_measurement(2))
        bad = "\n".join(
            line for line in text.splitlines() if "voltage" not in line
        )
        with pytest.raises(FormatError, match="voltage"):
            loads_measurement(bad)

    def test_two_sections_rejected_by_single_loader(self):
        text = dumps_measurement(sample_measurement(2))
        with pytest.raises(FormatError, match="one measurement"):
            loads_measurement(text + "\n" + text)

    def test_empty_file_campaign(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(FormatError):
            load_campaign(path)

    def test_newline_in_meta_rejected(self):
        meas = sample_measurement().with_meta(evil="a\nb")
        with pytest.raises(FormatError):
            dumps_measurement(meas)

    def test_malformed_header_line(self):
        text = "# parma-measurement v1\n# nonsense without colon\n1.0\n"
        with pytest.raises(FormatError, match="malformed"):
            loads_measurement(text)
