"""Tests for the Excel-workbook ingestion step (paper §V-B)."""

import numpy as np
import pytest

from repro.io.textformat import load_campaign
from repro.io.workbook import (
    WorkbookError,
    convert_workbook,
    export_workbook,
    load_workbook,
)
from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign


@pytest.fixture(scope="module")
def campaign():
    spec = paper_like_spec(6, seed=61)
    return run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=61).campaign


class TestRoundTrip:
    def test_export_load(self, campaign, tmp_path):
        root = export_workbook(campaign, tmp_path / "device")
        assert root.name == "device.workbook"
        assert (root / "meta.csv").exists()
        assert (root / "sheet-0h.csv").exists()
        assert (root / "sheet-24h.csv").exists()
        back = load_workbook(root)
        assert back.hours == campaign.hours
        for a, b in zip(campaign, back):
            np.testing.assert_allclose(a.z_kohm, b.z_kohm, rtol=1e-9)
            assert a.voltage == b.voltage

    def test_meta_preserved(self, campaign, tmp_path):
        root = export_workbook(campaign, tmp_path / "d2")
        back = load_workbook(root)
        assert back.measurements[0].meta["source"] == "wetlab-sim"

    def test_convert_to_text(self, campaign, tmp_path):
        root = export_workbook(campaign, tmp_path / "d3")
        text = tmp_path / "converted.txt"
        converted = convert_workbook(root, text)
        assert text.exists()
        reloaded = load_campaign(text)
        assert reloaded.hours == converted.hours
        np.testing.assert_allclose(
            reloaded.measurements[0].z_kohm,
            campaign.measurements[0].z_kohm,
            rtol=1e-9,
        )

    def test_converted_campaign_is_solvable(self, campaign, tmp_path):
        """Workbook -> text -> Parma, end to end."""
        from repro.core.engine import ParmaEngine

        root = export_workbook(campaign, tmp_path / "d4")
        text = tmp_path / "c.txt"
        convert_workbook(root, text)
        reloaded = load_campaign(text)
        result = ParmaEngine(strategy="single").parametrize(
            reloaded.measurements[0]
        )
        assert result.solve.converged


class TestStrictness:
    def test_missing_dir(self, tmp_path):
        with pytest.raises(WorkbookError, match="not a workbook"):
            load_workbook(tmp_path / "nope")

    def test_missing_meta(self, tmp_path):
        root = tmp_path / "x.workbook"
        root.mkdir()
        (root / "sheet-0h.csv").write_text("1,2\n3,4\n")
        with pytest.raises(WorkbookError, match="meta.csv"):
            load_workbook(root)

    def test_no_sheets(self, tmp_path):
        root = tmp_path / "y.workbook"
        root.mkdir()
        (root / "meta.csv").write_text(
            "key,value\nvoltage_volts,5.0\nrows,2\ncols,2\n"
        )
        with pytest.raises(WorkbookError, match="no sheet"):
            load_workbook(root)

    def test_ragged_sheet(self, tmp_path):
        root = tmp_path / "z.workbook"
        root.mkdir()
        (root / "meta.csv").write_text(
            "key,value\nvoltage_volts,5.0\nrows,2\ncols,2\n"
        )
        (root / "sheet-0h.csv").write_text("1,2\n3\n")
        with pytest.raises(WorkbookError, match="cells"):
            load_workbook(root)

    def test_wrong_row_count(self, tmp_path):
        root = tmp_path / "w.workbook"
        root.mkdir()
        (root / "meta.csv").write_text(
            "key,value\nvoltage_volts,5.0\nrows,3\ncols,2\n"
        )
        (root / "sheet-0h.csv").write_text("1,2\n3,4\n")
        with pytest.raises(WorkbookError, match="rows"):
            load_workbook(root)

    def test_bad_meta_header(self, tmp_path):
        root = tmp_path / "v.workbook"
        root.mkdir()
        (root / "meta.csv").write_text("not,a,header\n")
        with pytest.raises(WorkbookError, match="header"):
            load_workbook(root)

    def test_non_numeric_cell(self, tmp_path):
        root = tmp_path / "u.workbook"
        root.mkdir()
        (root / "meta.csv").write_text(
            "key,value\nvoltage_volts,5.0\nrows,1\ncols,2\n"
        )
        (root / "sheet-0h.csv").write_text("1,banana\n")
        with pytest.raises(WorkbookError):
            load_workbook(root)

    def test_sheets_sorted_by_hour(self, campaign, tmp_path):
        root = export_workbook(campaign, tmp_path / "s")
        back = load_workbook(root)
        assert list(back.hours) == sorted(back.hours)
