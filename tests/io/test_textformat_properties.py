"""Hypothesis round-trip properties for the measurement text format."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.io.textformat import dumps_measurement, loads_measurement
from repro.mea.dataset import Measurement

z_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(1e-3, 1e9, allow_nan=False, allow_infinity=False),
)

meta_dicts = st.dictionaries(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=10,
    ),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters=" .-_"
        ),
        max_size=30,
    ).map(str.strip),
    max_size=4,
)


class TestRoundTripProperties:
    @given(z_matrices, st.floats(0.1, 100.0), st.floats(0.0, 1000.0))
    @settings(max_examples=60, deadline=None)
    def test_values_survive(self, z, voltage, hour):
        meas = Measurement(z_kohm=z, voltage=voltage, hour=hour)
        back = loads_measurement(dumps_measurement(meas))
        np.testing.assert_allclose(back.z_kohm, z, rtol=1e-9)
        assert back.voltage == float(repr(voltage)) or np.isclose(
            back.voltage, voltage
        )
        assert np.isclose(back.hour, hour)

    @given(z_matrices, meta_dicts)
    @settings(max_examples=40, deadline=None)
    def test_meta_survives(self, z, meta):
        meas = Measurement(z_kohm=z, meta=meta)
        back = loads_measurement(dumps_measurement(meas))
        for key, value in meta.items():
            assert back.meta[key] == value

    @given(z_matrices)
    @settings(max_examples=30, deadline=None)
    def test_double_roundtrip_fixed_point(self, z):
        """Serialize-parse-serialize is a fixed point (canonical form)."""
        meas = Measurement(z_kohm=z)
        once = dumps_measurement(loads_measurement(dumps_measurement(meas)))
        twice = dumps_measurement(
            loads_measurement(once)
        )
        assert once == twice
