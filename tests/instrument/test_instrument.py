"""Tests for memory sampling and result tables."""

import numpy as np
import pytest

from repro.instrument.memory import (
    MemorySampler,
    fraction_below,
    peak_and_quantiles,
    rss_bytes,
    usage_cdf,
)
from repro.instrument.report import ResultTable, human_bytes, human_seconds


class TestRss:
    def test_rss_positive_on_linux(self):
        assert rss_bytes() > 1024 * 1024  # a Python process is > 1 MiB

    def test_rss_grows_with_allocation(self):
        sampler = MemorySampler()
        sampler.sample()
        ballast = np.ones(30_000_000)  # ~240 MB
        sampler.sample()
        assert sampler.samples[1] > sampler.samples[0] + 100_000_000
        del ballast


class TestSampler:
    def test_collects_and_peaks(self):
        s = MemorySampler()
        for _ in range(5):
            s.sample()
        assert len(s.samples) == 5
        assert s.peak == max(s.samples)

    def test_reset(self):
        s = MemorySampler()
        s.sample()
        s.reset()
        assert s.samples == []
        assert s.peak == 0

    def test_as_array(self):
        s = MemorySampler()
        s.sample()
        arr = s.as_array()
        assert arr.dtype == np.float64 and arr.shape == (1,)


class TestCdf:
    def test_cdf_shape_and_monotonicity(self):
        samples = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        levels, frac = usage_cdf(samples)
        assert (np.diff(levels) >= 0).all()
        assert (np.diff(frac) > 0).all()
        assert frac[-1] == 1.0

    def test_empty_samples(self):
        levels, frac = usage_cdf(np.array([]))
        assert levels.size == 0 and frac.size == 0

    def test_fraction_below(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert fraction_below(samples, 2.5) == 0.5
        assert fraction_below(samples, 0.5) == 0.0
        assert fraction_below(samples, 10.0) == 1.0
        assert fraction_below(np.array([]), 1.0) == 0.0

    def test_quantiles(self):
        stats = peak_and_quantiles(np.arange(1, 101, dtype=float))
        assert stats["peak"] == 100.0
        assert stats["p50"] == pytest.approx(50.5)
        assert peak_and_quantiles(np.array([]))["peak"] == 0.0


class TestResultTable:
    def test_render_alignment(self):
        t = ResultTable("demo", ["n", "time"])
        t.add_row(10, 0.123)
        t.add_row(100, 45.6)
        text = t.render()
        assert "demo" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_row_arity_checked(self):
        t = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = ResultTable("demo", ["v"])
        t.add_row(1.23456e-9)
        assert "e-09" in t.render()

    def test_empty_table_renders(self):
        t = ResultTable("empty", ["col"])
        assert "empty" in t.render()


class TestHumanUnits:
    def test_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(1536) == "1.5 KiB"
        assert human_bytes(20 * 2**30) == "20.0 GiB"

    def test_seconds(self):
        assert "µs" in human_seconds(5e-6)
        assert "ms" in human_seconds(0.005)
        assert human_seconds(2.0) == "2.00 s"
        assert "min" in human_seconds(300.0)
