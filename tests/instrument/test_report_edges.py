"""Edge cases for the report tables and duration/byte formatters."""

from repro.instrument.report import (
    ResultTable,
    cache_stats_table,
    human_seconds,
    ladder_table,
    metrics_table,
    trace_phase_table,
)


class TestHumanSeconds:
    def test_zero(self):
        assert human_seconds(0.0) == "0 s"

    def test_negative_is_sign_safe(self):
        assert human_seconds(-0.5) == "-500.0 ms"
        assert human_seconds(-200) == "-3.3 min"

    def test_ranges(self):
        assert human_seconds(5e-6) == "5.0 µs"
        assert human_seconds(0.5) == "500.0 ms"
        assert human_seconds(30) == "30.00 s"
        assert human_seconds(600) == "10.0 min"


class TestEmptyTables:
    def test_empty_result_table_renders(self):
        table = ResultTable(title="empty", columns=("a", "bb"))
        out = table.render()
        assert "== empty ==" in out
        assert "a" in out and "bb" in out
        assert len(out.splitlines()) == 3  # title + header + rule

    def test_empty_cache_stats_table(self):
        out = cache_stats_table([]).render()
        assert "formation/assembly caches" in out

    def test_empty_ladder_table(self):
        out = ladder_table([]).render()
        assert "degradation" in out

    def test_empty_trace_phase_table(self):
        out = trace_phase_table({}).render()
        assert "trace phases" in out

    def test_empty_metrics_table(self):
        out = metrics_table({}).render()
        assert "metrics" in out


class TestTraceTables:
    def test_phase_table_accepts_both_spellings(self):
        rollup = {"a": {"count": 1, "total": 2.0, "self": 1.0}}
        manifest = {"a": {"count": 1, "total_seconds": 2.0, "self_seconds": 1.0}}
        assert (
            trace_phase_table(rollup).rows == trace_phase_table(manifest).rows
        )

    def test_phase_table_ordered_by_self_time(self):
        phases = {
            "light": {"count": 1, "total": 1.0, "self": 0.1},
            "heavy": {"count": 1, "total": 1.0, "self": 0.9},
        }
        rows = trace_phase_table(phases).rows
        assert rows[0][0] == "heavy"

    def test_metrics_table_histogram_collapses(self):
        snap = {
            "h": {"type": "histogram", "sum": 1.0, "count": 2},
            "c": {"type": "counter", "value": 3.0},
        }
        out = metrics_table(snap).render()
        assert "n=2 mean=500.0 ms" in out
        assert "counter" in out

    def test_metrics_table_empty_histogram_no_zero_division(self):
        snap = {"h": {"type": "histogram", "sum": 0.0, "count": 0}}
        out = metrics_table(snap).render()
        assert "n=0" in out
