"""MemorySampler context-manager behaviour (satellite of the observe PR)."""

import threading
import time

import pytest

from repro.instrument.memory import MemorySampler, peak_and_quantiles


class TestContextManager:
    def test_entry_and_exit_sample(self):
        with MemorySampler() as s:
            pass
        assert len(s.samples) == 2
        assert s.peak > 0

    def test_background_polling(self):
        with MemorySampler(interval=0.005) as s:
            time.sleep(0.05)
        # entry + exit + several background polls
        assert len(s.samples) >= 4

    def test_thread_joined_on_clean_exit(self):
        before = threading.active_count()
        with MemorySampler(interval=0.005):
            time.sleep(0.01)
        assert threading.active_count() == before

    def test_thread_joined_on_exception(self):
        before = threading.active_count()
        sampler = MemorySampler(interval=0.005)
        with pytest.raises(RuntimeError):
            with sampler:
                time.sleep(0.01)
                raise RuntimeError("body died")
        assert sampler._thread is None
        assert threading.active_count() == before
        count = len(sampler.samples)
        time.sleep(0.02)  # a live straggler would keep appending
        assert len(sampler.samples) == count

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            MemorySampler(interval=0.0).__enter__()

    def test_summary_matches_quantiles(self):
        with MemorySampler() as s:
            pass
        assert s.summary() == peak_and_quantiles(s.as_array())
        assert s.summary()["peak"] == float(s.peak)

    def test_reusable_after_exit(self):
        s = MemorySampler(interval=0.005)
        with s:
            pass
        first = len(s.samples)
        with s:
            pass
        assert len(s.samples) == first + 2


class TestStopwatchLap:
    """Satellite: Stopwatch.lap() is the canonical phase-timing form."""

    def test_lap_accumulates(self):
        from repro.utils.timing import Stopwatch

        sw = Stopwatch()
        with sw.lap("phase"):
            time.sleep(0.002)
        with sw.lap("phase"):
            time.sleep(0.002)
        assert sw.laps["phase"] >= 0.004
        assert sw.total() == sum(sw.laps.values())

    def test_lap_stops_on_exception(self):
        from repro.utils.timing import Stopwatch

        sw = Stopwatch()
        with pytest.raises(ValueError):
            with sw.lap("phase"):
                raise ValueError("x")
        assert "phase" in sw.laps  # stopped, not left running
        with sw.lap("phase"):  # restartable
            pass

    def test_nested_distinct_laps(self):
        from repro.utils.timing import Stopwatch

        sw = Stopwatch()
        with sw.lap("outer"):
            with sw.lap("inner"):
                time.sleep(0.002)
        assert sw.laps["outer"] >= sw.laps["inner"]

    def test_double_start_rejected(self):
        from repro.utils.timing import Stopwatch

        sw = Stopwatch()
        sw.start("x")
        with pytest.raises(RuntimeError, match="already running"):
            sw.start("x")
