"""Tests for ASCII heatmap rendering."""

import numpy as np
import pytest

from repro.instrument.heatmap import (
    render_comparison,
    render_field,
    render_mask,
)


class TestRenderField:
    def test_shape_of_output(self):
        out = render_field(np.zeros((3, 5)))
        lines = out.splitlines()
        assert len(lines) == 3 + 2 + 1  # rows + borders + legend
        assert all(len(l) == 7 for l in lines[:5])  # 5 cols + 2 borders

    def test_extremes_use_ramp_ends(self):
        field = np.array([[0.0, 10.0]])
        out = render_field(field, ramp=" @", legend=False)
        assert "| @|" in out or "|_@|".replace("_", " ") in out

    def test_constant_field(self):
        out = render_field(np.full((2, 2), 5.0), ramp=" @")
        assert "@" not in out.splitlines()[1]  # all at minimum glyph

    def test_mask_overlay(self):
        field = np.zeros((2, 2))
        mask = np.array([[True, False], [False, False]])
        out = render_field(field, mask=mask, mask_glyph="X", legend=False)
        assert out.splitlines()[1][1] == "X"

    def test_pinned_scale(self):
        field = np.array([[5.0]])
        out = render_field(field, ramp=" @", vmin=0.0, vmax=10.0,
                           legend=False)
        # 5 on a 0-10 scale with 2 glyphs lands on the top glyph.
        assert out.splitlines()[1] == "|@|"

    def test_legend_contains_range(self):
        out = render_field(np.array([[1.0, 3.0]]))
        assert "1" in out.splitlines()[-1] and "3" in out.splitlines()[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            render_field(np.zeros(4))
        with pytest.raises(ValueError):
            render_field(np.zeros((2, 2)), ramp="x")
        with pytest.raises(ValueError):
            render_field(np.zeros((2, 2)), mask=np.zeros((3, 3), bool))


class TestRenderMask:
    def test_glyphs(self):
        mask = np.array([[True, False], [False, True]])
        assert render_mask(mask) == "#.\n.#"

    def test_custom_glyphs(self):
        mask = np.array([[True]])
        assert render_mask(mask, on="O") == "O"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_mask(np.zeros(3, dtype=bool))


class TestComparison:
    def test_side_by_side_layout(self):
        a = np.zeros((2, 3))
        b = np.ones((2, 3))
        out = render_comparison(a, b)
        lines = out.splitlines()
        assert "truth" in lines[0] and "recovered" in lines[0]
        assert "shared scale" in lines[-1]
        # Body rows contain both panels.
        assert lines[2].count("|") == 4

    def test_shared_scale(self):
        a = np.full((1, 1), 0.0)
        b = np.full((1, 1), 10.0)
        out = render_comparison(a, b, labels=("a", "b"))
        assert "0" in out and "10" in out

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_comparison(np.zeros((2, 2)), np.zeros((3, 3)))
