"""Tests for repro.utils: rng policy, timers, validation."""

import time

import numpy as np
import pytest

from repro.utils.rng import (
    DEFAULT_SEED,
    check_seed_vector,
    default_rng,
    derive_seed,
    permutation_streams,
    spawn_rngs,
)
from repro.utils.timing import Stopwatch, Timer, VirtualClock, measure
from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_positive_array,
    require_positive_int,
    require_shape,
)


class TestRng:
    def test_none_uses_default_seed(self):
        a = default_rng(None).random(5)
        b = default_rng(DEFAULT_SEED).random(5)
        np.testing.assert_array_equal(a, b)

    def test_seeds_reproduce(self):
        assert default_rng(42).random() == default_rng(42).random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "field") == derive_seed(1, "field")
        assert derive_seed(1, "field") != derive_seed(1, "noise")
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)

    def test_derive_seed_none_parent(self):
        assert derive_seed(None, "x") == derive_seed(DEFAULT_SEED, "x")

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(7, 3)
        values = [s.random() for s in streams]
        assert len(set(values)) == 3

    def test_spawn_rngs_deterministic(self):
        a = [g.random() for g in spawn_rngs(7, 4)]
        b = [g.random() for g in spawn_rngs(7, 4)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_permutation_streams(self):
        streams = permutation_streams(3, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].random() != streams["b"].random()

    def test_check_seed_vector(self):
        check_seed_vector([1, 2, 3])
        with pytest.raises(ValueError):
            check_seed_vector([1, 1])


class TestTimers:
    def test_timer_context(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stopwatch_laps(self):
        sw = Stopwatch()
        with sw.lap("a"):
            time.sleep(0.005)
        with sw.lap("b"):
            pass
        assert sw.laps["a"] >= 0.004
        assert sw.total() == pytest.approx(sum(sw.laps.values()))

    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.lap("x"):
                pass
        assert sw.laps["x"] >= 0.0
        assert len(sw.laps) == 1

    def test_stopwatch_double_start_rejected(self):
        sw = Stopwatch()
        sw.start("a")
        with pytest.raises(RuntimeError):
            sw.start("a")

    def test_stopwatch_stop_unstarted_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop("never")

    def test_measure_returns_minimum(self):
        assert measure(lambda: None, repeats=3) < 0.01
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_to_never_goes_back(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestValidation:
    def test_positive_int(self):
        assert require_positive_int(5, "x") == 5
        with pytest.raises(ValueError):
            require_positive_int(0, "x")
        with pytest.raises(TypeError):
            require_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            require_positive_int(True, "x")

    def test_positive_int_minimum(self):
        assert require_positive_int(2, "x", minimum=2) == 2
        with pytest.raises(ValueError):
            require_positive_int(1, "x", minimum=2)

    def test_positive_float(self):
        assert require_positive(1.5, "x") == 1.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                require_positive(bad, "x")

    def test_in_range(self):
        assert require_in_range(0.5, "x", 0.0, 1.0) == 0.5
        assert require_in_range(0.0, "x", 0.0, 1.0) == 0.0
        with pytest.raises(ValueError):
            require_in_range(0.0, "x", 0.0, 1.0, inclusive=False)
        with pytest.raises(ValueError):
            require_in_range(2.0, "x", 0.0, 1.0)

    def test_shape(self):
        arr = np.zeros((3, 4))
        require_shape(arr, (3, 4), "x")
        require_shape(arr, (None, 4), "x")
        with pytest.raises(ValueError):
            require_shape(arr, (4, 3), "x")
        with pytest.raises(ValueError):
            require_shape(arr, (3, 4, 1), "x")

    def test_positive_array(self):
        require_positive_array(np.ones((2, 2)), "x")
        with pytest.raises(ValueError):
            require_positive_array(np.array([1.0, 0.0]), "x")
        with pytest.raises(ValueError):
            require_positive_array(np.array([1.0, np.nan]), "x")
