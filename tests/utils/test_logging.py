"""Tests for the structured logging utility."""

import io
import os

import pytest

from repro.utils import logging as rlog


@pytest.fixture(autouse=True)
def reset_logging():
    yield
    rlog.configure("info")
    rlog._state["level"] = 0  # back to off
    rlog._state["stream"] = __import__("sys").stderr


def capture():
    buf = io.StringIO()
    rlog.configure("info", stream=buf)
    return buf


class TestLevels:
    def test_off_by_default_emits_nothing(self):
        buf = io.StringIO()
        rlog._state["level"] = 0
        rlog._state["stream"] = buf
        rlog.info("event")
        rlog.debug("event")
        assert buf.getvalue() == ""

    def test_info_level(self):
        buf = capture()
        rlog.info("formation", n=40)
        rlog.debug("hidden")
        out = buf.getvalue()
        assert "event=formation" in out and "n=40" in out
        assert "hidden" not in out

    def test_debug_level(self):
        buf = io.StringIO()
        rlog.configure("debug", stream=buf)
        rlog.debug("detail", k=2)
        assert "event=detail" in buf.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            rlog.configure("verbose")

    def test_enabled_guard(self):
        rlog.configure("info", stream=io.StringIO())
        assert rlog.enabled("info")
        assert not rlog.enabled("debug")
        assert rlog.level_name() == "info"


class TestRecordFormat:
    def test_record_fields(self):
        buf = capture()
        rlog.info("solve", n=10, method="nested")
        line = buf.getvalue().strip()
        assert line.startswith("ts=")
        assert f"pid={os.getpid()}" in line
        assert "level=info" in line
        assert "method=nested" in line

    def test_values_with_spaces_are_quoted(self):
        buf = capture()
        rlog.info("note", msg="two words")
        assert "msg='two words'" in buf.getvalue()


class TestLogSpan:
    def test_span_emits_begin_end(self):
        buf = capture()
        with rlog.log_span("formation", n=8):
            pass
        out = buf.getvalue()
        assert "event=formation.begin" in out
        assert "event=formation.end" in out
        assert "elapsed=" in out

    def test_span_records_error(self):
        buf = capture()
        with pytest.raises(RuntimeError):
            with rlog.log_span("bad"):
                raise RuntimeError("x")
        assert "error=RuntimeError" in buf.getvalue()

    def test_span_silent_when_off(self):
        buf = io.StringIO()
        rlog._state["level"] = 0
        rlog._state["stream"] = buf
        with rlog.log_span("quiet"):
            pass
        assert buf.getvalue() == ""
