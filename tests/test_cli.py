"""Tests for the parma command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def campaign_file(tmp_path):
    path = tmp_path / "campaign.txt"
    truth = tmp_path / "truth.npy"
    code = main([
        "simulate", "--n", "8", "--seed", "3", "--noise", "0.0",
        "--out", str(path), "--truth-out", str(truth),
    ])
    assert code == 0
    return path, truth


class TestSimulate:
    def test_writes_campaign_and_truth(self, campaign_file, capsys):
        path, truth = campaign_file
        assert path.exists() and truth.exists()
        fields = np.load(truth)
        assert fields.shape == (4, 8, 8)

    def test_campaign_is_loadable(self, campaign_file):
        from repro.io.textformat import load_campaign

        campaign = load_campaign(campaign_file[0])
        assert campaign.hours == (0.0, 6.0, 12.0, 24.0)


class TestSolve:
    def test_solve_prints_summary(self, campaign_file, capsys, tmp_path):
        path, truth = campaign_file
        field_out = tmp_path / "field.npy"
        code = main([
            "solve", str(path), "--hour", "0", "--strategy", "single",
            "--field-out", str(field_out),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Parma 8x8" in out and "converged=True" in out
        recovered = np.load(field_out)
        expected = np.load(truth)[0]
        np.testing.assert_allclose(recovered, expected, rtol=1e-6)

    def test_solve_persists_equations(self, campaign_file, tmp_path, capsys):
        path, _ = campaign_file
        eqdir = tmp_path / "eqs"
        code = main([
            "solve", str(path), "--strategy", "pymp", "--workers", "2",
            "--equations-dir", str(eqdir),
        ])
        assert code == 0
        assert len(list(eqdir.iterdir())) == 2

    def test_missing_hour_fails_cleanly(self, campaign_file, capsys):
        path, _ = campaign_file
        code = main(["solve", str(path), "--hour", "99"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["solve", str(tmp_path / "nope.txt")])
        assert code == 2


class TestMonitor:
    def test_monitor_reports_drift(self, campaign_file, capsys):
        path, _ = campaign_file
        code = main([
            "monitor", str(path), "--strategy", "single",
            "--growth", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Parma 8x8") == 4
        assert "drift" in out

    def test_warm_start_flag(self, campaign_file, capsys):
        path, _ = campaign_file
        assert main([
            "monitor", str(path), "--strategy", "single",
            "--no-warm-start",
        ]) == 0


class TestInfo:
    def test_info_facts(self, capsys):
        assert main(["info", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "beta_1 = 81" in out
        assert "equations: 2000" in out
        assert "unknowns:  1900" in out

    def test_info_large_n_scientific(self, capsys):
        assert main(["info", "--n", "50"]) == 0
        out = capsys.readouterr().out
        assert "e+" in out  # path count in scientific notation


class TestParser:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_strategy_rejected(self, campaign_file):
        path, _ = campaign_file
        with pytest.raises(SystemExit):
            main(["solve", str(path), "--strategy", "gpu"])


class TestShow:
    def test_solve_show_renders_heatmap(self, campaign_file, capsys):
        path, _ = campaign_file
        assert main([
            "solve", str(path), "--strategy", "single", "--show",
        ]) == 0
        out = capsys.readouterr().out
        assert "+--------+" in out  # 8-column bordered heatmap

    def test_monitor_show_renders_comparison(self, campaign_file, capsys):
        path, _ = campaign_file
        assert main([
            "monitor", str(path), "--strategy", "single", "--show",
        ]) == 0
        out = capsys.readouterr().out
        assert "shared scale" in out


class TestScreen:
    def test_healthy_device_exits_zero(self, campaign_file, capsys):
        path, _ = campaign_file
        assert main(["screen", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 open(s), 0 short(s)" in out

    def test_defective_device_flagged(self, tmp_path, capsys):
        import numpy as np

        from repro.io.textformat import save_measurement
        from repro.kirchhoff.forward import measure
        from repro.mea.dataset import Measurement
        from repro.mea.defects import (
            CROSSING_OPEN,
            DefectMap,
            apply_defects,
        )

        field = np.full((5, 5), 4000.0)
        codes = np.zeros((5, 5), dtype=np.int8)
        codes[1, 3] = CROSSING_OPEN
        defective = apply_defects(field, DefectMap(codes=codes))
        meas = Measurement(z_kohm=measure(defective))
        path = tmp_path / "bad.txt"
        save_measurement(meas, path)
        assert main(["screen", str(path)]) == 1
        out = capsys.readouterr().out
        assert "OPEN  at crossing (1, 3)" in out

    def test_missing_hour(self, campaign_file, capsys):
        path, _ = campaign_file
        assert main(["screen", str(path), "--hour", "42"]) == 2


class TestConvert:
    def test_workbook_conversion(self, tmp_path, capsys):
        from repro.io.workbook import export_workbook
        from repro.mea.synthetic import paper_like_spec
        from repro.mea.wetlab import WetLabConfig, run_campaign

        spec = paper_like_spec(5, seed=71)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=71)
        root = export_workbook(run.campaign, tmp_path / "dev")
        out = tmp_path / "dev.txt"
        assert main(["convert", str(root), "--out", str(out)]) == 0
        assert out.exists()
        assert "4 timepoints" in capsys.readouterr().out

    def test_bad_workbook(self, tmp_path, capsys):
        assert main([
            "convert", str(tmp_path / "missing"), "--out",
            str(tmp_path / "o.txt"),
        ]) == 2


class TestRegularizedSolver:
    def test_solve_regularized_option(self, tmp_path, capsys):
        path = tmp_path / "noisy.txt"
        assert main([
            "simulate", "--n", "6", "--seed", "9", "--noise", "0.01",
            "--out", str(path),
        ]) == 0
        assert main([
            "solve", str(path), "--strategy", "single",
            "--solver", "regularized", "--lam", "0.001",
        ]) == 0
        out = capsys.readouterr().out
        assert "solve regularized" in out


class TestScale:
    def test_scale_writes_bench_shape(self, tmp_path, capsys):
        out = tmp_path / "scaling.json"
        assert main([
            "scale", "--n", "8", "--ranks", "16", "--chunk-items", "32",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "simulated strong scaling" in text
        import json

        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "elastic_scaling"
        assert set(payload["curves"]) >= {"contiguous", "balanced", "betti"}
        for curve in payload["curves"].values():
            assert curve["rank_counts"][-1] <= 16
            assert len(curve["speedup"]) == len(curve["rank_counts"])
        from repro.parallel.pymp import fork_available

        if fork_available():
            assert payload["campaign"]["part_files_identical"] is True
            assert payload["sizes"][0]["n"] == 8
            assert payload["sizes"][0]["elastic_formation_seconds"] > 0

    def test_scale_no_churn_quiet_only(self, tmp_path, capsys):
        out = tmp_path / "scaling.json"
        assert main([
            "scale", "--n", "8", "--ranks", "4", "--no-churn",
            "--out", str(out),
        ]) == 0
        import json

        payload = json.loads(out.read_text())
        assert "churn_overhead" not in payload["campaign"]

    def test_scale_traced_run_is_regressable(self, tmp_path, capsys):
        """scale --trace --catalog --bench-tag scaling feeds the gate."""
        from repro.parallel.pymp import fork_available

        if not fork_available():
            pytest.skip("requires os.fork")
        bench = tmp_path / "BENCH_scaling.json"
        trace = tmp_path / "trace"
        db = tmp_path / "cat.db"
        assert main([
            "scale", "--n", "8", "--ranks", "4",
            "--out", str(bench),
            "--trace", str(trace), "--catalog", str(db),
            "--bench-tag", "scaling",
        ]) == 0
        capsys.readouterr()
        assert main([
            "runs", "regress", "--db", str(db),
            "--bench", str(bench), "--threshold", "25",
        ]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out
