"""The documentation must stay true: links resolve, snippets parse.

Runs the same checkers as the CI ``docs`` job (``scripts/check_docs.py``
and ``scripts/check_docstrings.py``) plus negative tests proving the
checkers actually catch rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load("check_docs")
check_docstrings = _load("check_docstrings")


class TestRepoDocsAreClean:
    def test_links_and_snippets(self, capsys):
        assert check_docs.main(["--root", str(REPO_ROOT)]) == 0

    def test_docs_index_covers_every_doc(self):
        """Every file in docs/ must be linked from the README's index."""
        readme = (REPO_ROOT / "README.md").read_text()
        for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
            assert f"docs/{doc.name}" in readme, f"{doc.name} not indexed"

    def test_serve_docstrings(self):
        assert check_docstrings.main([]) == 0


class TestLinkChecker:
    def test_github_slug(self):
        slug = check_docs.github_slug
        assert slug("Deadlines & supervision") == "deadlines--supervision"
        assert slug("Run manifest (`manifest.json`)") == "run-manifest-manifestjson"
        assert slug("A B-c_d") == "a-b-c_d"

    def test_broken_relative_link_detected(self, tmp_path):
        (tmp_path / "a.md").write_text("see [gone](missing.md)\n")
        problems = check_docs.check_links([tmp_path / "a.md"], tmp_path)
        assert len(problems) == 1 and "broken link" in problems[0]

    def test_missing_anchor_detected(self, tmp_path):
        (tmp_path / "a.md").write_text("see [b](b.md#nope)\n")
        (tmp_path / "b.md").write_text("# Real heading\n")
        problems = check_docs.check_links([tmp_path / "a.md"], tmp_path)
        assert len(problems) == 1 and "missing anchor" in problems[0]

    def test_good_anchor_and_external_links_pass(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[ok](b.md#real-heading) [web](https://example.com/x#y)\n"
        )
        (tmp_path / "b.md").write_text("# Real heading\n")
        assert check_docs.check_links([tmp_path / "a.md"], tmp_path) == []

    def test_links_inside_code_fences_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```\n[not a link](nowhere.md)\n```\n"
        )
        assert check_docs.check_links([tmp_path / "a.md"], tmp_path) == []


class TestIndexChecker:
    def test_orphaned_docs_page_detected(self, tmp_path):
        """A docs page with no README link must fail the docs build."""
        (tmp_path / "README.md").write_text(
            "| [docs/KNOWN.md](docs/KNOWN.md) | indexed |\n"
        )
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "KNOWN.md").write_text("# Known\n")
        (docs / "ORPHAN.md").write_text("# Orphan\n")
        problems = check_docs.check_index(
            [docs / "KNOWN.md", docs / "ORPHAN.md"], tmp_path
        )
        assert len(problems) == 1
        assert "ORPHAN.md" in problems[0]
        assert "not linked from README" in problems[0]

    def test_readme_itself_exempt(self, tmp_path):
        (tmp_path / "README.md").write_text("no links at all\n")
        assert check_docs.check_index([tmp_path / "README.md"], tmp_path) == []

    def test_no_readme_is_not_an_error(self, tmp_path):
        (tmp_path / "a.md").write_text("# A\n")
        assert check_docs.check_index([tmp_path / "a.md"], tmp_path) == []


class TestSnippetChecker:
    def test_stale_flag_detected(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```bash\nparma solve day.txt --no-such-flag\n```\n"
        )
        problems = check_docs.check_snippets([tmp_path / "a.md"], REPO_ROOT)
        assert len(problems) == 1 and "rejected by the CLI" in problems[0]

    def test_valid_command_passes(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```bash\n"
            "$ parma simulate --n 10 --seed 7 --out day.txt\n"
            "parma serve --socket /tmp/s.sock --results r &\n"
            "parma solve day.txt \\\n"
            "    --trace runs/x --metrics\n"
            "kill -TERM %1\n"
            "```\n"
        )
        assert check_docs.check_snippets([tmp_path / "a.md"], REPO_ROOT) == []

    def test_prose_parma_mentions_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "Run parma solve --bogus to taste.\n"  # not in a fence
        )
        assert check_docs.check_snippets([tmp_path / "a.md"], REPO_ROOT) == []


class TestDocstringChecker:
    def test_missing_docstring_detected(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('"""Module."""\n\ndef public():\n    pass\n')
        problems = check_docstrings.check_file(bad, tmp_path)
        assert len(problems) == 1 and "missing docstring" in problems[0]

    def test_summary_punctuation_enforced(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Module."""\n\ndef public():\n    """no period"""\n'
        )
        problems = check_docstrings.check_file(bad, tmp_path)
        assert len(problems) == 1 and "end with a period" in problems[0]

    def test_private_names_exempt(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text('"""Module."""\n\ndef _helper():\n    pass\n')
        assert check_docstrings.check_file(good, tmp_path) == []
