"""Tests for the MEA graph/complex abstractions and Proposition 1."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mea.device import MEAGrid
from repro.mea.graph import (
    device_complex,
    expected_betti,
    joint_graph,
    mesh_count,
    resistor_complex,
    resistor_graph,
    wire_graph,
)
from repro.topology.homology import betti_numbers


class TestJointGraph:
    def test_node_count_with_terminals(self):
        g = joint_graph(MEAGrid(3))
        # 18 joints + 6 terminals.
        assert g.number_of_nodes() == 24

    def test_node_count_without_terminals(self):
        g = joint_graph(MEAGrid(3), include_terminals=False)
        assert g.number_of_nodes() == 18

    def test_edge_kinds(self):
        g = joint_graph(MEAGrid(3), include_terminals=False)
        kinds = nx.get_edge_attributes(g, "kind")
        resistors = [e for e, k in kinds.items() if k == "resistor"]
        wires = [e for e, k in kinds.items() if k == "wire"]
        assert len(resistors) == 9
        assert len(wires) == 12  # 3*2 horizontal + 3*2 vertical segments

    def test_connected(self):
        assert nx.is_connected(joint_graph(MEAGrid(4)))

    def test_resistor_edges_link_correct_joints(self):
        grid = MEAGrid(3)
        g = joint_graph(grid, include_terminals=False)
        for res in grid.resistors():
            assert g.has_edge(res.h_joint, res.v_joint)


class TestProposition1:
    """An MEA is a 1-dimensional abstract simplicial complex."""

    @given(st.integers(2, 5))
    @settings(max_examples=4, deadline=None)
    def test_device_complex_has_dimension_one(self, n):
        c = device_complex(MEAGrid(n))
        assert c.dimension == 1

    def test_device_complex_is_simplicial(self):
        assert device_complex(MEAGrid(3)).is_simplicial()

    @given(st.integers(2, 5))
    @settings(max_examples=4, deadline=None)
    def test_betti_matches_analytic(self, n):
        grid = MEAGrid(n)
        c = device_complex(grid)
        assert betti_numbers(c) == expected_betti(grid)

    def test_betti1_is_mesh_count(self):
        """β1 of the joint complex = (n-1)^2 — the §IV-B hole count."""
        for n in (2, 3, 4):
            grid = MEAGrid(n)
            assert expected_betti(grid)[1] == (n - 1) ** 2 == mesh_count(grid)

    def test_terminals_do_not_change_beta1(self):
        grid = MEAGrid(3)
        assert expected_betti(grid, include_terminals=True)[1] == \
            expected_betti(grid, include_terminals=False)[1]

    def test_betti_with_terminals_matches_homology(self):
        grid = MEAGrid(3)
        c = device_complex(grid, include_terminals=True)
        assert betti_numbers(c) == expected_betti(grid, include_terminals=True)


class TestResistorGraph:
    def test_is_grid_graph(self):
        g = resistor_graph(MEAGrid(3, 4))
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4  # h + v links

    def test_cyclomatic_equals_mesh_count(self):
        for m, n in ((2, 2), (3, 3), (3, 5)):
            grid = MEAGrid(m, n)
            g = resistor_graph(grid)
            cyclo = g.number_of_edges() - g.number_of_nodes() + 1
            assert cyclo == mesh_count(grid)

    def test_resistor_complex_homology(self):
        grid = MEAGrid(4)
        assert betti_numbers(resistor_complex(grid)) == (1, 9)


class TestWireGraph:
    def test_is_complete_bipartite(self):
        g = wire_graph(MEAGrid(3, 4))
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 12

    def test_edge_attributes_identify_resistors(self):
        g = wire_graph(MEAGrid(2))
        attrs = g.get_edge_data(("H", 1), ("V", 0))
        assert (attrs["row"], attrs["col"]) == (1, 0)

    def test_same_cyclomatic_number_as_resistor_graph(self):
        """The two abstractions are homotopy-equivalent."""
        grid = MEAGrid(4)
        wg = wire_graph(grid)
        cyclo = wg.number_of_edges() - wg.number_of_nodes() + 1
        assert cyclo == mesh_count(grid)
