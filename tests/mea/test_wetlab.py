"""Tests for the simulated wet-lab measurement campaign."""

import numpy as np
import pytest

from repro.kirchhoff.forward import measure
from repro.mea.synthetic import FieldSpec, paper_like_spec
from repro.mea.wetlab import (
    WetLabConfig,
    quick_device_data,
    run_campaign,
    simulate_measurement,
)


class TestSimulateMeasurement:
    def test_noise_free_matches_forward_solver(self):
        r = np.full((4, 4), 3000.0)
        meas = simulate_measurement(r, WetLabConfig(noise_rel=0.0))
        np.testing.assert_allclose(meas.z_kohm, measure(r))

    def test_noise_perturbs_multiplicatively(self):
        r = np.full((4, 4), 3000.0)
        cfg = WetLabConfig(noise_rel=0.02)
        meas = simulate_measurement(r, cfg, seed=1)
        ratio = meas.z_kohm / measure(r)
        assert not np.allclose(ratio, 1.0)
        assert np.all(np.abs(np.log(ratio)) < 5 * np.log1p(0.02))

    def test_deterministic_in_seed(self):
        r = np.full((4, 4), 3000.0)
        cfg = WetLabConfig(noise_rel=0.01)
        a = simulate_measurement(r, cfg, seed=3)
        b = simulate_measurement(r, cfg, seed=3)
        np.testing.assert_array_equal(a.z_kohm, b.z_kohm)

    def test_different_hours_get_different_noise(self):
        r = np.full((4, 4), 3000.0)
        cfg = WetLabConfig(noise_rel=0.01)
        a = simulate_measurement(r, cfg, hour=0.0, seed=3)
        b = simulate_measurement(r, cfg, hour=6.0, seed=3)
        assert not np.array_equal(a.z_kohm, b.z_kohm)

    def test_metadata_present(self):
        r = np.full((3, 3), 3000.0)
        meas = simulate_measurement(r)
        assert meas.meta["source"] == "wetlab-sim"


class TestWetLabConfig:
    def test_hours_must_be_sorted(self):
        with pytest.raises(ValueError):
            WetLabConfig(hours=(6.0, 0.0))

    def test_noise_bounds(self):
        with pytest.raises(ValueError):
            WetLabConfig(noise_rel=0.9)


class TestRunCampaign:
    def test_four_timepoints(self):
        run = run_campaign(paper_like_spec(6, seed=1), seed=1)
        assert run.campaign.hours == (0.0, 6.0, 12.0, 24.0)
        assert len(run.ground_truth) == 4
        assert run.n == 6

    def test_anomalies_grow_over_time(self):
        spec = paper_like_spec(10, num_anomalies=1, seed=2)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=2)
        # Peak resistance rises across timepoints (growth model).
        peaks = [float(f.max()) for f in run.ground_truth]
        assert peaks[0] <= peaks[-1]
        # Measured Z at the anomaly's pair rises too.
        blob = spec.blobs[0]
        r, c = int(round(blob.center[0])), int(round(blob.center[1]))
        z0 = run.campaign.measurements[0].z_kohm[r, c]
        z3 = run.campaign.measurements[-1].z_kohm[r, c]
        assert z3 > z0

    def test_baseline_shared_across_timepoints(self):
        spec = FieldSpec(n=8, noise_rel=0.05)  # no blobs
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=5)
        # Without anomalies and without instrument noise, ground truth
        # is identical across timepoints (same field seed).
        for f in run.ground_truth[1:]:
            np.testing.assert_array_equal(f, run.ground_truth[0])

    def test_campaign_is_deterministic(self):
        spec = paper_like_spec(6, seed=3)
        a = run_campaign(spec, seed=3)
        b = run_campaign(spec, seed=3)
        for ma, mb in zip(a.campaign, b.campaign):
            np.testing.assert_array_equal(ma.z_kohm, mb.z_kohm)


class TestQuickDeviceData:
    def test_shapes(self):
        r, z = quick_device_data(7, seed=1)
        assert r.shape == (7, 7) and z.shape == (7, 7)

    def test_noise_free_by_default(self):
        r, z = quick_device_data(5, seed=1)
        np.testing.assert_allclose(z, measure(r))

    def test_z_below_r_scale(self):
        # Many parallel paths: measured Z is far below the R values.
        r, z = quick_device_data(10, seed=1)
        assert z.max() < r.min()
