"""Tests for k-dimensional lattice physics."""

import numpy as np
import pytest

from repro.mea.lattice import (
    LatticeDevice,
    uniform_face_resistance_exact,
)


class TestConstruction:
    def test_uniform_edge_count(self):
        dev = LatticeDevice.uniform(3, 2)
        assert len(dev.resistances) == dev.mea.num_edges == 12

    def test_random_deterministic(self):
        a = LatticeDevice.random(3, 2, seed=1)
        b = LatticeDevice.random(3, 2, seed=1)
        assert a.resistances == b.resistances

    def test_circuit_counts(self):
        dev = LatticeDevice.uniform(3, 3)
        c = dev.circuit()
        assert c.num_nodes == 27
        assert c.num_edges == dev.mea.num_edges


class TestKnownValues:
    def test_1d_chain_is_series(self):
        dev = LatticeDevice.uniform(5, 1, ohms=100.0)
        z = dev.corner_to_corner()
        assert z == pytest.approx(400.0)

    def test_2x2_square_known(self):
        """Unit square, opposite corners: R = 1.0 * R_edge (two
        2-resistor paths in parallel)."""
        dev = LatticeDevice.uniform(2, 2, ohms=100.0)
        assert dev.corner_to_corner() == pytest.approx(100.0)

    def test_unit_cube_known(self):
        """Classic: opposite corners of a resistor cube = 5/6 R."""
        dev = LatticeDevice.uniform(2, 3, ohms=600.0)
        assert dev.corner_to_corner() == pytest.approx(500.0)

    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (3, 3)])
    def test_face_to_face_closed_form(self, n, k):
        ohms = 1200.0
        dev = LatticeDevice.uniform(n, k, ohms=ohms)
        expected = uniform_face_resistance_exact(n, k, ohms)
        assert dev.face_to_face_resistance(0) == pytest.approx(
            expected, rel=1e-6
        )

    def test_face_axes_symmetric_for_uniform(self):
        dev = LatticeDevice.uniform(3, 3, ohms=900.0)
        z0 = dev.face_to_face_resistance(0)
        z2 = dev.face_to_face_resistance(2)
        # Tolerance bounded by the 1e-9 face-tie resistors.
        assert z0 == pytest.approx(z2, rel=1e-5)

    def test_axis_out_of_range(self):
        with pytest.raises(ValueError):
            LatticeDevice.uniform(3, 2).face_sites(2, 0)


class TestPhysicsStructureAgreement:
    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (3, 3)])
    def test_mesh_count_equals_cyclomatic(self, n, k):
        dev = LatticeDevice.random(n, k, seed=2)
        assert dev.mesh_loop_count() == dev.mea.cyclomatic_number()

    def test_kirchhoff_laws_hold_on_random_3d(self):
        dev = LatticeDevice.random(3, 3, seed=3)
        assert dev.verify_laws((0, 0, 0), (2, 2, 2))

    def test_random_device_monotone_under_scaling(self):
        dev = LatticeDevice.random(3, 2, seed=4)
        z1 = dev.corner_to_corner()
        scaled = LatticeDevice(
            mea=dev.mea,
            resistances={e: 2 * v for e, v in dev.resistances.items()},
        )
        assert scaled.corner_to_corner() == pytest.approx(2 * z1, rel=1e-9)

    def test_effective_resistance_triangle_inequality(self):
        """Effective resistance is a metric on the lattice sites."""
        dev = LatticeDevice.random(3, 2, seed=5)
        a, b, c = (0, 0), (1, 1), (2, 2)
        zab = dev.effective_resistance(a, b)
        zbc = dev.effective_resistance(b, c)
        zac = dev.effective_resistance(a, c)
        assert zac <= zab + zbc + 1e-9
