"""Tests for measurement containers."""

import numpy as np
import pytest

from repro.mea.dataset import Measurement, MeasurementCampaign


def meas(hour=0.0, scale=1.0, n=3):
    return Measurement(z_kohm=np.full((n, n), 1000.0 * scale), hour=hour)


class TestMeasurement:
    def test_basic_fields(self):
        m = meas()
        assert m.shape == (3, 3)
        assert m.n == 3
        assert m.voltage == 5.0

    def test_rejects_nonpositive_z(self):
        with pytest.raises(ValueError):
            Measurement(z_kohm=np.array([[1.0, -2.0], [3.0, 4.0]]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Measurement(z_kohm=np.ones(5))

    def test_rejects_negative_hour(self):
        with pytest.raises(ValueError):
            Measurement(z_kohm=np.ones((2, 2)), hour=-1.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ValueError):
            Measurement(z_kohm=np.ones((2, 2)), voltage=0.0)

    def test_n_raises_for_rectangular(self):
        m = Measurement(z_kohm=np.ones((2, 3)))
        with pytest.raises(ValueError):
            _ = m.n

    def test_with_meta_merges(self):
        m = meas().with_meta(run="a")
        m2 = m.with_meta(extra="b")
        assert m2.meta == {"run": "a", "extra": "b"}


class TestCampaign:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            MeasurementCampaign(measurements=(meas(hour=6.0), meas(hour=0.0)))

    def test_mixed_shapes_rejected(self):
        with pytest.raises(ValueError):
            MeasurementCampaign(measurements=(meas(n=3), meas(n=4)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MeasurementCampaign(measurements=())

    def test_at_hour(self):
        c = MeasurementCampaign(measurements=(meas(0.0), meas(6.0)))
        assert c.at_hour(6.0).hour == 6.0
        with pytest.raises(KeyError):
            c.at_hour(12.0)

    def test_iteration_and_len(self):
        c = MeasurementCampaign(measurements=(meas(0.0), meas(6.0), meas(12.0)))
        assert len(c) == 3
        assert [m.hour for m in c] == [0.0, 6.0, 12.0]

    def test_drift(self):
        c = MeasurementCampaign(
            measurements=(meas(0.0, scale=1.0), meas(24.0, scale=1.5))
        )
        np.testing.assert_allclose(c.drift(), 0.5)
