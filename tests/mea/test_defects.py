"""Tests for defect modeling and screening."""

import numpy as np
import pytest

from repro.core.solver import solve_nested
from repro.kirchhoff.forward import measure
from repro.mea.defects import (
    CROSSING_OK,
    CROSSING_OPEN,
    CROSSING_SHORT,
    OPEN_KOHM,
    SHORT_KOHM,
    DefectMap,
    apply_defects,
    classify_crossings,
    healthy_band_violations,
    random_defects,
)
from repro.mea.synthetic import FieldSpec, generate_field


class TestDefectMap:
    def test_counts(self):
        codes = np.array([[0, 1], [2, 0]], dtype=np.int8)
        dm = DefectMap(codes=codes)
        assert dm.num_opens == 1 and dm.num_shorts == 1
        assert dm.num_defects == 2
        assert dm.open_sites() == [(0, 1)]
        assert dm.short_sites() == [(1, 0)]

    def test_invalid_codes_rejected(self):
        with pytest.raises(ValueError):
            DefectMap(codes=np.array([[3]]))

    def test_agreement(self):
        a = DefectMap(codes=np.zeros((2, 2), dtype=np.int8))
        b = DefectMap(codes=np.array([[0, 1], [0, 0]], dtype=np.int8))
        assert a.agreement(b) == pytest.approx(0.75)

    def test_agreement_shape_mismatch(self):
        a = DefectMap(codes=np.zeros((2, 2), dtype=np.int8))
        b = DefectMap(codes=np.zeros((3, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            a.agreement(b)


class TestRandomDefects:
    def test_rates_respected_statistically(self):
        dm = random_defects((50, 50), open_rate=0.05, short_rate=0.02, seed=1)
        assert 0.02 < dm.num_opens / 2500 < 0.09
        assert 0.005 < dm.num_shorts / 2500 < 0.04

    def test_deterministic(self):
        a = random_defects((10, 10), seed=2)
        b = random_defects((10, 10), seed=2)
        assert a.agreement(b) == 1.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            random_defects((5, 5), open_rate=0.4, short_rate=0.2)
        with pytest.raises(ValueError):
            random_defects((5, 5), open_rate=-0.1)


class TestApplyAndClassify:
    def test_apply_sets_extremes(self):
        field = np.full((3, 3), 3000.0)
        codes = np.zeros((3, 3), dtype=np.int8)
        codes[0, 0] = CROSSING_OPEN
        codes[2, 2] = CROSSING_SHORT
        defective = apply_defects(field, DefectMap(codes=codes))
        assert defective[0, 0] == OPEN_KOHM
        assert defective[2, 2] == SHORT_KOHM
        assert defective[1, 1] == 3000.0
        assert field[0, 0] == 3000.0  # original untouched

    def test_classify_roundtrip_on_truth(self):
        field = np.full((4, 4), 5000.0)
        dm = random_defects((4, 4), open_rate=0.2, short_rate=0.1, seed=3)
        defective = apply_defects(field, dm)
        recovered_map = classify_crossings(defective)
        assert recovered_map.agreement(dm) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_defects(np.ones((2, 2)), DefectMap(np.zeros((3, 3), np.int8)))


class TestEndToEndScreening:
    def test_open_detected_through_full_inversion(self):
        """Forward-measure a device with one open crossing, invert,
        and screen: the open must be flagged at its true site."""
        spec = FieldSpec(n=6, noise_rel=0.02)
        field = generate_field(spec, seed=4)
        codes = np.zeros((6, 6), dtype=np.int8)
        codes[2, 3] = CROSSING_OPEN
        defective = apply_defects(field, DefectMap(codes=codes))
        z = measure(defective)
        result = solve_nested(z, tol=1e-10, max_iter=200)
        screened = classify_crossings(result.r_estimate)
        assert screened.codes[2, 3] == CROSSING_OPEN
        # No false opens elsewhere.
        assert screened.num_opens == 1

    def test_short_detected_through_full_inversion(self):
        spec = FieldSpec(n=6, noise_rel=0.02)
        field = generate_field(spec, seed=5)
        codes = np.zeros((6, 6), dtype=np.int8)
        codes[4, 1] = CROSSING_SHORT
        defective = apply_defects(field, DefectMap(codes=codes))
        z = measure(defective)
        result = solve_nested(z, tol=1e-10, max_iter=200)
        screened = classify_crossings(result.r_estimate)
        assert screened.codes[4, 1] == CROSSING_SHORT
        assert screened.num_shorts == 1

    def test_healthy_device_screens_clean(self):
        field = generate_field(FieldSpec(n=5, noise_rel=0.05), seed=6)
        z = measure(field)
        result = solve_nested(z)
        screened = classify_crossings(result.r_estimate)
        assert screened.num_defects == 0
        assert not healthy_band_violations(result.r_estimate).any()

    def test_band_violations_softer_than_defects(self):
        field = np.full((3, 3), 3000.0)
        field[1, 1] = 50_000.0  # suspicious but not an open
        mask = healthy_band_violations(field)
        assert mask[1, 1] and mask.sum() == 1
        assert classify_crossings(field).num_defects == 0
