"""Tests for the k-dimensional MEA generalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mea.kdim import KDimMEA


class TestClosedFormsMatchConstruction:
    @given(st.integers(2, 5), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_site_and_edge_counts(self, n, k):
        mea = KDimMEA(n, k)
        assert len(list(mea.sites())) == mea.num_sites
        assert len(list(mea.edges())) == mea.num_edges

    @given(st.integers(2, 5), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_unit_cell_count(self, n, k):
        mea = KDimMEA(n, k)
        assert len(list(mea.unit_cells())) == mea.num_unit_cells
        assert mea.num_unit_cells == (n - 1) ** k

    def test_k2_matches_2d_mesh_count(self):
        mea = KDimMEA(5, 2)
        assert mea.num_unit_cells == 16
        assert mea.cyclomatic_number() == 16  # grid graph beta1

    def test_k2_unit_squares_equal_cells(self):
        mea = KDimMEA(4, 2)
        assert mea.num_unit_squares == mea.num_unit_cells

    def test_k3_square_cell_cyclomatic_ordering(self):
        mea = KDimMEA(3, 3)
        # Squares over-count beta1 (cube relations), cells under-count:
        # squares (36) > cyclomatic (28) > cells (8) at n = k = 3.
        assert mea.num_unit_squares == 36
        assert mea.cyclomatic_number() == 28
        assert mea.num_unit_cells == 8
        assert (
            mea.num_unit_squares
            > mea.cyclomatic_number()
            > mea.num_unit_cells
        )

    @given(st.integers(2, 4), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_cyclomatic_from_networkx(self, n, k):
        mea = KDimMEA(n, k)
        g = mea.to_networkx()
        assert mea.cyclomatic_number() == (
            g.number_of_edges() - g.number_of_nodes() + 1
        )

    def test_k1_is_a_path(self):
        mea = KDimMEA(5, 1)
        assert mea.cyclomatic_number() == 0
        assert mea.num_unit_squares == 0


class TestSectionIVBComplexity:
    """§IV-B: O(n^{k+1}) constraints / (n-1)^k holes ≈ O(n)."""

    @given(st.integers(4, 20), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_per_hole_share_is_near_linear(self, n, k):
        mea = KDimMEA(n, k)
        share = mea.theoretical_parallel_time_units()
        # share = 2 n^{k+1} / (n-1)^k -> 2n asymptotically; allow the
        # finite-size factor (n/(n-1))^k.
        upper = 2 * n * (n / (n - 1)) ** k + 1
        assert 2 * n <= share <= upper + 1

    def test_constraint_count_k2(self):
        assert KDimMEA(10, 2).joint_constraint_count() == 2 * 10**3


class TestUnitCells:
    def test_cell_vertex_count(self):
        mea = KDimMEA(3, 3)
        assert len(mea.unit_cell_vertices((0, 0, 0))) == 8

    def test_cell_vertices_are_corners(self):
        mea = KDimMEA(4, 2)
        corners = mea.unit_cell_vertices((1, 2))
        assert set(corners) == {(1, 2), (1, 3), (2, 2), (2, 3)}

    def test_anchor_out_of_range(self):
        mea = KDimMEA(3, 2)
        with pytest.raises(ValueError):
            mea.unit_cell_vertices((2, 0))  # anchor must be < n-1

    def test_anchor_wrong_arity(self):
        with pytest.raises(ValueError):
            KDimMEA(3, 2).unit_cell_vertices((0, 0, 0))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            KDimMEA(1, 2)
