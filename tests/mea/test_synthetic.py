"""Tests for synthetic ground-truth field generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mea.synthetic import (
    PAPER_R_MAX_KOHM,
    PAPER_R_MIN_KOHM,
    AnomalyBlob,
    FieldSpec,
    anomaly_mask,
    generate_field,
    growth_sequence,
    paper_like_spec,
    random_blobs,
)


class TestAnomalyBlob:
    def test_magnitude_below_one_rejected(self):
        with pytest.raises(ValueError):
            AnomalyBlob(center=(1, 1), radius=1.0, magnitude=0.5)

    def test_radius_positive(self):
        with pytest.raises(ValueError):
            AnomalyBlob(center=(1, 1), radius=0.0, magnitude=2.0)

    def test_factor_peaks_at_center(self):
        blob = AnomalyBlob(center=(2.0, 2.0), radius=2.0, magnitude=3.0)
        rows, cols = np.mgrid[0:5, 0:5].astype(float)
        f = blob.factor(rows, cols)
        assert f[2, 2] == pytest.approx(3.0)
        assert f[0, 0] == pytest.approx(1.0)  # outside radius

    def test_factor_monotone_falloff(self):
        blob = AnomalyBlob(center=(0.0, 0.0), radius=3.0, magnitude=4.0)
        d = np.array([[0.0, 1.0, 2.0, 2.9]])
        f = blob.factor(np.zeros_like(d), d)
        assert np.all(np.diff(f[0]) < 0)


class TestGenerateField:
    def test_deterministic_in_seed(self):
        spec = paper_like_spec(10, seed=1)
        a = generate_field(spec, seed=5)
        b = generate_field(spec, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        spec = paper_like_spec(10, seed=1)
        assert not np.array_equal(
            generate_field(spec, seed=5), generate_field(spec, seed=6)
        )

    @given(st.integers(4, 30), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_values_in_paper_band(self, n, seed):
        spec = paper_like_spec(n, seed=seed)
        field = generate_field(spec, seed=seed)
        assert field.shape == (n, n)
        assert field.min() >= PAPER_R_MIN_KOHM
        assert field.max() <= PAPER_R_MAX_KOHM

    def test_anomaly_raises_resistance(self):
        blob = AnomalyBlob(center=(5.0, 5.0), radius=2.5, magnitude=3.0)
        spec = FieldSpec(n=11, noise_rel=0.0, blobs=(blob,))
        field = generate_field(spec)
        assert field[5, 5] > 2.5 * field[0, 0]

    def test_no_noise_no_blobs_is_constant(self):
        spec = FieldSpec(n=6, noise_rel=0.0)
        field = generate_field(spec)
        assert np.allclose(field, spec.baseline_kohm)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FieldSpec(n=1)
        with pytest.raises(ValueError):
            FieldSpec(n=5, baseline_kohm=-1.0)
        with pytest.raises(ValueError):
            FieldSpec(n=5, noise_rel=2.0)


class TestRandomBlobs:
    def test_count_respected(self):
        blobs = random_blobs(20, 3, seed=2)
        assert len(blobs) == 3

    def test_zero_count(self):
        assert random_blobs(10, 0) == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_blobs(10, -1)

    def test_small_grid_still_places(self):
        assert len(random_blobs(4, 2, seed=0)) == 2

    def test_deterministic(self):
        assert random_blobs(15, 2, seed=9) == random_blobs(15, 2, seed=9)


class TestMaskAndGrowth:
    def test_anomaly_mask_covers_blob_centers(self):
        spec = paper_like_spec(12, num_anomalies=2, seed=4)
        mask = anomaly_mask(spec)
        for blob in spec.blobs:
            r, c = int(round(blob.center[0])), int(round(blob.center[1]))
            assert mask[r, c]

    def test_mask_empty_without_blobs(self):
        assert not anomaly_mask(FieldSpec(n=6)).any()

    def test_growth_sequence_monotone(self):
        spec = paper_like_spec(12, num_anomalies=1, seed=4)
        seq = growth_sequence(spec, hours=(0.0, 6.0, 12.0, 24.0))
        radii = [s.blobs[0].radius for s in seq]
        mags = [s.blobs[0].magnitude for s in seq]
        assert radii == sorted(radii) and radii[0] < radii[-1]
        assert mags == sorted(mags) and mags[0] < mags[-1]

    def test_growth_preserves_centers(self):
        spec = paper_like_spec(12, num_anomalies=2, seed=4)
        seq = growth_sequence(spec)
        for later in seq:
            for b0, b1 in zip(spec.blobs, later.blobs):
                assert b0.center == b1.center

    def test_hour_zero_is_identity(self):
        spec = paper_like_spec(12, num_anomalies=1, seed=4)
        seq = growth_sequence(spec, hours=(0.0,))
        assert seq[0].blobs[0].radius == pytest.approx(spec.blobs[0].radius)
