"""Tests for the MEA device model and Figure-1 numbering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mea.device import (
    MEAGrid,
    horizontal_wire_name,
    roman_numeral,
    vertical_wire_name,
)


class TestNaming:
    def test_roman_numerals(self):
        assert [roman_numeral(k) for k in (1, 2, 3, 4, 9, 40)] == [
            "I", "II", "III", "IV", "IX", "XL"
        ]

    def test_roman_requires_positive(self):
        with pytest.raises(ValueError):
            roman_numeral(0)

    def test_horizontal_names(self):
        assert horizontal_wire_name(0) == "A"
        assert horizontal_wire_name(2) == "C"
        assert horizontal_wire_name(26) == "H26"

    def test_vertical_names(self):
        assert vertical_wire_name(0) == "I"
        assert vertical_wire_name(2) == "III"

    def test_negative_wire_rejected(self):
        with pytest.raises(ValueError):
            horizontal_wire_name(-1)
        with pytest.raises(ValueError):
            vertical_wire_name(-1)

    def test_figure1_wire_sets(self):
        g = MEAGrid(3)
        assert g.horizontal_wires() == ["A", "B", "C"]
        assert g.vertical_wires() == ["I", "II", "III"]


class TestCounts:
    def test_paper_counts_square(self):
        g = MEAGrid(3)
        assert g.num_resistors == 9
        assert g.num_joints == 18  # "18 joints {0, ..., 17}"
        assert g.num_endpoint_pairs == 9

    def test_rectangular_counts(self):
        g = MEAGrid(2, 5)
        assert g.num_resistors == 10
        assert g.num_joints == 20
        assert not g.is_square

    def test_path_formula_square_only(self):
        assert MEAGrid(3).total_path_count() == 3**4 == 81
        assert MEAGrid(3).paths_per_pair() == 9
        with pytest.raises(ValueError):
            MEAGrid(2, 3).total_path_count()

    @given(st.integers(2, 12))
    @settings(max_examples=12, deadline=None)
    def test_path_count_closed_form(self, n):
        g = MEAGrid(n)
        assert g.total_path_count() == n ** (n + 1)
        assert g.total_path_count() == g.paths_per_pair() * g.num_endpoint_pairs

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MEAGrid(0)


class TestJointNumbering:
    """The exact Figure-1 joint ids the paper's worked paths use."""

    def test_figure1_examples(self):
        g = MEAGrid(3)
        assert g.joint_indices(0, 0) == (0, 1)  # R_11
        assert g.joint_indices(0, 1) == (2, 3)  # R_12
        assert g.joint_indices(1, 1) == (8, 9)  # R_22 (path B->8->9)
        assert g.joint_indices(2, 1) == (14, 15)  # R_32 (14 -R32- 15)
        assert g.joint_indices(2, 2) == (16, 17)  # R_33

    def test_joint_inverse_mapping(self):
        g = MEAGrid(4)
        for res in g.resistors():
            jh = g.joint(res.h_joint)
            jv = g.joint(res.v_joint)
            assert (jh.row, jh.col, jh.side) == (res.row, res.col, "h")
            assert (jv.row, jv.col, jv.side) == (res.row, res.col, "v")

    def test_joint_wire_names(self):
        g = MEAGrid(3)
        assert g.joint(8).wire == "B"  # horizontal side of R_22
        assert g.joint(9).wire == "II"  # vertical side of R_22

    def test_joint_out_of_range(self):
        with pytest.raises(IndexError):
            MEAGrid(3).joint(18)

    def test_joints_on_wires(self):
        g = MEAGrid(3)
        assert g.joints_on_horizontal(1) == [6, 8, 10]  # wire B
        assert g.joints_on_vertical(1) == [3, 9, 15]  # wire II

    def test_resistor_names(self):
        g = MEAGrid(3)
        assert g.resistor(0, 0).name == "R_11"
        assert g.resistor(2, 1).name == "R_32"

    def test_resistors_row_major(self):
        g = MEAGrid(2)
        order = [(r.row, r.col) for r in g.resistors()]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_position_bounds(self):
        with pytest.raises(IndexError):
            MEAGrid(3).joint_indices(3, 0)

    def test_equality_and_hash(self):
        assert MEAGrid(3) == MEAGrid(3, 3)
        assert MEAGrid(3) != MEAGrid(3, 4)
        assert hash(MEAGrid(3)) == hash(MEAGrid(3, 3))
