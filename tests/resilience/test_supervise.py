"""Deadline budgets, heartbeat boards and the region supervisor."""

import os
import signal
import time

import numpy as np
import pytest

from repro.observe import Observer
from repro.parallel.pymp import (
    Parallel,
    WorkerStalled,
    fork_available,
    shared_array,
)
from repro.resilience.supervise import (
    DEADLINE_EXIT_CODE,
    Deadline,
    DeadlineExceeded,
    HeartbeatBoard,
    Supervisor,
)

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")


class TestDeadline:
    def test_coerce_none_and_passthrough(self):
        assert Deadline.coerce(None) is None
        d = Deadline(5.0)
        assert Deadline.coerce(d) is d
        assert isinstance(Deadline.coerce(2), Deadline)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_monotonic_accounting(self):
        d = Deadline(60.0)
        assert not d.expired
        assert 0.0 <= d.elapsed() < 60.0
        assert d.remaining() <= 60.0
        assert d.remaining() + d.elapsed() == pytest.approx(60.0, abs=1e-3)

    def test_expired_check_raises_with_context(self):
        d = Deadline(10.0, _t0=time.monotonic() - 11.0)
        assert d.expired
        with pytest.raises(DeadlineExceeded, match="before the solve"):
            d.check("the solve")
        d.check  # unexpired deadline below never raises
        Deadline(10.0).check("anything")

    def test_exception_carries_deadline_and_partial(self):
        d = Deadline(1.0)
        exc = DeadlineExceeded("out of time", deadline=d, partial=[1, 2])
        assert exc.deadline is d
        assert exc.partial == [1, 2]

    def test_exit_code_is_distinct(self):
        # Not 0/1/2 (ok/failure/usage), not coreutils timeout's 124.
        assert DEADLINE_EXIT_CODE not in (0, 1, 2, 124)


class TestHeartbeatBoard:
    def test_assign_tick_done_lifecycle(self):
        board = HeartbeatBoard(3)
        board.assign(1, 10)
        assert board.items_done(1) == 0
        board.tick(1)
        board.tick(1, advance=4)
        assert board.items_done(1) == 5
        assert not board.is_done(1)
        board.mark_done(1)
        assert board.is_done(1)

    def test_progress_sums_across_workers(self):
        board = HeartbeatBoard(2)
        board.assign(0, 4)
        board.assign(1, 6)
        board.tick(0, advance=2)
        board.tick(1, advance=3)
        assert board.progress() == (5, 10)

    def test_age_measures_heartbeat_staleness(self):
        board = HeartbeatBoard(1)
        board.assign(0, 1)
        now = time.monotonic()
        assert board.age(0, now) == pytest.approx(0.0, abs=0.05)
        assert board.age(0, now + 2.5) == pytest.approx(2.5, abs=0.05)

    def test_dump_snapshot(self):
        board = HeartbeatBoard(2)
        board.assign(0, 7)
        board.tick(0, advance=3)
        board.mark_done(1)
        snap = board.dump()
        assert snap[0]["items_done"] == 3.0
        assert snap[0]["items_assigned"] == 7.0
        assert not snap[0]["done"]
        assert snap[1]["done"]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            HeartbeatBoard(0)

    def test_grow_preserves_pre_growth_progress(self):
        """Growth must never disturb rows already in flight."""
        board = HeartbeatBoard(2)
        board.assign(0, 4)
        board.tick(0, advance=3)
        board.mark_done(1)
        first_new = board.grow(2)
        assert first_new == 2
        assert board.workers == 4
        assert board.items_done(0) == 3
        assert not board.is_done(0)
        assert board.is_done(1)
        board.assign(3, 6)
        board.tick(3, advance=2)
        assert board.items_done(3) == 2
        assert board.progress() == (5, 10)
        snap = board.dump()
        assert len(snap) == 4
        assert snap[0]["items_done"] == 3.0
        assert snap[3]["items_assigned"] == 6.0

    def test_grow_rejects_non_positive(self):
        board = HeartbeatBoard(1)
        with pytest.raises(ValueError):
            board.grow(0)

    def test_new_rows_start_fresh(self):
        board = HeartbeatBoard(1)
        row = board.grow(1)
        now = time.monotonic()
        # A fresh row's heartbeat is "now", not the board's creation
        # time — otherwise a watchdog would kill a just-joined worker.
        assert board.age(row, now) == pytest.approx(0.0, abs=0.05)
        assert not board.is_done(row)
        with pytest.raises(IndexError):
            board.items_done(board.workers)

    @needs_fork
    def test_grown_rows_cross_the_fork_boundary(self):
        board = HeartbeatBoard(1)
        row = board.grow(1)
        pid = os.fork()
        if pid == 0:
            board.assign(row, 5)
            board.tick(row, advance=5)
            board.mark_done(row)
            os._exit(0)
        os.waitpid(pid, 0)
        assert board.items_done(row) == 5
        assert board.is_done(row)

    @needs_fork
    def test_ticks_cross_the_fork_boundary(self):
        board = HeartbeatBoard(2)
        pid = os.fork()
        if pid == 0:
            board.assign(1, 5)
            board.tick(1, advance=5)
            board.mark_done(1)
            os._exit(0)
        os.waitpid(pid, 0)
        assert board.items_done(1) == 5
        assert board.is_done(1)


class TestSupervisorValidation:
    def test_rejects_bad_stall_timeout(self):
        with pytest.raises(ValueError):
            Supervisor(stall_timeout=0.0)

    def test_rejects_bad_straggler_threshold(self):
        with pytest.raises(ValueError):
            Supervisor(straggler_threshold=0.0)
        with pytest.raises(ValueError):
            Supervisor(straggler_threshold=1.5)

    def test_straggler_age_defaults_to_half_stall(self):
        assert Supervisor(stall_timeout=4.0).straggler_age == 2.0
        assert Supervisor().straggler_age is None

    def test_region_armed_tracks_width(self):
        sup = Supervisor()
        assert not sup.region_armed_for(3)
        sup.begin_region(3)
        assert sup.region_armed_for(3)
        assert not sup.region_armed_for(4)


@needs_fork
class TestSupervisedRegion:
    def test_clean_region_has_no_failures(self):
        sup = Supervisor(stall_timeout=5.0)
        out = shared_array((4,))
        with Parallel(4, supervisor=sup) as p:
            sup.assign(p.thread_num, 1)
            sup.tick(p.thread_num)
            out[p.thread_num] = p.thread_num
        np.testing.assert_array_equal(out, np.arange(4.0))
        assert sup.board is None  # region state cleared after the join

    def test_reap_is_completion_order_not_rank_order(self):
        # Rank 1 finishes last; the join must still return promptly
        # after all exits rather than blocking on rank 1 first.
        sup = Supervisor(stall_timeout=30.0)
        start = time.monotonic()
        with Parallel(3, supervisor=sup) as p:
            sup.assign(p.thread_num, 1)
            if p.thread_num == 1:
                time.sleep(0.5)
            sup.tick(p.thread_num)
        assert time.monotonic() - start < 5.0

    def test_hung_worker_killed_and_reported(self):
        sup = Supervisor(stall_timeout=0.5, term_grace=0.2)
        with pytest.raises(WorkerStalled) as err:
            with Parallel(3, supervisor=sup) as p:
                sup.assign(p.thread_num, 10)
                if p.thread_num == 2:
                    while True:
                        time.sleep(30)
                sup.tick(p.thread_num, advance=10)
        exc = err.value
        assert exc.failed_ranks == (2,)
        # SIGTERM's default handler terminated it: negative exit code.
        assert exc.exit_codes == (-signal.SIGTERM,)
        assert 2 in exc.last_progress
        assert exc.last_progress[2]["items_done"] == 0.0
        assert "heartbeat watchdog" in str(exc)

    def test_stall_events_and_counters_emitted(self):
        obs = Observer()
        sup = Supervisor(stall_timeout=0.5, term_grace=0.2, observer=obs)
        with pytest.raises(WorkerStalled):
            with Parallel(2, supervisor=sup) as p:
                sup.assign(p.thread_num, 1)
                if p.thread_num == 1:
                    while True:
                        time.sleep(30)
                sup.tick(p.thread_num)
        snap = obs.metrics.snapshot()
        assert snap["supervise.stalls"]["value"] >= 1
        assert snap["supervise.workers_killed"]["value"] >= 1

    def test_deadline_expiry_kills_region_and_raises(self):
        sup = Supervisor(deadline=Deadline(0.4))
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            with Parallel(3, supervisor=sup) as p:
                sup.assign(p.thread_num, 1)
                if p.thread_num != 0:
                    time.sleep(30)  # would block an unsupervised join
                sup.tick(p.thread_num)
        # Bounded: far below the 30s sleep; no orphans left behind.
        assert time.monotonic() - start < 10.0

    def test_straggler_hook_fires_once_per_slow_rank(self):
        calls = []
        sup = Supervisor(stall_timeout=30.0, straggler_age=0.2)
        sup.begin_region(3, total_items=30, on_straggler=lambda r, k: calls.append((r, k)))
        with Parallel(3, supervisor=sup) as p:
            sup.assign(p.thread_num, 10)
            if p.thread_num == 1:
                sup.tick(p.thread_num, advance=9)
                time.sleep(1.2)  # slow tail: past straggler_age, no stall
            sup.tick(p.thread_num, advance=10)
        assert calls == [(1, 9)]

    def test_hook_exception_does_not_break_the_join(self):
        def boom(rank, items_done):
            raise RuntimeError("speculation failed")

        sup = Supervisor(stall_timeout=30.0, straggler_age=0.1)
        sup.begin_region(2, total_items=10, on_straggler=boom)
        with Parallel(2, supervisor=sup) as p:
            sup.assign(p.thread_num, 5)
            if p.thread_num == 1:
                sup.tick(p.thread_num, advance=4)
                time.sleep(0.6)
            sup.tick(p.thread_num, advance=5)
        # Reaching here is the assertion: the region joined cleanly.
        assert sup.board is None

    def test_crash_and_stall_both_reported(self):
        # One worker dies on its own, another hangs: the join reports
        # both, with stable rank ordering.
        sup = Supervisor(stall_timeout=0.6, term_grace=0.2)
        with pytest.raises(WorkerStalled) as err:
            with Parallel(4, supervisor=sup) as p:
                sup.assign(p.thread_num, 1)
                if p.thread_num == 1:
                    os._exit(7)
                if p.thread_num == 3:
                    while True:
                        time.sleep(30)
                sup.tick(p.thread_num)
        exc = err.value
        assert exc.failed_ranks == (1, 3)
        codes = dict(zip(exc.failed_ranks, exc.exit_codes))
        assert codes[1] == 7
        assert codes[3] == -signal.SIGTERM
        assert set(exc.last_progress) == {3}
