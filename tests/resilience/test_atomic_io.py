"""Atomic write primitives: readers never see partial files."""

import json
import os

import pytest

from repro.resilience.atomio import (
    AtomicFile,
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicFile:
    def test_commit_renames_into_place(self, tmp_path):
        path = tmp_path / "out.bin"
        fh = AtomicFile(path, "wb")
        fh.write(b"payload")
        assert not path.exists(), "final name must not exist before commit"
        fh.commit()
        assert path.read_bytes() == b"payload"
        assert not list(tmp_path.glob("*.tmp"))

    def test_abort_leaves_nothing_under_final_name(self, tmp_path):
        path = tmp_path / "out.bin"
        fh = AtomicFile(path, "wb")
        fh.write(b"half-written")
        fh.abort()
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_name_is_final_path(self, tmp_path):
        path = tmp_path / "part-0.bin"
        fh = AtomicFile(path, "wb")
        assert fh.name == str(path)
        fh.abort()

    def test_commit_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        fh = AtomicFile(path, "w", encoding="utf-8")
        fh.write("new")
        fh.commit()
        assert path.read_text() == "new"


class TestAtomicOpen:
    def test_clean_exit_commits(self, tmp_path):
        path = tmp_path / "data.bin"
        with atomic_open(path, "wb") as fh:
            fh.write(b"abc")
        assert path.read_bytes() == b"abc"

    def test_exception_aborts(self, tmp_path):
        path = tmp_path / "data.bin"
        with pytest.raises(RuntimeError):
            with atomic_open(path, "wb") as fh:
                fh.write(b"torn")
                raise RuntimeError("writer died")
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestHelpers:
    def test_write_bytes_text_json(self, tmp_path):
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        atomic_write_text(tmp_path / "t.txt", "héllo")
        atomic_write_json(tmp_path / "j.json", {"k": [1, 2]})
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"
        assert (tmp_path / "t.txt").read_text(encoding="utf-8") == "héllo"
        assert json.loads((tmp_path / "j.json").read_text()) == {"k": [1, 2]}
        assert not list(tmp_path.glob("*.tmp"))

    def test_tmp_file_lives_in_destination_directory(self, tmp_path):
        # rename() must not cross filesystems, so the tmp file sits
        # next to its final name.
        path = tmp_path / "sub" / "out.bin"
        path.parent.mkdir()
        fh = AtomicFile(path, "wb")
        tmp_entries = list(path.parent.glob("*.tmp"))
        assert len(tmp_entries) == 1
        assert os.path.dirname(tmp_entries[0]) == str(path.parent)
        fh.abort()
