"""Fault injection is deterministic and scoped exactly as planned."""

import numpy as np
import pytest

from repro.core.equations import form_pair_block
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    InjectedAbort,
    as_injector,
)


def _block(n=4):
    return form_pair_block(n, 1, 2, 5.0)


class TestKillDecisions:
    def test_rank_zero_never_killed(self):
        inj = FaultInjector(FaultPlan(kill_workers=(0, 1), kill_probability=1.0))
        assert not inj.should_kill_worker(0)
        assert inj.should_kill_worker(1)

    def test_kill_attempts_bounds_deaths(self):
        inj = FaultInjector(FaultPlan(kill_workers=(2,), kill_attempts=1))
        assert inj.should_kill_worker(2)
        inj.note_attempt()
        assert not inj.should_kill_worker(2), "retry must survive"

    def test_probabilistic_kills_are_deterministic(self):
        plans = [FaultInjector(FaultPlan(seed=3, kill_probability=0.5))
                 for _ in range(2)]
        decisions = [
            [inj.should_kill_worker(w) for w in range(1, 9)] for inj in plans
        ]
        assert decisions[0] == decisions[1]
        assert any(decisions[0]), "rate 0.5 over 8 workers should fire"


class TestBlockFates:
    def test_explicit_corrupt_and_drop(self):
        inj = FaultInjector(FaultPlan(corrupt_blocks=(5,), drop_blocks=(9,)))
        assert inj.block_fate(5) == "corrupt"
        assert inj.block_fate(9) == "drop"
        assert inj.block_fate(0) == "ok"

    def test_corruption_negates_checksum_keeps_bytes(self):
        block = _block()
        inj = FaultInjector(FaultPlan(corrupt_blocks=(7,)))
        mangled = inj.mangle_block(block, 7)
        assert mangled is not None
        assert mangled.num_terms == block.num_terms
        assert mangled.checksum() == pytest.approx(-block.checksum())

    def test_drop_returns_none(self):
        inj = FaultInjector(FaultPlan(drop_blocks=(7,)))
        assert inj.mangle_block(_block(), 7) is None

    def test_ok_passes_block_through_unchanged(self):
        block = _block()
        inj = FaultInjector(FaultPlan())
        assert inj.mangle_block(block, 3) is block


class TestAborts:
    def test_stream_abort_threshold(self):
        inj = FaultInjector(FaultPlan(abort_after_blocks=3))
        inj.maybe_abort_stream(2)
        with pytest.raises(InjectedAbort):
            inj.maybe_abort_stream(3)

    def test_campaign_abort_threshold(self):
        inj = FaultInjector(FaultPlan(abort_after_timepoints=2))
        inj.maybe_abort_campaign(1)
        with pytest.raises(InjectedAbort):
            inj.maybe_abort_campaign(2)


class TestDirtyMeasurements:
    def test_sites_and_wires_applied(self):
        plan = FaultPlan(
            nan_sites=((1, 2),),
            saturate_sites=((0, 3),),
            dead_rows=(2,),
            saturation_kohm=1e7,
        )
        z = np.full((5, 5), 5.0)
        dirty = FaultInjector(plan).dirty_measurement(z)
        assert np.isnan(dirty[1, 2])
        assert dirty[0, 3] == 1e7
        assert np.all(dirty[2, :] == 1e7)
        assert z[1, 2] == 5.0, "input must not be mutated"

    def test_dirty_rate_deterministic(self):
        plan = FaultPlan(seed=11, dirty_rate=0.2)
        z = np.full((10, 10), 5.0)
        a = FaultInjector(plan).dirty_measurement(z)
        b = FaultInjector(plan).dirty_measurement(z)
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).any()

    def test_clean_plan_returns_equal_array(self):
        z = np.full((4, 4), 5.0)
        out = FaultInjector(FaultPlan()).dirty_measurement(z)
        assert np.array_equal(out, z)


class TestAsInjector:
    def test_accepts_none_plan_and_injector(self):
        assert as_injector(None) is None
        inj = as_injector(FaultPlan(seed=1))
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj) is inj
