"""Bounded retry with deterministic backoff, and formation recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import SingleThread, make_strategy
from repro.parallel.pymp import ParallelError
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import (
    RetryExhausted,
    RetryPolicy,
    form_with_recovery,
    run_with_retry,
)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        p = RetryPolicy(backoff_seconds=0.5, backoff_factor=2.0,
                        max_backoff_seconds=1.5)
        assert p.delay(0) == 0.5
        assert p.delay(1) == 1.0
        assert p.delay(2) == 1.5  # capped

    def test_zero_backoff_never_sleeps(self):
        assert RetryPolicy().delay(5) == 0.0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestRunWithRetry:
    def test_success_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ParallelError("worker lost")
            return "ok"

        result, outcome = run_with_retry(flaky, RetryPolicy(max_retries=3))
        assert result == "ok"
        assert outcome.attempts == 3
        assert outcome.succeeded
        assert len(outcome.errors) == 2

    def test_exhaustion_raises_with_outcome(self):
        def dead():
            raise ParallelError("always")

        with pytest.raises(RetryExhausted) as err:
            run_with_retry(dead, RetryPolicy(max_retries=1))
        assert err.value.outcome.attempts == 2
        assert not err.value.outcome.succeeded

    def test_non_transient_errors_propagate_immediately(self):
        def broken():
            raise ValueError("config error")

        with pytest.raises(ValueError):
            run_with_retry(broken, RetryPolicy(max_retries=5))

    def test_sleeps_follow_policy(self):
        slept = []

        def dead():
            raise OSError("disk hiccup")

        with pytest.raises(RetryExhausted):
            run_with_retry(
                dead,
                RetryPolicy(max_retries=2, backoff_seconds=0.25),
                sleep=slept.append,
            )
        assert slept == [0.25, 0.5]

    def test_injector_attempt_counter_advances(self):
        inj = FaultInjector(FaultPlan(kill_workers=(1,), kill_attempts=1))

        def flaky():
            if inj.should_kill_worker(1):
                raise ParallelError("killed")
            return "recovered"

        result, outcome = run_with_retry(
            flaky, RetryPolicy(max_retries=2), faults=inj
        )
        assert result == "recovered"
        assert outcome.attempts == 2


class TestFormWithRecovery:
    def _z(self, n=5):
        return np.full((n, n), 5.0)

    def test_clean_run_has_no_events(self):
        report, events = form_with_recovery(SingleThread(), self._z())
        assert report.terms_formed > 0
        assert events == ()

    def test_worker_kill_retried_then_matches_clean(self):
        z = self._z(6)
        clean = make_strategy("pymp", 3).run(z)
        inj = FaultInjector(FaultPlan(kill_workers=(1,), kill_attempts=1))
        report, events = form_with_recovery(
            make_strategy("pymp", 3), z,
            policy=RetryPolicy(max_retries=2), faults=inj,
        )
        assert report.checksum == pytest.approx(clean.checksum)
        assert any("failed" in e for e in events)

    def test_parallel_exhaustion_degrades_to_single_thread(self):
        z = self._z(5)
        clean = SingleThread().run(z)
        # Kill on every attempt: the pymp strategy can never finish.
        inj = FaultInjector(FaultPlan(kill_workers=(1,), kill_attempts=99))
        report, events = form_with_recovery(
            make_strategy("pymp", 3), z,
            policy=RetryPolicy(max_retries=1), faults=inj,
        )
        assert report.strategy == clean.strategy
        assert report.checksum == pytest.approx(clean.checksum)
        assert any("degraded to single-thread" in e for e in events)

    def test_single_thread_exhaustion_raises(self):
        calls = {"n": 0}

        class AlwaysFails(SingleThread):
            def run(self, *a, **kw):
                calls["n"] += 1
                raise OSError("disk gone")

        with pytest.raises(RetryExhausted):
            form_with_recovery(
                AlwaysFails(), self._z(), policy=RetryPolicy(max_retries=1)
            )
        assert calls["n"] == 2


class TestSeededJitter:
    """Deterministic backoff jitter: opt-in, bounded, reproducible."""

    def test_default_is_jitter_free(self):
        p = RetryPolicy(backoff_seconds=0.5, backoff_factor=2.0,
                        max_backoff_seconds=8.0)
        assert p.jitter == 0.0
        assert [p.delay(a) for a in range(4)] == [0.5, 1.0, 2.0, 4.0]

    def test_jitter_only_shortens(self):
        base = RetryPolicy(backoff_seconds=1.0, max_backoff_seconds=8.0)
        jit = RetryPolicy(backoff_seconds=1.0, max_backoff_seconds=8.0,
                          jitter=0.5, jitter_seed=3)
        for attempt in range(6):
            b, j = base.delay(attempt), jit.delay(attempt)
            assert j <= b
            assert j >= b * 0.5  # scale factor stays in [1 - jitter, 1]

    def test_jitter_is_pure_function_of_seed_and_attempt(self):
        a = RetryPolicy(backoff_seconds=1.0, jitter=0.9, jitter_seed=42)
        b = RetryPolicy(backoff_seconds=1.0, jitter=0.9, jitter_seed=42)
        c = RetryPolicy(backoff_seconds=1.0, jitter=0.9, jitter_seed=43)
        delays_a = [a.delay(k) for k in range(8)]
        delays_b = [b.delay(k) for k in range(8)]
        delays_c = [c.delay(k) for k in range(8)]
        assert delays_a == delays_b
        assert delays_a != delays_c  # different seed, different schedule

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    @given(
        backoff=st.floats(min_value=1e-3, max_value=10.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
        cap=st.floats(min_value=1e-3, max_value=5.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        attempt=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_delay_never_exceeds_cap(self, backoff, factor, cap, jitter,
                                     seed, attempt):
        policy = RetryPolicy(
            backoff_seconds=backoff,
            backoff_factor=factor,
            max_backoff_seconds=cap,
            jitter=jitter,
            jitter_seed=seed,
        )
        delay = policy.delay(attempt)
        assert 0.0 <= delay <= cap
        # Reproducible: the same (policy, attempt) always sleeps the same.
        assert delay == policy.delay(attempt)
