"""Measurement validation at the engine boundary names the offender."""

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.mea.dataset import (
    Measurement,
    MeasurementValidationError,
    audit_z,
    repair_z,
    validate_z,
)
from repro.resilience.faults import FaultPlan


def _clean(n=5, value=5.0):
    return np.full((n, n), value)


class TestAuditZ:
    def test_clean_matrix_audits_clean(self):
        audit = audit_z(_clean())
        assert audit.clean
        assert audit.num_bad_sites == 0
        assert audit.first_offender() == "no bad channels"

    def test_nan_site_located(self):
        z = _clean()
        z[1, 2] = np.nan
        audit = audit_z(z)
        assert not audit.clean
        assert (1, 2) in audit.nan_sites
        assert "z_kohm[1, 2]" in audit.first_offender()

    def test_nonpositive_and_saturated_sites(self):
        z = _clean()
        z[0, 0] = -2.0
        z[3, 4] = 5e6
        audit = audit_z(z, saturation_kohm=1e6)
        assert (0, 0) in audit.nonpositive_sites
        assert (3, 4) in audit.saturated_sites

    def test_dead_wires_reported_as_rows_and_cols(self):
        z = _clean(4)
        z[2, :] = 1e7
        z[:, 1] = 1e7
        audit = audit_z(z, saturation_kohm=1e6)
        assert 2 in audit.dead_rows
        assert 1 in audit.dead_cols


class TestValidateZ:
    def test_clean_passes(self):
        validate_z(_clean())

    def test_error_names_offending_channel(self):
        z = _clean()
        z[1, 2] = np.inf
        with pytest.raises(MeasurementValidationError, match=r"z_kohm\[1, 2\]"):
            validate_z(z)

    def test_non_square_rejected(self):
        with pytest.raises(MeasurementValidationError, match="square"):
            validate_z(np.full((3, 4), 5.0))


class TestRepairZ:
    def test_repair_imputes_finite_positive_values(self):
        z = _clean()
        z[1, 2] = np.nan
        z[0, 0] = -1.0
        repaired, audit = repair_z(z)
        assert not audit.clean
        assert np.all(np.isfinite(repaired))
        assert np.all(repaired > 0)
        validate_z(repaired)

    def test_repair_uses_neighbour_statistics(self):
        z = _clean(5, value=7.0)
        z[2, 2] = np.nan
        repaired, _ = repair_z(z)
        assert repaired[2, 2] == pytest.approx(7.0)

    def test_clean_matrix_returned_unchanged(self):
        z = _clean()
        repaired, audit = repair_z(z)
        assert audit.clean
        assert np.array_equal(repaired, z)


class TestEngineValidationModes:
    def _dirty_faults(self):
        return FaultPlan(nan_sites=((1, 2),), dead_rows=(0,))

    def test_strict_rejects_naming_channel(self):
        engine = ParmaEngine(
            strategy="single", validate="strict", faults=self._dirty_faults()
        )
        with pytest.raises(MeasurementValidationError, match=r"z_kohm\["):
            engine.parametrize(Measurement(z_kohm=_clean()))

    def test_repair_mode_recovers_and_records_event(self):
        engine = ParmaEngine(
            strategy="single", validate="repair", faults=self._dirty_faults()
        )
        result = engine.parametrize(Measurement(z_kohm=_clean()))
        assert any("repaired" in e for e in result.events)
        assert np.all(np.isfinite(result.resistance))
        assert "resilience event" in result.summary()

    def test_off_mode_skips_boundary_validation(self):
        # "off" disables only the boundary policy: the dirty matrix
        # then trips Measurement's own invariants as a plain
        # ValueError, without the channel-naming diagnosis.
        engine = ParmaEngine(
            strategy="single", validate="off", faults=self._dirty_faults()
        )
        with pytest.raises(ValueError) as err:
            engine.parametrize(Measurement(z_kohm=_clean()))
        assert not isinstance(err.value, MeasurementValidationError)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="validate"):
            ParmaEngine(strategy="single", validate="sometimes")

    def test_clean_measurement_passes_strict(self):
        result = ParmaEngine(strategy="single", validate="strict").parametrize(
            Measurement(z_kohm=_clean())
        )
        assert result.events == ()
