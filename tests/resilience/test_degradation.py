"""The solver degradation ladder engages in order and reports its rung."""

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.core.solver import solve_bounded
from repro.mea.wetlab import quick_device_data
from repro.resilience.degrade import (
    LADDER_RUNGS,
    SolverDegradationError,
    solve_with_degradation,
)
from repro.resilience.faults import FaultInjector, FaultPlan


@pytest.fixture(scope="module")
def z6():
    _, z = quick_device_data(6, seed=5)
    return z


class TestLadderOrder:
    def test_clean_solve_uses_primary(self, z6):
        result, report = solve_with_degradation(z6)
        assert report.rung_used == "primary"
        assert not report.degraded
        assert result.converged

    def test_each_injected_failure_steps_down_in_order(self, z6):
        # Fail a growing prefix of rungs; the ladder must land on the
        # next rung each time, in the documented order.
        r0 = np.full_like(z6, 5.0)
        ladder = list(LADDER_RUNGS)
        for depth in range(1, len(ladder)):
            faults = FaultInjector(FaultPlan(fail_rungs=tuple(ladder[:depth])))
            result, report = solve_with_degradation(
                z6, solver_kwargs={"r0": r0}, faults=faults
            )
            assert report.rung_used == ladder[depth]
            assert report.rungs_tried == tuple(ladder[: depth + 1])
            assert report.degraded
            assert np.all(np.isfinite(result.r_estimate))

    def test_all_rungs_failing_raises_with_full_path(self, z6):
        faults = FaultInjector(FaultPlan(fail_rungs=LADDER_RUNGS))
        with pytest.raises(SolverDegradationError) as err:
            solve_with_degradation(
                z6, solver_kwargs={"r0": np.full_like(z6, 5.0)}, faults=faults
            )
        assert err.value.report.exhausted
        assert err.value.report.rungs_tried == LADDER_RUNGS

    def test_cold_start_rung_only_with_warm_start(self, z6):
        faults = FaultInjector(FaultPlan(fail_rungs=("primary",)))
        _, report = solve_with_degradation(z6, faults=faults)
        assert "cold-start" not in report.rungs_tried
        assert report.rung_used == "regularized"

    def test_poisoned_warm_start_recovers(self, z6):
        # A NaN warm start makes the primary rung blow up numerically;
        # the cold-start rung discards it and succeeds.
        poisoned = np.full_like(z6, np.nan)
        result, report = solve_with_degradation(
            z6, solver_kwargs={"r0": poisoned}
        )
        assert report.rung_used != "primary"
        assert np.all(np.isfinite(result.r_estimate))

    def test_config_errors_propagate(self, z6):
        with pytest.raises(ValueError, match="unknown"):
            solve_with_degradation(z6, method="does-not-exist")


class TestBoundedSolver:
    def test_bounded_always_finite(self, z6):
        result = solve_bounded(z6)
        assert result.method == "bounded"
        assert np.all(np.isfinite(result.r_estimate))
        assert np.all(result.r_estimate > 0)


class TestRungVisibility:
    def test_rung_in_result_summary(self, z6):
        engine = ParmaEngine(
            strategy="single",
            faults=FaultPlan(fail_rungs=("primary", "regularized")),
        )
        from repro.mea.dataset import Measurement

        result = engine.parametrize(Measurement(z_kohm=z6))
        assert result.degradation is not None
        assert result.degradation.rung_used == "bounded"
        assert "rung=bounded" in result.summary()

    def test_clean_summary_reports_primary(self, z6):
        from repro.mea.dataset import Measurement

        result = ParmaEngine(strategy="single").parametrize(
            Measurement(z_kohm=z6)
        )
        assert "rung=primary" in result.summary()

    def test_ladder_in_parma_info(self, capsys):
        from repro.cli import main

        assert main(["info", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "degradation ladder" in out
        assert "primary -> cold-start -> regularized -> bounded" in out

    def test_ladder_table_renders_rung(self, z6):
        from repro.instrument.report import ladder_table
        from repro.mea.dataset import Measurement

        engine = ParmaEngine(
            strategy="single", faults=FaultPlan(fail_rungs=("primary",))
        )
        result = engine.parametrize(Measurement(z_kohm=z6))
        rendered = ladder_table([result]).render()
        assert "regularized" in rendered
