"""The resilience surface of the parma CLI: exit codes and reporting."""

import pytest

from repro.cli import main


@pytest.fixture()
def campaign_file(tmp_path):
    path = tmp_path / "campaign.txt"
    code = main([
        "simulate", "--n", "6", "--seed", "3", "--noise", "0.0",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestSolveDegradation:
    def test_injected_rung_failures_degrade_and_report(
        self, campaign_file, capsys
    ):
        code = main([
            "solve", str(campaign_file),
            "--inject-fail-rungs", "primary,regularized",
        ])
        out = capsys.readouterr().out
        assert code == 0, "bounded rung converges on clean data"
        assert "rung=bounded" in out
        assert "degradation:" in out

    def test_exhausted_ladder_exits_nonzero_saying_why(
        self, campaign_file, capsys
    ):
        code = main([
            "solve", str(campaign_file),
            "--inject-fail-rungs", "primary,cold-start,regularized,bounded",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "every degradation rung" in captured.err

    def test_clean_solve_unaffected(self, campaign_file, capsys):
        assert main(["solve", str(campaign_file)]) == 0
        assert "rung=primary" in capsys.readouterr().out


class TestMonitorCheckpoint:
    def test_monitor_writes_and_resumes_checkpoint(
        self, campaign_file, tmp_path, capsys
    ):
        ck = tmp_path / "ck"
        assert main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--checkpoint-dir", str(ck),
        ]) == 0
        capsys.readouterr()
        assert (ck / "manifest.json").exists()

        assert main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--checkpoint-dir", str(ck),
        ]) == 0
        out = capsys.readouterr().out
        assert "restored from checkpoint" in out

    def test_no_resume_recomputes(self, campaign_file, tmp_path, capsys):
        ck = tmp_path / "ck"
        main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--checkpoint-dir", str(ck),
        ])
        capsys.readouterr()
        assert main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--checkpoint-dir", str(ck), "--no-resume",
        ]) == 0
        assert "restored from checkpoint" not in capsys.readouterr().out


class TestChaosCommand:
    def test_chaos_smoke_passes(self, capsys):
        assert main(["chaos", "--n", "6", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "[FAIL]" not in out
        assert out.count("[PASS]") >= 6
