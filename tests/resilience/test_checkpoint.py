"""Checkpoint manifests: record, verify, invalidate, resume."""

import json

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.core.streaming import stream_to_file
from repro.mea.dataset import Measurement
from repro.mea.wetlab import quick_device_data
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    StreamCheckpoint,
    stream_to_file_checkpointed,
    verify_stream_directory,
)
from repro.resilience.faults import FaultPlan, InjectedAbort


@pytest.fixture(scope="module")
def z5():
    _, z = quick_device_data(5, seed=9)
    return z


@pytest.fixture(scope="module")
def result5(z5):
    return ParmaEngine(strategy="single").parametrize(Measurement(z_kohm=z5))


class TestCampaignCheckpoint:
    def test_record_and_load_round_trip(self, tmp_path, result5):
        cp = CampaignCheckpoint(tmp_path)
        cp.record(0, result5)

        fresh = CampaignCheckpoint(tmp_path)
        assert fresh.num_completed == 1
        assert fresh.matches(0, result5.measurement.hour, 5)
        restored = fresh.load_field(0)
        assert np.array_equal(restored, result5.resistance)

    def test_entry_carries_solve_and_formation_metadata(
        self, tmp_path, result5
    ):
        cp = CampaignCheckpoint(tmp_path)
        cp.record(0, result5)
        e = cp.entry(0)
        assert e["rung"] == "primary"
        assert e["solve"]["method"] == result5.solve.method
        assert e["formation"]["checksum"] == pytest.approx(
            result5.formation.checksum
        )

    def test_corrupt_field_file_fails_digest(self, tmp_path, result5):
        cp = CampaignCheckpoint(tmp_path)
        cp.record(0, result5)
        field_path = tmp_path / cp.entry(0)["field_file"]
        raw = bytearray(field_path.read_bytes())
        raw[-1] ^= 0xFF
        field_path.write_bytes(bytes(raw))

        with pytest.raises(CheckpointError, match="SHA-256"):
            CampaignCheckpoint(tmp_path).load_field(0)

    def test_invalidate_from_drops_suffix(self, tmp_path, result5):
        cp = CampaignCheckpoint(tmp_path)
        cp.record(0, result5)
        cp.record(1, result5)
        cp.invalidate_from(1)
        assert cp.num_completed == 1
        assert CampaignCheckpoint(tmp_path).num_completed == 1

    def test_matches_requires_same_hour(self, tmp_path, result5):
        cp = CampaignCheckpoint(tmp_path)
        cp.record(0, result5)
        assert cp.matches(0, result5.measurement.hour, 5)
        assert not cp.matches(0, result5.measurement.hour + 1.0, 5)
        assert not cp.matches(1, result5.measurement.hour, 5)

    def test_wrong_manifest_kind_rejected(self, tmp_path, z5):
        stream_to_file_checkpointed(z5, tmp_path)
        with pytest.raises(CheckpointError, match="stream-checkpoint"):
            CampaignCheckpoint(tmp_path)


class TestStreamCheckpoint:
    def _reference_bytes(self, z, tmp_path):
        ref = tmp_path / "reference.bin"
        stream_to_file(z, ref)
        return ref.read_bytes()

    def test_clean_stream_completes_and_matches_plain_writer(
        self, tmp_path, z5
    ):
        cp, report, formed = stream_to_file_checkpointed(z5, tmp_path / "s")
        assert cp.complete
        assert formed == 25
        assert report.blocks_discarded == 0
        assert (tmp_path / "s" / "equations.bin").read_bytes() == (
            self._reference_bytes(z5, tmp_path)
        )

    def test_completed_directory_is_a_noop(self, tmp_path, z5):
        stream_to_file_checkpointed(z5, tmp_path / "s")
        cp, report, formed = stream_to_file_checkpointed(z5, tmp_path / "s")
        assert cp.complete
        assert formed == 0
        assert report.blocks_verified == 25

    def test_corrupt_block_detected_and_reformed(self, tmp_path, z5):
        sdir = tmp_path / "s"
        faults = FaultPlan(corrupt_blocks=(7,))
        cp, _, _ = stream_to_file_checkpointed(z5, sdir, faults=faults)
        # The writer journals the *intended* checksum, so the corrupt
        # byte stream disagrees with the journal on verify.
        report = verify_stream_directory(sdir)
        assert report.blocks_verified == 7
        assert "checksum mismatch" in report.first_bad_reason

        cp, report, formed = stream_to_file_checkpointed(z5, sdir)
        assert cp.complete
        assert report.blocks_discarded > 0
        assert formed == 25 - 7
        assert (sdir / "equations.bin").read_bytes() == (
            self._reference_bytes(z5, tmp_path)
        )

    def test_dropped_block_leaves_journal_gap(self, tmp_path, z5):
        sdir = tmp_path / "s"
        stream_to_file_checkpointed(
            z5, sdir, faults=FaultPlan(drop_blocks=(3,))
        )
        report = verify_stream_directory(sdir)
        assert report.blocks_verified == 3
        assert "journal gap" in report.first_bad_reason

        cp, _, _ = stream_to_file_checkpointed(z5, sdir)
        assert cp.complete
        assert (sdir / "equations.bin").read_bytes() == (
            self._reference_bytes(z5, tmp_path)
        )

    def test_abort_then_resume_is_byte_identical(self, tmp_path, z5):
        sdir = tmp_path / "s"
        with pytest.raises(InjectedAbort):
            stream_to_file_checkpointed(
                z5, sdir, faults=FaultPlan(abort_after_blocks=11)
            )
        cp = StreamCheckpoint(sdir)
        assert not cp.complete

        cp, report, formed = stream_to_file_checkpointed(z5, sdir)
        assert cp.complete
        assert formed == 25 - report.blocks_verified
        assert (sdir / "equations.bin").read_bytes() == (
            self._reference_bytes(z5, tmp_path)
        )

    def test_truncated_data_file_detected(self, tmp_path, z5):
        sdir = tmp_path / "s"
        stream_to_file_checkpointed(z5, sdir)
        data = sdir / "equations.bin"
        data.write_bytes(data.read_bytes()[:-10])
        report = verify_stream_directory(sdir)
        assert report.blocks_verified == 24
        assert "truncated" in report.first_bad_reason

    def test_incompatible_params_restart_from_scratch(self, tmp_path, z5):
        sdir = tmp_path / "s"
        stream_to_file_checkpointed(z5, sdir, voltage=5.0)
        cp, report, formed = stream_to_file_checkpointed(
            z5, sdir, voltage=3.0
        )
        assert report.blocks_verified == 0
        assert formed == 25
        assert cp.params["voltage"] == 3.0

    def test_manifest_schema_matches_docs(self, tmp_path, z5):
        sdir = tmp_path / "s"
        stream_to_file_checkpointed(z5, sdir)
        manifest = json.loads((sdir / "manifest.json").read_text())
        assert manifest["kind"] == "stream-checkpoint"
        assert manifest["version"] == 1
        assert manifest["complete"] is True
        first = manifest["blocks"][0]
        assert set(first) == {
            "index", "row", "col", "offset", "nbytes", "checksum",
        }

    def test_verify_without_manifest_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no stream manifest"):
            verify_stream_directory(tmp_path)
