"""End-to-end CLI invocation through real subprocesses."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestModuleEntryPoint:
    def test_help_exits_zero(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        assert "simulate" in proc.stdout and "selftest" in proc.stdout

    def test_info_runs(self):
        proc = run_cli("info", "--n", "6")
        assert proc.returncode == 0
        assert "beta_1 = 25" in proc.stdout

    def test_selftest_runs(self):
        proc = run_cli("selftest", "--n", "4")
        assert proc.returncode == 0
        assert "all invariants hold" in proc.stdout

    def test_full_workflow_via_subprocess(self, tmp_path):
        campaign = tmp_path / "day.txt"
        sim = run_cli(
            "simulate", "--n", "6", "--seed", "5", "--noise", "0.0",
            "--out", str(campaign),
        )
        assert sim.returncode == 0
        solve = run_cli("solve", str(campaign), "--strategy", "single")
        assert solve.returncode == 0
        assert "converged=True" in solve.stdout
        screen = run_cli("screen", str(campaign))
        assert screen.returncode == 0

    def test_unknown_subcommand_fails(self):
        proc = run_cli("teleport")
        assert proc.returncode != 0
        assert "invalid choice" in proc.stderr
