"""Tests for detection scoring metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.anomaly.metrics import (
    field_relative_error,
    localization_errors,
    score_mask,
)

bool_masks = arrays(np.bool_, (6, 6))


class TestScoreMask:
    def test_perfect_prediction(self):
        truth = np.zeros((5, 5), dtype=bool)
        truth[1:3, 1:3] = True
        s = score_mask(truth, truth)
        assert s.precision == 1.0 and s.recall == 1.0
        assert s.f1 == 1.0 and s.iou == 1.0

    def test_empty_both(self):
        empty = np.zeros((4, 4), dtype=bool)
        s = score_mask(empty, empty)
        assert s.precision == 1.0 and s.recall == 1.0

    def test_all_false_positive(self):
        pred = np.ones((3, 3), dtype=bool)
        truth = np.zeros((3, 3), dtype=bool)
        s = score_mask(pred, truth)
        assert s.precision == 0.0
        assert s.recall == 1.0  # nothing to miss
        assert s.f1 == pytest.approx(0.0)

    def test_half_overlap(self):
        pred = np.zeros((4, 4), dtype=bool)
        truth = np.zeros((4, 4), dtype=bool)
        pred[0, :2] = True
        truth[0, 1:3] = True
        s = score_mask(pred, truth)
        assert s.precision == 0.5 and s.recall == 0.5
        assert s.iou == pytest.approx(1 / 3)

    @given(bool_masks, bool_masks)
    @settings(max_examples=40, deadline=None)
    def test_counts_partition_the_grid(self, pred, truth):
        s = score_mask(pred, truth)
        total = (
            s.true_positives + s.false_positives
            + s.false_negatives + s.true_negatives
        )
        assert total == pred.size
        assert 0.0 <= s.precision <= 1.0
        assert 0.0 <= s.recall <= 1.0
        assert 0.0 <= s.iou <= 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            score_mask(np.zeros((2, 2), bool), np.zeros((3, 3), bool))


class TestLocalization:
    def test_exact_match(self):
        errors = localization_errors([(2.0, 3.0)], [(2.0, 3.0)])
        assert errors == [0.0]

    def test_greedy_nearest(self):
        errors = localization_errors(
            [(0.0, 0.0), (10.0, 10.0)], [(9.0, 10.0), (1.0, 0.0)]
        )
        assert errors[0] == pytest.approx(1.0)
        assert errors[1] == pytest.approx(1.0)

    def test_missing_prediction_is_inf(self):
        errors = localization_errors([], [(1.0, 1.0)])
        assert errors == [float("inf")]

    def test_each_prediction_used_once(self):
        errors = localization_errors([(0.0, 0.0)], [(0.0, 0.0), (0.1, 0.0)])
        assert errors[0] == 0.0
        assert errors[1] == float("inf")


class TestFieldError:
    def test_zero_error(self):
        f = np.full((3, 3), 5.0)
        stats = field_relative_error(f, f)
        assert stats["mean"] == 0.0 and stats["max"] == 0.0

    def test_uniform_bias(self):
        truth = np.full((4, 4), 100.0)
        stats = field_relative_error(truth * 1.1, truth)
        assert stats["mean"] == pytest.approx(0.1)
        assert stats["p95"] == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            field_relative_error(np.ones((2, 2)), np.ones((3, 3)))
