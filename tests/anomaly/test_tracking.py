"""Tests for longitudinal anomaly tracking."""

import numpy as np
import pytest

from repro.anomaly.detect import detect_anomalies
from repro.anomaly.tracking import Track, TrackingResult, track_regions


def field(n=12, blobs=()):
    """blobs: list of (row, col, value)."""
    rng = np.random.default_rng(0)
    f = 3000.0 * (1 + 0.01 * rng.standard_normal((n, n)))
    for r, c, v in blobs:
        f[r : r + 2, c : c + 2] = v
    return f


def detect(f):
    return detect_anomalies(f, threshold_sigmas=4.0)


class TestTracking:
    def test_single_stationary_anomaly(self):
        dets = [detect(field(blobs=[(4, 4, 8000 + 500 * t)])) for t in range(4)]
        out = track_regions(dets, [0.0, 6.0, 12.0, 24.0])
        assert out.num_tracks == 1
        track = out.tracks[0]
        assert track.observations == 4
        assert track.first_seen == 0.0 and track.last_seen == 24.0
        assert track.growth_rate_per_hour() > 0

    def test_two_separate_anomalies_two_tracks(self):
        blobs_t = [
            [(2, 2, 8000), (9, 9, 9000)],
            [(2, 2, 8200), (9, 9, 9200)],
        ]
        dets = [detect(field(blobs=b)) for b in blobs_t]
        out = track_regions(dets, [0.0, 6.0])
        assert out.num_tracks == 2
        assert all(t.observations == 2 for t in out.tracks)

    def test_new_anomaly_starts_new_track(self):
        dets = [
            detect(field(blobs=[(2, 2, 8000)])),
            detect(field(blobs=[(2, 2, 8000), (9, 9, 9000)])),
        ]
        out = track_regions(dets, [0.0, 6.0])
        assert out.num_tracks == 2
        persistent = out.persistent_tracks()
        transient = out.transient_tracks()
        assert len(persistent) == 1 and len(transient) == 1
        assert transient[0].first_seen == 6.0

    def test_disappearing_anomaly_goes_dormant(self):
        dets = [
            detect(field(blobs=[(2, 2, 8000)])),
            detect(field(blobs=[])),
            detect(field(blobs=[(2, 2, 8000)])),  # re-appears
        ]
        out = track_regions(dets, [0.0, 6.0, 12.0])
        # Conservative policy: re-appearance is a NEW track.
        assert out.num_tracks == 2
        assert out.tracks[0].last_seen == 0.0
        assert out.tracks[1].first_seen == 12.0

    def test_max_jump_gate(self):
        dets = [
            detect(field(blobs=[(1, 1, 8000)])),
            detect(field(blobs=[(9, 9, 8000)])),  # far away
        ]
        out = track_regions(dets, [0.0, 6.0], max_jump=2.0)
        assert out.num_tracks == 2  # too far to be the same lesion

    def test_slow_drift_followed(self):
        dets = [
            detect(field(blobs=[(3 + t, 3, 8000)])) for t in range(3)
        ]
        out = track_regions(dets, [0.0, 6.0, 12.0], max_jump=2.5)
        assert out.num_tracks == 1
        assert out.tracks[0].drift_velocity() > 0

    def test_fastest_growing(self):
        dets = [
            detect(field(blobs=[(2, 2, 7000), (9, 9, 7000)])),
            detect(field(blobs=[(2, 2, 7100), (9, 9, 10500)])),
        ]
        out = track_regions(dets, [0.0, 6.0])
        fastest = out.fastest_growing()
        assert fastest is not None
        # The (9, 9) lesion grew much faster.
        assert fastest.centroids()[0][0] > 5

    def test_input_validation(self):
        with pytest.raises(ValueError):
            track_regions([detect(field())], [0.0, 6.0])
        with pytest.raises(ValueError):
            track_regions(
                [detect(field()), detect(field())], [6.0, 0.0]
            )

    def test_single_observation_rates_are_zero(self):
        dets = [detect(field(blobs=[(2, 2, 8000)]))]
        out = track_regions(dets, [0.0])
        t = out.tracks[0]
        assert t.growth_rate_per_hour() == 0.0
        assert t.drift_velocity() == 0.0
