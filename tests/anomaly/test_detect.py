"""Tests for anomaly detection on resistance fields."""

import numpy as np
import pytest

from repro.anomaly.detect import (
    detect_anomalies,
    detect_drift_anomalies,
)


def field_with_blob(n=12, baseline=3000.0, peak=9000.0, center=(5, 5), size=2):
    rng = np.random.default_rng(0)
    field = baseline * (1 + 0.02 * rng.standard_normal((n, n)))
    r0, c0 = center
    field[r0 - size // 2 : r0 + size // 2 + 1,
          c0 - size // 2 : c0 + size // 2 + 1] = peak
    return field


class TestDetectAnomalies:
    def test_finds_planted_blob(self):
        field = field_with_blob()
        result = detect_anomalies(field)
        assert result.num_regions == 1
        region = result.regions[0]
        assert region.peak_resistance == pytest.approx(9000.0)
        assert abs(region.centroid[0] - 5) < 1.0
        assert abs(region.centroid[1] - 5) < 1.0

    def test_clean_field_has_no_regions(self):
        rng = np.random.default_rng(1)
        field = 3000.0 * (1 + 0.02 * rng.standard_normal((10, 10)))
        assert detect_anomalies(field).num_regions == 0

    def test_two_separate_blobs(self):
        field = field_with_blob(n=16, center=(3, 3))
        field[11:14, 11:14] = 9500.0
        result = detect_anomalies(field)
        assert result.num_regions == 2

    def test_touching_blobs_merge(self):
        field = field_with_blob(n=12, center=(5, 5), size=2)
        field[5:8, 6:9] = 9000.0  # 4-connected to the first
        result = detect_anomalies(field)
        assert result.num_regions == 1

    def test_min_size_filters_specks(self):
        field = field_with_blob(n=12, size=0)  # single pixel
        kept = detect_anomalies(field, min_size=1)
        dropped = detect_anomalies(field, min_size=2)
        assert kept.num_regions == 1
        assert dropped.num_regions == 0
        assert not dropped.mask.any()

    def test_mask_matches_regions(self):
        field = field_with_blob()
        result = detect_anomalies(field)
        covered = set()
        for region in result.regions:
            covered.update(region.sites)
        assert covered == set(map(tuple, np.argwhere(result.mask)))

    def test_threshold_monotonic(self):
        field = field_with_blob()
        loose = detect_anomalies(field, threshold_sigmas=2.0)
        tight = detect_anomalies(field, threshold_sigmas=8.0)
        assert loose.mask.sum() >= tight.mask.sum()

    def test_constant_field_degenerate_spread(self):
        field = np.full((6, 6), 3000.0)
        result = detect_anomalies(field)
        assert result.num_regions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_anomalies(np.ones(5))
        with pytest.raises(ValueError):
            detect_anomalies(np.ones((4, 4)), threshold_sigmas=0.0)
        with pytest.raises(ValueError):
            detect_anomalies(np.ones((4, 4)), min_size=0)

    def test_region_statistics(self):
        field = field_with_blob()
        region = detect_anomalies(field).regions[0]
        assert region.size == len(region.sites)
        assert region.mean_resistance <= region.peak_resistance
        assert region.label == 1


class TestDriftDetection:
    def test_growth_detected(self):
        early = np.full((8, 8), 3000.0)
        late = early.copy()
        late[2:4, 2:4] *= 1.8
        result = detect_drift_anomalies(early, late, growth_threshold=0.25)
        assert result.num_regions == 1
        assert result.mask[2, 2]

    def test_static_field_no_drift(self):
        field = np.full((6, 6), 3000.0)
        result = detect_drift_anomalies(field, field * 1.01)
        assert result.num_regions == 0

    def test_shrinkage_not_flagged(self):
        early = np.full((6, 6), 3000.0)
        late = early.copy()
        late[1, 1] *= 0.3  # resistance drop, not an anomaly here
        assert detect_drift_anomalies(early, late).num_regions == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            detect_drift_anomalies(np.ones((4, 4)), np.ones((5, 5)))

    def test_min_size(self):
        early = np.full((6, 6), 3000.0)
        late = early.copy()
        late[1, 1] *= 2.0
        assert detect_drift_anomalies(early, late, min_size=2).num_regions == 0
