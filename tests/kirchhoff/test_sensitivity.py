"""Tests for measurement sensitivity maps."""

import numpy as np
import pytest

from repro.kirchhoff.forward import measure
from repro.kirchhoff.sensitivity import (
    aggregate_sensitivity,
    locality_profile,
    normalized_sensitivity,
    self_sensitivity_fraction,
    sensitivity_map,
)


@pytest.fixture(scope="module")
def uniform_field():
    return np.full((6, 6), 3000.0)


class TestSensitivityMap:
    def test_nonnegative(self, uniform_field):
        s = sensitivity_map(uniform_field, 2, 3)
        assert np.all(s >= -1e-15)

    def test_own_resistor_dominates(self, uniform_field):
        s = sensitivity_map(uniform_field, 2, 3)
        assert s.argmax() == 2 * 6 + 3

    def test_matches_finite_difference(self, uniform_field):
        r = uniform_field.copy()
        s = sensitivity_map(r, 1, 4)
        eps = 1e-3
        for a, b in ((1, 4), (0, 0), (3, 2)):
            r2 = r.copy()
            r2[a, b] += eps
            fd = (measure(r2)[1, 4] - measure(r)[1, 4]) / eps
            assert s[a, b] == pytest.approx(fd, rel=1e-4, abs=1e-9)

    def test_out_of_range_pair(self, uniform_field):
        with pytest.raises(IndexError):
            sensitivity_map(uniform_field, 6, 0)

    def test_normalized_sums_to_one(self, uniform_field):
        s = normalized_sensitivity(uniform_field, 0, 0)
        assert s.sum() == pytest.approx(1.0)


class TestLocality:
    def test_profile_decreases(self, uniform_field):
        """Sensitivity decays with distance from the driven pair —
        the §IV-B locality premise, measured."""
        prof = locality_profile(uniform_field, 3, 3)
        assert prof[0] > prof[1] > prof[-1]

    def test_profile_length(self, uniform_field):
        prof = locality_profile(uniform_field, 0, 0)
        assert len(prof) == 6  # Chebyshev distances 0..5

    def test_heterogeneous_field_still_local(self):
        rng = np.random.default_rng(7)
        r = rng.uniform(2000, 9000, size=(7, 7))
        prof = locality_profile(r, 3, 3)
        assert prof[0] == max(prof)


class TestAggregates:
    def test_aggregate_positive_everywhere(self, uniform_field):
        agg = aggregate_sensitivity(uniform_field)
        assert np.all(agg > 0)

    def test_uniform_device_symmetry(self, uniform_field):
        """On a uniform device the coverage map has the grid's
        symmetry: invariant under horizontal/vertical flips."""
        agg = aggregate_sensitivity(uniform_field)
        np.testing.assert_allclose(agg, agg[::-1, :], rtol=1e-9)
        np.testing.assert_allclose(agg, agg[:, ::-1], rtol=1e-9)

    def test_self_fraction_dominant(self, uniform_field):
        """Each pair's own resistor is by far the single most-seen
        resistor (~0.31 at n = 6 vs a uniform share of 1/36 ≈ 0.028),
        though parallel paths keep it below an absolute majority."""
        frac = self_sensitivity_fraction(uniform_field)
        uniform_share = 1.0 / 36.0
        assert np.all(frac > 10 * uniform_share)
        assert np.all(frac < 1.0)
        # And it shrinks as the device grows (more parallel paths).
        frac_big = self_sensitivity_fraction(np.full((10, 10), 3000.0))
        assert frac_big.mean() < frac.mean()
