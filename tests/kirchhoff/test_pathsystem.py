"""Tests for the path-based nonlinear system (baseline [15])."""

import numpy as np
import pytest

from repro.kirchhoff.forward import measure
from repro.kirchhoff.pathsystem import (
    build_path_system,
    model_error_vs_exact,
    solve_path_system,
)
from repro.mea.device import MEAGrid


class TestBuild:
    def test_equation_and_term_counts(self):
        system = build_path_system(MEAGrid(3))
        assert system.num_equations == 9
        assert system.num_terms == 81  # 9 paths per pair

    def test_term_count_is_exponential_part(self):
        s2 = build_path_system(MEAGrid(2))
        s3 = build_path_system(MEAGrid(3))
        s4 = build_path_system(MEAGrid(4))
        per_pair = [
            s.num_terms / s.num_equations for s in (s2, s3, s4)
        ]
        assert per_pair == [2, 9, 82]


class TestModelAccuracy:
    def test_exact_for_2x2(self):
        """At n = 2 no two paths share a resistor: model is exact."""
        r = np.array([[100.0, 220.0], [330.0, 470.0]])
        assert model_error_vs_exact(MEAGrid(2), r) < 1e-12

    def test_approximate_for_3x3(self):
        """At n = 3 paths share resistors; the parallel-paths formula
        systematically over-estimates conductance."""
        r = np.full((3, 3), 1000.0)
        err = model_error_vs_exact(MEAGrid(3), r)
        assert err > 0.01  # clearly not exact

    def test_predicted_z_underestimates_exact(self):
        """Treating shared paths as independent adds phantom parallel
        conductance, so predicted Z <= exact Z."""
        grid = MEAGrid(3)
        r = np.full((3, 3), 1000.0)
        system = build_path_system(grid)
        pred = system.predicted_z(r)
        exact = measure(r)
        assert np.all(pred <= exact + 1e-12)

    def test_residual_zero_at_model_consistent_z(self):
        grid = MEAGrid(3)
        r = np.full((3, 3), 2000.0)
        system = build_path_system(grid)
        z_model = system.predicted_z(r)
        res = system.residual(r.ravel(), z_model)
        np.testing.assert_allclose(res, 0.0, atol=1e-15)


class TestSolve:
    def test_recovers_r_exactly_at_2x2(self):
        grid = MEAGrid(2)
        rng = np.random.default_rng(0)
        r_true = rng.uniform(2000, 8000, size=(2, 2))
        z = measure(r_true)  # exact physics = exact model at n=2
        system = build_path_system(grid)
        r_est = solve_path_system(system, z)
        np.testing.assert_allclose(r_est, r_true, rtol=1e-6)

    def test_3x3_solves_model_consistent_data(self):
        """Against model-generated Z the solve must close the loop even
        though the model itself is approximate physics."""
        grid = MEAGrid(3)
        rng = np.random.default_rng(1)
        r_true = rng.uniform(2000, 8000, size=(3, 3))
        system = build_path_system(grid)
        z_model = system.predicted_z(r_true)
        r_est = solve_path_system(system, z_model, max_nfev=400)
        pred = system.predicted_z(r_est)
        np.testing.assert_allclose(pred, z_model, rtol=1e-6)

    def test_shape_validation(self):
        system = build_path_system(MEAGrid(2))
        with pytest.raises(ValueError):
            solve_path_system(system, np.ones((3, 3)))

    def test_positive_estimates(self):
        grid = MEAGrid(2)
        r_true = np.array([[3000.0, 4000.0], [5000.0, 6000.0]])
        system = build_path_system(grid)
        r_est = solve_path_system(system, measure(r_true))
        assert np.all(r_est > 0)
