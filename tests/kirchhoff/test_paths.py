"""Tests for exponential path enumeration (§II-C baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kirchhoff.paths import (
    count_paths_exact,
    count_paths_paper,
    enumerate_paths,
    iter_all_pairs_paths,
    path_length_histogram,
    storage_estimate_bytes,
    total_paths_exact,
    total_paths_paper,
)
from repro.mea.device import MEAGrid


class TestEnumeration:
    def test_2x2_paths(self):
        grid = MEAGrid(2)
        paths = enumerate_paths(grid, 0, 0)
        assert len(paths) == 2
        lengths = sorted(p.length for p in paths)
        assert lengths == [1, 3]  # direct + around

    def test_paper_3x3_count(self):
        """The paper identifies exactly nine paths from C to I."""
        grid = MEAGrid(3)
        paths = enumerate_paths(grid, 2, 0)  # C = row 2, I = col 0
        assert len(paths) == 9

    def test_paper_path_i_direct(self):
        """(i) C -> R_13 -> I is the single-hop path (wire C = row 2;
        note R_13 in the paper's figure labels the resistor joining C
        and I in its path list, which is R_31 in row-column order)."""
        grid = MEAGrid(3)
        paths = enumerate_paths(grid, 2, 0)
        direct = [p for p in paths if p.length == 1]
        assert len(direct) == 1
        assert direct[0].resistors == ((2, 0),)

    def test_paths_are_simple(self):
        """No wire revisited within one path."""
        grid = MEAGrid(3)
        for p in enumerate_paths(grid, 1, 1):
            assert len(set(p.wires)) == len(p.wires)

    def test_paths_alternate_wires(self):
        grid = MEAGrid(3)
        for p in enumerate_paths(grid, 0, 2):
            kinds = [w[0] for w in p.wires]
            assert all(a != b for a, b in zip(kinds, kinds[1:]))

    def test_endpoints_correct(self):
        grid = MEAGrid(4)
        for p in enumerate_paths(grid, 2, 3):
            assert p.wires[0] == ("H", 2)
            assert p.wires[-1] == ("V", 3)

    def test_max_paths_truncation(self):
        grid = MEAGrid(4)
        paths = enumerate_paths(grid, 0, 0, max_paths=5)
        assert len(paths) == 5

    def test_deterministic_order(self):
        grid = MEAGrid(3)
        a = enumerate_paths(grid, 0, 0)
        b = enumerate_paths(grid, 0, 0)
        assert [p.resistors for p in a] == [p.resistors for p in b]

    def test_path_resistance(self):
        grid = MEAGrid(2)
        r = np.array([[100.0, 200.0], [300.0, 400.0]])
        paths = enumerate_paths(grid, 0, 0)
        values = sorted(p.resistance(r) for p in paths)
        assert values == [100.0, 200.0 + 400.0 + 300.0]


class TestCounting:
    @given(st.integers(2, 5))
    @settings(max_examples=4, deadline=None)
    def test_exact_count_matches_enumeration(self, n):
        grid = MEAGrid(n)
        enumerated = len(enumerate_paths(grid, 0, 0))
        assert enumerated == count_paths_exact(n, n)

    def test_rectangular_count(self):
        grid = MEAGrid(2, 3)
        assert len(enumerate_paths(grid, 0, 0)) == count_paths_exact(2, 3)

    def test_paper_estimate_matches_exact_at_n3(self):
        assert count_paths_paper(3) == count_paths_exact(3, 3) == 9

    def test_paper_estimate_diverges_above_n3(self):
        """n = 4: exact 82 vs paper's n^(n-1) = 64 — documented gap."""
        assert count_paths_exact(4, 4) == 82
        assert count_paths_paper(4) == 64

    def test_total_counts(self):
        assert total_paths_exact(3, 3) == 9 * 9
        assert total_paths_paper(3) == 81

    @given(st.integers(2, 12))
    @settings(max_examples=10, deadline=None)
    def test_counts_grow_superexponentially(self, n):
        assert count_paths_exact(n + 1, n + 1) > count_paths_exact(n, n)

    def test_infeasibility_threshold(self):
        """[15]: path storage becomes infeasible for n > 6.

        At n = 7 the estimated storage already exceeds 1 GiB; at n = 10
        it exceeds 10 TiB.
        """
        assert storage_estimate_bytes(6) < 2**30
        assert storage_estimate_bytes(7) > 2**30
        assert storage_estimate_bytes(10) > 10 * 2**40


class TestHelpers:
    def test_histogram(self):
        grid = MEAGrid(3)
        hist = path_length_histogram(enumerate_paths(grid, 2, 0))
        assert hist == {1: 1, 3: 4, 5: 4}

    def test_iter_all_pairs(self):
        grid = MEAGrid(2)
        items = list(iter_all_pairs_paths(grid))
        assert len(items) == total_paths_exact(2, 2)
        pairs = {(i, j) for i, j, _ in items}
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_iter_all_pairs_truncates(self):
        grid = MEAGrid(3)
        items = list(iter_all_pairs_paths(grid, max_total=7))
        assert len(items) == 7

    def test_storage_bytes_positive(self):
        grid = MEAGrid(3)
        for p in enumerate_paths(grid, 0, 0):
            assert p.storage_bytes() > 0
