"""Tests for Kirchhoff L1/L2 systems on general circuits (§II-A)."""

import numpy as np
import pytest

from repro.kirchhoff.laws import Circuit, ResistorEdge


def bridge_circuit():
    """Wheatstone bridge: 4 nodes, 5 resistors."""
    return Circuit([
        ResistorEdge("a", "b", 100.0),
        ResistorEdge("a", "c", 200.0),
        ResistorEdge("b", "c", 300.0),
        ResistorEdge("b", "d", 400.0),
        ResistorEdge("c", "d", 500.0),
    ])


class TestStructure:
    def test_counts(self):
        c = bridge_circuit()
        assert c.num_nodes == 4
        assert c.num_edges == 5

    def test_paper_independence_counts(self):
        """§II-A: |V|-1 independent L1 equations, |E|-|V|+1 L2."""
        c = bridge_circuit()
        assert c.num_independent_l1() == 3
        assert c.num_independent_l2() == 2

    def test_l1_plus_l2_determine_currents(self):
        """Together they give |E| equations for |E| unknowns."""
        c = bridge_circuit()
        assert c.num_independent_l1() + c.num_independent_l2() == c.num_edges

    def test_incidence_matrix_rank_is_v_minus_1(self):
        c = bridge_circuit()
        a = c.incidence_matrix()
        assert np.linalg.matrix_rank(a) == c.num_nodes - 1

    def test_cycle_matrix_rank_is_cyclomatic(self):
        c = bridge_circuit()
        b = c.cycle_matrix()
        assert np.linalg.matrix_rank(b) == c.num_independent_l2()

    def test_l1_l2_rows_mutually_independent(self):
        """A B^T = 0: cycle space is the kernel of the incidence map."""
        c = bridge_circuit()
        prod = c.incidence_matrix() @ c.cycle_matrix().T
        np.testing.assert_allclose(prod, 0.0, atol=1e-12)

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            Circuit([])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ResistorEdge("a", "a", 100.0)

    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(ValueError):
            ResistorEdge("a", "b", -5.0)


class TestNodalSolve:
    def test_series_resistors(self):
        c = Circuit([
            ResistorEdge("a", "b", 100.0),
            ResistorEdge("b", "c", 200.0),
        ])
        sol = c.solve_nodal("a", "c", 6.0)
        assert sol.effective_resistance() == pytest.approx(300.0)
        assert sol.total_current == pytest.approx(6.0 / 300.0)

    def test_parallel_resistors_via_two_paths(self):
        c = Circuit([
            ResistorEdge("a", "b", 100.0),
            ResistorEdge("a", "m", 150.0),
            ResistorEdge("m", "b", 150.0),
        ])
        sol = c.solve_nodal("a", "b", 5.0)
        assert sol.effective_resistance() == pytest.approx(75.0)

    def test_wheatstone_balanced(self):
        """Balanced bridge: no current through the bridge arm."""
        c = Circuit([
            ResistorEdge("a", "b", 100.0),
            ResistorEdge("a", "c", 200.0),
            ResistorEdge("b", "d", 200.0),
            ResistorEdge("c", "d", 400.0),
            ResistorEdge("b", "c", 555.0),  # bridge arm
        ])
        sol = c.solve_nodal("a", "d", 5.0)
        bridge_idx = 4
        assert abs(sol.currents[bridge_idx]) < 1e-12

    def test_l1_residual_zero(self):
        sol = bridge_circuit().solve_nodal("a", "d", 5.0)
        np.testing.assert_allclose(sol.l1_residual(), 0.0, atol=1e-12)

    def test_l2_residual_zero(self):
        sol = bridge_circuit().solve_nodal("a", "d", 5.0)
        np.testing.assert_allclose(sol.l2_residual(), 0.0, atol=1e-10)

    def test_unknown_terminal(self):
        with pytest.raises(KeyError):
            bridge_circuit().solve_nodal("a", "zz", 5.0)

    def test_same_terminal_rejected(self):
        with pytest.raises(ValueError):
            bridge_circuit().solve_nodal("a", "a", 5.0)

    def test_power_conservation(self):
        """Σ I²R over edges = V · I_total."""
        sol = bridge_circuit().solve_nodal("a", "d", 5.0)
        ohms = np.array([e.ohms for e in sol.circuit.edges])
        dissipated = float(np.sum(sol.currents**2 * ohms))
        supplied = 5.0 * sol.total_current
        assert dissipated == pytest.approx(supplied, rel=1e-10)
