"""Tests for mesh (loop-current) analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kirchhoff.laws import Circuit, ResistorEdge
from repro.kirchhoff.mesh import mesh_vs_nodal_gap, solve_mesh
from repro.mea.device import MEAGrid
from repro.mea.graph import wire_graph


def random_circuit(seed, nodes=6, extra=5):
    rng = np.random.default_rng(seed)
    edges = []
    labels = [f"n{i}" for i in range(nodes)]
    for a, b in zip(labels, labels[1:]):
        edges.append(ResistorEdge(a, b, float(rng.uniform(50, 500))))
    for _ in range(extra):
        a, b = rng.choice(nodes, 2, replace=False)
        edges.append(
            ResistorEdge(labels[a], labels[b], float(rng.uniform(50, 500)))
        )
    return Circuit(edges)


class TestSolveMesh:
    def test_series_chain(self):
        c = Circuit([
            ResistorEdge("a", "b", 120.0),
            ResistorEdge("b", "c", 80.0),
        ])
        sol = solve_mesh(c, "a", "c", 10.0)
        assert sol.effective_resistance == pytest.approx(200.0, rel=1e-6)
        assert sol.num_loops == 1  # the source loop

    def test_loop_count_is_cyclomatic_plus_source(self):
        c = random_circuit(0)
        sol = solve_mesh(c, "n0", "n3", 5.0)
        assert sol.num_loops == c.num_independent_l2() + 1

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_matches_nodal_analysis(self, seed):
        c = random_circuit(seed)
        gap = mesh_vs_nodal_gap(c, "n0", "n3")
        assert gap < 1e-6

    def test_crossbar_agreement(self):
        """Mesh analysis on the collapsed MEA wire graph matches the
        forward solver's effective resistance."""
        from repro.kirchhoff.forward import effective_resistance_matrix

        rng = np.random.default_rng(7)
        r = rng.uniform(500, 5000, size=(3, 3))
        g = wire_graph(MEAGrid(3))
        edges = [
            ResistorEdge(u, v, float(r[d["row"], d["col"]]))
            for u, v, d in g.edges(data=True)
        ]
        circuit = Circuit(edges)
        z = effective_resistance_matrix(r)
        sol = solve_mesh(circuit, ("H", 1), ("V", 2), 5.0)
        assert sol.effective_resistance == pytest.approx(z[1, 2], rel=1e-6)

    def test_same_terminals_rejected(self):
        c = random_circuit(1)
        with pytest.raises(ValueError):
            solve_mesh(c, "n0", "n0", 5.0)

    def test_loop_currents_reproduce_edge_currents(self):
        c = random_circuit(3)
        sol = solve_mesh(c, "n0", "n4", 5.0)
        # Edge currents are B^T x by construction; check conservation
        # at a node instead: net flow at an internal node is zero.
        # (Equivalent to L1, derived purely from the loop space.)
        from repro.kirchhoff.laws import Circuit as C2, ResistorEdge as RE

        aug = C2(list(c.edges) + [RE("n4", "n0", 1e-9 * 50)])
        incidence = aug.incidence_matrix()
        net = incidence @ sol.edge_currents
        np.testing.assert_allclose(net, 0.0, atol=1e-9)
