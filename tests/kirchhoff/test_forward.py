"""Tests for the exact crossbar forward solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kirchhoff.forward import (
    crossbar_laplacian,
    effective_resistance_matrix,
    measure,
    residual_current_at_wires,
    solve_all_drives,
    solve_drive,
)

resistance_fields = arrays(
    np.float64,
    st.tuples(st.integers(2, 5), st.integers(2, 5)),
    elements=st.floats(100.0, 10000.0),
)


class TestLaplacian:
    def test_shape_and_symmetry(self):
        r = np.full((3, 4), 1000.0)
        lap = crossbar_laplacian(r)
        assert lap.shape == (7, 7)
        np.testing.assert_allclose(lap, lap.T)

    def test_rows_sum_to_zero(self):
        r = np.array([[100.0, 200.0], [300.0, 400.0]])
        lap = crossbar_laplacian(r)
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-15)

    def test_off_diagonal_is_minus_conductance(self):
        r = np.array([[100.0, 200.0], [300.0, 400.0]])
        lap = crossbar_laplacian(r)
        assert lap[0, 2] == pytest.approx(-1 / 100.0)  # H0-V0
        assert lap[1, 3] == pytest.approx(-1 / 400.0)  # H1-V1

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            crossbar_laplacian(np.array([[1.0, 0.0], [1.0, 1.0]]))


class TestKnownNetworks:
    def test_1x1_trivial(self):
        z = effective_resistance_matrix(np.array([[470.0]]))
        assert z[0, 0] == pytest.approx(470.0)

    def test_2x2_series_parallel(self):
        """For 2x2, Z_00 = R00 || (R01 + R11 + R10) analytically."""
        r = np.array([[100.0, 200.0], [300.0, 400.0]])
        z = effective_resistance_matrix(r)
        expected = 1.0 / (1.0 / 100.0 + 1.0 / (200.0 + 400.0 + 300.0))
        assert z[0, 0] == pytest.approx(expected)

    def test_uniform_field_closed_form(self):
        """Uniform R on n x n: Z = R (2n - 1) / n^2 by symmetry."""
        for n in (2, 3, 5, 8):
            r = np.full((n, n), 1000.0)
            z = effective_resistance_matrix(r)
            expected = 1000.0 * (2 * n - 1) / n**2
            np.testing.assert_allclose(z, expected)

    def test_measure_is_alias(self):
        r = np.array([[100.0, 200.0], [300.0, 400.0]])
        np.testing.assert_allclose(measure(r), effective_resistance_matrix(r))


class TestDriveSolution:
    def test_z_matches_matrix(self):
        rng = np.random.default_rng(0)
        r = rng.uniform(500, 5000, size=(4, 4))
        zmat = effective_resistance_matrix(r)
        for i in range(4):
            for j in range(4):
                sol = solve_drive(r, i, j)
                assert sol.z == pytest.approx(zmat[i, j], rel=1e-10)

    def test_boundary_conditions(self):
        r = np.full((3, 3), 1000.0)
        sol = solve_drive(r, 1, 2, voltage=5.0)
        assert sol.h_voltages[1] == pytest.approx(5.0)
        assert sol.v_voltages[2] == pytest.approx(0.0)

    def test_intermediate_voltages_inside_range(self):
        rng = np.random.default_rng(1)
        r = rng.uniform(500, 5000, size=(4, 4))
        sol = solve_drive(r, 0, 0, voltage=5.0)
        assert np.all(sol.ua() > 0.0) and np.all(sol.ua() < 5.0)
        assert np.all(sol.ub() > 0.0) and np.all(sol.ub() < 5.0)

    def test_ua_ub_shapes(self):
        r = np.full((4, 4), 1000.0)
        sol = solve_drive(r, 2, 1)
        assert sol.ua().shape == (3,)
        assert sol.ub().shape == (3,)

    def test_ua_excludes_driven_column(self):
        r = np.full((3, 3), 1000.0)
        sol = solve_drive(r, 0, 1)
        expected = np.delete(sol.v_voltages, 1)
        np.testing.assert_array_equal(sol.ua(), expected)

    @given(resistance_fields, st.integers(0, 4), st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_kirchhoff_l1_holds_everywhere(self, r, i, j):
        """Net current is zero at all undriven wires, ±I at driven."""
        m, n = r.shape
        i, j = i % m, j % n
        sol = solve_drive(r, i, j)
        res = residual_current_at_wires(r, sol)
        scale = abs(sol.total_current)
        assert abs(res[i] - sol.total_current) < 1e-9 * scale
        assert abs(res[m + j] + sol.total_current) < 1e-9 * scale
        mask = np.ones(m + n, dtype=bool)
        mask[i] = mask[m + j] = False
        assert np.max(np.abs(res[mask])) < 1e-9 * scale

    def test_out_of_range_pair(self):
        with pytest.raises(IndexError):
            solve_drive(np.full((2, 2), 100.0), 2, 0)

    def test_voltage_must_be_positive(self):
        with pytest.raises(ValueError):
            solve_drive(np.full((2, 2), 100.0), 0, 0, voltage=0.0)


class TestPhysicalInvariants:
    @given(resistance_fields)
    @settings(max_examples=30, deadline=None)
    def test_z_positive_and_below_direct_resistor(self, r):
        """0 < Z_ij <= R_ij: parallel paths only reduce resistance."""
        z = effective_resistance_matrix(r)
        assert np.all(z > 0)
        assert np.all(z <= r + 1e-9 * r)

    @given(resistance_fields)
    @settings(max_examples=20, deadline=None)
    def test_scaling_invariance(self, r):
        """Z(c R) = c Z(R) — the network is linear in R."""
        z1 = effective_resistance_matrix(r)
        z2 = effective_resistance_matrix(2.5 * r)
        np.testing.assert_allclose(z2, 2.5 * z1, rtol=1e-9)

    def test_monotonicity_in_single_resistor(self):
        """Raising any R_ab cannot lower any Z (Rayleigh monotonicity)."""
        rng = np.random.default_rng(2)
        r = rng.uniform(500, 5000, size=(3, 3))
        z_before = effective_resistance_matrix(r)
        r2 = r.copy()
        r2[1, 1] *= 3.0
        z_after = effective_resistance_matrix(r2)
        assert np.all(z_after >= z_before - 1e-9)

    def test_solve_all_drives_cover_all_pairs(self):
        r = np.full((3, 2), 1000.0)
        sols = solve_all_drives(r)
        assert [(s.row, s.col) for s in sols] == [
            (i, j) for i in range(3) for j in range(2)
        ]
