"""Tests for smoothness checks and repeated-measurement manifolds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.manifold.smooth import (
    RepeatedMeasurement,
    is_smooth,
    mixed_partial_gap,
    second_differences,
    smoothness_index,
)

site_fields = arrays(
    np.float64,
    st.tuples(st.integers(3, 8), st.integers(3, 8)),
    elements=st.floats(-50.0, 50.0, allow_nan=False),
)


class TestMixedPartials:
    @given(site_fields)
    @settings(max_examples=30, deadline=None)
    def test_gap_is_exactly_zero(self, field):
        """The paper's ∂²U/∂x∂y = ∂²U/∂y∂x — exact up to float
        non-associativity of the two difference orders."""
        scale = max(1.0, float(np.max(np.abs(field))))
        assert mixed_partial_gap(field) <= 1e-12 * scale


class TestSmoothnessIndex:
    def test_affine_field_is_perfectly_smooth(self):
        rows, cols = np.mgrid[0:6, 0:6].astype(float)
        assert smoothness_index(3 * rows - 2 * cols + 1) < 1e-12

    def test_constant_field(self):
        assert smoothness_index(np.full((4, 4), 7.0)) == 0.0

    def test_spike_is_rough(self):
        field = np.zeros((6, 6))
        field[3, 3] = 10.0
        assert smoothness_index(field) > 0.5
        assert not is_smooth(field)

    def test_smooth_sinusoid(self):
        rows, cols = np.mgrid[0:20, 0:20].astype(float)
        field = np.sin(rows / 6.0) + np.cos(cols / 6.0)
        assert is_smooth(field, threshold=0.1)

    def test_second_differences_shapes(self):
        d2x, d2y = second_differences(np.zeros((5, 7)))
        assert d2x.shape == (3, 7) and d2y.shape == (5, 5)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            smoothness_index(np.zeros(5))


class TestRepeatedMeasurement:
    def _stack(self, k, seed=0, noise=0.5):
        rng = np.random.default_rng(seed)
        rows, cols = np.mgrid[0:10, 0:10].astype(float)
        truth = np.sin(rows / 4.0) * 10.0 + cols
        return truth, np.stack(
            [truth + noise * rng.standard_normal(truth.shape) for _ in range(k)]
        )

    def test_mean_field_approaches_truth(self):
        truth, reps = self._stack(64)
        rm = RepeatedMeasurement(replicas=reps)
        err = np.abs(rm.mean_field() - truth).mean()
        single_err = np.abs(reps[0] - truth).mean()
        assert err < single_err / 4  # ~1/sqrt(64) shrinkage

    def test_noise_scale_shrinks_with_replicas(self):
        _, reps8 = self._stack(8)
        _, reps64 = self._stack(64)
        s8 = RepeatedMeasurement(replicas=reps8).noise_scale()
        s64 = RepeatedMeasurement(replicas=reps64).noise_scale()
        assert s64 < s8

    def test_single_replica_noise_zero(self):
        _, reps = self._stack(1)
        assert RepeatedMeasurement(replicas=reps).noise_scale() == 0.0

    def test_smoothness_gain_exceeds_one(self):
        """Averaging recovers differentiability — the §IV-B trick."""
        _, reps = self._stack(32, noise=2.0)
        rm = RepeatedMeasurement(replicas=reps)
        assert rm.smoothness_gain() > 1.5

    def test_count_property(self):
        _, reps = self._stack(5)
        assert RepeatedMeasurement(replicas=reps).count == 5

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            RepeatedMeasurement(replicas=np.zeros((4, 4)))
