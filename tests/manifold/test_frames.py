"""Tests for chart maps, Jacobians, and frame changes."""

import numpy as np
import pytest

from repro.manifold.frames import (
    ChartMap,
    degenerate_cells,
    jacobian_determinants,
    local_jacobians,
    orthogonality_defect,
    pullback_gradient,
    pushforward_gradient,
)


def sheared_chart(n, shear=0.3):
    return ChartMap.from_function(
        n, lambda r, c: (r + shear * c, c)
    )


class TestChartMap:
    def test_identity(self):
        chart = ChartMap.identity(4)
        assert chart.shape == (4, 4)
        assert chart.x[2, 1] == 2.0 and chart.y[2, 1] == 1.0

    def test_from_function(self):
        chart = ChartMap.from_function(3, lambda r, c: (2 * r, 3 * c))
        assert chart.x[1, 0] == 2.0 and chart.y[0, 1] == 3.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ChartMap(x=np.zeros((2, 2)), y=np.zeros((3, 3)))


class TestJacobians:
    def test_identity_jacobian(self):
        jac = local_jacobians(ChartMap.identity(5))
        assert jac.shape == (4, 4, 2, 2)
        np.testing.assert_allclose(
            jac, np.broadcast_to(np.eye(2), jac.shape)
        )

    def test_uniform_scaling(self):
        chart = ChartMap.from_function(4, lambda r, c: (2 * r, 2 * c))
        np.testing.assert_allclose(jacobian_determinants(chart), 4.0)

    def test_shear_preserves_area(self):
        chart = sheared_chart(5)
        np.testing.assert_allclose(jacobian_determinants(chart), 1.0)

    def test_fold_detected_as_negative_det(self):
        # Mirror half the device: determinant flips sign.
        def fold(r, c):
            x = np.where(r <= 2, r, 4 - r)
            return x, c

        chart = ChartMap.from_function(6, fold)
        dets = jacobian_determinants(chart)
        assert (dets < 0).any() or (np.abs(dets) < 1e-12).any()

    def test_degenerate_cells_mask(self):
        chart = ChartMap.from_function(4, lambda r, c: (r, 0 * c))
        assert degenerate_cells(chart).all()


class TestFrameChanges:
    def test_pullback_identity_is_noop(self):
        chart = ChartMap.identity(4)
        g = np.random.default_rng(0).standard_normal((3, 3, 2))
        np.testing.assert_allclose(pullback_gradient(chart, g), g)

    def test_pullback_pushforward_roundtrip(self):
        chart = sheared_chart(5)
        g = np.random.default_rng(1).standard_normal((4, 4, 2))
        lat = pullback_gradient(chart, g)
        back = pushforward_gradient(chart, lat)
        np.testing.assert_allclose(back, g, atol=1e-12)

    def test_pushforward_degenerate_rejected(self):
        chart = ChartMap.from_function(4, lambda r, c: (r, 0 * c))
        g = np.zeros((3, 3, 2))
        with pytest.raises(ValueError):
            pushforward_gradient(chart, g)

    def test_shape_validation(self):
        chart = ChartMap.identity(4)
        with pytest.raises(ValueError):
            pullback_gradient(chart, np.zeros((2, 2, 2)))

    def test_chain_rule_on_scalar_field(self):
        """Pullback of the physical gradient reproduces lattice
        differences for a linear potential under shear."""
        shear = 0.4
        chart = sheared_chart(6, shear=shear)
        # U(x, y) = 3x + 5y evaluated at the deformed sensor sites.
        u = 3.0 * chart.x + 5.0 * chart.y
        # Physical gradient is (3, 5) per cell.
        g_phys = np.empty((5, 5, 2))
        g_phys[..., 0] = 3.0
        g_phys[..., 1] = 5.0
        g_lat = pullback_gradient(chart, g_phys)
        # Lattice differences of u along rows/cols (cell-averaged).
        du_dr = np.diff(u, axis=0)[:, :-1]
        du_dc = np.diff(u, axis=1)[:-1, :]
        np.testing.assert_allclose(g_lat[..., 0], du_dr, atol=1e-9)
        np.testing.assert_allclose(g_lat[..., 1], du_dc, atol=1e-9)


class TestOrthogonality:
    def test_identity_is_orthogonal(self):
        np.testing.assert_allclose(
            orthogonality_defect(ChartMap.identity(5)), 0.0, atol=1e-15
        )

    def test_shear_increases_defect(self):
        mild = orthogonality_defect(sheared_chart(5, 0.1)).mean()
        strong = orthogonality_defect(sheared_chart(5, 0.8)).mean()
        assert strong > mild > 0.0

    def test_defect_bounded_by_one(self):
        d = orthogonality_defect(sheared_chart(5, 5.0))
        assert np.all(d <= 1.0 + 1e-12)
