"""Tests for discrete fields, gradient/div/curl, circulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.manifold.vectorfield import (
    circulation,
    curl,
    div,
    grad,
    laplacian,
    voltage_field_from_drive,
)

site_fields = arrays(
    np.float64,
    st.tuples(st.integers(3, 8), st.integers(3, 8)),
    elements=st.floats(-100.0, 100.0, allow_nan=False),
)


class TestOperators:
    def test_grad_shapes(self):
        gx, gy = grad(np.zeros((5, 7)))
        assert gx.shape == (4, 7) and gy.shape == (5, 6)

    def test_grad_of_constant_is_zero(self):
        gx, gy = grad(np.full((4, 4), 3.5))
        assert not gx.any() and not gy.any()

    def test_grad_of_linear_field(self):
        rows, cols = np.mgrid[0:5, 0:5].astype(float)
        gx, gy = grad(2.0 * rows + 3.0 * cols)
        np.testing.assert_allclose(gx, 2.0)
        np.testing.assert_allclose(gy, 3.0)

    @given(site_fields)
    @settings(max_examples=30, deadline=None)
    def test_curl_of_gradient_is_zero(self, field):
        """Mixed partials commute — the §IV-B identity, exactly."""
        gx, gy = grad(field)
        np.testing.assert_allclose(curl(gx, gy), 0.0, atol=1e-9)

    def test_curl_detects_rotational_field(self):
        # A pure rotation: gx = const on right edges only.
        gx = np.zeros((2, 3))
        gy = np.zeros((3, 2))
        gy[0, 0] = 1.0  # bottom edge of cell (0,0)
        c = curl(gx, gy)
        assert c[0, 0] == pytest.approx(1.0)

    @given(site_fields)
    @settings(max_examples=20, deadline=None)
    def test_divergence_theorem_total_flux(self, field):
        """Σ div(grad f) over all sites telescopes to zero with the
        zero-flux boundary convention."""
        gx, gy = grad(field)
        assert div(gx, gy).sum() == pytest.approx(0.0, abs=1e-8)

    def test_laplacian_of_linear_field_is_zero_inside(self):
        rows, cols = np.mgrid[0:6, 0:6].astype(float)
        lap = laplacian(1.5 * rows - 2.0 * cols)
        np.testing.assert_allclose(lap[1:-1, 1:-1], 0.0, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            grad(np.zeros(5))
        with pytest.raises(ValueError):
            div(np.zeros((2, 3)), np.zeros((5, 5)))


class TestCirculation:
    def test_unit_cell_loop(self):
        field = np.arange(16.0).reshape(4, 4)
        gx, gy = grad(field)
        loop = [(1, 1), (2, 1), (2, 2), (1, 2)]
        assert circulation(gx, gy, loop) == pytest.approx(0.0)

    def test_orientation_antisymmetry(self):
        rng = np.random.default_rng(0)
        gx = rng.standard_normal((3, 4))
        gy = rng.standard_normal((4, 3))
        loop = [(0, 0), (1, 0), (1, 1), (0, 1)]
        fwd = circulation(gx, gy, loop)
        bwd = circulation(gx, gy, loop[::-1])
        assert fwd == pytest.approx(-bwd)

    def test_non_neighbour_rejected(self):
        gx, gy = grad(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            circulation(gx, gy, [(0, 0), (2, 0), (2, 2)])

    def test_short_loop_rejected(self):
        gx, gy = grad(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            circulation(gx, gy, [(0, 0), (0, 1)])


class TestVoltageField:
    def test_field_shape_and_range(self):
        r = np.full((4, 4), 1000.0)
        field = voltage_field_from_drive(r, 0, 0, voltage=5.0)
        assert field.shape == (4, 4)
        assert field.min() >= 0.0 and field.max() <= 5.0

    def test_extrema_on_driven_wires(self):
        """The hottest sites sit on the driven horizontal wire (row 2)
        and the coldest on the grounded vertical wire (col 3); the
        driven crossing itself averages the two and is neither."""
        r = np.full((5, 5), 1000.0)
        field = voltage_field_from_drive(r, 2, 3, voltage=5.0)
        assert field.argmax() // 5 == 2
        assert field.argmin() % 5 == 3
