"""Tests for the discrete Stokes identity (§IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.manifold.stokes import (
    exactness_defect,
    patch_sum,
    potential_circulations,
    rectangle_boundary,
    stokes_gap,
    verify_stokes,
)
from repro.manifold.vectorfield import grad, voltage_field_from_drive
from repro.mea.wetlab import quick_device_data

edge_fields = st.integers(0, 2**32 - 1).map(
    lambda seed: (
        np.random.default_rng(seed).standard_normal((5, 6)),
        np.random.default_rng(seed + 1).standard_normal((6, 5)),
    )
)


class TestRectangleBoundary:
    def test_unit_cell_loop_length(self):
        loop = rectangle_boundary(0, 0, 1, 1)
        assert len(loop) == 4

    def test_general_rectangle_length(self):
        loop = rectangle_boundary(1, 2, 2, 3)
        assert len(loop) == 2 * (2 + 3)

    def test_sites_are_4_connected(self):
        loop = rectangle_boundary(0, 1, 3, 2)
        closed = loop + [loop[0]]
        for (r0, c0), (r1, c1) in zip(closed, closed[1:]):
            assert abs(r0 - r1) + abs(c0 - c1) == 1

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            rectangle_boundary(0, 0, 0, 1)


class TestStokesIdentity:
    @given(edge_fields, st.integers(0, 3), st.integers(0, 3),
           st.integers(1, 2), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_exact_for_arbitrary_edge_fields(self, gxgy, top, left, h, w):
        """Circulation = patch sum for ANY edge field — the identity is
        combinatorial, not analytic."""
        gx, gy = gxgy
        if top + h > 5 or left + w > 5:
            return
        assert stokes_gap(gx, gy, top, left, h, w) < 1e-9
        assert verify_stokes(gx, gy, top, left, h, w)

    def test_patch_bounds_checked(self):
        gx, gy = np.zeros((4, 5)), np.zeros((5, 4))
        with pytest.raises(ValueError):
            patch_sum(gx, gy, 3, 3, 3, 3)


class TestVoltageFieldsAreExact:
    """Kirchhoff L2 in homological clothing: voltage fields of any
    drive have zero curl, so every circulation vanishes."""

    def test_exactness_of_drive_field(self):
        r, _ = quick_device_data(6, seed=3)
        field = voltage_field_from_drive(r, 2, 4)
        gx, gy = grad(field)
        # Gradient fields are exact by construction; the physical
        # content is that the *voltage* is single-valued at all.
        assert exactness_defect(gx, gy) < 1e-12

    def test_potential_circulations_all_zero(self):
        r, _ = quick_device_data(5, seed=8)
        field = voltage_field_from_drive(r, 0, 0)
        circ = potential_circulations(field)
        np.testing.assert_allclose(circ, 0.0, atol=1e-12)

    def test_nonexact_field_has_defect(self):
        gx = np.zeros((3, 4))
        gy = np.zeros((4, 3))
        gy[0, 0] = 1.0
        assert exactness_defect(gx, gy) == pytest.approx(1.0)
