"""Repository-quality meta-tests: the public API stays consistent."""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.anomaly",
    "repro.core",
    "repro.instrument",
    "repro.io",
    "repro.kirchhoff",
    "repro.manifold",
    "repro.mea",
    "repro.parallel",
    "repro.topology",
    "repro.utils",
]


def all_modules():
    names = set(SUBPACKAGES)
    for pkg_name in SUBPACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                names.add(f"{pkg_name}.{info.name}")
    return sorted(names)


class TestImports:
    @pytest.mark.parametrize("name", all_modules())
    def test_every_module_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_names_resolve(self, name):
        """Every name in __all__ is actually exported."""
        mod = importlib.import_module(name)
        exported = getattr(mod, "__all__", [])
        for symbol in exported:
            assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_is_sorted_unique(self, name):
        mod = importlib.import_module(name)
        exported = list(getattr(mod, "__all__", []))
        assert len(exported) == len(set(exported)), f"{name} duplicates"


class TestDocstrings:
    @pytest.mark.parametrize("name", all_modules())
    def test_every_module_has_docstring(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, (
            f"{name} lacks a real module docstring"
        )

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_callables_documented(self, name):
        """Every function/class exported via __all__ has a docstring."""
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), (
                    f"{name}.{symbol} has no docstring"
                )


class TestVersion:
    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(p.isdigit() for p in parts[:2])
