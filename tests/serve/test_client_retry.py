"""Client-side retry/backoff and connection-context tests.

A scripted unix-socket server stands in for the service: each entry in
its script handles one connection, so tests can answer "queue full
then ok", break the stream mid-frame, or close without replying — and
assert exactly what the client does about it.
"""

import socket
import threading

import numpy as np
import pytest

from repro.serve.client import ServeConnectionError, SolveClient
from repro.serve.protocol import (
    STATUS_OK,
    STATUS_QUEUE_FULL,
    STATUS_WORKER_LOST,
    Request,
    Response,
    encode_message,
    recv_message,
    send_message,
)


def _z(n: int = 4) -> list:
    rng = np.random.default_rng(7)
    return rng.uniform(2000.0, 11000.0, size=(n, n)).tolist()


def _reply_status(status: str):
    """A script step answering one request with the given status."""

    def step(conn: socket.socket, message: dict) -> None:
        send_message(
            conn,
            Response(
                id=str(message.get("id") or ""), status=status, summary=status
            ).to_dict(),
        )

    return step


def _partial_reply(conn: socket.socket, message: dict) -> None:
    """Send half a reply frame, then reset the connection."""
    frame = encode_message(
        Response(id=str(message.get("id") or ""), status=STATUS_OK).to_dict()
    )
    conn.sendall(frame[: len(frame) // 2])


def _no_reply(conn: socket.socket, message: dict) -> None:
    """Close without sending any reply bytes."""


class ScriptedServer:
    """One scripted handler per accepted connection, then stop."""

    def __init__(self, socket_path, script):
        self.socket_path = socket_path
        self.script = list(script)
        self.seen: list[dict] = []
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(str(socket_path))
        self._sock.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._sock.close()
        self._thread.join(timeout=5.0)

    def _serve(self):
        for step in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                message = recv_message(conn)
                if message is None:
                    continue
                self.seen.append(message)
                step(conn, message)


class TestRetriableResponses:
    def test_retry_succeeds_after_queue_full(self, tmp_path):
        path = tmp_path / "serve.sock"
        script = [_reply_status(STATUS_QUEUE_FULL), _reply_status(STATUS_OK)]
        with ScriptedServer(path, script) as server:
            client = SolveClient(path, retries=1, backoff=0.0)
            response = client.solve(np.asarray(_z()))
            assert response.status == STATUS_OK
            # Both attempts carried the same client-assigned
            # idempotency id.
            assert len(server.seen) == 2
            assert server.seen[0]["id"] == server.seen[1]["id"]
            assert server.seen[0]["id"]  # non-empty

    def test_worker_lost_is_retried(self, tmp_path):
        path = tmp_path / "serve.sock"
        script = [_reply_status(STATUS_WORKER_LOST), _reply_status(STATUS_OK)]
        with ScriptedServer(path, script) as server:
            client = SolveClient(path, retries=2, backoff=0.0)
            response = client.solve(np.asarray(_z()))
            assert response.status == STATUS_OK
            assert len(server.seen) == 2

    def test_no_retries_returns_retriable_response(self, tmp_path):
        path = tmp_path / "serve.sock"
        with ScriptedServer(path, [_reply_status(STATUS_QUEUE_FULL)]) as server:
            client = SolveClient(path)  # retries=0: PR-5 behaviour
            response = client.solve(np.asarray(_z()))
            assert response.status == STATUS_QUEUE_FULL
            assert response.retriable
            assert len(server.seen) == 1

    def test_retries_exhausted_returns_last_retriable(self, tmp_path):
        path = tmp_path / "serve.sock"
        script = [_reply_status(STATUS_QUEUE_FULL)] * 3
        with ScriptedServer(path, script) as server:
            client = SolveClient(path, retries=2, backoff=0.0)
            response = client.solve(np.asarray(_z()))
            assert response.status == STATUS_QUEUE_FULL
            assert len(server.seen) == 3

    def test_explicit_id_is_preserved_across_attempts(self, tmp_path):
        path = tmp_path / "serve.sock"
        script = [_reply_status(STATUS_QUEUE_FULL), _reply_status(STATUS_OK)]
        with ScriptedServer(path, script) as server:
            client = SolveClient(path, retries=1, backoff=0.0)
            client.submit(Request(z=_z(), id="my-key"))
            assert [m["id"] for m in server.seen] == ["my-key", "my-key"]


class TestConnectionContext:
    def test_mid_read_reset_reports_offset_and_ack(self, tmp_path):
        path = tmp_path / "serve.sock"
        with ScriptedServer(path, [_partial_reply]):
            client = SolveClient(path)
            with pytest.raises(ServeConnectionError) as info:
                client.solve(np.asarray(_z()))
            err = info.value
            assert err.request_sent
            assert err.acked  # reply bytes arrived before the reset
            assert err.frame_offset > 0
            assert not err.safe_to_retry  # outcome unknown

    def test_close_without_reply_is_unacked(self, tmp_path):
        path = tmp_path / "serve.sock"
        with ScriptedServer(path, [_no_reply]):
            client = SolveClient(path)
            with pytest.raises(ServeConnectionError) as info:
                client.solve(np.asarray(_z()))
            err = info.value
            assert err.request_sent
            assert not err.acked
            assert err.frame_offset == 0

    def test_no_service_is_safe_to_retry(self, tmp_path):
        client = SolveClient(tmp_path / "absent.sock", retries=1, backoff=0.0)
        with pytest.raises(ServeConnectionError) as info:
            client.solve(np.asarray(_z()))
        assert info.value.safe_to_retry
        assert not info.value.request_sent

    def test_connection_reset_then_retry_succeeds(self, tmp_path):
        path = tmp_path / "serve.sock"
        script = [_partial_reply, _reply_status(STATUS_OK)]
        with ScriptedServer(path, script) as server:
            client = SolveClient(path, retries=1, backoff=0.0)
            response = client.solve(np.asarray(_z()))
            assert response.status == STATUS_OK
            assert len(server.seen) == 2
            assert server.seen[0]["id"] == server.seen[1]["id"]


class TestBackoffDeterminism:
    def test_jittered_delays_are_reproducible_per_id(self, tmp_path):
        a = SolveClient(tmp_path / "s.sock", retries=3, backoff=0.5, jitter=0.5)
        from repro.resilience.retry import RetryPolicy
        from repro.utils.rng import derive_seed

        def delays(request_id):
            policy = RetryPolicy(
                max_retries=a.retries,
                backoff_seconds=a.backoff,
                jitter=a.jitter,
                jitter_seed=derive_seed(0, "serve-client", request_id),
            )
            return [policy.delay(i) for i in range(3)]

        assert delays("abc") == delays("abc")
        assert delays("abc") != delays("xyz")
        assert all(0 < d <= 2.0 for d in delays("abc"))
