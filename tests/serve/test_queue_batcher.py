"""Admission-queue and batcher unit tests (no sockets, no engines)."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import Batch, Batcher, batch_key
from repro.serve.protocol import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    Request,
    Response,
)
from repro.serve.queue import (
    AdmissionQueue,
    QueueDraining,
    QueueFull,
    QuotaExceeded,
    Ticket,
    TokenBucket,
)


def _request(
    n: int = 4,
    formation: str = "cached",
    backend: str = "numpy",
    rid: str | None = None,
    priority: str = PRIORITY_BATCH,
    client_id: str = "",
):
    return Request(
        z=[[1000.0] * n for _ in range(n)],
        formation=formation,
        backend=backend,
        id=rid,
        priority=priority,
        client_id=client_id,
    )


def _age(ticket: Ticket, seconds: float) -> None:
    """Pretend the ticket was admitted ``seconds`` ago."""
    ticket.enqueued_at -= seconds


class TestTicket:
    def test_resolve_wakes_waiter(self):
        ticket = Ticket(_request())
        response = Response(id="x", status="ok")

        def resolver():
            time.sleep(0.02)
            ticket.resolve(response)

        thread = threading.Thread(target=resolver)
        thread.start()
        assert ticket.wait(timeout=5.0) == response
        thread.join()
        assert ticket.resolved

    def test_wait_timeout_returns_none(self):
        assert Ticket(_request()).wait(timeout=0.01) is None

    def test_double_resolve_is_an_error(self):
        ticket = Ticket(_request())
        ticket.resolve(Response(id="x", status="ok"))
        with pytest.raises(RuntimeError, match="resolved twice"):
            ticket.resolve(Response(id="x", status="ok"))

    def test_try_resolve_is_first_wins(self):
        ticket = Ticket(_request())
        first = Response(id="x", status="ok")
        second = Response(id="x", status="worker-lost")
        assert ticket.try_resolve(first)
        assert not ticket.try_resolve(second)
        assert ticket.wait(timeout=1.0) == first

    @settings(deadline=None, max_examples=20)
    @given(racers=st.integers(min_value=2, max_value=8))
    def test_concurrent_resolve_exactly_once(self, racers):
        # The satellite property: a dying worker's salvage path and the
        # drain path may race to resolve the same ticket — exactly one
        # wins, and the delivered response is the winner's.
        ticket = Ticket(_request())
        barrier = threading.Barrier(racers)
        wins: list[int] = []
        lock = threading.Lock()

        def racer(rank: int) -> None:
            response = Response(id=str(rank), status="ok")
            barrier.wait()
            if ticket.try_resolve(response):
                with lock:
                    wins.append(rank)

        threads = [
            threading.Thread(target=racer, args=(r,)) for r in range(racers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(wins) == 1
        delivered = ticket.wait(timeout=1.0)
        assert delivered is not None
        assert delivered.id == str(wins[0])


class TestAdmissionQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(max_depth=8)
        for i in range(3):
            queue.submit(_request(rid=str(i)))
        assert [queue.take().request.id for _ in range(3)] == ["0", "1", "2"]

    def test_depth_bound_rejects(self):
        queue = AdmissionQueue(max_depth=2)
        queue.submit(_request())
        queue.submit(_request())
        with pytest.raises(QueueFull, match="depth bound"):
            queue.submit(_request())

    def test_take_timeout(self):
        queue = AdmissionQueue(max_depth=2)
        start = time.monotonic()
        assert queue.take(timeout=0.05) is None
        assert time.monotonic() - start < 2.0

    def test_drain_rejects_new_and_returns_queued(self):
        queue = AdmissionQueue(max_depth=8)
        queue.submit(_request(rid="a"))
        queue.submit(_request(rid="b"))
        abandoned = queue.drain()
        assert [t.request.id for t in abandoned] == ["a", "b"]
        assert queue.depth() == 0
        assert queue.draining
        with pytest.raises(QueueDraining):
            queue.submit(_request())
        # Second drain is a no-op.
        assert queue.drain() == []

    def test_take_returns_none_once_drained_empty(self):
        queue = AdmissionQueue(max_depth=4)
        queue.drain()
        assert queue.take(timeout=5.0) is None  # returns fast, no block

    def test_drain_wakes_blocked_taker(self):
        queue = AdmissionQueue(max_depth=4)
        result: list = ["unset"]

        def taker():
            result[0] = queue.take(timeout=10.0)

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.05)
        queue.drain()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result[0] is None

    def test_take_matching_preserves_order_of_rest(self):
        queue = AdmissionQueue(max_depth=8)
        for rid, n in [("a", 4), ("b", 5), ("c", 4), ("d", 5)]:
            queue.submit(_request(n=n, rid=rid))
        taken = queue.take_matching(lambda req: req.n == 5, limit=10)
        assert [t.request.id for t in taken] == ["b", "d"]
        assert [queue.take().request.id for _ in range(2)] == ["a", "c"]

    def test_on_depth_callback_mirrors_depth(self):
        seen: list[int] = []
        queue = AdmissionQueue(max_depth=4, on_depth=seen.append)
        queue.submit(_request())
        queue.submit(_request())
        queue.take()
        assert seen == [1, 2, 1]

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)


class TestPriorityAdmission:
    def test_interactive_dequeues_before_batch(self):
        queue = AdmissionQueue(max_depth=8)
        queue.submit(_request(rid="b1", priority=PRIORITY_BATCH))
        queue.submit(_request(rid="i1", priority=PRIORITY_INTERACTIVE))
        queue.submit(_request(rid="b2", priority=PRIORITY_BATCH))
        queue.submit(_request(rid="i2", priority=PRIORITY_INTERACTIVE))
        order = [queue.take().request.id for _ in range(4)]
        assert order == ["i1", "i2", "b1", "b2"]

    def test_aged_batch_ticket_bypasses_priority(self):
        queue = AdmissionQueue(max_depth=8, max_bypass_age=0.5)
        old = queue.submit(_request(rid="old-batch", priority=PRIORITY_BATCH))
        _age(old, 10.0)
        queue.submit(_request(rid="fresh-int", priority=PRIORITY_INTERACTIVE))
        # The anti-starvation bound: the aged batch ticket goes first.
        assert queue.take().request.id == "old-batch"
        assert queue.take().request.id == "fresh-int"

    def test_depths_counts_per_class(self):
        queue = AdmissionQueue(max_depth=8)
        queue.submit(_request(priority=PRIORITY_BATCH))
        queue.submit(_request(priority=PRIORITY_INTERACTIVE))
        queue.submit(_request(priority=PRIORITY_BATCH))
        assert queue.depths() == {
            PRIORITY_INTERACTIVE: 1,
            PRIORITY_BATCH: 2,
        }

    def test_interactive_sheds_newest_batch_when_full(self):
        shed: list[Ticket] = []
        queue = AdmissionQueue(max_depth=2, on_shed=shed.append)
        queue.submit(_request(rid="b-old", priority=PRIORITY_BATCH))
        queue.submit(_request(rid="b-new", priority=PRIORITY_BATCH))
        ticket = queue.submit(_request(rid="i", priority=PRIORITY_INTERACTIVE))
        assert ticket.request.id == "i"
        assert [t.request.id for t in shed] == ["b-new"]
        assert queue.depth() == 2
        remaining = [queue.take().request.id for _ in range(2)]
        assert remaining == ["i", "b-old"]

    def test_batch_overflow_still_queue_full(self):
        # Equal-priority saturation never churns queued work.
        queue = AdmissionQueue(max_depth=1)
        queue.submit(_request(rid="b1", priority=PRIORITY_BATCH))
        with pytest.raises(QueueFull, match="depth bound"):
            queue.submit(_request(rid="b2", priority=PRIORITY_BATCH))

    def test_interactive_overflow_with_no_batch_victim_rejects(self):
        queue = AdmissionQueue(max_depth=1)
        queue.submit(_request(rid="i1", priority=PRIORITY_INTERACTIVE))
        with pytest.raises(QueueFull):
            queue.submit(_request(rid="i2", priority=PRIORITY_INTERACTIVE))

    def test_queue_seconds_threshold_triggers_shedding(self):
        shed: list[Ticket] = []
        queue = AdmissionQueue(
            max_depth=64, max_queue_seconds=0.1, on_shed=shed.append
        )
        queue.note_service_time(1.0)  # every queued item ~1s of work
        queue.submit(_request(rid="b", priority=PRIORITY_BATCH))
        assert queue.estimated_queue_seconds() == pytest.approx(1.0)
        # Saturated on estimated wait, nowhere near the depth bound:
        # batch arrivals bounce, interactive sheds its way in.
        with pytest.raises(QueueFull):
            queue.submit(_request(rid="b2", priority=PRIORITY_BATCH))
        queue.submit(_request(rid="i", priority=PRIORITY_INTERACTIVE))
        assert [t.request.id for t in shed] == ["b"]

    def test_service_time_ewma_moves(self):
        queue = AdmissionQueue(max_depth=4)
        queue.note_service_time(1.0)
        queue.note_service_time(2.0)
        queue.submit(_request())
        est = queue.estimated_queue_seconds()
        assert 1.0 < est < 2.0


class TestQuotas:
    def test_token_bucket_spends_and_refills(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        t0 = time.monotonic()
        assert bucket.try_take(t0)
        assert bucket.try_take(t0)
        assert not bucket.try_take(t0)  # burst exhausted
        assert bucket.try_take(t0 + 0.2)  # 0.2s * 10/s = 2 tokens back

    def test_token_bucket_validates(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)

    def test_quota_rejects_chatty_client(self):
        queue = AdmissionQueue(max_depth=64, quota_rate=0.001, quota_burst=2.0)
        queue.submit(_request(rid="1", client_id="alice"))
        queue.submit(_request(rid="2", client_id="alice"))
        with pytest.raises(QuotaExceeded, match="alice"):
            queue.submit(_request(rid="3", client_id="alice"))
        # Distinct clients meter independently; anonymous is unmetered.
        queue.submit(_request(rid="4", client_id="bob"))
        for rid in ("5", "6", "7"):
            queue.submit(_request(rid=rid))

    def test_no_quota_configured_admits_everything(self):
        queue = AdmissionQueue(max_depth=64)
        for i in range(20):
            queue.submit(_request(rid=str(i), client_id="alice"))


class TestTakeMatchingFairness:
    def test_compatible_stream_cannot_starve_aged_incompatible(self):
        # The satellite regression: a stream of compatible (n=4)
        # requests behind an *aged* incompatible (n=5) head must not be
        # swept past it — the FIFO-age bound holds.
        queue = AdmissionQueue(max_depth=16, max_bypass_age=0.5)
        old = queue.submit(_request(n=5, rid="starved"))
        _age(old, 10.0)
        for rid in ("a", "b", "c"):
            queue.submit(_request(n=4, rid=rid))
        taken = queue.take_matching(lambda req: req.n == 4, limit=10)
        assert taken == []  # nothing may overtake the aged head
        assert queue.take().request.id == "starved"
        # With the aged head gone the stream coalesces normally.
        taken = queue.take_matching(lambda req: req.n == 4, limit=10)
        assert [t.request.id for t in taken] == ["a", "b", "c"]

    def test_young_incompatible_head_is_bypassed(self):
        queue = AdmissionQueue(max_depth=16, max_bypass_age=60.0)
        queue.submit(_request(n=5, rid="young"))
        queue.submit(_request(n=4, rid="a"))
        queue.submit(_request(n=4, rid="b"))
        taken = queue.take_matching(lambda req: req.n == 4, limit=10)
        assert [t.request.id for t in taken] == ["a", "b"]
        assert queue.take().request.id == "young"

    def test_sweep_stops_at_aged_ticket_mid_queue(self):
        queue = AdmissionQueue(max_depth=16, max_bypass_age=0.5)
        queue.submit(_request(n=4, rid="a"))
        aged = queue.submit(_request(n=5, rid="aged"))
        _age(aged, 10.0)
        queue.submit(_request(n=4, rid="behind"))
        taken = queue.take_matching(lambda req: req.n == 4, limit=10)
        # "a" is ahead of the aged ticket and may be taken; "behind"
        # must stay queued behind it.
        assert [t.request.id for t in taken] == ["a"]
        assert queue.take().request.id == "aged"
        assert queue.take().request.id == "behind"


class TestBatcher:
    def test_batch_key(self):
        assert batch_key(_request(n=4)) == (4, "cached", "numpy")
        assert batch_key(_request(n=4, formation="legacy")) == (
            4,
            "legacy",
            "numpy",
        )
        assert batch_key(_request(n=4, backend="compiled")) == (
            4,
            "cached",
            "compiled",
        )

    def test_coalesces_same_key(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.0)
        for rid in "abc":
            queue.submit(_request(n=4, rid=rid))
        batch = batcher.next_batch(timeout=1.0)
        assert isinstance(batch, Batch)
        assert batch.key == (4, "cached", "numpy")
        assert [t.request.id for t in batch.tickets] == ["a", "b", "c"]
        assert batch.size == 3 and batch.n == 4 and batch.formation == "cached"
        assert batch.backend == "numpy"

    def test_different_keys_stay_separate(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.0)
        queue.submit(_request(n=4, rid="a"))
        queue.submit(_request(n=5, rid="x"))
        queue.submit(_request(n=4, rid="b"))
        queue.submit(_request(n=4, formation="legacy", rid="c"))
        first = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in first.tickets] == ["a", "b"]
        second = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in second.tickets] == ["x"]
        third = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in third.tickets] == ["c"]
        assert third.formation == "legacy"

    def test_backend_splits_batches(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.0)
        queue.submit(_request(n=4, rid="a"))
        queue.submit(_request(n=4, backend="compiled", rid="x"))
        queue.submit(_request(n=4, rid="b"))
        first = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in first.tickets] == ["a", "b"]
        assert first.backend == "numpy"
        second = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in second.tickets] == ["x"]
        assert second.backend == "compiled"

    def test_max_batch_cap(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=2, linger=0.0)
        for rid in "abcd":
            queue.submit(_request(n=4, rid=rid))
        assert batcher.next_batch(timeout=1.0).size == 2
        assert batcher.next_batch(timeout=1.0).size == 2

    def test_linger_sweeps_late_arrivals(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.5)
        queue.submit(_request(n=4, rid="early"))

        def late_submitter():
            time.sleep(0.05)
            queue.submit(_request(n=4, rid="late"))

        thread = threading.Thread(target=late_submitter)
        thread.start()
        batch = batcher.next_batch(timeout=1.0)
        thread.join()
        assert [t.request.id for t in batch.tickets] == ["early", "late"]

    def test_timeout_returns_none(self):
        queue = AdmissionQueue(max_depth=4)
        batcher = Batcher(queue, max_batch=4, linger=0.0)
        assert batcher.next_batch(timeout=0.05) is None

    def test_bad_knobs_rejected(self):
        queue = AdmissionQueue(max_depth=4)
        with pytest.raises(ValueError):
            Batcher(queue, max_batch=0)
        with pytest.raises(ValueError):
            Batcher(queue, linger=-1.0)
