"""Admission-queue and batcher unit tests (no sockets, no engines)."""

import threading
import time

import pytest

from repro.serve.batcher import Batch, Batcher, batch_key
from repro.serve.protocol import Request, Response
from repro.serve.queue import AdmissionQueue, QueueDraining, QueueFull, Ticket


def _request(
    n: int = 4,
    formation: str = "cached",
    backend: str = "numpy",
    rid: str | None = None,
):
    return Request(
        z=[[1000.0] * n for _ in range(n)],
        formation=formation,
        backend=backend,
        id=rid,
    )


class TestTicket:
    def test_resolve_wakes_waiter(self):
        ticket = Ticket(_request())
        response = Response(id="x", status="ok")

        def resolver():
            time.sleep(0.02)
            ticket.resolve(response)

        thread = threading.Thread(target=resolver)
        thread.start()
        assert ticket.wait(timeout=5.0) == response
        thread.join()
        assert ticket.resolved

    def test_wait_timeout_returns_none(self):
        assert Ticket(_request()).wait(timeout=0.01) is None

    def test_double_resolve_is_an_error(self):
        ticket = Ticket(_request())
        ticket.resolve(Response(id="x", status="ok"))
        with pytest.raises(RuntimeError, match="resolved twice"):
            ticket.resolve(Response(id="x", status="ok"))


class TestAdmissionQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(max_depth=8)
        for i in range(3):
            queue.submit(_request(rid=str(i)))
        assert [queue.take().request.id for _ in range(3)] == ["0", "1", "2"]

    def test_depth_bound_rejects(self):
        queue = AdmissionQueue(max_depth=2)
        queue.submit(_request())
        queue.submit(_request())
        with pytest.raises(QueueFull, match="depth bound"):
            queue.submit(_request())

    def test_take_timeout(self):
        queue = AdmissionQueue(max_depth=2)
        start = time.monotonic()
        assert queue.take(timeout=0.05) is None
        assert time.monotonic() - start < 2.0

    def test_drain_rejects_new_and_returns_queued(self):
        queue = AdmissionQueue(max_depth=8)
        queue.submit(_request(rid="a"))
        queue.submit(_request(rid="b"))
        abandoned = queue.drain()
        assert [t.request.id for t in abandoned] == ["a", "b"]
        assert queue.depth() == 0
        assert queue.draining
        with pytest.raises(QueueDraining):
            queue.submit(_request())
        # Second drain is a no-op.
        assert queue.drain() == []

    def test_take_returns_none_once_drained_empty(self):
        queue = AdmissionQueue(max_depth=4)
        queue.drain()
        assert queue.take(timeout=5.0) is None  # returns fast, no block

    def test_drain_wakes_blocked_taker(self):
        queue = AdmissionQueue(max_depth=4)
        result: list = ["unset"]

        def taker():
            result[0] = queue.take(timeout=10.0)

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.05)
        queue.drain()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result[0] is None

    def test_take_matching_preserves_order_of_rest(self):
        queue = AdmissionQueue(max_depth=8)
        for rid, n in [("a", 4), ("b", 5), ("c", 4), ("d", 5)]:
            queue.submit(_request(n=n, rid=rid))
        taken = queue.take_matching(lambda req: req.n == 5, limit=10)
        assert [t.request.id for t in taken] == ["b", "d"]
        assert [queue.take().request.id for _ in range(2)] == ["a", "c"]

    def test_on_depth_callback_mirrors_depth(self):
        seen: list[int] = []
        queue = AdmissionQueue(max_depth=4, on_depth=seen.append)
        queue.submit(_request())
        queue.submit(_request())
        queue.take()
        assert seen == [1, 2, 1]

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)


class TestBatcher:
    def test_batch_key(self):
        assert batch_key(_request(n=4)) == (4, "cached", "numpy")
        assert batch_key(_request(n=4, formation="legacy")) == (
            4,
            "legacy",
            "numpy",
        )
        assert batch_key(_request(n=4, backend="compiled")) == (
            4,
            "cached",
            "compiled",
        )

    def test_coalesces_same_key(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.0)
        for rid in "abc":
            queue.submit(_request(n=4, rid=rid))
        batch = batcher.next_batch(timeout=1.0)
        assert isinstance(batch, Batch)
        assert batch.key == (4, "cached", "numpy")
        assert [t.request.id for t in batch.tickets] == ["a", "b", "c"]
        assert batch.size == 3 and batch.n == 4 and batch.formation == "cached"
        assert batch.backend == "numpy"

    def test_different_keys_stay_separate(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.0)
        queue.submit(_request(n=4, rid="a"))
        queue.submit(_request(n=5, rid="x"))
        queue.submit(_request(n=4, rid="b"))
        queue.submit(_request(n=4, formation="legacy", rid="c"))
        first = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in first.tickets] == ["a", "b"]
        second = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in second.tickets] == ["x"]
        third = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in third.tickets] == ["c"]
        assert third.formation == "legacy"

    def test_backend_splits_batches(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.0)
        queue.submit(_request(n=4, rid="a"))
        queue.submit(_request(n=4, backend="compiled", rid="x"))
        queue.submit(_request(n=4, rid="b"))
        first = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in first.tickets] == ["a", "b"]
        assert first.backend == "numpy"
        second = batcher.next_batch(timeout=1.0)
        assert [t.request.id for t in second.tickets] == ["x"]
        assert second.backend == "compiled"

    def test_max_batch_cap(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=2, linger=0.0)
        for rid in "abcd":
            queue.submit(_request(n=4, rid=rid))
        assert batcher.next_batch(timeout=1.0).size == 2
        assert batcher.next_batch(timeout=1.0).size == 2

    def test_linger_sweeps_late_arrivals(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = Batcher(queue, max_batch=8, linger=0.5)
        queue.submit(_request(n=4, rid="early"))

        def late_submitter():
            time.sleep(0.05)
            queue.submit(_request(n=4, rid="late"))

        thread = threading.Thread(target=late_submitter)
        thread.start()
        batch = batcher.next_batch(timeout=1.0)
        thread.join()
        assert [t.request.id for t in batch.tickets] == ["early", "late"]

    def test_timeout_returns_none(self):
        queue = AdmissionQueue(max_depth=4)
        batcher = Batcher(queue, max_batch=4, linger=0.0)
        assert batcher.next_batch(timeout=0.05) is None

    def test_bad_knobs_rejected(self):
        queue = AdmissionQueue(max_depth=4)
        with pytest.raises(ValueError):
            Batcher(queue, max_batch=0)
        with pytest.raises(ValueError):
            Batcher(queue, linger=-1.0)
