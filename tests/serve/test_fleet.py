"""Fleet unit + integration tests: addresses, sharding, TCP, rerouting.

The cheap layers get exhaustive unit coverage (address classification,
the consistent-hash ring); the fleet itself runs with in-process
shards (``processes=False``) so the suite stays fork-free and fast,
plus one fork-gated test proving real shard processes respawn after a
SIGKILL and requests reroute meanwhile.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import run_campaign
from repro.parallel.pymp import fork_available
from repro.serve import (
    STATUS_DRAINING,
    STATUS_OK,
    STATUS_QUOTA,
    FleetConfig,
    ServeConnectionError,
    ShardMap,
    SolveClient,
    SolveFleet,
)
from repro.serve.protocol import (
    Response,
    connect_address,
    format_address,
    parse_address,
    recv_message,
    send_message,
)


class TestParseAddress:
    def test_host_port_is_tcp(self):
        assert parse_address("127.0.0.1:7433") == ("tcp", ("127.0.0.1", 7433))

    def test_explicit_scheme(self):
        assert parse_address("tcp://box:9000") == ("tcp", ("box", 9000))

    def test_empty_host_defaults_to_loopback(self):
        assert parse_address(":7433") == ("tcp", ("127.0.0.1", 7433))
        assert parse_address("tcp://:9000") == ("tcp", ("127.0.0.1", 9000))

    def test_paths_are_unix(self):
        assert parse_address("/tmp/parma.sock") == ("unix", "/tmp/parma.sock")
        assert parse_address("relative.sock") == ("unix", "relative.sock")

    def test_slash_beats_colon(self):
        # A path may legally contain a colon; the slash disambiguates.
        assert parse_address("/tmp/weird:1234") == ("unix", "/tmp/weird:1234")

    def test_bound_tuple_is_tcp(self):
        # getsockname() form, as held by SolveService.tcp_address.
        assert parse_address(("127.0.0.1", 33183)) == (
            "tcp",
            ("127.0.0.1", 33183),
        )

    def test_malformed_explicit_tcp_rejected(self):
        with pytest.raises(ValueError, match="malformed tcp"):
            parse_address("tcp://nocolon")

    def test_format_round_trip(self):
        assert format_address("tcp://:9000") == "127.0.0.1:9000"
        assert format_address(("10.0.0.5", 80)) == "10.0.0.5:80"
        assert format_address("/tmp/parma.sock") == "/tmp/parma.sock"


class TestShardMap:
    def test_deterministic_across_instances(self):
        a, b = ShardMap(4), ShardMap(4)
        for n in (8, 10, 12, 16, 24):
            for formation in ("geodesic", "direct"):
                key = a.route_key(n, formation)
                assert a.shard_for(n, formation) == b.shard_for(n, formation)
                assert list(a.preference(key)) == list(b.preference(key))

    def test_preference_covers_every_shard_once(self):
        ring = ShardMap(5)
        key = ring.route_key(12, "geodesic")
        order = list(ring.preference(key))
        assert sorted(order) == list(range(5))
        assert order[0] == ring.shard_for(12, "geodesic")

    def test_keys_spread_over_shards(self):
        ring = ShardMap(4)
        hit = {ring.shard_for(n, "geodesic") for n in range(4, 64)}
        assert hit == set(range(4))

    def test_resize_moves_a_minority_of_keys(self):
        # Consistent hashing's point: growing 4 -> 5 shards should
        # remap roughly 1/5 of keys, not reshuffle everything.
        before, after = ShardMap(4), ShardMap(5)
        keys = [(n, f) for n in range(4, 104) for f in ("geodesic", "direct")]
        moved = sum(
            before.shard_for(n, f) != after.shard_for(n, f) for n, f in keys
        )
        assert moved < len(keys) // 2

    def test_dead_shard_skipped(self):
        ring = ShardMap(3)
        assert ring.shard_for(8, "geodesic", alive={1}) == 1

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardMap(0)


def _scripted_tcp_server(steps):
    """A real TCP listener whose connections run ``steps`` in order.

    Each step handles one accepted connection; the listener closes
    after the last.  Returns (address-string, connection-counter).
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    host, port = listener.getsockname()[:2]
    seen = []

    def serve():
        for step in steps:
            conn, _ = listener.accept()
            seen.append(1)
            try:
                step(conn)
            finally:
                conn.close()
        listener.close()

    threading.Thread(target=serve, daemon=True).start()
    return f"{host}:{port}", seen


def _z(n: int = 4) -> list:
    rng = np.random.default_rng(7)
    return rng.uniform(2000.0, 11000.0, size=(n, n)).tolist()


class TestClientOverTcp:
    def test_connect_refused_names_the_address(self):
        # Bind-then-close guarantees a port nothing listens on.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()
        client = SolveClient(f"{host}:{port}", timeout=5.0)
        with pytest.raises(ServeConnectionError) as err:
            client.ping()
        assert f"{host}:{port}" in str(err.value)
        assert "parma fleet" in str(err.value)

    def test_retry_reconnects_after_dropped_connection(self):
        def drop(conn):
            pass  # close without replying: mid-stream failure

        def answer(conn):
            message = recv_message(conn)
            send_message(
                conn,
                Response(
                    id=str(message.get("id") or ""),
                    status=STATUS_OK,
                    summary="ok",
                ).to_dict(),
            )

        address, seen = _scripted_tcp_server([drop, answer])
        client = SolveClient(address, timeout=5.0, retries=2, backoff=0.01)
        response = client.solve(_z())
        assert response.ok
        assert len(seen) == 2  # first connection dropped, second answered

    def test_connect_address_opens_tcp(self):
        def answer(conn):
            send_message(conn, {"kind": "pong"})

        address, _ = _scripted_tcp_server([answer])
        sock = connect_address(address, timeout=5.0)
        try:
            assert sock.family == socket.AF_INET
        finally:
            sock.close()


@pytest.fixture(scope="module")
def measurement():
    run = run_campaign(paper_like_spec(8, seed=7), seed=7)
    return run.campaign.measurements[0]


@pytest.fixture()
def fleet(tmp_path):
    """A two-shard in-process fleet behind a TCP front on port 0."""
    config = FleetConfig(
        listen="127.0.0.1:0",
        results_dir=tmp_path / "fleet",
        shards=2,
        linger=0.0,
        processes=False,
    )
    f = SolveFleet(config)
    f.start()
    client = SolveClient(format_address(f.tcp_address), timeout=60.0)
    assert client.wait_ready(timeout=10.0)
    yield f, client
    f.stop()


class TestFleetInProcess:
    def test_ping_reports_fleet_shape(self, fleet):
        _, client = fleet
        pong = client.ping()
        assert pong["fleet"]["shards"] == 2
        assert sorted(pong["fleet"]["alive"]) == [0, 1]

    def test_solve_bit_identical_to_standalone(self, fleet, measurement):
        _, client = fleet
        response = client.solve(
            measurement.z_kohm,
            voltage=measurement.voltage,
            hour=measurement.hour,
            want_field=True,
        )
        assert response.status == STATUS_OK
        reference = ParmaEngine(
            strategy="single", threshold_sigmas=3.0
        ).parametrize(measurement)
        assert np.array_equal(response.resistance_array(), reference.resistance)

    def test_same_key_routes_sticky(self, fleet, measurement):
        f, client = fleet
        for _ in range(3):
            assert client.solve(measurement.z_kohm).ok
        stats = client.stats()
        routed = stats["fleet"]["routed"]
        # One (n, formation) key -> one home shard; the other stays cold.
        assert sorted(routed) in ([0, 3], [3, 0])

    def test_stats_aggregate_across_shards(self, fleet, measurement):
        _, client = fleet
        assert client.solve(measurement.z_kohm).ok
        stats = client.stats()
        assert stats["executor"] == "fleet"
        assert len(stats["shards"]) == 2
        assert stats["requests"] >= 1
        assert "queue_depths" in stats

    def test_drain_rejects_retriably_and_wait_completes(self, fleet):
        f, client = fleet
        f.request_drain()
        response = client.solve(_z(8))
        assert response.status == STATUS_DRAINING
        assert response.retriable
        assert f.wait(timeout=10.0)

    def test_front_quota_rejects_with_retriable_status(
        self, tmp_path, measurement
    ):
        config = FleetConfig(
            listen="127.0.0.1:0",
            results_dir=tmp_path / "quota-fleet",
            shards=2,
            linger=0.0,
            processes=False,
            quota_rate=0.001,
            quota_burst=1.0,
        )
        f = SolveFleet(config)
        f.start()
        try:
            client = SolveClient(format_address(f.tcp_address), timeout=60.0)
            assert client.wait_ready(timeout=10.0)
            first = client.solve(measurement.z_kohm, client_id="greedy")
            second = client.solve(measurement.z_kohm, client_id="greedy")
            assert first.ok
            assert second.status == STATUS_QUOTA
            assert second.retriable
        finally:
            f.stop()


@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestFleetProcesses:
    def test_shard_kill_reroutes_and_respawns(self, tmp_path, measurement):
        config = FleetConfig(
            listen="127.0.0.1:0",
            results_dir=tmp_path / "proc-fleet",
            shards=2,
            linger=0.0,
            processes=True,
            term_grace=0.2,
        )
        f = SolveFleet(config)
        f.start()
        try:
            client = SolveClient(
                format_address(f.tcp_address),
                timeout=60.0,
                retries=3,
                backoff=0.05,
            )
            assert client.wait_ready(timeout=10.0)
            assert client.solve(measurement.z_kohm, id="before").ok

            home = f.map.shard_for(8, "geodesic")
            victim = f._shards[home].pid
            assert victim is not None
            os.kill(victim, signal.SIGKILL)

            # The next solve must land despite the dead home shard —
            # either rerouted to the survivor or served by the respawn.
            after = client.solve(measurement.z_kohm, id="after")
            assert after.ok

            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = client.stats()
                if (
                    stats["fleet"]["shard_respawns"] >= 1
                    and sorted(stats["fleet"]["alive"]) == [0, 1]
                ):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("killed shard never respawned")
            reference = ParmaEngine(
                strategy="single", threshold_sigmas=3.0
            ).parametrize(measurement)
            assert np.array_equal(
                after.resistance_array(), reference.resistance
            )
        finally:
            f.stop()
