"""In-process :class:`SolveService` tests: one service fixture, real sockets."""

import json
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import run_campaign
from repro.observe import Observer
from repro.observe.manifest import load_manifest, validate_manifest
from repro.serve import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    STATUS_DRAINING,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_QUEUE_FULL,
    STATUS_QUOTA,
    ServeConnectionError,
    ServiceConfig,
    SolveClient,
    SolveService,
)
from repro.serve.protocol import recv_message, send_message


@pytest.fixture()
def measurement():
    run = run_campaign(paper_like_spec(8, seed=7), seed=7)
    return run.campaign.measurements[0]


@pytest.fixture()
def service(tmp_path):
    """A started service on a tmp socket; stopped at teardown."""
    obs = Observer()
    config = ServiceConfig(
        socket_path=tmp_path / "parma.sock",
        results_dir=tmp_path / "results",
        max_queue_depth=8,
        max_batch=4,
        linger=0.0,
        observer=obs,
    )
    svc = SolveService(config)
    svc.start()
    client = SolveClient(config.socket_path, timeout=60.0)
    assert client.wait_ready(timeout=10.0)
    yield svc, client, obs
    svc.stop()


def _counter(obs: Observer, name: str) -> float:
    return obs.metrics.snapshot().get(name, {}).get("value", 0.0)


class TestSolvePath:
    def test_solve_ok_with_manifest(self, service, measurement):
        svc, client, obs = service
        response = client.solve(
            measurement.z_kohm, voltage=measurement.voltage, hour=measurement.hour
        )
        assert response.ok and response.exit_status == 0
        assert response.batch_size >= 1
        assert "Parma 8x8" in response.summary
        manifest = load_manifest(response.manifest_path)
        validate_manifest(manifest)
        assert manifest["config"]["command"] == "serve"
        assert manifest["config"]["n"] == 8
        assert Path(response.manifest_path).parent.name.startswith("req-")

    def test_result_bit_identical_to_standalone_engine(
        self, service, measurement
    ):
        from repro.core.engine import ParmaEngine

        svc, client, obs = service
        response = client.solve(
            measurement.z_kohm, voltage=measurement.voltage, hour=measurement.hour
        )
        reference = ParmaEngine(
            strategy="single", threshold_sigmas=3.0
        ).parametrize(measurement)
        assert np.array_equal(
            response.resistance_array(), reference.resistance
        )
        assert response.num_regions == reference.detection.num_regions

    def test_want_field_false_omits_resistance(self, service, measurement):
        svc, client, obs = service
        response = client.solve(measurement.z_kohm, want_field=False)
        assert response.ok
        assert response.resistance is None

    def test_request_id_is_honoured_and_generated(self, service, measurement):
        svc, client, obs = service
        named = client.solve(measurement.z_kohm, id="my-req")
        assert named.id == "my-req"
        assert "req-my-req" in named.manifest_path
        anonymous = client.solve(measurement.z_kohm)
        assert anonymous.id  # server-assigned
        assert anonymous.id != named.id

    def test_serve_metrics_move(self, service, measurement):
        svc, client, obs = service
        before = _counter(obs, "serve.requests")
        client.solve(measurement.z_kohm)
        snapshot = obs.metrics.snapshot()
        assert snapshot["serve.requests"]["value"] == before + 1
        assert snapshot["serve.batches"]["value"] >= 1
        assert snapshot["serve.responses.ok"]["value"] >= 1
        assert snapshot["serve.batch_size"]["count"] >= 1
        assert snapshot["serve.queue_wait_seconds"]["count"] >= 1
        # Per-request registries fold into the service registry.
        assert snapshot["formation.runs"]["value"] >= 1

    def test_deadline_maps_to_94(self, service, measurement):
        svc, client, obs = service
        response = client.solve(measurement.z_kohm, deadline=1e-9)
        assert response.status == "deadline-exceeded"
        assert response.exit_status == 94
        assert response.manifest_path is not None

    def test_validation_failure_is_failed_not_crash(self, service):
        svc, client, obs = service
        dirty = np.full((6, 6), 5000.0)
        dirty[2, 3] = float("nan")
        response = client.solve(dirty.tolist(), validate="strict")
        assert response.status == "failed"
        assert response.exit_status == 1
        assert "z_kohm[" in response.error

    def test_repair_policy_runs_server_side(self, service):
        svc, client, obs = service
        dirty = np.full((6, 6), 5000.0)
        dirty[2, 3] = float("nan")
        response = client.solve(dirty.tolist(), validate="repair")
        assert response.ok
        assert any("repaired" in event for event in response.events)


class TestAdmissionAndProtocolEdges:
    def test_invalid_shape_rejected_without_admission(self, service):
        svc, client, obs = service
        response = client.solve([[1.0, 2.0]])
        assert response.status == STATUS_INVALID
        assert response.exit_status == 2
        assert _counter(obs, "serve.rejected.invalid") >= 1

    def test_unknown_kind_rejected(self, service):
        svc, client, obs = service
        reply = client._roundtrip({"kind": "frobnicate", "id": "x"})
        assert reply["status"] == STATUS_INVALID

    def test_undecodable_frame_gets_invalid_response(self, service):
        svc, client, obs = service
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(str(svc.config.socket_path))
            sock.sendall((4).to_bytes(4, "big") + b"!!!!")
            reply = recv_message(sock)
            assert reply["status"] == STATUS_INVALID
        finally:
            sock.close()

    def test_ping_and_stats(self, service, measurement):
        svc, client, obs = service
        pong = client.ping()
        assert pong["kind"] == "pong" and not pong["draining"]
        client.solve(measurement.z_kohm)
        stats = client.stats()
        assert stats["kind"] == "stats"
        assert stats["requests"] >= 1
        assert stats["metrics"]["serve.responses.ok"]["value"] >= 1

    def test_stats_carries_server_clock(self, service, measurement):
        # Pollers (`parma runs watch`) difference successive replies to
        # turn counters into rates; that needs a server-side clock.
        svc, client, obs = service
        first = client.stats()
        assert first["server_monotonic"] > 0.0
        assert first["uptime_seconds"] >= 0.0
        time.sleep(0.01)
        second = client.stats()
        assert second["server_monotonic"] > first["server_monotonic"]
        assert second["uptime_seconds"] > first["uptime_seconds"]
        assert client.ping()["uptime_seconds"] >= first["uptime_seconds"]

    def test_stats_reports_resilience_telemetry(self, service, measurement):
        svc, client, obs = service
        client.solve(measurement.z_kohm)
        stats = client.stats()
        assert stats["executor"] in {"thread", "subprocess"}
        assert set(stats["queue_depths"]) == {
            PRIORITY_INTERACTIVE,
            PRIORITY_BATCH,
        }
        assert stats["estimated_queue_seconds"] >= 0.0
        assert set(stats["shed"]) == {PRIORITY_INTERACTIVE, PRIORITY_BATCH}
        assert stats["quota_rejections"] == 0
        assert stats["idempotent_hits"] == 0
        assert stats["worker_respawns"] == 0
        assert stats["requests_salvaged"] == 0

    def test_priority_request_accepted_end_to_end(self, service, measurement):
        svc, client, obs = service
        response = client.solve(
            measurement.z_kohm,
            priority=PRIORITY_INTERACTIVE,
            client_id="tester",
        )
        assert response.ok

    def test_unknown_priority_rejected_as_invalid(self, service, measurement):
        svc, client, obs = service
        payload = {
            "kind": "solve",
            "z": np.asarray(measurement.z_kohm).tolist(),
            "priority": "urgent",
        }
        reply = client._roundtrip(payload)
        assert reply["status"] == STATUS_INVALID
        assert "priority" in reply["error"]

    def test_queue_full_is_retriable(self, tmp_path, measurement):
        # A dedicated tiny-queue service whose worker is wedged by a
        # slow request, so followers overflow the depth-1 queue.
        obs = Observer()
        config = ServiceConfig(
            socket_path=tmp_path / "tiny.sock",
            results_dir=tmp_path / "tiny-results",
            max_queue_depth=1,
            max_batch=1,
            linger=0.0,
            observer=obs,
        )
        svc = SolveService(config)
        svc.start()
        try:
            client = SolveClient(config.socket_path, timeout=60.0)
            assert client.wait_ready(timeout=10.0)
            z = measurement.z_kohm

            statuses: list[str] = []
            lock = threading.Lock()

            def submit():
                response = client.solve(z)
                with lock:
                    statuses.append(response.status)

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert len(statuses) == 6
            assert set(statuses) <= {STATUS_OK, STATUS_QUEUE_FULL}
            assert STATUS_OK in statuses
            if STATUS_QUEUE_FULL in statuses:
                assert _counter(obs, "serve.rejected.queue_full") >= 1
        finally:
            svc.stop()


class TestQuotasAndIdempotency:
    def test_quota_rejection_is_retriable(self, tmp_path, measurement):
        # Effectively-zero refill with burst 1: the second request from
        # the same client id must bounce with the quota status.
        obs = Observer()
        config = ServiceConfig(
            socket_path=tmp_path / "quota.sock",
            results_dir=tmp_path / "quota-results",
            linger=0.0,
            quota_rate=1e-6,
            quota_burst=1.0,
            observer=obs,
        )
        svc = SolveService(config)
        svc.start()
        try:
            client = SolveClient(config.socket_path, timeout=60.0)
            assert client.wait_ready(timeout=10.0)
            first = client.solve(measurement.z_kohm, client_id="greedy")
            assert first.ok
            second = client.solve(measurement.z_kohm, client_id="greedy")
            assert second.status == STATUS_QUOTA
            assert second.retriable and second.exit_status == 75
            # Anonymous requests are exempt from quotas.
            assert client.solve(measurement.z_kohm).ok
            stats = client.stats()
            assert stats["quota_rejections"] == 1
            assert _counter(obs, "serve.rejected.quota") == 1
        finally:
            svc.stop()

    def test_duplicate_id_returns_cached_response(self, service, measurement):
        svc, client, obs = service
        first = client.solve(measurement.z_kohm, id="dup-key")
        assert first.ok
        again = client.solve(measurement.z_kohm, id="dup-key")
        assert again.ok
        # Same solve, not a re-execution: manifests are written once.
        assert again.manifest_path == first.manifest_path
        assert again.elapsed_seconds == first.elapsed_seconds
        assert _counter(obs, "serve.idempotent_hits") == 1
        assert client.stats()["idempotent_hits"] == 1

    def test_retriable_responses_are_not_cached(self, service, measurement):
        svc, client, obs = service
        svc.request_drain()
        rejected = client.solve(measurement.z_kohm, id="while-draining")
        assert rejected.status == STATUS_DRAINING
        assert _counter(obs, "serve.idempotent_hits") == 0


class TestDrain:
    def test_drain_rejects_new_submissions(self, service, measurement):
        svc, client, obs = service
        svc.request_drain()
        response = client.solve(measurement.z_kohm)
        assert response.status == STATUS_DRAINING
        assert response.retriable and response.exit_status == 75

    def test_drain_message_triggers_drain(self, service):
        svc, client, obs = service
        reply = client.drain()
        assert reply["kind"] == "draining"
        assert svc.draining
        assert svc.wait(timeout=10.0)

    def test_stop_removes_socket(self, tmp_path):
        config = ServiceConfig(
            socket_path=tmp_path / "gone.sock",
            results_dir=tmp_path / "gone-results",
        )
        svc = SolveService(config)
        svc.start()
        assert config.socket_path.exists()
        svc.stop()
        assert not config.socket_path.exists()
        with pytest.raises(ServeConnectionError):
            SolveClient(config.socket_path).ping()

    def test_start_rebinds_over_stale_socket(self, tmp_path):
        stale = tmp_path / "stale.sock"
        holder = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        holder.bind(str(stale))
        holder.close()  # dead instance leaves the file behind
        assert stale.exists()
        svc = SolveService(
            ServiceConfig(socket_path=stale, results_dir=tmp_path / "r")
        )
        svc.start()
        try:
            assert SolveClient(stale).wait_ready(timeout=10.0)
        finally:
            svc.stop()

    def test_double_start_is_an_error(self, service):
        svc, client, obs = service
        with pytest.raises(RuntimeError, match="already started"):
            svc.start()


class TestCatalogIngest:
    def test_requests_land_in_catalog(self, tmp_path, measurement):
        from repro.observe.catalog import Catalog

        db = tmp_path / "cat.db"
        obs = Observer()
        config = ServiceConfig(
            socket_path=tmp_path / "cat.sock",
            results_dir=tmp_path / "results",
            linger=0.0,
            catalog_path=db,
            observer=obs,
        )
        svc = SolveService(config)
        svc.start()
        try:
            client = SolveClient(config.socket_path, timeout=60.0)
            assert client.wait_ready(timeout=10.0)
            response = client.solve(
                measurement.z_kohm,
                voltage=measurement.voltage,
                hour=measurement.hour,
            )
            assert response.ok
        finally:
            svc.stop()
        assert _counter(obs, "serve.catalog.ingested") == 1
        with Catalog(db, readonly=True) as catalog:
            rows = catalog.list_runs()
        assert len(rows) == 1
        assert rows[0]["kind"] == "serve-request"
        assert rows[0]["status"] == "ok"
        assert rows[0]["n"] == 8
