"""Executor-pool unit tests: forked workers, supervision, salvage.

These run real forks and real (tiny) solves, but no service socket:
tickets go straight into :meth:`ExecutorPool.run_batch`, which is the
exact path the service dispatchers use.
"""

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.observe import Observer
from repro.parallel.pymp import fork_available
from repro.resilience.faults import FaultPlan
from repro.serve.executor import ExecutorPool
from repro.serve.protocol import STATUS_OK, STATUS_WORKER_LOST, Request
from repro.serve.queue import Ticket

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="executor pool requires os.fork"
)


def _z(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(2000.0, 11000.0, size=(n, n))


def _tickets(count: int, n: int = 6) -> list[Ticket]:
    return [
        Ticket(Request(z=_z(n, seed=i).tolist(), id=f"req-{i}"))
        for i in range(count)
    ]


def _pool(tmp_path, **kwargs) -> ExecutorPool:
    kwargs.setdefault("observer", Observer())
    kwargs.setdefault("stall_timeout", 10.0)
    kwargs.setdefault("term_grace", 0.2)
    return ExecutorPool(1, tmp_path / "results", **kwargs)


class TestHappyPath:
    def test_batch_resolves_bit_identical_to_standalone(self, tmp_path):
        pool = _pool(tmp_path)
        pool.start()
        try:
            tickets = _tickets(3)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        engine = ParmaEngine(strategy="single", threshold_sigmas=3.0)
        for i, ticket in enumerate(tickets):
            response = ticket.wait(timeout=1.0)
            assert response is not None and response.status == STATUS_OK
            expected = engine.parametrize(_z(6, seed=i)).resistance
            assert np.array_equal(response.resistance_array(), expected)
        assert pool.respawns == 0 and pool.salvaged == 0

    def test_manifests_land_in_results_dir(self, tmp_path):
        pool = _pool(tmp_path)
        pool.start()
        try:
            tickets = _tickets(1)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        response = tickets[0].wait(timeout=1.0)
        assert response.manifest_path is not None
        assert (tmp_path / "results" / "req-req-0" / "manifest.json").exists()

    def test_metrics_snapshot_back_to_parent(self, tmp_path):
        observer = Observer()
        pool = _pool(tmp_path, observer=observer)
        pool.start()
        try:
            pool.run_batch(0, _tickets(2))
        finally:
            pool.stop()
        snapshot = observer.metrics.snapshot()
        assert snapshot["serve.responses.ok"]["value"] == 2.0


class TestWorkerLoss:
    def test_kill_mid_batch_salvages_onto_respawn(self, tmp_path):
        observer = Observer()
        pool = _pool(
            tmp_path,
            observer=observer,
            faults=FaultPlan(serve_kill_requests=(1,)),
        )
        pool.start()
        try:
            tickets = _tickets(3)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        engine = ParmaEngine(strategy="single", threshold_sigmas=3.0)
        for i, ticket in enumerate(tickets):
            response = ticket.wait(timeout=1.0)
            assert response is not None and response.status == STATUS_OK
            expected = engine.parametrize(_z(6, seed=i)).resistance
            assert np.array_equal(response.resistance_array(), expected)
        assert pool.respawns == 1
        # Members 1 and 2 were unresolved when the child died at its
        # second request; member 0's result had already landed.
        assert pool.salvaged == 2
        snapshot = observer.metrics.snapshot()
        assert snapshot["serve.worker_respawns"]["value"] == 1.0
        assert snapshot["serve.requests_salvaged"]["value"] == 2.0
        assert snapshot["serve.worker_lost"]["value"] == 1.0

    def test_salvage_exhaustion_answers_worker_lost(self, tmp_path):
        pool = _pool(
            tmp_path,
            max_salvage=1,
            faults=FaultPlan(
                serve_kill_requests=(0,), serve_kill_generations=99
            ),
        )
        pool.start()
        try:
            tickets = _tickets(1)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        response = tickets[0].wait(timeout=1.0)
        assert response is not None
        assert response.status == STATUS_WORKER_LOST
        assert response.retriable
        assert pool.respawns >= 1

    def test_hang_is_reclaimed_by_stall_watchdog(self, tmp_path):
        pool = _pool(
            tmp_path,
            stall_timeout=1.0,
            faults=FaultPlan(serve_hang_requests=(0,)),
        )
        pool.start()
        try:
            tickets = _tickets(1)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        response = tickets[0].wait(timeout=1.0)
        assert response is not None and response.status == STATUS_OK
        assert pool.respawns == 1 and pool.salvaged == 1

    def test_corrupt_frame_treated_as_loss(self, tmp_path):
        pool = _pool(tmp_path, faults=FaultPlan(serve_corrupt_frames=(0,)))
        pool.start()
        try:
            tickets = _tickets(1)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        response = tickets[0].wait(timeout=1.0)
        assert response is not None and response.status == STATUS_OK
        assert pool.respawns == 1

    def test_dropped_connection_treated_as_loss(self, tmp_path):
        pool = _pool(tmp_path, faults=FaultPlan(serve_drop_connections=(0,)))
        pool.start()
        try:
            tickets = _tickets(1)
            pool.run_batch(0, tickets)
        finally:
            pool.stop()
        response = tickets[0].wait(timeout=1.0)
        assert response is not None and response.status == STATUS_OK
        assert pool.respawns == 1

    def test_deadline_answered_inside_child(self, tmp_path):
        # A tight-but-nonzero budget: the child's own engine raises
        # DeadlineExceeded and answers status deadline-exceeded — the
        # worker is NOT killed for it.
        pool = _pool(tmp_path)
        pool.start()
        try:
            ticket = Ticket(
                Request(z=_z(12).tolist(), id="dl", deadline=1e-9)
            )
            pool.run_batch(0, [ticket])
        finally:
            pool.stop()
        response = ticket.wait(timeout=1.0)
        assert response is not None
        assert response.status == "deadline-exceeded"
        assert pool.respawns == 0
