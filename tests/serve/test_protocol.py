"""Wire-protocol unit tests: framing, schema, status/exit mapping."""

import socket

import numpy as np
import pytest

from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    PRIORITY_BATCH,
    PRIORITY_CLASSES,
    PRIORITY_INTERACTIVE,
    RETRIABLE_EXIT_CODE,
    RETRIABLE_STATUSES,
    STATUS_DEADLINE,
    STATUS_DRAINING,
    STATUS_FAILED,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_QUEUE_FULL,
    STATUS_QUOTA,
    STATUS_WORKER_LOST,
    ProtocolError,
    Request,
    Response,
    encode_message,
    exit_status_for,
    recv_message,
    send_message,
)


def _z(n: int) -> list:
    rng = np.random.default_rng(7)
    return rng.uniform(2000.0, 11000.0, size=(n, n)).tolist()


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"kind": "solve", "z": _z(4), "hour": 6.0}
            send_message(a, message)
            assert recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_eof_at_boundary_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_message_raises(self):
        a, b = socket.socketpair()
        try:
            frame = encode_message({"kind": "ping"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(ProtocolError, match="mid-message") as info:
                recv_message(b)
            # Offset is frame-relative: full header + partial payload.
            assert info.value.bytes_read == len(frame) - 2
        finally:
            b.close()

    def test_eof_between_header_and_payload_reports_offset(self):
        a, b = socket.socketpair()
        try:
            frame = encode_message({"kind": "ping"})
            a.sendall(frame[:4])
            a.close()
            with pytest.raises(ProtocolError) as info:
                recv_message(b)
            assert info.value.bytes_read == 4
        finally:
            b.close()

    def test_garbage_payload_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall((5).to_bytes(4, "big") + b"\xff\xfejunk")
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversize_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="limit"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((2).to_bytes(4, "big") + b"[]")
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestRequestSchema:
    def test_roundtrip_preserves_floats_bit_exactly(self):
        z = _z(5)
        request = Request(z=z, voltage=4.99, hour=12.0, deadline=1.5)
        parsed = Request.from_dict(request.to_dict())
        assert np.array_equal(parsed.z_array(), np.asarray(z))
        assert parsed.voltage == 4.99
        assert parsed.deadline == 1.5

    def test_n_and_shape_check(self):
        request = Request(z=_z(6))
        assert request.n == 6
        assert request.z_array().shape == (6, 6)

    @pytest.mark.parametrize(
        "z",
        [
            [[1.0, 2.0]],                                  # not square
            [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],          # not square
            [[1.0]],                                       # n < 2
            [[1.0, 2.0], [3.0]],                           # ragged
        ],
    )
    def test_bad_shapes_rejected(self, z):
        with pytest.raises(ValueError):
            Request(z=z).z_array()

    def test_from_dict_rejects_empty_z(self):
        with pytest.raises(ValueError, match="'z'"):
            Request.from_dict({"kind": "solve", "z": []})

    def test_from_dict_requires_z_list(self):
        with pytest.raises(ValueError, match="'z'"):
            Request.from_dict({"kind": "solve", "z": "nope"})

    def test_from_dict_requires_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            Request.from_dict([1, 2])

    def test_priority_and_client_id_roundtrip(self):
        request = Request(
            z=_z(3), priority=PRIORITY_INTERACTIVE, client_id="alice"
        )
        parsed = Request.from_dict(request.to_dict())
        assert parsed.priority == PRIORITY_INTERACTIVE
        assert parsed.client_id == "alice"

    def test_priority_defaults_to_batch(self):
        parsed = Request.from_dict({"kind": "solve", "z": _z(3)})
        assert parsed.priority == PRIORITY_BATCH
        assert parsed.client_id == ""

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="unknown priority"):
            Request.from_dict({"kind": "solve", "z": _z(3), "priority": "vip"})


class TestResponseSchema:
    def test_roundtrip(self):
        response = Response(
            id="abc",
            status=STATUS_OK,
            summary="done",
            manifest_path="/tmp/m.json",
            num_regions=2,
            resistance=_z(3),
            events=("repaired measurement",),
            batch_size=4,
            cache_warm=True,
            queue_seconds=0.01,
            elapsed_seconds=0.5,
        )
        parsed = Response.from_dict(response.to_dict())
        assert parsed == response
        assert parsed.ok and not parsed.retriable
        assert parsed.resistance_array().shape == (3, 3)

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown response status"):
            Response.from_dict({"id": "x", "status": "weird"})

    def test_resistance_absent(self):
        response = Response(id="x", status=STATUS_FAILED, error="boom")
        assert response.resistance_array() is None


class TestStatusMapping:
    def test_exit_statuses(self):
        assert exit_status_for(STATUS_OK) == 0
        assert exit_status_for(STATUS_FAILED) == 1
        assert exit_status_for(STATUS_INVALID) == 2
        assert exit_status_for(STATUS_DEADLINE) == 94
        assert exit_status_for(STATUS_QUEUE_FULL) == RETRIABLE_EXIT_CODE
        assert exit_status_for(STATUS_DRAINING) == RETRIABLE_EXIT_CODE
        assert exit_status_for(STATUS_WORKER_LOST) == RETRIABLE_EXIT_CODE
        assert exit_status_for(STATUS_QUOTA) == RETRIABLE_EXIT_CODE

    def test_deadline_exit_matches_batch_cli(self):
        from repro.resilience.supervise import DEADLINE_EXIT_CODE

        assert exit_status_for(STATUS_DEADLINE) == DEADLINE_EXIT_CODE

    def test_retriable_statuses_are_exactly_the_safe_resubmits(self):
        assert RETRIABLE_STATUSES == {
            STATUS_QUEUE_FULL,
            STATUS_DRAINING,
            STATUS_WORKER_LOST,
            STATUS_QUOTA,
        }
        for status in RETRIABLE_STATUSES:
            assert Response(id="x", status=status).retriable

    def test_priority_classes_order_interactive_first(self):
        assert PRIORITY_CLASSES[0] == PRIORITY_INTERACTIVE
        assert PRIORITY_BATCH in PRIORITY_CLASSES

    def test_unknown_status_raises(self):
        with pytest.raises(ValueError):
            exit_status_for("nope")
