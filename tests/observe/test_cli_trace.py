"""CLI observability: --trace/--metrics flags and `parma trace summarize`."""

import json

import pytest

from repro.cli import main
from repro.observe import NULL_OBSERVER, get_observer


@pytest.fixture()
def campaign_file(tmp_path):
    path = tmp_path / "campaign.txt"
    code = main([
        "simulate", "--n", "8", "--seed", "3", "--noise", "0.0",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestSolveTrace:
    def test_trace_writes_artifacts(self, campaign_file, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main([
            "solve", str(campaign_file), "--strategy", "single",
            "--trace", str(run_dir),
        ])
        assert code == 0
        for name in ("trace.jsonl", "trace.chrome.json", "manifest.json"):
            assert (run_dir / name).exists()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["config"]["command"] == "solve"
        assert manifest["config"]["n"] == 8
        assert "formation" in manifest["phases"]
        assert "memory" in manifest
        out = capsys.readouterr().out
        assert "trace:" in out and "manifest:" in out

    def test_metrics_flag_prints_table(self, campaign_file, capsys):
        code = main([
            "solve", str(campaign_file), "--strategy", "single", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "formation.terms" in out

    def test_observer_uninstalled_after_run(self, campaign_file, tmp_path):
        code = main([
            "solve", str(campaign_file), "--strategy", "single",
            "--trace", str(tmp_path / "r"),
        ])
        assert code == 0
        assert get_observer() is NULL_OBSERVER

    def test_injected_fault_lands_on_event_stream(
        self, campaign_file, tmp_path
    ):
        run_dir = tmp_path / "run"
        code = main([
            "solve", str(campaign_file), "--strategy", "single",
            "--inject-fail-rungs", "primary", "--trace", str(run_dir),
        ])
        assert code == 0
        from repro.observe.tracing import read_jsonl

        spans = read_jsonl(run_dir / "trace.jsonl")
        events = [s for s in spans if s.kind == "event"]
        assert any(
            e.name == "degrade.rung_failed" and e.attrs["rung"] == "primary"
            for e in events
        )


class TestMonitorTrace:
    def test_monitor_trace_and_checkpoint_events(
        self, campaign_file, tmp_path
    ):
        run_dir = tmp_path / "run"
        code = main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--trace", str(run_dir),
        ])
        assert code == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["config"]["command"] == "monitor"
        assert manifest["metrics"]["checkpoint.writes"]["value"] == 4.0
        # a second run resumes; its trace shows the resume events
        run2 = tmp_path / "run2"
        code = main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--trace", str(run2),
        ])
        assert code == 0
        manifest2 = json.loads((run2 / "manifest.json").read_text())
        assert manifest2["metrics"]["checkpoint.resumes"]["value"] == 4.0


class TestTraceSummarize:
    def test_summarize_renders_digest(self, campaign_file, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main([
            "solve", str(campaign_file), "--strategy", "single",
            "--trace", str(run_dir),
        ]) == 0
        capsys.readouterr()
        code = main(["trace", "summarize", str(run_dir), "--tree"])
        assert code == 0
        out = capsys.readouterr().out
        assert "run " in out
        assert "trace phases" in out
        assert "== metrics ==" in out
        assert "span tree:" in out
        assert "phase coverage:" in out

    def test_summarize_missing_dir(self, tmp_path, capsys):
        code = main(["trace", "summarize", str(tmp_path / "nope")])
        assert code == 2
        assert "manifest.json" in capsys.readouterr().err

    def test_summarize_json_matches_catalog_serializer(
        self, campaign_file, tmp_path, capsys
    ):
        from repro.observe.catalog import flatten_manifest

        run_dir = tmp_path / "run"
        assert main([
            "solve", str(campaign_file), "--strategy", "single",
            "--trace", str(run_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(run_dir), "--json"]) == 0
        digest = json.loads(capsys.readouterr().out)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        expected = flatten_manifest(
            manifest, source_path=str(run_dir / "manifest.json")
        )
        assert digest["run"] == json.loads(json.dumps(expected, default=str))
        assert digest["run"]["kind"] == "solve"
        assert digest["run"]["status"] == "ok"
        assert digest["phases"] == manifest["phases"]
