"""Tests for the SQLite run catalog (repro.observe.catalog)."""

import json
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.observe.catalog import (
    CATALOG_SCHEMA_VERSION,
    Catalog,
    CatalogError,
    _LADDER_RUNGS,
    flatten_manifest,
    load_bench_trajectory,
    manifest_content_hash,
    parse_since,
    summarize_run,
)
from repro.observe.manifest import build_manifest, write_manifest


def make_manifest(
    run_id="run-1",
    command="solve",
    n=10,
    status=None,
    metrics=None,
    extra=None,
    phases=None,
    started=1_000_000.0,
    **config_over,
):
    config = {"n": n, "command": command, "backend": "numpy", **config_over}
    if status is not None:
        config["status"] = status
    return build_manifest(
        run_id=run_id,
        config=config,
        phases=phases
        if phases is not None
        else {"solve": {"count": 1, "total": 0.5, "self": 0.4}},
        metrics=metrics or {},
        wall_seconds=2.0,
        cpu_seconds=1.8,
        started_unix=started,
        extra=extra,
    )


def write_manifest_dir(root, name, manifest):
    directory = Path(root) / name
    directory.mkdir(parents=True, exist_ok=True)
    write_manifest(directory / "manifest.json", manifest)
    return directory


class TestFlatten:
    def test_basic_columns(self):
        row = flatten_manifest(
            make_manifest(n=12, solver="nested", strategy="single")
        )
        assert row["run_id"] == "run-1"
        assert row["kind"] == "solve"
        assert row["n"] == 12
        assert row["solver"] == "nested"
        assert row["strategy"] == "single"
        assert row["solve_seconds"] == pytest.approx(0.5)
        assert row["status"] == "ok"
        assert row["degradation_rung"] == 0
        assert row["rung_name"] == "primary"

    def test_serve_request_kind(self):
        row = flatten_manifest(
            make_manifest(command="serve", request_id="abc123")
        )
        assert row["kind"] == "serve-request"
        # the service's own manifest has no request_id and stays "serve"
        assert flatten_manifest(make_manifest(command="serve"))["kind"] == "serve"

    def test_explicit_status_wins(self):
        row = flatten_manifest(make_manifest(status="deadline"))
        assert row["status"] == "deadline"

    def test_exhausted_fallback(self):
        row = flatten_manifest(
            make_manifest(
                metrics={
                    "degrade.exhausted": {"type": "counter", "value": 1.0}
                }
            )
        )
        assert row["status"] == "exhausted"

    def test_deepest_rung_wins(self):
        row = flatten_manifest(
            make_manifest(
                metrics={
                    "degrade.rung.cold-start": {
                        "type": "counter", "value": 1.0
                    },
                    "degrade.rung.regularized": {
                        "type": "counter", "value": 1.0
                    },
                }
            )
        )
        assert row["degradation_rung"] == 2
        assert row["rung_name"] == "regularized"

    def test_ladder_matches_resilience_layer(self):
        # The catalog mirrors the ladder as a literal (no upward import);
        # this is the cross-check that keeps the two in lock step.
        from repro.resilience.degrade import LADDER_RUNGS

        assert _LADDER_RUNGS == LADDER_RUNGS

    def test_cache_hit_rates(self):
        row = flatten_manifest(
            make_manifest(
                metrics={
                    "cache.pair-template.hits": {"type": "gauge", "value": 3},
                    "cache.pair-template.misses": {"type": "gauge", "value": 1},
                }
            )
        )
        assert row["template_hit_rate"] == pytest.approx(0.75)
        assert row["laplacian_hit_rate"] is None

    def test_bench_tag(self):
        row = flatten_manifest(make_manifest(extra={"bench": "solver"}))
        assert row["bench"] == "solver"
        assert flatten_manifest(make_manifest())["bench"] == ""

    def test_summarize_run_shape(self):
        manifest = make_manifest()
        digest = summarize_run(manifest, source_path="/x/manifest.json")
        assert digest["run"]["source_path"] == "/x/manifest.json"
        assert digest["phases"] == manifest["phases"]
        json.dumps(digest)  # machine-readable end to end

    def test_content_hash_stable_and_distinct(self):
        a = make_manifest(run_id="a")
        assert manifest_content_hash(a) == manifest_content_hash(dict(a))
        assert manifest_content_hash(a) != manifest_content_hash(
            make_manifest(run_id="b")
        )


class TestIngest:
    def test_ingest_and_reingest_is_noop(self, tmp_path):
        runs = tmp_path / "runs"
        for i in range(3):
            write_manifest_dir(
                runs, f"r{i}", make_manifest(run_id=f"run-{i}", started=i)
            )
        with Catalog(tmp_path / "cat.db") as catalog:
            report = catalog.ingest([runs])
            assert (report.scanned, report.ingested) == (3, 3)
            assert catalog.count() == 3
            again = catalog.ingest([runs])
            assert again.ingested == 0
            assert again.duplicates == 3
            assert catalog.count() == 3  # row count unchanged: a no-op

    def test_invalid_manifest_recorded_not_fatal(self, tmp_path):
        runs = tmp_path / "runs"
        write_manifest_dir(runs, "good", make_manifest())
        bad = runs / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text('{"kind": "nope"}')
        with Catalog(tmp_path / "cat.db") as catalog:
            report = catalog.ingest([runs])
        assert report.ingested == 1
        assert len(report.errors) == 1
        assert "bad" in report.errors[0][0]

    def test_phases_and_metrics_rows(self, tmp_path):
        directory = write_manifest_dir(
            tmp_path,
            "r",
            make_manifest(
                metrics={
                    "formation.terms": {"type": "counter", "value": 100.0},
                    "solver.iteration.seconds": {
                        "type": "histogram",
                        "buckets": [0.1],
                        "counts": [2, 0],
                        "sum": 0.05,
                        "count": 2,
                    },
                }
            ),
        )
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([directory])
            _, phase_rows = catalog.query(
                "SELECT name, total_seconds FROM phases"
            )
            _, metric_rows = catalog.query(
                "SELECT name, type, value, sum, count FROM metrics "
                "ORDER BY name"
            )
        assert phase_rows == [("solve", 0.5)]
        assert metric_rows[0] == ("formation.terms", "counter", 100.0, None, None)
        assert metric_rows[1][1] == "histogram"
        assert metric_rows[1][3] == pytest.approx(0.05)

    def test_search_filter(self, tmp_path):
        runs = tmp_path / "runs"
        write_manifest_dir(
            runs, "a", make_manifest(run_id="a", solver="nested")
        )
        write_manifest_dir(
            runs, "b", make_manifest(run_id="b", solver="regularized")
        )
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([runs])
            rows = catalog.list_runs(search="regularized")
        assert [r["run_id"] for r in rows] == ["b"]

    def test_filters(self, tmp_path):
        runs = tmp_path / "runs"
        write_manifest_dir(
            runs, "old", make_manifest(run_id="old", started=100.0)
        )
        write_manifest_dir(
            runs,
            "deg",
            make_manifest(
                run_id="deg",
                started=200.0,
                metrics={
                    "degrade.rung.bounded": {"type": "counter", "value": 1.0}
                },
            ),
        )
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([runs])
            assert [
                r["run_id"]
                for r in catalog.list_runs(since=150.0)
            ] == ["deg"]
            rungy = catalog.list_runs(min_rung=1)
            assert [r["run_id"] for r in rungy] == ["deg"]
            assert rungy[0]["rung_name"] == "bounded"
            assert [
                r["run_id"] for r in catalog.list_runs(where="started_unix < 150")
            ] == ["old"]

    def test_get_run_prefix_and_ambiguity(self, tmp_path):
        runs = tmp_path / "runs"
        write_manifest_dir(runs, "a", make_manifest(run_id="20260101-aaaa"))
        write_manifest_dir(runs, "b", make_manifest(run_id="20260101-bbbb"))
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([runs])
            run, phases, metrics = catalog.get_run("20260101-a")
            assert run["run_id"] == "20260101-aaaa"
            assert phases[0]["name"] == "solve"
            with pytest.raises(CatalogError, match="ambiguous"):
                catalog.get_run("20260101")
            with pytest.raises(CatalogError, match="no cataloged run"):
                catalog.get_run("zzz")


class TestConcurrency:
    def test_two_processes_ingest_same_dir_once(self, tmp_path):
        runs = tmp_path / "runs"
        for i in range(5):
            write_manifest_dir(
                runs, f"r{i}", make_manifest(run_id=f"run-{i}", started=i)
            )
        db = tmp_path / "cat.db"
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.observe.catalog import Catalog\n"
            "with Catalog(sys.argv[2]) as c: c.ingest([sys.argv[3]])\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(src), str(db), str(runs)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        with Catalog(db, readonly=True) as catalog:
            assert catalog.count() == 5  # exactly one row per run
            _, rows = catalog.query(
                "SELECT run_id, COUNT(*) FROM runs GROUP BY run_id "
                "HAVING COUNT(*) > 1"
            )
            assert rows == []

    def test_threaded_shared_instance(self, tmp_path):
        import threading

        runs = tmp_path / "runs"
        for i in range(8):
            write_manifest_dir(
                runs, f"r{i}", make_manifest(run_id=f"run-{i}", started=i)
            )
        with Catalog(tmp_path / "cat.db") as catalog:
            threads = [
                threading.Thread(target=catalog.ingest, args=([runs],))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert catalog.count() == 8


class TestQuery:
    @pytest.fixture()
    def catalog(self, tmp_path):
        directory = write_manifest_dir(tmp_path, "r", make_manifest())
        with Catalog(tmp_path / "cat.db") as cat:
            cat.ingest([directory])
            yield cat

    def test_select_allowed(self, catalog):
        columns, rows = catalog.query("SELECT run_id, n FROM runs")
        assert columns == ["run_id", "n"]
        assert rows == [("run-1", 10)]

    def test_with_select_allowed(self, catalog):
        _, rows = catalog.query(
            "WITH t AS (SELECT n FROM runs) SELECT COUNT(*) FROM t"
        )
        assert rows == [(1,)]

    def test_leading_comment_allowed(self, catalog):
        _, rows = catalog.query("-- a comment\nSELECT COUNT(*) FROM runs")
        assert rows == [(1,)]

    @pytest.mark.parametrize(
        "sql",
        [
            "DELETE FROM runs",
            "UPDATE runs SET status = 'ok'",
            "INSERT INTO runs (run_id) VALUES ('x')",
            "DROP TABLE runs",
            "PRAGMA user_version = 99",
            "ATTACH DATABASE ':memory:' AS x",
        ],
    )
    def test_non_select_rejected(self, catalog, sql):
        with pytest.raises(CatalogError, match="only SELECT"):
            catalog.query(sql)
        assert catalog.count() == 1

    def test_writing_cte_cannot_modify(self, catalog):
        # Slips past the WITH gate, but the ro connection stops it.
        with pytest.raises(CatalogError):
            catalog.query(
                "WITH t AS (SELECT 1) INSERT INTO runs (run_id) SELECT 'x'"
            )
        assert catalog.count() == 1

    def test_bad_sql_wrapped(self, catalog):
        with pytest.raises(CatalogError, match="query failed"):
            catalog.query("SELECT nope FROM nothing")


class TestStats:
    def test_percentiles_by_group(self, tmp_path):
        runs = tmp_path / "runs"
        for i, solve_s in enumerate([0.1, 0.2, 0.3, 0.4]):
            write_manifest_dir(
                runs,
                f"r{i}",
                make_manifest(
                    run_id=f"run-{i}",
                    started=i,
                    phases={
                        "solve": {
                            "count": 1, "total": solve_s, "self": solve_s
                        }
                    },
                ),
            )
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([runs])
            entries = catalog.stats(group_by=("n", "backend"))
        assert len(entries) == 1
        entry = entries[0]
        assert (entry["n"], entry["backend"]) == (10, "numpy")
        assert entry["count"] == 4
        assert entry["p50"] == pytest.approx(0.25)
        assert entry["p95"] == pytest.approx(0.385)
        assert entry["mean"] == pytest.approx(0.25)
        assert entry["max"] == pytest.approx(0.4)

    def test_rejects_unknown_column(self, tmp_path):
        with Catalog(tmp_path / "cat.db") as catalog:
            with pytest.raises(CatalogError, match="not a runs column"):
                catalog.stats(metric="evil; DROP TABLE runs")
            with pytest.raises(CatalogError, match="not a runs column"):
                catalog.stats(group_by=("nope",))


class TestRegress:
    def _bench_file(self, tmp_path, n=10, baseline=0.5):
        path = tmp_path / "BENCH_solver.json"
        path.write_text(json.dumps({
            "benchmark": "solver_fastpath",
            "sizes": [{"n": n, "fast_cold_seconds": baseline}],
        }))
        return path

    def _tagged(self, solve_s, run_id="bench-run", started=1000.0):
        return make_manifest(
            run_id=run_id,
            started=started,
            extra={"bench": "solver"},
            phases={"solve": {"count": 1, "total": solve_s, "self": solve_s}},
        )

    def test_within_threshold_passes(self, tmp_path):
        bench = self._bench_file(tmp_path, baseline=0.5)
        directory = write_manifest_dir(tmp_path, "r", self._tagged(0.6))
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([directory])
            report = catalog.regress([bench], threshold=1.5)
        assert report.ok
        assert report.checks[0].ratio == pytest.approx(1.2)

    def test_2x_inflation_fails(self, tmp_path):
        # The acceptance scenario: doubled solve time must trip the gate.
        bench = self._bench_file(tmp_path, baseline=0.5)
        directory = write_manifest_dir(tmp_path, "r", self._tagged(1.0))
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([directory])
            report = catalog.regress([bench], threshold=1.5)
        assert not report.ok
        assert "FAIL" in report.render()

    def test_latest_run_judged(self, tmp_path):
        bench = self._bench_file(tmp_path, baseline=0.5)
        runs = tmp_path / "runs"
        write_manifest_dir(
            runs, "old", self._tagged(5.0, run_id="old", started=100.0)
        )
        write_manifest_dir(
            runs, "new", self._tagged(0.5, run_id="new", started=200.0)
        )
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([runs])
            report = catalog.regress([bench], threshold=1.5)
        assert report.ok
        assert report.checks[0].run_id == "new"

    def test_missing_sizes_noted(self, tmp_path):
        bench = tmp_path / "BENCH_solver.json"
        bench.write_text(json.dumps({
            "benchmark": "solver_fastpath",
            "sizes": [
                {"n": 10, "fast_cold_seconds": 0.5},
                {"n": 60, "fast_cold_seconds": 5.0},
            ],
        }))
        directory = write_manifest_dir(tmp_path, "r", self._tagged(0.5))
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([directory])
            report = catalog.regress([bench])
        assert report.ok
        assert len(report.checks) == 1
        assert any("n=60" in note for note in report.notes)

    def test_trajectory_kinds(self, tmp_path):
        tag, column, baselines = load_bench_trajectory(
            self._bench_file(tmp_path)
        )
        assert (tag, column) == ("solver", "solve_seconds")
        assert baselines == {10: 0.5}
        formation = tmp_path / "BENCH_formation.json"
        formation.write_text(json.dumps({
            "benchmark": "formation_cache",
            "sizes": [{"n": 10, "cached_seconds": 0.1}],
        }))
        assert load_bench_trajectory(formation)[0:2] == (
            "formation", "formation_seconds"
        )
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        with pytest.raises(CatalogError, match="unknown benchmark"):
            load_bench_trajectory(junk)

    def test_elastic_scaling_kind(self, tmp_path):
        scaling = tmp_path / "BENCH_scaling.json"
        scaling.write_text(json.dumps({
            "benchmark": "elastic_scaling",
            "sizes": [{"n": 20, "elastic_formation_seconds": 0.6}],
        }))
        assert load_bench_trajectory(scaling) == (
            "scaling", "formation_seconds", {20: 0.6}
        )

    def test_elastic_scaling_run_gated(self, tmp_path):
        """A scaling-tagged run's formation phase is judged against
        ``elastic_formation_seconds`` (the ``parma scale`` loop)."""
        scaling = tmp_path / "BENCH_scaling.json"
        scaling.write_text(json.dumps({
            "benchmark": "elastic_scaling",
            "sizes": [{"n": 20, "elastic_formation_seconds": 0.5}],
        }))
        good = make_manifest(
            run_id="scale-ok",
            started=100.0,
            command="scale",
            n=20,
            extra={"bench": "scaling"},
            phases={"formation": {"count": 1, "total": 0.6, "self": 0.6}},
        )
        directory = write_manifest_dir(tmp_path, "scale-ok", good)
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([directory])
            report = catalog.regress([scaling], threshold=1.5)
        assert report.ok
        assert report.checks[0].bench == "scaling"
        assert report.checks[0].ratio == pytest.approx(1.2)
        slow = make_manifest(
            run_id="scale-slow",
            started=200.0,
            command="scale",
            n=20,
            extra={"bench": "scaling"},
            phases={"formation": {"count": 1, "total": 2.0, "self": 2.0}},
        )
        directory = write_manifest_dir(tmp_path, "scale-slow", slow)
        with Catalog(tmp_path / "cat.db") as catalog:
            catalog.ingest([directory])
            report = catalog.regress([scaling], threshold=1.5)
        assert not report.ok


class TestSchema:
    def test_version_and_migration_audit(self, tmp_path):
        with Catalog(tmp_path / "cat.db") as catalog:
            assert catalog.schema_version() == CATALOG_SCHEMA_VERSION
            _, rows = catalog.query("SELECT version FROM catalog_migrations")
            assert rows == [(CATALOG_SCHEMA_VERSION,)]

    def test_newer_schema_refused(self, tmp_path):
        db = tmp_path / "cat.db"
        with Catalog(db):
            pass
        conn = sqlite3.connect(db)
        conn.execute(f"PRAGMA user_version = {CATALOG_SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(CatalogError, match="newer"):
            Catalog(db)

    def test_reopen_is_idempotent(self, tmp_path):
        db = tmp_path / "cat.db"
        directory = write_manifest_dir(tmp_path, "r", make_manifest())
        with Catalog(db) as catalog:
            catalog.ingest([directory])
        with Catalog(db) as catalog:  # re-running migrations must not wipe
            assert catalog.count() == 1

    def test_readonly_missing_file(self, tmp_path):
        with pytest.raises(CatalogError, match="no run catalog"):
            Catalog(tmp_path / "absent.db", readonly=True)

    def test_readonly_cannot_ingest(self, tmp_path):
        db = tmp_path / "cat.db"
        with Catalog(db):
            pass
        with Catalog(db, readonly=True) as catalog:
            with pytest.raises(CatalogError, match="read-only"):
                catalog.ingest_manifest(make_manifest())


class TestSince:
    def test_relative(self):
        assert parse_since("12h", now=100_000.0) == pytest.approx(
            100_000.0 - 12 * 3600
        )
        assert parse_since("7d", now=1e6) == pytest.approx(1e6 - 7 * 86400)

    def test_iso(self):
        from datetime import datetime

        expected = datetime.fromisoformat("2026-08-01").timestamp()
        assert parse_since("2026-08-01") == pytest.approx(expected)

    def test_garbage(self):
        with pytest.raises(CatalogError, match="cannot parse"):
            parse_since("next tuesday")
