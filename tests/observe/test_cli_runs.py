"""`parma runs`: catalog CLI roundtrip, producer wiring, live watch."""

import json

import pytest

from repro.cli import main
from tests.observe.test_catalog import make_manifest, write_manifest_dir


@pytest.fixture()
def campaign_file(tmp_path):
    path = tmp_path / "campaign.txt"
    assert main([
        "simulate", "--n", "8", "--seed", "3", "--noise", "0.0",
        "--out", str(path),
    ]) == 0
    return path


class TestProducerWiring:
    def test_solve_catalog_autoingest(self, campaign_file, tmp_path, capsys):
        db = tmp_path / "cat.db"
        code = main([
            "solve", str(campaign_file), "--strategy", "single",
            "--trace", str(tmp_path / "run"),
            "--catalog", str(db), "--bench-tag", "solver",
        ])
        assert code == 0
        assert "1 ingested" in capsys.readouterr().out
        assert main(["runs", "list", "--db", str(db), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["kind"] == "solve"
        assert rows[0]["status"] == "ok"
        assert rows[0]["bench"] == "solver"

    def test_catalog_requires_trace(self, campaign_file, tmp_path, capsys):
        code = main([
            "solve", str(campaign_file), "--strategy", "single",
            "--catalog", str(tmp_path / "cat.db"),
        ])
        assert code == 2
        assert "--catalog requires --trace" in capsys.readouterr().err

    def test_bench_tag_requires_trace(self, campaign_file, capsys):
        code = main([
            "solve", str(campaign_file), "--strategy", "single",
            "--bench-tag", "solver",
        ])
        assert code == 2
        assert "--bench-tag requires --trace" in capsys.readouterr().err

    def test_monitor_status_stamped(self, campaign_file, tmp_path):
        run_dir = tmp_path / "run"
        assert main([
            "monitor", str(campaign_file), "--strategy", "single",
            "--trace", str(run_dir),
        ]) == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["config"]["status"] == "ok"


class TestRoundtrip:
    @pytest.fixture()
    def db(self, tmp_path):
        runs = tmp_path / "runs"
        for i, solve_s in enumerate([0.1, 0.2, 0.3]):
            write_manifest_dir(
                runs,
                f"r{i}",
                make_manifest(
                    run_id=f"run-{i}",
                    started=1000.0 + i,
                    phases={
                        "solve": {
                            "count": 1, "total": solve_s, "self": solve_s
                        }
                    },
                    extra={"bench": "solver"} if i == 2 else None,
                ),
            )
        db = tmp_path / "cat.db"
        assert main(["runs", "ingest", str(runs), "--db", str(db)]) == 0
        return db

    def test_ingest_reports_counts(self, db, tmp_path, capsys):
        capsys.readouterr()
        runs = tmp_path / "runs"
        assert main(["runs", "ingest", str(runs), "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "0 ingested, 3 already cataloged" in out

    def test_list_table(self, db, capsys):
        capsys.readouterr()
        assert main(["runs", "list", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "run-2" in out and "run-0" in out
        assert "solve" in out

    def test_show(self, db, capsys):
        capsys.readouterr()
        assert main(["runs", "show", "run-1", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "run run-1 [solve] status=ok" in out
        assert "== phases ==" in out

    def test_stats(self, db, capsys):
        capsys.readouterr()
        assert main([
            "runs", "stats", "--db", str(db),
            "--group-by", "n,backend", "--metric", "solve_seconds", "--json",
        ]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 1
        assert entries[0]["count"] == 3
        assert entries[0]["p50"] == pytest.approx(0.2)

    def test_query_and_rejection(self, db, capsys):
        capsys.readouterr()
        assert main([
            "runs", "query", "SELECT COUNT(*) AS c FROM runs",
            "--db", str(db), "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out) == [{"c": 3}]
        assert main([
            "runs", "query", "DELETE FROM runs", "--db", str(db),
        ]) == 2
        assert "only SELECT" in capsys.readouterr().err

    def test_regress_pass_and_fail(self, db, tmp_path, capsys):
        bench = tmp_path / "BENCH_solver.json"
        bench.write_text(json.dumps({
            "benchmark": "solver_fastpath",
            "sizes": [{"n": 10, "fast_cold_seconds": 0.25}],
        }))
        capsys.readouterr()
        # the bench-tagged run (run-2, 0.3 s) is within 1.5x of 0.25 s
        assert main([
            "runs", "regress", "--db", str(db), "--bench", str(bench),
        ]) == 0
        assert "[ok  ] solver n=10" in capsys.readouterr().out
        # a 2x-inflated baseline comparison must exit nonzero
        bench.write_text(json.dumps({
            "benchmark": "solver_fastpath",
            "sizes": [{"n": 10, "fast_cold_seconds": 0.15}],
        }))
        assert main([
            "runs", "regress", "--db", str(db), "--bench", str(bench),
        ]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_regress_empty_gate_fails(self, db, tmp_path, capsys):
        bench = tmp_path / "BENCH_formation.json"
        bench.write_text(json.dumps({
            "benchmark": "formation_cache",
            "sizes": [{"n": 10, "cached_seconds": 0.1}],
        }))
        capsys.readouterr()
        assert main([
            "runs", "regress", "--db", str(db), "--bench", str(bench),
        ]) == 1
        assert "no bench-tagged runs" in capsys.readouterr().err


class TestWatch:
    def test_watch_frames_against_live_service(self, tmp_path, capsys):
        from repro.observe import Observer
        from repro.serve import ServiceConfig, SolveClient, SolveService

        config = ServiceConfig(
            socket_path=tmp_path / "watch.sock",
            results_dir=tmp_path / "results",
            linger=0.0,
            observer=Observer(),
        )
        svc = SolveService(config)
        svc.start()
        try:
            assert SolveClient(config.socket_path).wait_ready(timeout=10.0)
            capsys.readouterr()
            code = main([
                "runs", "watch", "--socket", str(config.socket_path),
                "--iterations", "2", "--interval", "0.05", "--no-clear",
            ])
        finally:
            svc.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("parma serve — up") == 2
        assert "queue depth" in out
        assert "rates over the last" in out

    def test_watch_no_service(self, tmp_path, capsys):
        code = main([
            "runs", "watch", "--socket", str(tmp_path / "absent.sock"),
            "--iterations", "1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err
