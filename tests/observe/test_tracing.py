"""Tests for the span tracer: recording, export, reconstruction."""

import json
import time

import pytest

from repro.observe.tracing import (
    SPOOL_SUFFIX,
    Span,
    Tracer,
    build_span_tree,
    chrome_trace_events,
    phase_rollup,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


class TestRecording:
    def test_span_records_duration(self):
        t = Tracer()
        with t.span("work", n=5):
            time.sleep(0.002)
        (span,) = t.spans
        assert span.name == "work"
        assert span.kind == "span"
        assert span.dur >= 0.002
        assert span.attrs == {"n": 5}

    def test_nesting_links_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.spans  # inner closes first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_exception_marks_error_and_pops(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        (span,) = t.spans
        assert span.attrs["error"] == "RuntimeError"
        # the stack unwound: a new span is a root again
        with t.span("next"):
            pass
        assert t.spans[-1].parent_id is None

    def test_event_is_instant_and_parented(self):
        t = Tracer()
        with t.span("outer"):
            t.event("retry.attempt_failed", attempt=1)
        event, outer = t.spans
        assert event.kind == "event"
        assert event.dur == 0.0
        assert event.parent_id == outer.span_id

    def test_attrs_coerced_to_jsonable(self):
        import numpy as np

        t = Tracer()
        with t.span("s", pair=(1, 2), x=np.int64(7)):
            pass
        attrs = t.spans[0].attrs
        assert attrs["pair"] == [1, 2]
        assert attrs["x"] == 7 and isinstance(attrs["x"], int)
        json.dumps(attrs)

    def test_add_span_synthesizes_child(self):
        t = Tracer()
        with t.span("formation"):
            t.add_span("formation.rank", ts=1.0, dur=0.5, pid=999, tid=1, rank=1)
        rank, formation = t.spans
        assert rank.parent_id == formation.span_id
        assert rank.pid == 999 and rank.dur == 0.5

    def test_mark_and_clear(self):
        t = Tracer()
        with t.span("a"):
            pass
        assert t.mark() == 1
        t.clear()
        assert len(t) == 0


class TestRoundTrip:
    def _sample(self):
        t = Tracer()
        with t.span("campaign", timepoints=2):
            with t.span("timepoint", index=0):
                t.event("checkpoint.resumed", index=0)
        return t.spans

    def test_jsonl_round_trip(self, tmp_path):
        spans = self._sample()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(spans, path) == 3
        back = read_jsonl(path)
        assert [s.to_dict() for s in back] == [s.to_dict() for s in spans]

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(self._sample(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(path)) == 3

    def test_chrome_trace_is_valid_json(self, tmp_path):
        spans = self._sample()
        path = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(spans, path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == count
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_chrome_timestamps_relative_microseconds(self):
        spans = self._sample()
        events = [e for e in chrome_trace_events(spans) if e["ph"] == "X"]
        t0 = min(e["ts"] for e in events)
        assert t0 == 0.0
        outer = next(e for e in events if e["name"] == "campaign")
        inner = next(e for e in events if e["name"] == "timepoint")
        assert inner["ts"] >= outer["ts"]
        assert inner["dur"] <= outer["dur"]

    def test_chrome_trace_empty(self):
        assert chrome_trace_events([]) == []


class TestReconstruction:
    def test_span_tree_shape(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
            with t.span("child"):
                pass
        roots = build_span_tree(t.spans)
        assert len(roots) == 1
        assert [c.span.name for c in roots[0].children] == ["child", "child"]

    def test_orphan_becomes_root(self):
        orphan = Span(
            name="worker", ts=0.0, dur=1.0, pid=1, tid=1,
            span_id="1:1", parent_id="0:99",
        )
        roots = build_span_tree([orphan])
        assert len(roots) == 1 and roots[0].span.name == "worker"

    def test_phase_rollup_self_excludes_children(self):
        t = Tracer()
        with t.span("solve"):
            time.sleep(0.002)
            with t.span("solve.rung"):
                time.sleep(0.004)
        rollup = phase_rollup(t.spans)
        assert rollup["solve"]["count"] == 1
        assert rollup["solve.rung"]["total"] >= 0.004
        assert rollup["solve"]["self"] == pytest.approx(
            rollup["solve"]["total"] - rollup["solve.rung"]["total"]
        )

    def test_rollup_ignores_events(self):
        t = Tracer()
        with t.span("s"):
            t.event("e")
        rollup = phase_rollup(t.spans)
        assert set(rollup) == {"s"}


class TestSpool:
    def test_flush_and_merge(self, tmp_path):
        parent = Tracer()
        with parent.span("pre-fork"):
            pass
        mark = parent.mark()
        parent.ensure_spool(tmp_path / "spool")

        # a "worker" sharing the same tracer object (as after fork)
        with parent.span("worker-span"):
            pass
        flushed = parent.flush_to_spool(since=mark, worker=1)
        assert flushed == 1
        assert list((tmp_path / "spool").glob(f"*{SPOOL_SUFFIX}"))

        fresh = Tracer()
        fresh.ensure_spool(tmp_path / "spool")
        assert fresh.merge_spool() == 1
        assert fresh.spans[0].name == "worker-span"
        # spool files are consumed
        assert not list((tmp_path / "spool").glob(f"*{SPOOL_SUFFIX}"))

    def test_flush_without_spool_dir_is_noop(self):
        t = Tracer()
        with t.span("s"):
            pass
        assert t.flush_to_spool() == 0

    def test_merge_empty_spool(self, tmp_path):
        t = Tracer()
        t.ensure_spool(tmp_path / "nothing")
        assert t.merge_spool() == 0
