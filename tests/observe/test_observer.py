"""Observer tests: null path, globals, finalize, and pipeline integration."""

import json

import numpy as np
import pytest

from repro.observe import (
    NULL_OBSERVER,
    Observer,
    as_observer,
    get_observer,
    set_observer,
)
from repro.observe.observer import (
    MANIFEST_FILE_NAME,
    NULL_SPAN,
    TRACE_CHROME_NAME,
    TRACE_JSONL_NAME,
)


@pytest.fixture(autouse=True)
def _reset_global_observer():
    yield
    set_observer(None)


@pytest.fixture(scope="module")
def measurement():
    from repro.mea.synthetic import paper_like_spec
    from repro.mea.wetlab import WetLabConfig, run_campaign

    run = run_campaign(
        paper_like_spec(8, seed=13), WetLabConfig(noise_rel=0.0), seed=13
    )
    return run.campaign.measurements[0]


class TestNullObserver:
    def test_disabled_and_inert(self):
        assert NULL_OBSERVER.enabled is False
        assert NULL_OBSERVER.span("x", a=1) is NULL_SPAN
        with NULL_OBSERVER.span("x"):
            pass
        NULL_OBSERVER.event("e")
        NULL_OBSERVER.count("c", 5)
        NULL_OBSERVER.gauge("g", 1)
        NULL_OBSERVER.record_formation(None)
        NULL_OBSERVER.record_degradation(None)
        assert NULL_OBSERVER.mark() == 0
        assert NULL_OBSERVER.worker_flush() == 0
        assert NULL_OBSERVER.merge_workers() == 0
        assert NULL_OBSERVER.finalize() == {}

    def test_globals_default_to_null(self):
        assert get_observer() is NULL_OBSERVER
        assert as_observer(None) is NULL_OBSERVER

    def test_set_and_reset(self):
        obs = Observer()
        set_observer(obs)
        assert get_observer() is obs
        assert as_observer(None) is obs
        other = Observer()
        assert as_observer(other) is other  # explicit beats global
        set_observer(None)
        assert get_observer() is NULL_OBSERVER


class TestFinalize:
    def test_writes_three_artifacts(self, tmp_path):
        obs = Observer(trace_dir=tmp_path / "run")
        with obs.span("formation", n=6):
            obs.count("formation.runs")
        manifest = obs.finalize(config={"n": 6})
        for name in (TRACE_JSONL_NAME, TRACE_CHROME_NAME, MANIFEST_FILE_NAME):
            assert (tmp_path / "run" / name).exists()
        on_disk = json.loads(
            (tmp_path / "run" / MANIFEST_FILE_NAME).read_text()
        )
        assert on_disk["run_id"] == manifest["run_id"]
        assert on_disk["config"] == {"n": 6}
        assert "formation" in on_disk["phases"]
        assert on_disk["metrics"]["formation.runs"]["value"] == 1.0

    def test_finalize_requires_trace_dir(self):
        obs = Observer()
        with obs.span("s"):
            pass
        with pytest.raises(ValueError, match="trace_dir"):
            obs.finalize()

    def test_manifest_embeds_memory(self, tmp_path):
        obs = Observer(trace_dir=tmp_path)
        manifest = obs.finalize(memory={"peak": 123.0, "p50": 100.0})
        assert manifest["memory"]["peak"] == 123.0


class TestEngineIntegration:
    def test_single_thread_trace(self, measurement):
        from repro.core.engine import ParmaEngine

        obs = Observer()
        engine = ParmaEngine(strategy="single", observer=obs)
        result = engine.parametrize(measurement)
        assert result.solve.converged
        names = {s.name for s in obs.spans}
        assert {"formation", "solve", "detect"} <= names
        snap = obs.metrics.snapshot()
        assert snap["formation.terms"]["value"] == result.formation.terms_formed

    def test_phase_rollup_tracks_laps(self, measurement):
        from repro.core.engine import ParmaEngine

        obs = Observer()
        engine = ParmaEngine(strategy="single", observer=obs)
        result = engine.parametrize(measurement)
        rollup = obs.phase_rollup()
        # The solve span and the Stopwatch lap measure the same region.
        assert rollup["solve"]["total"] == pytest.approx(
            result.laps["solve"], rel=0.5, abs=0.05
        )

    def test_fork_strategy_merges_worker_spans(self, tmp_path, measurement):
        from repro.core.strategies import make_strategy
        from repro.parallel.pymp import fork_available

        if not fork_available():
            pytest.skip("no fork on this platform")
        obs = Observer(trace_dir=tmp_path)
        strategy = make_strategy("pymp", 2)
        strategy.run(measurement.z_kohm, observer=obs)
        workers = [s for s in obs.spans if s.name == "formation.worker"]
        assert len(workers) == 2
        pids = {s.pid for s in workers}
        assert len(pids) == 2  # parent rank 0 + one forked child
        # worker spans nest under the formation span
        formation = next(s for s in obs.spans if s.name == "formation")
        assert all(w.parent_id == formation.span_id for w in workers)

    def test_injected_rung_failure_is_an_event(self, measurement):
        from repro.core.engine import ParmaEngine
        from repro.resilience.faults import FaultPlan

        obs = Observer()
        engine = ParmaEngine(
            strategy="single",
            faults=FaultPlan(seed=1, fail_rungs=("primary",)),
            observer=obs,
        )
        engine.parametrize(measurement)
        events = [s for s in obs.spans if s.kind == "event"]
        failed = [e for e in events if e.name == "degrade.rung_failed"]
        assert failed and failed[0].attrs["rung"] == "primary"
        snap = obs.metrics.snapshot()
        assert snap["degrade.rung_transitions"]["value"] >= 1

    def test_atomio_reports_through_global(self, tmp_path):
        from repro.resilience.atomio import atomic_write_text

        obs = Observer()
        set_observer(obs)
        atomic_write_text(tmp_path / "x.txt", "hello")
        snap = obs.metrics.snapshot()
        assert snap["atomio.commits"]["value"] == 1
        assert snap["atomio.bytes_committed"]["value"] == 5
