"""Tests for the metrics registry and the pipeline recorders."""

import json

import numpy as np
import pytest

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    all_cache_stats,
    record_degradation,
    record_formation,
    sync_cache_gauges,
)


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_buckets(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # one per bucket + overflow
        assert h.count == 3
        assert h.mean == pytest.approx(5.55 / 3)

    def test_histogram_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_is_stable(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            r.gauge("a")

    def test_snapshot_sorted_and_json_safe(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.gauge("a").set(1)
        r.histogram("c").observe(0.5)
        snap = r.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)
        assert snap["c"]["type"] == "histogram"

    def test_clear(self):
        r = MetricsRegistry()
        r.counter("a")
        r.clear()
        assert r.names() == ()


class TestRecorders:
    def test_record_formation(self):
        from repro.core.strategies import FormationReport

        report = FormationReport(
            strategy="single-thread",
            n=4,
            num_workers=1,
            elapsed_seconds=0.25,
            terms_formed=512,
            checksum=1.0,
            per_worker_terms=np.array([512]),
            bytes_written=100,
        )
        r = MetricsRegistry()
        record_formation(r, report)
        snap = r.snapshot()
        assert snap["formation.terms"]["value"] == 512
        assert snap["formation.pair_blocks"]["value"] == 16
        assert snap["formation.bytes_written"]["value"] == 100
        assert snap["formation.elapsed_seconds"]["count"] == 1

    def test_record_degradation(self):
        from repro.resilience.degrade import DegradationReport

        report = DegradationReport(
            rung_used="bounded",
            rungs_tried=("primary", "regularized", "bounded"),
            reasons=("err", "err", ""),
        )
        r = MetricsRegistry()
        record_degradation(r, report)
        snap = r.snapshot()
        assert snap["degrade.rung.bounded"]["value"] == 1
        assert snap["degrade.rung_transitions"]["value"] == 2

    def test_record_degradation_none_is_noop(self):
        r = MetricsRegistry()
        record_degradation(r, None)
        assert r.names() == ()


class TestCacheGauges:
    def test_single_source_agrees(self):
        from repro.core.templates import get_template

        get_template(5)  # ensure at least one cache entry exists
        stats_list = all_cache_stats()
        r = MetricsRegistry()
        returned = sync_cache_gauges(r)
        assert [s.name for s in returned] == [s.name for s in stats_list]
        snap = r.snapshot()
        for stats in stats_list:
            assert (
                snap[f"cache.{stats.name}.entries"]["value"] == stats.entries
            )
