"""Tests for run-manifest build/validate/load and the CI gate."""

import json

import pytest

from repro.observe.manifest import (
    REQUIRED_KEYS,
    ManifestError,
    build_manifest,
    environment_info,
    load_manifest,
    phase_total_seconds,
    validate_manifest,
    write_manifest,
)


def _manifest(**over):
    kwargs = dict(
        run_id="test-run",
        config={"n": 10},
        phases={"formation": {"count": 2, "total": 1.5, "self": 1.0}},
        metrics={"formation.terms": {"type": "counter", "value": 100.0}},
        wall_seconds=2.0,
        cpu_seconds=1.8,
        started_unix=1e9,
    )
    kwargs.update(over)
    return build_manifest(**kwargs)


class TestBuild:
    def test_has_all_required_keys(self):
        manifest = _manifest()
        for key in REQUIRED_KEYS:
            assert key in manifest

    def test_phase_normalization(self):
        manifest = _manifest()
        entry = manifest["phases"]["formation"]
        assert entry == {
            "count": 2,
            "total_seconds": 1.5,
            "self_seconds": 1.0,
        }

    def test_memory_and_extra_optional(self):
        manifest = _manifest(memory={"peak": 1.0}, extra={"note": "x"})
        assert manifest["memory"] == {"peak": 1.0}
        assert manifest["extra"] == {"note": "x"}
        assert "memory" not in _manifest()

    def test_environment_info_shape(self):
        env = environment_info()
        for key in ("host", "platform", "python", "numpy", "blas", "git"):
            assert isinstance(env[key], str) and env[key]

    def test_json_serializable(self):
        json.dumps(_manifest())


class TestValidate:
    def test_accepts_complete(self):
        validate_manifest(_manifest())

    @pytest.mark.parametrize("key", REQUIRED_KEYS)
    def test_rejects_missing_key(self, key):
        manifest = _manifest()
        del manifest[key]
        with pytest.raises(ManifestError, match=key):
            validate_manifest(manifest)

    def test_rejects_non_dict(self):
        with pytest.raises(ManifestError, match="JSON object"):
            validate_manifest([1, 2])

    def test_rejects_wrong_kind(self):
        manifest = _manifest()
        manifest["kind"] = "campaign-checkpoint"
        with pytest.raises(ManifestError, match="kind"):
            validate_manifest(manifest)

    @pytest.mark.parametrize("version", [0, 2, 99, "two"])
    def test_rejects_unknown_schema_version(self, version):
        manifest = _manifest()
        manifest["schema_version"] = version
        with pytest.raises(
            ManifestError, match=f"schema version {version!r}"
        ):
            validate_manifest(manifest)

    def test_schema_gate_beats_missing_key_error(self):
        # A future manifest should fail by version, not by whichever
        # renamed key happens to be missing.
        manifest = _manifest()
        manifest["schema_version"] = 7
        del manifest["phases"]
        with pytest.raises(ManifestError, match="schema version"):
            validate_manifest(manifest)

    def test_load_rejects_unknown_version(self, tmp_path):
        from repro.observe.manifest import write_manifest

        path = tmp_path / "manifest.json"
        write_manifest(path, _manifest())
        bumped = json.loads(path.read_text())
        bumped["schema_version"] = 99
        path.write_text(json.dumps(bumped))
        with pytest.raises(ManifestError, match="written by a different"):
            load_manifest(path)


class TestIo:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = _manifest()
        write_manifest(path, manifest)
        assert load_manifest(path) == json.loads(json.dumps(manifest))

    def test_write_refuses_invalid(self, tmp_path):
        manifest = _manifest()
        del manifest["phases"]
        with pytest.raises(ManifestError):
            write_manifest(tmp_path / "manifest.json", manifest)
        assert not (tmp_path / "manifest.json").exists()

    def test_load_unreadable(self, tmp_path):
        bad = tmp_path / "manifest.json"
        bad.write_text("{not json")
        with pytest.raises(ManifestError, match="unreadable"):
            load_manifest(bad)


class TestCoverage:
    def test_phase_total_sums_self(self):
        manifest = _manifest(
            phases={
                "a": {"count": 1, "total": 2.0, "self": 1.5},
                "b": {"count": 1, "total": 0.5, "self": 0.5},
            }
        )
        assert phase_total_seconds(manifest) == pytest.approx(2.0)
        assert phase_total_seconds(
            manifest, top_level_only=False
        ) == pytest.approx(2.5)
