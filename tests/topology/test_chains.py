"""Tests for chain groups over GF(2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.chains import Chain, ChainSpace
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import simplex


def path_complex(n=5):
    """0-1-2-...-n path graph."""
    return SimplicialComplex.from_graph(
        range(n + 1), [(i, i + 1) for i in range(n)]
    )


class TestChainGroupAxioms:
    """The paper's 'complex chain group' is a group: verify the axioms."""

    def test_identity_element(self):
        zero = Chain()
        c = Chain([simplex(0, 1)])
        assert c + zero == c
        assert zero + c == c
        assert zero.is_zero()

    def test_every_element_self_inverse(self):
        c = Chain([simplex(0, 1), simplex(1, 2)])
        assert (c + c).is_zero()

    def test_associativity(self):
        a = Chain([simplex(0, 1)])
        b = Chain([simplex(1, 2)])
        c = Chain([simplex(0, 1), simplex(2, 3)])
        assert (a + b) + c == a + (b + c)

    def test_commutativity(self):
        a = Chain([simplex(0, 1)])
        b = Chain([simplex(1, 2)])
        assert a + b == b + a

    def test_paper_example(self):
        """σ1 = {a,b}, σ2 = {b,c}: σ1 ⋆ σ2 keeps both edges (no dup)."""
        s1 = Chain([simplex("a", "b")])
        s2 = Chain([simplex("b", "c")])
        combined = s1 + s2
        assert len(combined) == 2

    def test_duplicates_cancel(self):
        s1 = Chain([simplex("a", "b"), simplex("b", "c")])
        s2 = Chain([simplex("b", "c"), simplex("c", "d")])
        out = s1 + s2
        assert out == Chain([simplex("a", "b"), simplex("c", "d")])

    def test_mixed_dimension_rejected(self):
        with pytest.raises(ValueError):
            Chain([simplex(0), simplex(0, 1)])

    def test_add_mixed_dimension_rejected(self):
        with pytest.raises(ValueError):
            Chain([simplex(0)]) + Chain([simplex(0, 1)])

    def test_xor_alias(self):
        a = Chain([simplex(0, 1)])
        b = Chain([simplex(0, 1)])
        assert (a ^ b).is_zero()


class TestChainSpace:
    def test_rank_equals_simplex_count(self):
        c = path_complex(4)
        assert ChainSpace(c, 0).rank == 5
        assert ChainSpace(c, 1).rank == 4

    def test_vector_roundtrip(self):
        c = path_complex(4)
        space = ChainSpace(c, 1)
        chain = Chain([space.basis[0], space.basis[2]])
        vec = space.to_vector(chain)
        assert vec.sum() == 2
        assert space.from_vector(vec) == chain

    def test_to_vector_accepts_iterables(self):
        c = path_complex(3)
        space = ChainSpace(c, 1)
        vec = space.to_vector([space.basis[1]])
        assert vec[1] == 1 and vec.sum() == 1

    def test_index_unknown_simplex(self):
        space = ChainSpace(path_complex(2), 1)
        with pytest.raises(KeyError):
            space.index(simplex(10, 11))

    def test_from_vector_wrong_length(self):
        space = ChainSpace(path_complex(2), 1)
        with pytest.raises(ValueError):
            space.from_vector(np.zeros(99))

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            ChainSpace(path_complex(2), -1)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_vector_addition_matches_chain_addition(self, seed):
        rng = np.random.default_rng(seed)
        space = ChainSpace(path_complex(6), 1)
        a = space.random_chain(rng)
        b = space.random_chain(rng)
        lhs = space.to_vector(a + b)
        rhs = (space.to_vector(a) ^ space.to_vector(b))
        np.testing.assert_array_equal(lhs, rhs)
