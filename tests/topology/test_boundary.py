"""Tests for the boundary operator, including ∂∘∂ = 0."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import gf2
from repro.topology.boundary import (
    BoundaryOperator,
    boundary_chain,
    boundary_matrix_dense,
)
from repro.topology.chains import Chain, ChainSpace
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import simplex


def cycle_complex(n=4):
    """An n-cycle graph complex."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    return SimplicialComplex.from_graph(range(n), edges)


def two_triangles():
    return SimplicialComplex.from_maximal([[0, 1, 2], [1, 2, 3]])


class TestBoundaryChain:
    def test_boundary_of_edge(self):
        out = boundary_chain(Chain([simplex(0, 1)]))
        assert out == Chain([simplex(0), simplex(1)])

    def test_boundary_of_path_telescopes(self):
        # ∂({0,1} + {1,2}) = {0} + {2}: inner vertex cancels.
        c = Chain([simplex(0, 1), simplex(1, 2)])
        assert boundary_chain(c) == Chain([simplex(0), simplex(2)])

    def test_boundary_of_cycle_is_zero(self):
        c = Chain([simplex(0, 1), simplex(1, 2), simplex(0, 2)])
        assert boundary_chain(c).is_zero()

    def test_boundary_of_zero_chain(self):
        assert boundary_chain(Chain()).is_zero()

    def test_boundary_of_vertices_is_zero(self):
        assert boundary_chain(Chain([simplex(0)])).is_zero()

    def test_paper_figure1_cycle(self):
        """The §III-B example loop 0-1-3-2-8-9-7-6-0 (through R11, R12,
        R22, R21) is a cycle: its boundary is empty."""
        loop_edges = [
            (0, 1), (1, 3), (3, 2), (2, 8), (8, 9), (9, 7), (7, 6), (6, 0)
        ]
        c = Chain([simplex(a, b) for a, b in loop_edges])
        assert boundary_chain(c).is_zero()


class TestBoundaryOperator:
    def test_matrix_shape(self):
        op = BoundaryOperator(two_triangles(), 1)
        assert op.matrix.nrows == 4  # vertices
        assert op.matrix.ncols == 5  # edges

    def test_matrix_column_has_two_ones_for_edges(self):
        dense = boundary_matrix_dense(cycle_complex(5), 1)
        assert (dense.sum(axis=0) == 2).all()

    def test_apply_matches_direct_boundary(self):
        c = two_triangles()
        op = BoundaryOperator(c, 1)
        space = ChainSpace(c, 1)
        chain = Chain(space.basis[:3])
        assert op.apply(chain) == boundary_chain(chain)

    def test_k0_rejected(self):
        with pytest.raises(ValueError):
            BoundaryOperator(cycle_complex(), 0)

    def test_boundary_of_boundary_is_zero_matrixwise(self):
        """∂_1 ∘ ∂_2 = 0 on a 2-dimensional complex."""
        c = two_triangles()
        d1 = BoundaryOperator(c, 1).matrix
        d2 = BoundaryOperator(c, 2).matrix
        product = gf2.matmul(d1, d2)
        assert not product.to_dense().any()

    @given(st.integers(3, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_boundary_of_random_cycle_graph_chain(self, n, seed):
        """∂ applied twice to any chain is zero (via chains API)."""
        c = cycle_complex(n)
        space = ChainSpace(c, 1)
        rng = np.random.default_rng(seed)
        chain = space.random_chain(rng)
        assert boundary_chain(boundary_chain(chain)).is_zero()

    def test_kernel_basis_are_cycles(self):
        op = BoundaryOperator(cycle_complex(6), 1)
        basis = op.kernel_basis()
        assert len(basis) == 1  # one independent cycle
        assert boundary_chain(basis[0]).is_zero()

    def test_rank_nullity(self):
        op = BoundaryOperator(two_triangles(), 1)
        assert op.rank() + op.nullity() == op.domain.rank
