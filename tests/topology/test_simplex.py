"""Tests for abstract simplices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.simplex import Simplex, simplex


class TestConstruction:
    def test_vertices_sorted_and_deduplicated(self):
        s = Simplex([3, 1, 2, 1])
        assert s.vertices == (1, 2, 3)

    def test_empty_simplex_rejected(self):
        with pytest.raises(ValueError):
            Simplex([])

    def test_dimension_definition(self):
        assert simplex(5).dimension == 0
        assert simplex(1, 2).dimension == 1
        assert simplex(1, 2, 3).dimension == 2

    def test_mixed_label_types(self):
        s = Simplex(["a", 1])
        assert len(s) == 2

    def test_convenience_constructor(self):
        assert simplex(1, 2) == Simplex([1, 2])


class TestFaces:
    def test_edge_faces(self):
        faces = set(simplex(1, 2).faces())
        assert faces == {simplex(1), simplex(2), simplex(1, 2)}

    def test_triangle_face_count(self):
        # 3 vertices + 3 edges + 1 triangle = 7 nonempty faces.
        assert len(list(simplex(1, 2, 3).faces())) == 7

    def test_faces_of_given_dimension(self):
        edges = list(simplex(1, 2, 3).faces(dim=1))
        assert len(edges) == 3
        assert all(f.dimension == 1 for f in edges)

    def test_boundary_faces_of_vertex_empty(self):
        assert list(simplex(1).boundary_faces()) == []

    def test_boundary_faces_of_edge(self):
        assert set(simplex(1, 2).boundary_faces()) == {simplex(1), simplex(2)}

    @given(st.sets(st.integers(0, 20), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_face_count_is_2n_minus_1(self, verts):
        s = Simplex(verts)
        assert len(list(s.faces())) == 2 ** len(verts) - 1

    @given(st.sets(st.integers(0, 20), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_every_face_is_face_of_parent(self, verts):
        s = Simplex(verts)
        assert all(f.is_face_of(s) for f in s.faces())


class TestRelations:
    def test_is_face_of(self):
        assert simplex(1).is_face_of(simplex(1, 2))
        assert not simplex(3).is_face_of(simplex(1, 2))
        assert simplex(1, 2).is_face_of(simplex(1, 2))

    def test_intersection_shared_vertex(self):
        assert simplex(1, 2).intersection(simplex(2, 3)) == simplex(2)

    def test_intersection_disjoint_is_none(self):
        assert simplex(1, 2).intersection(simplex(3, 4)) is None

    def test_contains(self):
        assert 1 in simplex(1, 2)
        assert 3 not in simplex(1, 2)

    def test_equality_and_hash(self):
        assert simplex(2, 1) == simplex(1, 2)
        assert hash(simplex(2, 1)) == hash(simplex(1, 2))
        assert simplex(1) != simplex(2)

    def test_ordering_by_dimension_then_labels(self):
        items = sorted([simplex(1, 2), simplex(3), simplex(1)])
        assert items == [simplex(1), simplex(3), simplex(1, 2)]

    def test_iteration(self):
        assert list(simplex(2, 1)) == [1, 2]

    def test_repr_contains_vertices(self):
        assert "1" in repr(simplex(1, 2)) and "2" in repr(simplex(1, 2))
