"""Tests for simplicial complexes, including the paper's Figure 3."""

import pytest

from repro.topology.complex import (
    NotSimplicialError,
    SimplicialComplex,
    check_family_simplicial,
)
from repro.topology.simplex import Simplex, simplex


def triangle() -> SimplicialComplex:
    return SimplicialComplex.from_maximal([[0, 1, 2]])


class TestConstruction:
    def test_add_closes_downward(self):
        c = SimplicialComplex()
        c.add([1, 2, 3])
        assert simplex(1) in c
        assert simplex(1, 2) in c
        assert simplex(1, 2, 3) in c

    def test_from_graph(self):
        c = SimplicialComplex.from_graph([0, 1, 2], [(0, 1), (1, 2)])
        assert c.dimension == 1
        assert c.count(0) == 3 and c.count(1) == 2

    def test_from_graph_rejects_self_loop(self):
        with pytest.raises(ValueError):
            SimplicialComplex.from_graph([0], [(0, 0)])

    def test_empty_complex_dimension(self):
        assert SimplicialComplex().dimension == -1
        assert SimplicialComplex().f_vector() == ()


class TestQueries:
    def test_f_vector_triangle(self):
        assert triangle().f_vector() == (3, 3, 1)

    def test_euler_characteristic_triangle(self):
        # Filled triangle is contractible: chi = 1.
        assert triangle().euler_characteristic() == 1

    def test_euler_characteristic_hollow_triangle(self):
        c = SimplicialComplex.from_graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        assert c.euler_characteristic() == 0  # a circle

    def test_skeleton(self):
        sk = triangle().skeleton(1)
        assert sk.dimension == 1
        assert sk.count(1) == 3 and sk.count(2) == 0

    def test_star(self):
        c = SimplicialComplex.from_graph([0, 1, 2], [(0, 1), (1, 2)])
        star = c.star(1)
        assert simplex(0, 1) in star and simplex(1, 2) in star

    def test_link_edges(self):
        c = SimplicialComplex.from_graph([0, 1, 2], [(0, 1), (1, 2)])
        assert c.link_edges(1) == [0, 2]

    def test_len_counts_all_simplices(self):
        assert len(triangle()) == 7

    def test_simplices_sorted_deterministically(self):
        c = SimplicialComplex.from_graph([2, 0, 1], [(1, 2), (0, 1)])
        assert c.simplices(0) == [simplex(0), simplex(1), simplex(2)]


class TestConnectivity:
    def test_single_component(self):
        c = SimplicialComplex.from_graph([0, 1, 2], [(0, 1), (1, 2)])
        assert len(c.connected_components()) == 1

    def test_two_components(self):
        c = SimplicialComplex.from_graph([0, 1, 2, 3], [(0, 1), (2, 3)])
        comps = c.connected_components()
        assert sorted(map(sorted, comps)) == [[0, 1], [2, 3]]

    def test_isolated_vertices(self):
        c = SimplicialComplex([[0], [1]])
        assert len(c.connected_components()) == 2


class TestSimplicialProperty:
    def test_closed_complex_verifies(self):
        triangle().verify_simplicial()  # should not raise
        assert triangle().is_simplicial()

    def test_figure3_family_is_not_simplicial(self):
        """The paper's Figure 3: two triangles whose geometric overlap
        segment {b, f} is not in the family."""
        family = [
            ["a"], ["b"], ["c"], ["d"], ["e"], ["f"],
            ["a", "b"], ["b", "c"], ["a", "c"],
            ["d", "e"], ["d", "f"], ["e", "f"],
            ["a", "b", "c"], ["d", "e", "f"],
        ]
        ok, _ = check_family_simplicial(family)
        assert ok  # abstractly closed...
        # ...but adding the overlap edge without its containing faces
        # breaks closure if the triangles are absent:
        broken = [["a", "b", "c"], ["b"], ["f"]]
        ok, reason = check_family_simplicial(broken)
        assert not ok and "missing" in reason

    def test_verify_detects_tampered_complex(self):
        c = triangle()
        # Reach inside and delete a face to simulate a corrupt family.
        c._by_dim[1].discard(simplex(0, 1))
        with pytest.raises(NotSimplicialError):
            c.verify_simplicial()
        assert not c.is_simplicial()
