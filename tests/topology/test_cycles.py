"""Tests for fundamental cycle bases and the cyclomatic number."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.boundary import boundary_chain
from repro.topology.cycles import (
    cycle_is_closed,
    cycles_as_chains,
    cyclomatic_number,
    fundamental_cycles,
    graph_to_complex,
)
from repro.topology.homology import betti_numbers


def random_connected_graph(n, extra_edges, seed):
    g = nx.gnm_random_graph(n, extra_edges, seed=seed)
    nodes = list(g.nodes)
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b)
    return list(g.nodes), [tuple(e) for e in g.edges]


class TestCyclomaticNumber:
    def test_tree_has_zero(self):
        verts = [0, 1, 2, 3]
        edges = [(0, 1), (1, 2), (1, 3)]
        assert cyclomatic_number(verts, edges) == 0

    def test_single_cycle(self):
        verts = [0, 1, 2]
        edges = [(0, 1), (1, 2), (2, 0)]
        assert cyclomatic_number(verts, edges) == 1

    def test_disconnected_counts_components(self):
        verts = [0, 1, 2, 3, 4, 5]
        edges = [(0, 1), (1, 2), (2, 0), (3, 4)]
        # |E| - |V| + c = 4 - 6 + 3 = 1 (isolated 5 is a component).
        assert cyclomatic_number(verts, edges) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            cyclomatic_number([0], [(0, 0)])

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            cyclomatic_number([0, 1], [(0, 2)])

    def test_duplicate_edges_collapse(self):
        assert cyclomatic_number([0, 1], [(0, 1), (1, 0)]) == 0


class TestFundamentalCycles:
    def test_count_matches_cyclomatic(self):
        verts, edges = random_connected_graph(8, 14, seed=1)
        basis = fundamental_cycles(verts, edges)
        assert len(basis) == cyclomatic_number(verts, edges)

    def test_each_cycle_contains_its_chord(self):
        verts, edges = random_connected_graph(7, 12, seed=2)
        basis = fundamental_cycles(verts, edges)
        for chord, cycle in zip(basis.chord_edges, basis.cycles):
            assert chord in cycle

    @given(st.integers(4, 12), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_every_basis_cycle_is_closed(self, n, seed):
        verts, edges = random_connected_graph(n, 2 * n, seed=seed)
        basis = fundamental_cycles(verts, edges)
        for cycle in basis.cycles:
            assert cycle_is_closed(cycle)

    def test_deterministic(self):
        verts, edges = random_connected_graph(9, 16, seed=5)
        b1 = fundamental_cycles(verts, edges)
        b2 = fundamental_cycles(verts, edges)
        assert b1.cycles == b2.cycles

    def test_tree_and_chords_partition_edges(self):
        verts, edges = random_connected_graph(8, 13, seed=3)
        basis = fundamental_cycles(verts, edges)
        total = set(basis.tree_edges) | set(basis.chord_edges)
        assert len(total) == len(basis.tree_edges) + len(basis.chord_edges)

    def test_cycles_as_chains_have_zero_boundary(self):
        verts, edges = random_connected_graph(7, 12, seed=4)
        basis = fundamental_cycles(verts, edges)
        complex_ = graph_to_complex(verts, edges)
        for chain in cycles_as_chains(basis, complex_):
            assert boundary_chain(chain).is_zero()

    @given(st.integers(4, 10), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_basis_size_equals_beta1(self, n, seed):
        """The fundamental basis realizes the homology rank."""
        verts, edges = random_connected_graph(n, 2 * n, seed=seed)
        basis = fundamental_cycles(verts, edges)
        complex_ = graph_to_complex(verts, edges)
        assert len(basis) == betti_numbers(complex_)[1]
