"""Tests for homology groups and Betti numbers."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.boundary import boundary_chain
from repro.topology.complex import SimplicialComplex
from repro.topology.homology import (
    HomologyCalculator,
    betti_numbers,
    euler_characteristic_check,
)


def cycle_graph_complex(n):
    return SimplicialComplex.from_graph(
        range(n), [(i, (i + 1) % n) for i in range(n)]
    )


class TestKnownSpaces:
    def test_point(self):
        assert betti_numbers(SimplicialComplex([[0]])) == (1,)

    def test_two_points(self):
        assert betti_numbers(SimplicialComplex([[0], [1]])) == (2,)

    def test_interval(self):
        c = SimplicialComplex.from_graph([0, 1], [(0, 1)])
        assert betti_numbers(c) == (1, 0)

    def test_circle(self):
        assert betti_numbers(cycle_graph_complex(5)) == (1, 1)

    def test_filled_triangle_is_contractible(self):
        c = SimplicialComplex.from_maximal([[0, 1, 2]])
        assert betti_numbers(c) == (1, 0, 0)

    def test_hollow_tetrahedron_is_a_sphere(self):
        # Boundary of a 3-simplex: beta = (1, 0, 1).
        faces = [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]]
        c = SimplicialComplex.from_maximal(faces)
        assert betti_numbers(c) == (1, 0, 1)

    def test_wedge_of_two_circles(self):
        c = SimplicialComplex.from_graph(
            [0, 1, 2, 3, 4],
            [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)],
        )
        assert betti_numbers(c) == (1, 2)

    def test_disjoint_circles(self):
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        c = SimplicialComplex.from_graph(range(6), edges)
        assert betti_numbers(c) == (2, 2)

    def test_beta0_counts_components(self):
        c = SimplicialComplex.from_graph(
            range(7), [(0, 1), (2, 3), (4, 5)]
        )
        assert betti_numbers(c)[0] == 4  # 3 edges-components + isolated 6


class TestCalculatorInternals:
    def test_cycle_rank_at_zero_is_all_vertices(self):
        calc = HomologyCalculator(cycle_graph_complex(4))
        assert calc.cycle_rank(0) == 4

    def test_boundary_rank_above_top_dim_is_zero(self):
        calc = HomologyCalculator(cycle_graph_complex(4))
        assert calc.boundary_rank(1) == 0

    def test_betti_above_dimension_is_zero(self):
        calc = HomologyCalculator(cycle_graph_complex(4))
        assert calc.betti(5) == 0

    def test_negative_dimension_rejected(self):
        calc = HomologyCalculator(cycle_graph_complex(4))
        with pytest.raises(ValueError):
            calc.betti(-1)

    def test_summary_consistency(self):
        calc = HomologyCalculator(cycle_graph_complex(6))
        s = calc.summary(1)
        assert s.betti == s.cycle_rank - s.boundary_rank
        assert s.group_order == 2**s.betti

    def test_homology_representatives_are_cycles_not_boundaries(self):
        c = SimplicialComplex.from_maximal([[0, 1, 2], [1, 2, 3]])
        # Add an outer square to give beta1 = 1.
        c.add([0, 4])
        c.add([4, 3])
        calc = HomologyCalculator(c)
        reps = calc.homology_representatives(1)
        assert len(reps) == calc.betti(1)
        for rep in reps:
            assert boundary_chain(rep).is_zero()

    def test_cycle_basis_dimension_guard(self):
        calc = HomologyCalculator(cycle_graph_complex(4))
        with pytest.raises(ValueError):
            calc.cycle_basis(0)


class TestCrossChecks:
    @given(st.integers(4, 12), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_beta1_matches_networkx_cyclomatic(self, n, seed):
        """β1 of a random connected graph complex = |E| - |V| + 1."""
        g = nx.gnm_random_graph(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        # Make sure it's connected by chaining the nodes.
        nodes = list(g.nodes)
        for a, b in zip(nodes, nodes[1:]):
            g.add_edge(a, b)
        c = SimplicialComplex.from_graph(g.nodes, g.edges)
        expected = g.number_of_edges() - g.number_of_nodes() + 1
        assert betti_numbers(c) == (1, expected)

    @given(st.integers(3, 10))
    @settings(max_examples=10, deadline=None)
    def test_euler_poincare_on_cycles(self, n):
        assert euler_characteristic_check(cycle_graph_complex(n))

    def test_euler_poincare_on_2_complex(self):
        c = SimplicialComplex.from_maximal([[0, 1, 2], [1, 2, 3], [2, 3, 4]])
        assert euler_characteristic_check(c)
