"""Tests for cochains/coboundary and Kirchhoff-as-cohomology (§II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kirchhoff.forward import solve_drive
from repro.mea.device import MEAGrid
from repro.mea.graph import wire_graph
from repro.topology.cochains import (
    CochainSpace,
    apply_coboundary,
    coboundary_matrix,
    coboundary_squared_is_zero,
    current_conservation_residual,
    harmonic_dimension,
    is_physical_voltage,
    potential_to_voltage_drops,
    recover_potentials,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.homology import betti_numbers


def cycle_complex(n=5):
    return SimplicialComplex.from_graph(
        range(n), [(i, (i + 1) % n) for i in range(n)]
    )


def mea_wire_complex(n=3):
    g = wire_graph(MEAGrid(n))
    return SimplicialComplex.from_graph(g.nodes, g.edges)


class TestCoboundary:
    def test_delta0_is_oriented_incidence(self):
        c = SimplicialComplex.from_graph([0, 1, 2], [(0, 1), (1, 2)])
        d0 = coboundary_matrix(c, 0)
        # Edge {0,1} oriented 0 -> 1: (δf)(e) = f(1) - f(0).
        f = np.array([10.0, 25.0, 5.0])
        drops = d0 @ f
        assert drops.tolist() == [15.0, -20.0]

    def test_delta_squared_zero_on_2_complex(self):
        c = SimplicialComplex.from_maximal([[0, 1, 2], [1, 2, 3]])
        assert coboundary_squared_is_zero(c, 0)

    @given(st.integers(3, 7))
    @settings(max_examples=5, deadline=None)
    def test_delta_squared_zero_on_cones(self, n):
        # Cone over an n-cycle: a genuine 2-complex.
        faces = [[i, (i + 1) % n, n] for i in range(n)]
        c = SimplicialComplex.from_maximal(faces)
        assert coboundary_squared_is_zero(c, 0)

    def test_apply_coboundary_length_check(self):
        c = cycle_complex()
        with pytest.raises(ValueError):
            apply_coboundary(c, 0, np.zeros(99))

    def test_cochain_space_basics(self):
        space = CochainSpace(cycle_complex(4), 1)
        assert space.rank == 4
        ones = space.from_function(lambda s: 1.0)
        assert ones.sum() == 4.0


class TestKirchhoffAsCohomology:
    def test_coboundaries_are_physical_voltages(self):
        c = mea_wire_complex(3)
        rng = np.random.default_rng(0)
        potentials = rng.standard_normal(len(c.vertices()))
        drops = potential_to_voltage_drops(c, potentials)
        assert is_physical_voltage(c, drops)

    def test_nonexact_cochain_rejected(self):
        """On a cycle, a uniform 'drop' around the loop sums to
        nonzero: it violates L2 and is not a coboundary."""
        c = cycle_complex(5)
        drops = np.ones(5)
        assert not is_physical_voltage(c, drops)
        with pytest.raises(ValueError):
            recover_potentials(c, drops)

    def test_recover_potentials_roundtrip(self):
        c = mea_wire_complex(3)
        rng = np.random.default_rng(1)
        potentials = rng.standard_normal(len(c.vertices()))
        drops = potential_to_voltage_drops(c, potentials)
        recovered = recover_potentials(c, drops)
        # Defined up to a constant: compare differences.
        np.testing.assert_allclose(
            potential_to_voltage_drops(c, recovered), drops, atol=1e-9
        )

    def test_real_drive_voltages_are_exact_cochain(self):
        """The forward solver's wire voltages, read as a 0-cochain,
        produce voltage drops that cohomology certifies as physical."""
        n = 4
        rng = np.random.default_rng(2)
        r = rng.uniform(1000, 8000, size=(n, n))
        sol = solve_drive(r, 1, 2)
        c = mea_wire_complex(n)
        # 0-cochain over the wire nodes, in complex basis order.
        space = CochainSpace(c, 0)
        values = {}
        for i, v in enumerate(sol.h_voltages):
            values[("H", i)] = v
        for j, v in enumerate(sol.v_voltages):
            values[("V", j)] = v
        potentials = np.array(
            [values[s.vertices[0]] for s in space.basis]
        )
        drops = potential_to_voltage_drops(c, potentials)
        assert is_physical_voltage(c, drops)

    def test_current_conservation_residual(self):
        """Branch currents of a solved drive conserve at every node
        except the driven pair (L1 as the dual condition)."""
        n = 3
        rng = np.random.default_rng(3)
        r = rng.uniform(1000, 8000, size=(n, n))
        sol = solve_drive(r, 0, 0)
        c = mea_wire_complex(n)
        edge_space = CochainSpace(c, 1)
        node_space = CochainSpace(c, 0)
        currents = np.zeros(edge_space.rank)
        for idx, s in enumerate(edge_space.basis):
            a, b = s.vertices  # oriented a -> b (sorted order)
            va = sol.h_voltages[a[1]] if a[0] == "H" else sol.v_voltages[a[1]]
            vb = sol.h_voltages[b[1]] if b[0] == "H" else sol.v_voltages[b[1]]
            row = a[1] if a[0] == "H" else b[1]
            col = b[1] if b[0] == "V" else a[1]
            currents[idx] = (va - vb) / r[row, col]
        residual = current_conservation_residual(c, currents)
        for idx, s in enumerate(node_space.basis):
            node = s.vertices[0]
            if node in (("H", 0), ("V", 0)):
                assert abs(residual[idx]) == pytest.approx(
                    abs(sol.total_current), rel=1e-9
                )
            else:
                assert abs(residual[idx]) < 1e-12


class TestHarmonics:
    @given(st.integers(3, 8))
    @settings(max_examples=6, deadline=None)
    def test_harmonic_dimension_matches_gf2_betti_on_cycles(self, n):
        c = cycle_complex(n)
        assert harmonic_dimension(c) == betti_numbers(c)[1] == 1

    def test_mea_harmonics(self):
        for n in (2, 3, 4):
            c = mea_wire_complex(n)
            assert harmonic_dimension(c) == (n - 1) ** 2

    def test_filled_triangle_has_no_harmonics(self):
        c = SimplicialComplex.from_maximal([[0, 1, 2]])
        assert harmonic_dimension(c) == 0
