"""Tests for bit-packed GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import gf2
from repro.topology.gf2 import BitMatrix


def random_dense(rng, rows, cols):
    return rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)


class TestBitMatrixBasics:
    def test_zeros_shape(self):
        m = BitMatrix.zeros(3, 130)
        assert m.nrows == 3 and m.ncols == 130
        assert m.words.shape == (3, 3)  # ceil(130/64) = 3 words

    def test_zero_dimensions_allowed(self):
        m = BitMatrix.zeros(0, 0)
        assert m.to_dense().shape == (0, 0)

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(-1, 2)

    def test_set_get_roundtrip(self):
        m = BitMatrix.zeros(2, 70)
        m.set(1, 69, 1)
        assert m.get(1, 69) == 1
        m.set(1, 69, 0)
        assert m.get(1, 69) == 0

    def test_get_out_of_bounds(self):
        m = BitMatrix.zeros(2, 2)
        with pytest.raises(IndexError):
            m.get(2, 0)
        with pytest.raises(IndexError):
            m.get(0, 2)

    def test_from_dense_roundtrip_various_widths(self):
        rng = np.random.default_rng(0)
        for cols in (1, 7, 63, 64, 65, 128, 130):
            dense = random_dense(rng, 5, cols)
            m = BitMatrix.from_dense(dense)
            np.testing.assert_array_equal(m.to_dense(), dense)

    def test_from_dense_reduces_mod_2(self):
        m = BitMatrix.from_dense(np.array([[2, 3], [4, 5]]))
        np.testing.assert_array_equal(m.to_dense(), [[0, 1], [0, 1]])

    def test_from_rows(self):
        m = BitMatrix.from_rows([[0, 2], [1]], ncols=3)
        np.testing.assert_array_equal(m.to_dense(), [[1, 0, 1], [0, 1, 0]])

    def test_identity(self):
        m = BitMatrix.identity(5)
        np.testing.assert_array_equal(m.to_dense(), np.eye(5, dtype=np.uint8))

    def test_equality(self):
        a = BitMatrix.from_dense([[1, 0], [0, 1]])
        b = BitMatrix.identity(2)
        assert a == b
        b.set(0, 1, 1)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitMatrix.zeros(1, 1))

    def test_xor_row_into(self):
        m = BitMatrix.from_dense([[1, 1, 0], [0, 1, 1]])
        m.xor_row_into(0, 1)
        np.testing.assert_array_equal(m.to_dense()[1], [1, 0, 1])

    def test_row_nonzero(self):
        m = BitMatrix.from_dense([[0, 1, 0, 1]])
        np.testing.assert_array_equal(m.row_nonzero(0), [1, 3])


class TestRank:
    def test_rank_identity(self):
        assert gf2.rank(np.eye(6)) == 6

    def test_rank_zero_matrix(self):
        assert gf2.rank(np.zeros((4, 4))) == 0

    def test_rank_duplicate_rows(self):
        m = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        assert gf2.rank(m) == 2

    def test_rank_mod2_differs_from_real(self):
        # Over R this matrix has rank 2; over GF(2) rows sum to zero.
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        assert gf2.rank(m) == 2
        assert np.linalg.matrix_rank(m.astype(float)) == 3

    @given(
        st.integers(1, 12),
        st.integers(1, 100),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_matches_row_reduce_pivots(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        dense = random_dense(rng, rows, cols)
        rref, pivots = gf2.row_reduce(dense)
        assert gf2.rank(dense) == len(pivots)
        # Every pivot column has exactly one 1 in the RREF.
        rd = rref.to_dense()
        for r, c in enumerate(pivots):
            assert rd[:, c].sum() == 1 and rd[r, c] == 1


class TestNullspace:
    @given(st.integers(1, 10), st.integers(1, 40), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_nullspace_vectors_are_in_kernel(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        dense = random_dense(rng, rows, cols)
        null = gf2.nullspace(dense)
        assert null.nrows == cols - gf2.rank(dense)
        for i in range(null.nrows):
            v = null.to_dense_row(i)
            assert not gf2.matvec(dense, v).any()

    def test_nullspace_basis_is_independent(self):
        rng = np.random.default_rng(3)
        dense = random_dense(rng, 6, 14)
        null = gf2.nullspace(dense)
        assert gf2.rank(null) == null.nrows

    def test_full_rank_square_has_trivial_kernel(self):
        assert gf2.nullspace(np.eye(5)).nrows == 0


class TestMatmulAndSolve:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matmul_matches_dense_mod2(self, a, b, c, seed):
        rng = np.random.default_rng(seed)
        x = random_dense(rng, a, b)
        y = random_dense(rng, b, c)
        got = gf2.matmul(x, y).to_dense()
        want = (x.astype(int) @ y.astype(int)) % 2
        np.testing.assert_array_equal(got, want)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2.matmul(np.eye(2), np.eye(3))

    def test_matvec(self):
        m = np.array([[1, 1, 0], [0, 1, 1]])
        v = np.array([1, 1, 1])
        np.testing.assert_array_equal(gf2.matvec(m, v), [0, 0])

    @given(st.integers(1, 8), st.integers(1, 10), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_solve_consistent_systems(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = random_dense(rng, rows, cols)
        x_true = rng.integers(0, 2, size=cols, dtype=np.uint8)
        rhs = gf2.matvec(m, x_true)
        x = gf2.solve(m, rhs)
        assert x is not None
        np.testing.assert_array_equal(gf2.matvec(m, x), rhs)

    def test_solve_inconsistent_returns_none(self):
        m = np.array([[1, 0], [1, 0]])
        rhs = np.array([1, 0])
        assert gf2.solve(m, rhs) is None

    def test_is_in_rowspace(self):
        m = np.array([[1, 1, 0], [0, 0, 1]])
        assert gf2.is_in_rowspace(m, np.array([1, 1, 1]))
        assert not gf2.is_in_rowspace(m, np.array([1, 0, 0]))


class TestRowReduceInvariants:
    @given(st.integers(1, 10), st.integers(1, 30), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_rref_preserves_rowspace(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        dense = random_dense(rng, rows, cols)
        rref, _ = gf2.row_reduce(dense)
        stacked = np.concatenate([dense, rref.to_dense()], axis=0)
        assert gf2.rank(stacked) == gf2.rank(dense)

    def test_row_reduce_does_not_mutate_input(self):
        m = BitMatrix.from_dense([[1, 1], [1, 0]])
        before = m.to_dense().copy()
        gf2.row_reduce(m)
        np.testing.assert_array_equal(m.to_dense(), before)


class TestEdgeCases:
    def test_from_rows_out_of_range_column(self):
        with pytest.raises(IndexError):
            BitMatrix.from_rows([[5]], ncols=3)

    def test_empty_matrix_operations(self):
        empty = BitMatrix.zeros(0, 5)
        assert gf2.rank(empty) == 0
        null = gf2.nullspace(empty)
        assert null.nrows == 5  # whole space is the kernel

    def test_single_column_matrix(self):
        m = BitMatrix.from_dense([[1], [0], [1]])
        assert gf2.rank(m) == 1
        assert gf2.nullspace(m).nrows == 0

    def test_word_boundary_columns(self):
        """Operations across the 64-bit word boundary are seamless."""
        rng = np.random.default_rng(9)
        dense = rng.integers(0, 2, size=(4, 64), dtype=np.uint8)
        wide = np.concatenate([dense, dense], axis=1)  # 128 cols
        m = BitMatrix.from_dense(wide)
        # Column j and column j+64 are identical => rank equals the
        # rank of the 64-column half.
        assert gf2.rank(m) == gf2.rank(dense)
        null = gf2.nullspace(m)
        assert null.nrows == 128 - gf2.rank(dense)
