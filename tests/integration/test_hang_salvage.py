"""Acceptance: hung workers, watchdog salvage, deadlines end to end.

The PR's acceptance criteria, as tests:

* an injected hang at n = 20 with ``stall_timeout=2`` completes
  *bit-identical* to the fault-free run in bounded wall-clock;
* a blown ``--deadline`` returns the dedicated exit code while the
  run manifest still records ``formation.blocks_salvaged > 0``.
"""

import json
import time

import numpy as np
import pytest

from repro import cli
from repro.core.engine import ParmaEngine
from repro.core.pipeline import run_pipeline
from repro.io.textformat import save_campaign
from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import run_campaign
from repro.observe import Observer
from repro.parallel.pymp import fork_available
from repro.resilience.faults import FaultPlan
from repro.resilience.supervise import DEADLINE_EXIT_CODE, DeadlineExceeded

pytestmark = pytest.mark.skipif(not fork_available(), reason="requires os.fork")


@pytest.fixture(scope="module")
def campaign20():
    return run_campaign(paper_like_spec(20, seed=7), seed=7).campaign


class TestHangSalvageBitIdentical:
    def test_hang_at_n20_is_bit_identical_and_bounded(self, campaign20, tmp_path):
        meas = campaign20.measurements[0]
        clean_dir = tmp_path / "clean"
        hang_dir = tmp_path / "hang"
        clean = ParmaEngine(strategy="pymp", num_workers=4).form(
            meas, output_dir=clean_dir
        )

        engine = ParmaEngine(
            strategy="pymp",
            num_workers=4,
            faults=FaultPlan(seed=7, hang_workers=(1,), hang_after_items=3),
            stall_timeout=2.0,
        )
        start = time.monotonic()
        faulted = engine.form(meas, output_dir=hang_dir)
        elapsed = time.monotonic() - start

        # Bounded: stall detection (2s) + salvage, nowhere near a hang.
        assert elapsed < 30.0
        # Identical formation output.
        assert faulted.terms_formed == clean.terms_formed
        assert faulted.checksum == pytest.approx(clean.checksum, rel=1e-12)
        np.testing.assert_array_equal(
            faulted.per_worker_terms, clean.per_worker_terms
        )
        # The loss really happened and was salvaged, not retried away.
        assert faulted.stalled_ranks == (1,)
        assert faulted.blocks_salvaged > 0
        assert faulted.blocks_reformed > 0
        # Salvaged + re-formed covers the whole item set (4n^2 pairs).
        assert faulted.blocks_salvaged + faulted.blocks_reformed == 4 * 20 * 20
        # Part files are byte-identical, including the dead rank's
        # (re-written by the parent in original item order).
        clean_parts = sorted(p.name for p in clean_dir.iterdir())
        hang_parts = sorted(p.name for p in hang_dir.iterdir())
        assert clean_parts == hang_parts
        for name in clean_parts:
            assert (hang_dir / name).read_bytes() == (
                clean_dir / name
            ).read_bytes(), f"part file {name} differs after salvage"

    def test_salvage_survives_full_parametrize_with_events(self, campaign20):
        meas = campaign20.measurements[0]
        engine = ParmaEngine(
            strategy="pymp",
            num_workers=4,
            faults=FaultPlan(seed=7, hang_workers=(2,), hang_after_items=1),
            stall_timeout=1.0,
        )
        result = engine.parametrize(meas)
        assert result.solve.converged
        assert result.formation.stalled_ranks == (2,)
        assert any("watchdog" in e for e in result.events)
        assert any("salvaged" in e for e in result.events)
        assert "salvage" in result.summary()


class TestDeadlineExitAndManifest:
    def test_deadline_exceeded_with_salvage_in_manifest(self, tmp_path):
        # Every timepoint hangs a worker, so each costs >= stall_timeout
        # and the 4-timepoint day cannot finish inside the deadline;
        # timepoint 0 finishes comfortably, so salvage counters are in
        # the manifest even though the run as a whole timed out.
        campaign = run_campaign(paper_like_spec(12, seed=3), seed=3).campaign
        trace_dir = tmp_path / "trace"
        obs = Observer(trace_dir=trace_dir)
        engine = ParmaEngine(
            strategy="pymp",
            num_workers=4,
            faults=FaultPlan(seed=3, hang_workers=(1,), hang_after_items=1),
            stall_timeout=0.6,
            observer=obs,
        )
        with pytest.raises(DeadlineExceeded) as err:
            run_pipeline(campaign, engine=engine, deadline=2.3, observer=obs)
        # Partial results ride on the exception instead of being lost.
        assert err.value.partial is not None
        assert len(err.value.partial.results) >= 1
        first = err.value.partial.results[0]
        assert first.formation.blocks_salvaged > 0

        manifest = obs.finalize(config={"test": "deadline"})
        path = trace_dir / "manifest.json"
        recorded = json.loads(path.read_text())
        assert recorded["run_id"] == manifest["run_id"]
        metrics = recorded["metrics"]
        assert metrics["formation.blocks_salvaged"]["value"] > 0
        assert metrics["supervise.workers_killed"]["value"] >= 1

    def test_cli_returns_dedicated_exit_code(self, tmp_path, capsys):
        camp_path = tmp_path / "campaign.txt"
        campaign = run_campaign(paper_like_spec(10, seed=5), seed=5).campaign
        save_campaign(campaign, camp_path)

        code = cli.main(["monitor", str(camp_path), "--deadline", "0.001"])
        assert code == DEADLINE_EXIT_CODE
        err = capsys.readouterr().err
        assert "deadline" in err

        code = cli.main(
            ["solve", str(camp_path), "--strategy", "single",
             "--deadline", "0.001"]
        )
        assert code == DEADLINE_EXIT_CODE

    def test_deadline_exit_code_distinct_from_worker_failure(self):
        assert DEADLINE_EXIT_CODE not in (0, 1, 2, 75, 124)
