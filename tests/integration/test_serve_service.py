"""Acceptance tests for the persistent solve service (``repro.serve``).

Covers the serving pillars end to end:

- many concurrent submissions across two grid sizes, batching on,
  every request answered with a valid run manifest;
- served results bit-identical to a standalone
  ``ParmaEngine.parametrize`` of the same measurement;
- warm-cache speedup: a later same-``n`` request is measurably faster
  than the cold first one (shared per-``n`` template cache);
- SIGTERM under load drains cleanly: in-flight requests finish,
  queued ones are rejected with a retriable status, the server
  process exits 0;
- the shipped ``examples/serve_client.py`` runs green.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.core.templates import clear_template_cache
from repro.kirchhoff.forward import clear_laplacian_cache
from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import run_campaign
from repro.observe import Observer
from repro.observe.manifest import load_manifest, validate_manifest
from repro.serve import (
    RETRIABLE_STATUSES,
    STATUS_OK,
    Request,
    ServiceConfig,
    SolveClient,
    SolveService,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"


def _measurements(n: int, seed: int):
    return run_campaign(paper_like_spec(n, seed=seed), seed=seed).campaign.measurements


@pytest.fixture()
def service(tmp_path):
    obs = Observer()
    config = ServiceConfig(
        socket_path=tmp_path / "parma.sock",
        results_dir=tmp_path / "results",
        max_queue_depth=32,
        max_batch=8,
        linger=0.05,
        observer=obs,
    )
    svc = SolveService(config)
    svc.start()
    client = SolveClient(config.socket_path, timeout=120.0)
    assert client.wait_ready(timeout=10.0)
    yield svc, client, obs
    svc.stop()


class TestConcurrentBatching:
    def test_eight_concurrent_requests_two_sizes(self, service):
        """Acceptance: >=8 concurrent submissions across two n values."""
        svc, client, obs = service
        small = _measurements(10, seed=3)
        large = _measurements(13, seed=4)
        jobs = [(f"s{i}", small[i]) for i in range(4)] + [
            (f"l{i}", large[i]) for i in range(4)
        ]

        responses: dict[str, object] = {}
        lock = threading.Lock()

        def submit(name, meas):
            r = client.solve(
                meas.z_kohm, voltage=meas.voltage, hour=meas.hour, id=name
            )
            with lock:
                responses[name] = r

        threads = [threading.Thread(target=submit, args=j) for j in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)

        assert len(responses) == 8
        for name, meas in jobs:
            r = responses[name]
            assert r.status == STATUS_OK, f"{name}: {r.error}"
            # Every request carries a valid manifest of its own run.
            manifest = validate_manifest(load_manifest(r.manifest_path))
            assert manifest["config"]["request_id"] == name
            assert manifest["config"]["n"] == meas.z_kohm.shape[0]
            assert manifest["metrics"]["formation.runs"]["value"] >= 1
            # Bit-identical to a standalone engine run on the same input.
            reference = ParmaEngine(
                strategy="single", threshold_sigmas=3.0
            ).parametrize(meas)
            assert np.array_equal(r.resistance_array(), reference.resistance)
            assert r.num_regions == reference.detection.num_regions
        # Batching actually coalesced: fewer formation batches than
        # requests (the 0.05s linger holds same-n requests together).
        snapshot = obs.metrics.snapshot()
        assert snapshot["serve.requests"]["value"] == 8
        assert 2 <= snapshot["serve.batches"]["value"] < 8

    def test_second_same_n_request_is_faster_warm(self, service):
        """Acceptance: warm caches make the second same-n request faster."""
        svc, client, obs = service
        # Unusual n so no other test has warmed this template; clear
        # process-global caches for an honest cold start.
        clear_template_cache()
        clear_laplacian_cache()
        meas = _measurements(14, seed=5)

        cold = client.solve(meas[0].z_kohm, hour=meas[0].hour, id="cold")
        assert cold.ok and not cold.cache_warm
        warm_elapsed = []
        for i in range(3):
            warm = client.solve(
                meas[1 + i % 3].z_kohm, hour=float(i), id=f"warm{i}"
            )
            assert warm.ok and warm.cache_warm
            warm_elapsed.append(warm.elapsed_seconds)
        # min-of-3 shields against scheduler noise; the cold request
        # paid the per-n template build, the warm ones reuse it.
        assert min(warm_elapsed) < cold.elapsed_seconds

    def test_example_client_runs_green(self):
        """The shipped serving example must stay runnable."""
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "examples" / "serve_client.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("manifest: ") == 3
        assert "service drained and stopped." in proc.stdout


class TestSigtermDrain:
    def test_sigterm_under_load_drains_cleanly(self, tmp_path):
        """Acceptance: SIGTERM finishes in-flight work, rejects queued
        requests with a retriable status, and exits 0."""
        socket_path = tmp_path / "daemon.sock"
        results_dir = tmp_path / "results"
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--socket",
                str(socket_path),
                "--results",
                str(results_dir),
                "--linger",
                "0.02",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            client = SolveClient(socket_path, timeout=120.0)
            assert client.wait_ready(timeout=30.0)

            meas = _measurements(16, seed=6)
            responses = []
            lock = threading.Lock()
            first_done = threading.Event()

            def submit(index):
                r = client.submit(
                    Request(
                        z=meas[index % len(meas)].z_kohm.tolist(),
                        hour=float(index),
                        id=f"load{index}",
                    )
                )
                with lock:
                    responses.append(r)
                first_done.set()

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            # Let at least one request complete, then drain mid-load.
            assert first_done.wait(timeout=120.0)
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(timeout=300.0)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 0, out
        assert "drained; all in-flight requests completed" in out
        assert len(responses) == 8
        statuses = {r.status for r in responses}
        assert statuses <= {STATUS_OK} | RETRIABLE_STATUSES
        assert STATUS_OK in statuses
        for r in responses:
            if r.status in RETRIABLE_STATUSES:
                # Retriable rejections map to the resubmit exit code.
                assert r.retriable and r.exit_status == 75
            else:
                validate_manifest(load_manifest(r.manifest_path))

    def test_post_drain_submission_is_rejected_retriable(self, service):
        svc, client, obs = service
        meas = _measurements(8, seed=9)
        svc.request_drain()
        response = client.solve(meas[0].z_kohm)
        assert response.status in RETRIABLE_STATUSES
        assert response.retriable
