"""Integration tests: whole-system flows across subpackage boundaries."""

import numpy as np
import pytest

from repro import ParmaEngine, run_pipeline
from repro.anomaly.metrics import field_relative_error, score_mask
from repro.core.solver import solve_nested
from repro.io.textformat import load_campaign, save_campaign
from repro.kirchhoff.forward import measure
from repro.mea.synthetic import anomaly_mask, paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign


class TestMeasureInvertDetect:
    """The full physics loop: field -> measure -> invert -> detect."""

    def test_loop_closes_noise_free(self):
        spec = paper_like_spec(10, num_anomalies=2, seed=21)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=21)
        meas = run.campaign.measurements[0]
        result = ParmaEngine(strategy="balanced", num_workers=2).parametrize(meas)
        stats = field_relative_error(result.resistance, run.ground_truth[0])
        assert stats["max"] < 1e-6

    def test_loop_with_instrument_noise(self):
        spec = paper_like_spec(10, num_anomalies=1, seed=22)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.002), seed=22)
        meas = run.campaign.measurements[0]
        result = ParmaEngine(strategy="single").parametrize(meas)
        stats = field_relative_error(result.resistance, run.ground_truth[0])
        # Ill-posed inversion amplifies 0.2 % measurement noise, but
        # the field remains usable (anomaly contrast is ~2-3x).
        assert stats["median"] < 0.15

    def test_anomaly_found_through_disk_roundtrip(self, tmp_path):
        """Campaign survives text serialization, then detection works
        on the reloaded data — the paper's Excel -> text -> Parma flow."""
        spec = paper_like_spec(8, num_anomalies=1, seed=23)
        run = run_campaign(spec, WetLabConfig(noise_rel=0.0), seed=23)
        path = tmp_path / "campaign.txt"
        save_campaign(run.campaign, path)
        reloaded = load_campaign(path)
        result = ParmaEngine(
            strategy="single", threshold_sigmas=3.0
        ).parametrize(reloaded.measurements[0])
        truth = anomaly_mask(spec)
        assert (result.detection.mask & truth).any()


class TestTopologyDrivesParallelism:
    """The homology machinery and the partitioner must agree."""

    def test_betti_equals_partition_hole_count(self):
        from repro.core.partition import partition_betti
        from repro.mea.device import MEAGrid
        from repro.mea.graph import device_complex
        from repro.topology.homology import betti_numbers

        n = 5
        beta1 = betti_numbers(device_complex(MEAGrid(n)))[1]
        part = partition_betti(n, num_workers=beta1)
        used_workers = len(np.unique(part.worker_of))
        assert beta1 == (n - 1) ** 2 == used_workers

    def test_cyclomatic_consistency_across_stack(self):
        """Maxwell number from graph theory == beta_1 from homology ==
        mesh equations needed by circuit analysis."""
        from repro.kirchhoff.laws import Circuit, ResistorEdge
        from repro.mea.device import MEAGrid
        from repro.mea.graph import wire_graph
        from repro.topology.cycles import cyclomatic_number

        grid = MEAGrid(4)
        g = wire_graph(grid)
        maxwell = cyclomatic_number(list(g.nodes), list(g.edges))
        circuit = Circuit([
            ResistorEdge(u, v, 1000.0) for u, v in g.edges
        ])
        assert circuit.num_independent_l2() == maxwell == 9


class TestSolverAgainstBaseline:
    def test_parma_and_path_baseline_agree_at_n2(self):
        from repro.kirchhoff.pathsystem import build_path_system, solve_path_system
        from repro.mea.device import MEAGrid

        rng = np.random.default_rng(5)
        r_true = rng.uniform(2000, 8000, size=(2, 2))
        z = measure(r_true)
        r_parma = solve_nested(z).r_estimate
        r_baseline = solve_path_system(build_path_system(MEAGrid(2)), z)
        np.testing.assert_allclose(r_parma, r_baseline, rtol=1e-5)
        np.testing.assert_allclose(r_parma, r_true, rtol=1e-6)

    def test_parma_beats_baseline_at_n3(self):
        """Above n=2 the path model is approximate physics; Parma's
        exact formulation recovers truth, the baseline cannot."""
        from repro.kirchhoff.pathsystem import build_path_system, solve_path_system
        from repro.mea.device import MEAGrid

        rng = np.random.default_rng(6)
        r_true = rng.uniform(2000, 8000, size=(3, 3))
        z = measure(r_true)
        err_parma = np.abs(solve_nested(z).r_estimate - r_true) / r_true
        r_base = solve_path_system(build_path_system(MEAGrid(3)), z)
        err_base = np.abs(r_base - r_true) / r_true
        assert err_parma.max() < 1e-8
        assert err_base.max() > 0.01


class TestCampaignMonitoring:
    def test_day_long_monitoring_detects_growth(self):
        spec = paper_like_spec(10, num_anomalies=1, seed=31)
        run = run_campaign(
            spec,
            WetLabConfig(noise_rel=0.0, growth_per_hour=0.03),
            seed=31,
        )
        out = run_pipeline(
            run.campaign,
            engine=ParmaEngine(strategy="single"),
            growth_threshold=0.15,
        )
        truth = anomaly_mask(spec)
        assert out.drift_detection is not None
        score = score_mask(out.drift_detection.mask, truth)
        assert score.recall > 0.2  # growth core detected
