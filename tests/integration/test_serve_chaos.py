"""Acceptance: the service survives executor death without wrong answers.

The contract under test (the crash-isolation tentpole): SIGKILL an
executor worker mid-batch while clients are submitting concurrently,
and (a) the service stays up, (b) every request either completes via
salvage onto a respawned worker or comes back as retriable
``worker-lost``, (c) a client configured with retries ends with a
successful solve, and (d) every successful solve is bit-identical to a
standalone :class:`repro.core.engine.ParmaEngine` run.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.observe import Observer
from repro.parallel.pymp import fork_available
from repro.resilience.faults import FaultPlan
from repro.serve import (
    RETRIABLE_STATUSES,
    STATUS_OK,
    ServiceConfig,
    SolveClient,
    SolveService,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="subprocess executors require os.fork"
)

N = 10


def _z(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(2000.0, 11000.0, size=(N, N))


def _expected(seed: int) -> np.ndarray:
    engine = ParmaEngine(strategy="single", threshold_sigmas=3.0)
    return engine.parametrize(_z(seed)).resistance


def _service(tmp_path, obs, **overrides):
    overrides.setdefault("serve_workers", 1)  # deterministic slot routing
    config = ServiceConfig(
        socket_path=tmp_path / "chaos.sock",
        results_dir=tmp_path / "results",
        linger=0.0,
        executor="subprocess",
        term_grace=0.2,
        observer=obs,
        **overrides,
    )
    svc = SolveService(config)
    svc.start()
    assert svc.executor_mode == "subprocess"
    client = SolveClient(config.socket_path, timeout=120.0)
    assert client.wait_ready(timeout=10.0)
    return svc, client


class TestWorkerDeathUnderLoad:
    def test_injected_kill_mid_batch_salvages_every_request(self, tmp_path):
        # Generation 0 dies at its second request; all members of the
        # wedged batch must be salvaged onto the respawn.
        obs = Observer()
        svc, client = _service(
            tmp_path, obs, faults=FaultPlan(serve_kill_requests=(1,))
        )
        try:
            results: dict[int, object] = {}
            lock = threading.Lock()

            def submit(seed: int) -> None:
                response = client.solve(_z(seed), id=f"chaos-{seed}")
                with lock:
                    results[seed] = response

            threads = [
                threading.Thread(target=submit, args=(seed,))
                for seed in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert len(results) == 6
            for seed, response in results.items():
                assert response.status == STATUS_OK, response.error
                assert np.array_equal(
                    response.resistance_array(), _expected(seed)
                )
            assert svc.pool.respawns >= 1
            assert svc.pool.salvaged >= 1
            stats = client.stats()
            assert stats["worker_respawns"] >= 1
            assert stats["requests_salvaged"] >= 1
        finally:
            svc.stop()

    def test_external_sigkill_mid_batch_keeps_service_up(self, tmp_path):
        # No fault plan at all: murder the executor child from outside
        # while its batch runs, like the OOM killer would.
        obs = Observer()
        svc, client = _service(tmp_path, obs, max_salvage=2)
        try:
            victim = svc.pool._children[0]
            assert victim is not None

            def assassin() -> None:
                time.sleep(0.3)  # let the batch reach the child
                try:
                    os.kill(victim.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

            killer = threading.Thread(target=assassin)
            results: dict[int, object] = {}
            lock = threading.Lock()

            def submit(seed: int) -> None:
                response = client.solve(_z(seed), id=f"sigkill-{seed}")
                with lock:
                    results[seed] = response

            threads = [
                threading.Thread(target=submit, args=(seed,))
                for seed in range(6)
            ]
            killer.start()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            killer.join(timeout=10.0)

            assert len(results) == 6
            for seed, response in results.items():
                assert (
                    response.status == STATUS_OK
                    or response.status in RETRIABLE_STATUSES
                )
                if response.status == STATUS_OK:
                    assert np.array_equal(
                        response.resistance_array(), _expected(seed)
                    )
            # The service is alive and still solving after the murder.
            assert client.ping()["kind"] == "pong"
            fresh = client.solve(_z(99), id="post-mortem")
            assert fresh.status == STATUS_OK
            assert np.array_equal(fresh.resistance_array(), _expected(99))
        finally:
            svc.stop()

    def test_client_retry_rides_out_worker_lost(self, tmp_path):
        # max_salvage=0: the first generation's death answers the
        # victim with retriable worker-lost immediately.  A client with
        # retries then resubmits the same id and generation 1 (kills
        # gated off) completes it — bit-identical to standalone.
        obs = Observer()
        svc, client = _service(
            tmp_path,
            obs,
            max_salvage=0,
            faults=FaultPlan(
                serve_kill_requests=(0,), serve_kill_generations=1
            ),
        )
        try:
            retry_client = SolveClient(
                svc.config.socket_path, timeout=120.0, retries=3, backoff=0.05
            )
            response = retry_client.solve(_z(5), id="ride-out")
            assert response.status == STATUS_OK
            assert np.array_equal(response.resistance_array(), _expected(5))
            assert svc.pool.respawns >= 1
            snapshot = obs.metrics.snapshot()
            assert snapshot["serve.responses.worker_lost"]["value"] >= 1.0
        finally:
            svc.stop()

    def test_hung_worker_is_reclaimed(self, tmp_path):
        obs = Observer()
        svc, client = _service(
            tmp_path,
            obs,
            stall_timeout=1.0,
            faults=FaultPlan(serve_hang_requests=(0,)),
        )
        try:
            response = client.solve(_z(1), id="hung")
            assert response.status == STATUS_OK
            assert np.array_equal(response.resistance_array(), _expected(1))
            assert svc.pool.respawns >= 1
        finally:
            svc.stop()

    def test_corrupt_frame_recovers(self, tmp_path):
        obs = Observer()
        svc, client = _service(
            tmp_path, obs, faults=FaultPlan(serve_corrupt_frames=(0,))
        )
        try:
            response = client.solve(_z(2), id="corrupted")
            assert response.status == STATUS_OK
            assert np.array_equal(response.resistance_array(), _expected(2))
            assert svc.pool.respawns >= 1
        finally:
            svc.stop()
