"""Failure-injection tests: the system must fail loudly, not wrongly."""

import os
import signal

import numpy as np
import pytest

from repro.core.strategies import PyMPStrategy
from repro.io.equations_io import load_blocks_binary, save_blocks_binary
from repro.io.textformat import FormatError, load_campaign
from repro.core.equations import form_all_blocks
from repro.mea.wetlab import quick_device_data
from repro.parallel.mpi import MPIError, run_mpi
from repro.parallel.pymp import Parallel, ParallelError


class TestForkedWorkerFailures:
    def test_worker_exception_surfaces(self):
        with pytest.raises(ParallelError):
            with Parallel(3) as p:
                if p.thread_num == 2:
                    raise ValueError("injected")

    def test_worker_hard_exit_detected(self):
        """A worker dying via os._exit (no Python unwind) must still
        fail the region."""
        with pytest.raises(ParallelError):
            with Parallel(2) as p:
                if p.thread_num == 1:
                    os._exit(17)

    def test_worker_killed_by_signal_detected(self):
        with pytest.raises(ParallelError):
            with Parallel(2) as p:
                if p.thread_num == 1:
                    os.kill(os.getpid(), signal.SIGKILL)

    def test_parent_exception_propagates_and_reaps(self):
        """If the parent's body raises, its own exception wins and the
        children are still reaped (no zombie accumulation)."""
        with pytest.raises(ZeroDivisionError):
            with Parallel(2) as p:
                if p.thread_num == 0:
                    _ = 1 / 0

    def test_region_usable_after_failure(self):
        with pytest.raises(ParallelError):
            with Parallel(2) as p:
                if p.thread_num == 1:
                    raise RuntimeError("boom")
        # A fresh region still works.
        from repro.parallel.pymp import shared_array

        out = shared_array((4,), dtype=np.int64)
        with Parallel(2) as p:
            for i in p.range(4):
                out[i] = 1
        assert (out == 1).all()


class TestMPIRankFailures:
    def test_crashed_rank_fails_run(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                os._exit(3)
            return "ok"

        with pytest.raises(MPIError):
            run_mpi(prog, 2)

    def test_peer_disconnect_detected_mid_recv(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                os._exit(1)  # dies before sending
            try:
                comm.recv(source=0)
            except MPIError:
                return "peer gone"
            return "unexpected"

        with pytest.raises(MPIError):
            # Rank 0 failing makes the whole run raise, even though
            # rank 1 handled its side gracefully.
            run_mpi(prog, 2)


class TestCorruptArtifacts:
    def test_truncated_equation_file(self, tmp_path):
        _, z = quick_device_data(4, seed=41)
        path = tmp_path / "eq.bin"
        save_blocks_binary(form_all_blocks(z), path)
        data = path.read_bytes()
        # Cut strictly inside a block (len//2 is a block boundary for
        # this device, which a reader must treat as clean EOF).
        (tmp_path / "trunc.bin").write_bytes(data[: len(data) // 2 + 13])
        with pytest.raises(ValueError, match="truncated|corrupt"):
            load_blocks_binary(tmp_path / "trunc.bin")

    def test_bitflipped_magic(self, tmp_path):
        _, z = quick_device_data(3, seed=42)
        path = tmp_path / "eq.bin"
        save_blocks_binary(form_all_blocks(z), path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        (tmp_path / "flip.bin").write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            load_blocks_binary(tmp_path / "flip.bin")

    def test_garbage_campaign_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("this is not a measurement file\n1 2 3\n")
        with pytest.raises(FormatError):
            load_campaign(path)

    def test_strategy_output_dir_is_a_file(self, tmp_path):
        """Pointing output_dir at an existing regular file must fail
        loudly.  (A chmod-based unwritable-dir test is useless here:
        the suite runs as root, which bypasses permission bits.)"""
        _, z = quick_device_data(4, seed=43)
        blocked = tmp_path / "blocked"
        blocked.write_text("i am a file, not a directory")
        with pytest.raises((OSError, ParallelError)):
            PyMPStrategy(2).run(z, output_dir=blocked)
