"""Acceptance tests: interrupted runs resume to fault-free answers.

These are the PR's two hard acceptance criteria:

* a campaign killed mid-run and resumed from its checkpoint produces
  the **identical** final resistance fields as a fault-free run;
* corrupted pair blocks in a streamed formation are detected by
  checksum and re-formed — never silently consumed.
"""

import numpy as np
import pytest

from repro.core.engine import ParmaEngine
from repro.core.pipeline import run_pipeline
from repro.core.streaming import stream_to_file
from repro.mea.synthetic import paper_like_spec
from repro.mea.wetlab import WetLabConfig, run_campaign
from repro.parallel.pymp import fork_available
from repro.resilience import (
    FaultPlan,
    InjectedAbort,
    RetryPolicy,
    stream_to_file_checkpointed,
)

N = 6
SEED = 7


@pytest.fixture(scope="module")
def day():
    return run_campaign(
        paper_like_spec(N, seed=SEED),
        config=WetLabConfig(hours=(0.0, 6.0, 12.0)),
        seed=SEED,
    )


@pytest.fixture(scope="module")
def fault_free(day):
    return run_pipeline(day.campaign, engine=ParmaEngine(strategy="single"))


class TestCampaignKillAndResume:
    def test_resume_reproduces_fault_free_fields(
        self, tmp_path, day, fault_free
    ):
        ck = tmp_path / "ck"
        with pytest.raises(InjectedAbort):
            run_pipeline(
                day.campaign,
                engine=ParmaEngine(strategy="single"),
                checkpoint_dir=ck,
                faults=FaultPlan(seed=SEED, abort_after_timepoints=2),
            )
        assert (ck / "manifest.json").exists()

        resumed = run_pipeline(
            day.campaign,
            engine=ParmaEngine(strategy="single"),
            checkpoint_dir=ck,
        )
        assert len(resumed.results) == len(fault_free.results)
        for ref, got in zip(fault_free.results, resumed.results):
            assert np.array_equal(ref.resistance, got.resistance)

        restored = [
            r
            for r in resumed.results
            if r.formation.strategy.startswith("resumed:")
        ]
        assert len(restored) == 2
        assert all(
            any("resumed from checkpoint" in e for e in r.events)
            for r in restored
        )

    def test_corrupt_checkpoint_entry_is_recomputed(
        self, tmp_path, day, fault_free
    ):
        ck = tmp_path / "ck"
        run_pipeline(
            day.campaign,
            engine=ParmaEngine(strategy="single"),
            checkpoint_dir=ck,
        )
        # Flip one byte of a checkpointed field: the digest check must
        # catch it and recompute rather than serve the corrupt field.
        victim = ck / "field-0001.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))

        resumed = run_pipeline(
            day.campaign,
            engine=ParmaEngine(strategy="single"),
            checkpoint_dir=ck,
        )
        for ref, got in zip(fault_free.results, resumed.results):
            assert np.array_equal(ref.resistance, got.resistance)
        # Position 0 restores; 1 (corrupt) and everything after recompute.
        assert resumed.results[0].formation.strategy.startswith("resumed:")
        assert not resumed.results[1].formation.strategy.startswith("resumed:")

    def test_no_resume_flag_recomputes_everything(self, tmp_path, day):
        ck = tmp_path / "ck"
        run_pipeline(
            day.campaign,
            engine=ParmaEngine(strategy="single"),
            checkpoint_dir=ck,
        )
        rerun = run_pipeline(
            day.campaign,
            engine=ParmaEngine(strategy="single"),
            checkpoint_dir=ck,
            resume=False,
        )
        assert not any(
            r.formation.strategy.startswith("resumed:") for r in rerun.results
        )


class TestStreamCorruptionNeverConsumed:
    def test_corrupt_and_dropped_blocks_reformed_byte_identically(
        self, tmp_path, day
    ):
        z = day.campaign.measurements[0].z_kohm
        ref_path = tmp_path / "clean.bin"
        stream_to_file(z, ref_path)

        chaos_dir = tmp_path / "stream"
        plan = FaultPlan(
            seed=SEED,
            corrupt_blocks=(N + 2,),
            drop_blocks=(3 * N + 1,),
            abort_after_blocks=(N * N) // 2,
        )
        with pytest.raises(InjectedAbort):
            stream_to_file_checkpointed(z, chaos_dir, faults=plan)

        cp, report, formed = stream_to_file_checkpointed(z, chaos_dir)
        assert cp.complete
        assert report.blocks_discarded > 0, (
            "corruption must be detected, not consumed"
        )
        assert "checksum mismatch" in report.first_bad_reason
        assert formed > 0
        assert cp.data_path.read_bytes() == ref_path.read_bytes()


@pytest.mark.skipif(not fork_available(), reason="requires os.fork")
class TestWorkerKillRecovery:
    def test_killed_worker_retried_to_clean_checksum(self, day):
        meas = day.campaign.measurements[0]
        clean = ParmaEngine(strategy="pymp", num_workers=3).form(meas)
        engine = ParmaEngine(
            strategy="pymp",
            num_workers=3,
            faults=FaultPlan(seed=SEED, kill_workers=(1,), kill_attempts=1),
            retry=RetryPolicy(max_retries=2),
        )
        result = engine.parametrize(meas)
        assert result.formation.checksum == pytest.approx(clean.checksum)
        assert any("attempt 1 failed" in e for e in result.events)
