"""Each test pins one quantitative claim from the paper's text."""

import numpy as np
import pytest

from repro.core.categories import total_equations, total_unknowns
from repro.core.partition import (
    partition_balanced,
    partition_by_category,
    partition_betti,
)
from repro.kirchhoff.paths import count_paths_exact, total_paths_paper
from repro.mea.device import MEAGrid
from repro.mea.graph import device_complex, mesh_count
from repro.mea.kdim import KDimMEA
from repro.topology.homology import betti_numbers


class TestSectionII:
    def test_device_composition(self):
        """§II-B: 'a n x n array comprises 2n^2 joints/junctions and
        n^2 resistors'."""
        for n in (3, 15, 20):
            grid = MEAGrid(n)
            assert grid.num_joints == 2 * n * n
            assert grid.num_resistors == n * n

    def test_figure1_structure(self):
        """§II-B: 3 horizontal + 3 vertical wires, 9 resistors,
        18 joints 0..17."""
        grid = MEAGrid(3)
        assert grid.horizontal_wires() == ["A", "B", "C"]
        assert grid.vertical_wires() == ["I", "II", "III"]
        assert [j.index for j in grid.joints()] == list(range(18))

    def test_path_explosion_claim(self):
        """§II-C: 'For a n x n array, there are overall n^(n+1)
        possible paths' — exact at n = 3 (the worked example), an
        estimate elsewhere."""
        assert total_paths_paper(3) == 81
        assert 9 * count_paths_exact(3, 3) == 81

    def test_infeasible_beyond_n6(self):
        """§II-C/[15]: 'the path-based approach is unfeasible on
        mainstream computer hardware and systems when n > 6'."""
        from repro.kirchhoff.paths import storage_estimate_bytes

        assert storage_estimate_bytes(7) > 2**30  # > 1 GiB at n = 7


class TestSectionIII:
    def test_proposition_1(self):
        """'Every microelectrode array is an abstract simplicial
        complex' of dimension 1."""
        for n in (2, 4):
            c = device_complex(MEAGrid(n))
            assert c.dimension == 1
            assert c.is_simplicial()

    def test_betti_counts_holes(self):
        """β1 = number of basic holes = (n-1)^2 for the 2-D device."""
        for n in (2, 3, 5):
            c = device_complex(MEAGrid(n))
            assert betti_numbers(c) == (1, (n - 1) ** 2)


class TestSectionIV:
    def test_equation_count_reduction(self):
        """§IV-A: O(n^n) paths -> 2n^3 equations with (2n-1) n^2
        unknowns — 'the saving is significant'."""
        n = 10
        assert total_equations(n) == 2_000
        assert total_unknowns(n) == 1_900
        assert total_paths_paper(n) > 10**10  # vs 10^11 paths

    def test_joint_count_accounting(self):
        """§IV-A: 'for each pair of endpoints, there are 2n joints...
        or for the entire system a polynomial number 2n * n^2'."""
        n = 7
        per_pair_eqs = total_equations(n) // (n * n)
        assert per_pair_eqs == 2 * n

    def test_four_constraint_types(self):
        """§IV-A: four categories, each independent of the others."""
        p = partition_by_category(6)
        assert p.num_workers == 4
        assert len(set(int(c) for c in p.worker_of)) == 4

    def test_parallel_limited_to_four_threads(self):
        """§IV-A: 'we are restricted from having more than four threads
        ... to parallelize the entire set of equations'."""
        p = partition_by_category(12)
        assert p.num_workers == 4  # regardless of available cores

    def test_category_skew_claim(self):
        """§IV-C.1: 'the number of sources and destination joints is
        [O(n^2)], while two intermediate types are n^2 (n-1) — roughly
        the cubic order of the former'."""
        from repro.core.categories import Category, equations_per_device

        n = 20
        per = equations_per_device(n)
        assert per[Category.UA] == n * n * (n - 1)
        assert per[Category.UA] / per[Category.SOURCE] == n - 1

    def test_balanced_reduces_makespan(self):
        """§IV-C.1: work balancing 'could help reduce the end-to-end
        execution time'."""
        n = 16
        assert (
            partition_balanced(n, 4).makespan()
            < partition_by_category(n).makespan()
        )

    def test_betti_aware_parallelism_budget(self):
        """§IV-B: '(n-1)^k-fold' parallelism for the k-dim device."""
        assert mesh_count(MEAGrid(9)) == 64
        assert KDimMEA(9, 3).num_unit_cells == 8**3

    def test_linear_time_argument(self):
        """§IV-B: O(n^{k+1}) / (n-1)^k = O(n) per-hole share."""
        mea = KDimMEA(50, 2)
        share = mea.theoretical_parallel_time_units()
        assert share <= 2 * 50 * (50 / 49) ** 2 + 1

    def test_pymp_exceeds_four_workers(self):
        """§IV-C.2: fine-grained decomposition uses any worker count."""
        p = partition_betti(10, 16)
        assert len(np.unique(p.worker_of)) == 16


class TestSectionV:
    def test_measured_value_ranges(self):
        """§V-B: 'resistance values of cells range between 2,000 and
        11,000 Kilohm, while the electrical voltage is 5 volts'."""
        from repro.mea.synthetic import (
            PAPER_R_MAX_KOHM,
            PAPER_R_MIN_KOHM,
            PAPER_VOLTAGE,
            generate_field,
            paper_like_spec,
        )

        assert (PAPER_R_MIN_KOHM, PAPER_R_MAX_KOHM) == (2000.0, 11000.0)
        assert PAPER_VOLTAGE == 5.0
        field = generate_field(paper_like_spec(20, seed=1), seed=1)
        assert field.min() >= 2000.0 and field.max() <= 11000.0

    def test_four_daily_measurements(self):
        """§V-B: 'measured four times a day: 0, 6, 12, and 24 hour'."""
        from repro.mea.wetlab import WetLabConfig

        assert WetLabConfig().hours == (0.0, 6.0, 12.0, 24.0)

    def test_scales_up_to_100(self):
        """§V-A: 'evaluated ... on up to 100 x 100 arrays': the
        equation generator handles n = 100 blocks."""
        from repro.core.equations import form_pair_block

        blk = form_pair_block(100, 57, 42, z=50.0)
        assert blk.num_terms == 2 * 100 * 100
