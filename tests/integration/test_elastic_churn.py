"""Acceptance: the n=20 elastic churn campaign is bit-identical.

One worker SIGKILLed mid-campaign, the pool shrunk then grown — the
part files must match a quiet run byte for byte, and the manifest
must carry the churn counters (``elastic.lease_reassigned >= 1``,
``elastic.pool_resized >= 2``).
"""

import json
import signal

import numpy as np
import pytest

from repro.observe import Observer
from repro.parallel.elastic import (
    part_files_identical,
    run_elastic_formation,
)
from repro.parallel.pymp import fork_available
from repro.resilience.faults import FaultPlan

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires os.fork"
)


def test_churn_campaign_matches_quiet_run(tmp_path):
    n, seed = 20, 7
    rng = np.random.default_rng(seed)
    z = rng.uniform(500.0, 1500.0, (n, n))

    quiet = run_elastic_formation(
        z, workers=3, chunk_items=16, output_dir=tmp_path / "quiet"
    )
    assert quiet.chunks_completed == quiet.chunks_total

    obs = Observer(trace_dir=tmp_path / "trace")
    chunks = quiet.chunks_total
    churn = run_elastic_formation(
        z,
        workers=3,
        chunk_items=16,
        output_dir=tmp_path / "churn",
        faults=FaultPlan(
            seed=seed, kill_workers=(1,), kill_signal=int(signal.SIGKILL)
        ),
        resize_schedule=[
            (max(1, chunks // 3), 2),   # shrink
            (max(2, 2 * chunks // 3), 3),  # grow back
        ],
        observer=obs,
    )
    manifest = obs.finalize(config={"command": "test-elastic-churn", "n": n})

    assert churn.chunks_completed == churn.chunks_total
    identical, detail = part_files_identical(
        tmp_path / "quiet", tmp_path / "churn"
    )
    assert identical, detail

    metrics = manifest["metrics"]
    assert metrics["elastic.lease_reassigned"]["value"] >= 1
    assert metrics["elastic.pool_resized"]["value"] >= 2
    assert metrics["elastic.workers_respawned"]["value"] >= 1

    # The manifest on disk says the same thing (what CI greps).
    on_disk = json.loads(
        (tmp_path / "trace" / "manifest.json").read_text()
    )
    assert on_disk["metrics"]["elastic.lease_reassigned"]["value"] >= 1
    assert on_disk["metrics"]["elastic.pool_resized"]["value"] >= 2
