"""Deeper physics property tests across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.solver import solve_nested
from repro.kirchhoff.forward import (
    effective_resistance_matrix,
    measure,
    solve_drive,
)

fields = arrays(
    np.float64,
    st.tuples(st.integers(2, 5), st.integers(2, 5)),
    elements=st.floats(500.0, 9000.0),
)

square_fields = arrays(
    np.float64,
    st.integers(2, 5).map(lambda n: (n, n)),
    elements=st.floats(500.0, 9000.0),
)


class TestReciprocityAndSymmetry:
    @given(fields)
    @settings(max_examples=25, deadline=None)
    def test_transpose_reciprocity(self, r):
        """Z(R^T) = Z(R)^T — swapping rows/columns of the device swaps
        the measurement matrix (a reciprocity consequence)."""
        np.testing.assert_allclose(
            measure(r.T), measure(r).T, rtol=1e-9
        )

    @given(square_fields, st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_drive_reciprocity(self, r, i, j):
        """Effective resistance is symmetric in the driven pair: the
        current response of pair (i, j) equals that of the transposed
        device driven at (j, i)."""
        n = r.shape[0]
        i, j = i % n, j % n
        a = solve_drive(r, i, j).z
        b = solve_drive(r.T, j, i).z
        assert a == pytest.approx(b, rel=1e-9)

    @given(square_fields)
    @settings(max_examples=20, deadline=None)
    def test_row_permutation_equivariance(self, r):
        """Permuting device rows permutes measurement rows."""
        n = r.shape[0]
        perm = np.roll(np.arange(n), 1)
        np.testing.assert_allclose(
            measure(r[perm]), measure(r)[perm], rtol=1e-9
        )


class TestEnergyAndBounds:
    @given(square_fields, st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_power_balance(self, r, i, j):
        """Σ (ΔV)²/R over resistors equals U · I_total."""
        n = r.shape[0]
        i, j = i % n, j % n
        sol = solve_drive(r, i, j, voltage=5.0)
        dv = sol.h_voltages[:, None] - sol.v_voltages[None, :]
        dissipated = float((dv**2 / r).sum())
        supplied = 5.0 * sol.total_current
        assert dissipated == pytest.approx(supplied, rel=1e-9)

    @given(square_fields)
    @settings(max_examples=20, deadline=None)
    def test_z_bounded_by_extreme_uniform_devices(self, r):
        """Rayleigh monotonicity sandwich: the uniform device at
        min(R) and max(R) bound every Z entrywise."""
        n = r.shape[0]
        lo = effective_resistance_matrix(np.full((n, n), r.min()))
        hi = effective_resistance_matrix(np.full((n, n), r.max()))
        z = effective_resistance_matrix(r)
        assert np.all(z >= lo - 1e-9 * lo)
        assert np.all(z <= hi + 1e-9 * hi)

    @given(square_fields)
    @settings(max_examples=15, deadline=None)
    def test_parallel_conductance_bound(self, r):
        """1/Z_ij >= 1/R_ij (direct path) and
        1/Z_ij <= sum of all conductances touching wires i or j."""
        z = measure(r)
        assert np.all(1.0 / z >= 1.0 / r - 1e-12)


class TestInverseProblem:
    @given(st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_recovery_is_inverse_of_measurement(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 7))
        r_true = rng.uniform(2000, 11000, size=(n, n))
        result = solve_nested(measure(r_true))
        assert result.max_relative_error(r_true) < 1e-7

    def test_rectangular_recovery(self):
        """m != n devices: the nested solver inverts them too."""
        rng = np.random.default_rng(3)
        r_true = rng.uniform(2000, 9000, size=(3, 5))
        result = solve_nested(measure(r_true))
        assert result.r_estimate.shape == (3, 5)
        assert result.max_relative_error(r_true) < 1e-7

    def test_recovery_scale_equivariance(self):
        """Scaling Z by c scales the recovered R by c."""
        rng = np.random.default_rng(4)
        r_true = rng.uniform(2000, 9000, size=(4, 4))
        z = measure(r_true)
        a = solve_nested(z).r_estimate
        b = solve_nested(3.0 * z).r_estimate
        np.testing.assert_allclose(b, 3.0 * a, rtol=1e-7)

    def test_measurement_determines_field_uniquely(self):
        """Two distinct fields produce distinct measurements (checked
        on a perturbation family): the inverse problem is well-posed
        in the noise-free limit for these sizes."""
        rng = np.random.default_rng(5)
        r = rng.uniform(2000, 9000, size=(4, 4))
        z = measure(r)
        for _ in range(5):
            r2 = r * (1 + 0.05 * rng.standard_normal(r.shape))
            if np.allclose(r2, r):
                continue
            assert not np.allclose(measure(r2), z, rtol=1e-6)
