"""Parma: topological modeling and parallelization of MEA data.

A production-grade reproduction of *"Topological Modeling and
Parallelization of Multidimensional Data on Microelectrode Arrays"*
(IPPS 2022).  Subpackages:

====================  =====================================================
:mod:`repro.core`      Parma itself: joint-constraint formation, parallel
                       strategies, the R-recovery solvers, the engine.
:mod:`repro.topology`  Algebraic topology: simplicial complexes, GF(2)
                       chains, boundary operators, homology, Betti numbers.
:mod:`repro.mea`       Device model, graph abstractions, synthetic fields,
                       simulated wet-lab campaigns.
:mod:`repro.kirchhoff` Circuit theory: Kirchhoff laws, the exact forward
                       solver, the exponential path baseline.
:mod:`repro.parallel`  PyMP-style fork regions, shared memory, schedulers,
                       an MPI-like runtime, the simulated cluster clock.
:mod:`repro.manifold`  Discrete differential geometry (§IV-B).
:mod:`repro.anomaly`   Anomaly detection and scoring.
:mod:`repro.io`        Measurement text format, equation serialization.
:mod:`repro.instrument` Memory sampling and result tables.
:mod:`repro.resilience` Fault injection, checkpoint/resume, bounded
                       retries, solver degradation (DESIGN.md §6).
:mod:`repro.observe`   Tracing, metrics, run manifests
                       (docs/OBSERVABILITY.md).
====================  =====================================================

Quick start::

    from repro import ParmaEngine
    from repro.mea import paper_like_spec, run_campaign

    run = run_campaign(paper_like_spec(10, seed=7), seed=7)
    engine = ParmaEngine(strategy="pymp", num_workers=4)
    result = engine.parametrize(run.campaign.measurements[0])
    print(result.summary())
"""

from repro.core.engine import ParmaEngine, ParmaResult
from repro.core.pipeline import CampaignResult, run_pipeline
from repro.core.solver import SolveResult, solve
from repro.observe import Observer, set_observer
from repro.resilience.degrade import DegradationReport
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "CampaignResult",
    "DegradationReport",
    "FaultPlan",
    "Observer",
    "ParmaEngine",
    "ParmaResult",
    "RetryPolicy",
    "set_observer",
    "SolveResult",
    "__version__",
    "run_pipeline",
    "solve",
]
