"""Exact forward solver for crossbar MEAs (the ground-truth oracle).

Electrically, an ``m x n`` crossbar with ideal wires collapses to a
graph with one node per wire and one conductance ``G_ij = 1/R_ij`` per
crossing (see :func:`repro.mea.graph.wire_graph`).  Everything the
device can measure is then classical linear circuit theory:

* the measured pairwise resistance ``Z_ij`` is the *effective
  resistance* between nodes ``H_i`` and ``V_j``, computed from the
  pseudo-inverse of the weighted graph Laplacian:
  ``Z_ij = L+_ii + L+_jj - 2 L+_ij``;
* the internal wire voltages for a drive ``U_ij`` across ``(H_i, V_j)``
  come from the same solve, and are exactly the paper's ``Ua``/``Ub``
  unknowns (§IV-A).

This module is the *forward* direction (R -> Z); Parma inverts it.
Because the collapsed graph has only ``m + n`` nodes (≤ 200 for the
paper's largest device), a dense symmetric solve is both exact and
cheap; a sparse path is provided for very wide devices.

The linear algebra is organised around one object per resistance
field: a :class:`LaplacianFactor` — the Cholesky factorisation of the
rank-repaired Laplacian ``A = L + J/N``.  Every consumer draws from
it:

* drive solves are multi-RHS triangular back-substitutions against the
  shared factor (``A⁻¹ b = L⁺ b`` *exactly* for any zero-sum ``b``, so
  no shift correction is needed for pair drives);
* the dense pseudo-inverse — needed only by the solver's analytic
  Jacobian — is materialised lazily from the same factor and memoised
  on it, so forward-only workloads never pay for it.

Factors live in a small process-wide LRU keyed on the field bytes
(:func:`laplacian_factor_cached`); hit/miss/materialisation counters
are exported through :func:`laplacian_cache_stats` into
``repro.observe`` dashboards.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.utils.validation import require_positive, require_positive_array


def crossbar_laplacian(resistance: np.ndarray) -> np.ndarray:
    """Weighted Laplacian of the collapsed wire graph.

    ``resistance`` is the ``(m, n)`` array of ``R_ij`` (any consistent
    unit).  Node order: ``H_0..H_{m-1}, V_0..V_{n-1}``.  The Laplacian
    has the block form ``[[diag(Gr), -G], [-G^T, diag(Gc)]]`` with
    ``G = 1/R`` — assembled fully vectorised.
    """
    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    g = 1.0 / r
    lap = np.zeros((m + n, m + n), dtype=np.float64)
    lap[:m, m:] = -g
    lap[m:, :m] = -g.T
    lap[np.arange(m), np.arange(m)] = g.sum(axis=1)
    lap[np.arange(m, m + n), np.arange(m, m + n)] = g.sum(axis=0)
    return lap


def effective_resistance_matrix(resistance: np.ndarray) -> np.ndarray:
    """All ``m * n`` pairwise measured resistances ``Z`` in one solve.

    Uses the Moore–Penrose pseudo-inverse of the Laplacian; with
    ``P = L^+``, ``Z_ij = P[H_i, H_i] + P[V_j, V_j] - 2 P[H_i, V_j]``,
    evaluated for every pair with broadcasting (no Python loops).  The
    pseudo-inverse comes from the process-wide factorisation cache, so
    repeated evaluations at the same field (e.g. residual + Jacobian
    within one solver iteration, or warm-started consecutive campaign
    timepoints) factorise only once.
    """
    r = np.asarray(resistance, dtype=np.float64)
    m, n = r.shape
    pinv = laplacian_pinv_cached(r)
    dh = np.diag(pinv)[:m]
    dv = np.diag(pinv)[m:]
    cross = pinv[:m, m:]
    return dh[:, None] + dv[None, :] - 2.0 * cross


class LaplacianFactor:
    """Cholesky factorisation of the rank-repaired Laplacian.

    A connected-graph Laplacian has the all-ones null vector; the
    shifted matrix ``A = L + J/N`` (``J`` all-ones, ``N`` nodes) is
    symmetric positive definite and satisfies ``A⁻¹ = L⁺ + J/N``.  Two
    consequences this class exploits:

    * for any *zero-sum* right-hand side ``b`` (every pair drive
      ``e_i - e_{m+j}`` is one), ``A⁻¹ b = L⁺ b`` **exactly** — drive
      solves are plain ``cho_solve`` calls with no shift correction;
    * the dense pseudo-inverse is ``A⁻¹ - J/N``, recoverable from the
      factor on demand.  It is materialised lazily (first access to
      :attr:`pinv`) and memoised, so forward-only consumers never pay
      the O(N³) inverse or its O(N²) residency.
    """

    __slots__ = (
        "shape", "shift", "_cho", "_shifted", "_pinv", "_pinv_lock",
        "_in_cache",
    )

    def __init__(self, lap: np.ndarray) -> None:
        nnodes = lap.shape[0]
        self.shape = (nnodes, nnodes)
        self.shift = 1.0 / nnodes
        shifted = lap + self.shift
        self._cho = scipy.linalg.cho_factor(
            shifted, lower=False, check_finite=False
        )
        self._cho[0].setflags(write=False)
        # Kept until the pinv is materialised: the dense inverse is
        # computed from the shifted matrix with the exact historical
        # expression so measured Z values stay bit-identical across
        # the factorisation rewrite (downstream convergence verdicts
        # sit on razor-edge tolerances).
        self._shifted: np.ndarray | None = shifted
        self._pinv: np.ndarray | None = None
        self._pinv_lock = threading.Lock()
        self._in_cache = False

    @property
    def nbytes(self) -> int:
        """Resident bytes: factor, shifted matrix until the pinv
        replaces it, and the pinv once materialised."""
        total = self._cho[0].nbytes
        shifted = self._shifted
        if shifted is not None:
            total += shifted.nbytes
        pinv = self._pinv
        if pinv is not None:
            total += pinv.nbytes
        return total

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """``A⁻¹ rhs`` (multi-RHS); equals ``L⁺ rhs`` for zero-sum columns."""
        return scipy.linalg.cho_solve(self._cho, rhs, check_finite=False)

    @property
    def pinv(self) -> np.ndarray:
        """The dense ``L⁺``, materialised on first access (read-only)."""
        pinv = self._pinv
        if pinv is None:
            with self._pinv_lock:
                pinv = self._pinv
                if pinv is None:
                    shifted = self._shifted
                    # inv(A) - J/N, the historical expression: LU-based
                    # inv keeps the materialised pinv (and everything
                    # measured through it) bit-identical to the
                    # pre-factorisation implementation.
                    pinv = scipy.linalg.inv(shifted, overwrite_a=False)
                    pinv -= self.shift
                    pinv.setflags(write=False)
                    self._pinv = pinv
                    self._shifted = None  # pinv supersedes it
                    with _PINV_LOCK:
                        _PINV_STATS.pinv_materializations += 1
                        if self._in_cache:
                            _PINV_STATS.bytes_resident += (
                                pinv.nbytes - shifted.nbytes
                            )
        return pinv


def _laplacian_pinv(lap: np.ndarray) -> np.ndarray:
    """Pseudo-inverse of a connected-graph Laplacian (uncached path).

    Exploits the known one-dimensional null space (the all-ones
    vector): ``L^+ = (L + J/N)^{-1} - J/N`` with ``J`` the all-ones
    matrix.  The shifted matrix is symmetric positive definite, so the
    inverse comes from a Cholesky factorisation — faster and better
    conditioned than a generic SVD ``pinv`` or an LU inverse.
    """
    return LaplacianFactor(lap).pinv


# -- factorisation cache ------------------------------------------------------


@dataclass
class LaplacianCacheStats:
    """Observable counters of the Laplacian-factorisation cache.

    ``pinv_materializations`` counts lazy dense-pinv builds: forward
    drive solves use only the triangular factor, so this stays at one
    per *solver-visited* field (the Jacobian's consumer) and at zero
    for pure measurement workloads.
    """

    name: str = "laplacian-pinv"
    entries: int = 0
    hits: int = 0
    misses: int = 0
    bytes_resident: int = 0
    build_seconds: float = 0.0
    pinv_materializations: int = 0

    def snapshot(self) -> "LaplacianCacheStats":
        return LaplacianCacheStats(
            name=self.name,
            entries=self.entries,
            hits=self.hits,
            misses=self.misses,
            bytes_resident=self.bytes_resident,
            build_seconds=self.build_seconds,
            pinv_materializations=self.pinv_materializations,
        )


_PINV_LOCK = threading.Lock()
_PINV_CACHE: "OrderedDict[tuple, LaplacianFactor]" = OrderedDict()
_PINV_MAXSIZE = 8
_PINV_STATS = LaplacianCacheStats()


def laplacian_factor_cached(resistance: np.ndarray) -> LaplacianFactor:
    """The :class:`LaplacianFactor` for a field, memoised on its bytes.

    A small LRU (size 8): the solvers evaluate residual and Jacobian
    at the *same* field within an iteration, and warm-started campaign
    timepoints start exactly where the previous solve ended, so one
    factorisation serves several O(n^3) consumers.
    """
    r = np.ascontiguousarray(resistance, dtype=np.float64)
    key = (r.shape, hashlib.blake2b(r.tobytes(), digest_size=16).digest())
    with _PINV_LOCK:
        factor = _PINV_CACHE.get(key)
        if factor is not None:
            _PINV_CACHE.move_to_end(key)
            _PINV_STATS.hits += 1
            return factor
    start = time.perf_counter()
    factor = LaplacianFactor(crossbar_laplacian(r))
    elapsed = time.perf_counter() - start
    with _PINV_LOCK:
        if key not in _PINV_CACHE:
            _PINV_CACHE[key] = factor
            factor._in_cache = True
            _PINV_STATS.bytes_resident += factor.nbytes
            while len(_PINV_CACHE) > _PINV_MAXSIZE:
                _, evicted = _PINV_CACHE.popitem(last=False)
                evicted._in_cache = False
                _PINV_STATS.bytes_resident -= evicted.nbytes
        _PINV_STATS.misses += 1
        _PINV_STATS.entries = len(_PINV_CACHE)
        _PINV_STATS.build_seconds += elapsed
        return _PINV_CACHE[key]


def laplacian_pinv_cached(resistance: np.ndarray) -> np.ndarray:
    """``L^+`` of the crossbar Laplacian, memoised on the field bytes.

    Draws from the same cache as :func:`laplacian_factor_cached`; the
    dense pinv is materialised lazily on the cached factor, so callers
    that only need drive solves never trigger it.  The returned array
    is read-only and must not be mutated.
    """
    return laplacian_factor_cached(resistance).pinv


def laplacian_cache_stats() -> LaplacianCacheStats:
    """Snapshot of the factorisation-cache counters for this process."""
    with _PINV_LOCK:
        return _PINV_STATS.snapshot()


def clear_laplacian_cache() -> None:
    """Drop cached factorisations and reset the counters (tests)."""
    with _PINV_LOCK:
        _PINV_CACHE.clear()
        _PINV_STATS.entries = 0
        _PINV_STATS.hits = 0
        _PINV_STATS.misses = 0
        _PINV_STATS.bytes_resident = 0
        _PINV_STATS.build_seconds = 0.0
        _PINV_STATS.pinv_materializations = 0


@dataclass(frozen=True)
class DriveSolution:
    """Internal state for one driven endpoint pair.

    Voltages follow the paper's convention for pair ``(i, j)``: the
    driven vertical wire is ground (``V_j = 0``) and the driven
    horizontal wire sits at ``U_ij = voltage``.

    Attributes
    ----------
    h_voltages, v_voltages:
        Potentials of every horizontal / vertical wire (length m / n).
    total_current:
        Current delivered by the source.
    z:
        Measured resistance ``voltage / total_current``.
    """

    row: int
    col: int
    voltage: float
    h_voltages: np.ndarray
    v_voltages: np.ndarray
    total_current: float

    @property
    def z(self) -> float:
        return self.voltage / self.total_current

    def ua(self) -> np.ndarray:
        """The paper's ``Ua_{ij k'}``: voltages of vertical wires k != j,
        in k-ascending order (k' = k for k < j, k-1 for k > j)."""
        return np.delete(self.v_voltages, self.col)

    def ub(self) -> np.ndarray:
        """The paper's ``Ub_{ij m'}``: voltages of horizontal wires
        m != i, in m-ascending order."""
        return np.delete(self.h_voltages, self.row)


def _drive_solution_from_potential(
    x: np.ndarray, row: int, col: int, m: int, voltage: float
) -> DriveSolution:
    """Scale and ground one ``L⁺ (e_i - e_{m+j})`` column into a drive.

    ``x`` is the unit-current potential profile; the pair resistance
    is ``x[row] - x[m+col]``, so injecting ``I = U / Z`` and shifting
    the driven vertical wire to ground reproduces the paper's
    Dirichlet convention.  By ``L L⁺ b = b`` (exact on a connected
    graph for zero-sum ``b``), Kirchhoff L1 holds at every node to
    factorisation precision.
    """
    z = float(x[row] - x[m + col])
    total_current = voltage / z
    potentials = (x - x[m + col]) * total_current
    return DriveSolution(
        row=row,
        col=col,
        voltage=voltage,
        h_voltages=np.ascontiguousarray(potentials[:m]),
        v_voltages=np.ascontiguousarray(potentials[m:]),
        total_current=total_current,
    )


def solve_drive(
    resistance: np.ndarray, row: int, col: int, voltage: float = 5.0
) -> DriveSolution:
    """Solve the network with ``voltage`` applied across ``(H_row, V_col)``.

    One triangular back-substitution against the cached
    :class:`LaplacianFactor`: the zero-sum drive ``b = e_row - e_{m+col}``
    satisfies ``A⁻¹ b = L⁺ b`` exactly, so the unit-current potentials
    come straight from ``factor.solve(b)`` and are scaled/grounded to
    the Dirichlet convention.  Kirchhoff L1 holds to factorisation
    precision at every node — the property tests rely on this.
    """
    r = require_positive_array(resistance, "resistance")
    voltage = require_positive(voltage, "voltage")
    m, n = r.shape
    if not (0 <= row < m and 0 <= col < n):
        raise IndexError(f"pair ({row}, {col}) out of range for {m}x{n}")
    factor = laplacian_factor_cached(r)
    b = np.zeros(m + n, dtype=np.float64)
    b[row] = 1.0
    b[m + col] = -1.0
    x = factor.solve(b)
    return _drive_solution_from_potential(x, row, col, m, voltage)


def _batched_drive_solutions(
    resistance: np.ndarray, voltage: float
) -> list[DriveSolution]:
    """Every drive from ONE factorisation and ONE stacked multi-RHS solve."""
    r = require_positive_array(resistance, "resistance")
    voltage = require_positive(voltage, "voltage")
    m, n = r.shape
    factor = laplacian_factor_cached(r)
    pairs_i = np.repeat(np.arange(m), n)
    pairs_j = np.tile(np.arange(n), m)
    cols = np.arange(m * n)
    # rhs[:, k] = e_i - e_{m+j} for pair k = i*n + j (row-major).
    rhs = np.zeros((m + n, m * n), dtype=np.float64)
    rhs[pairs_i, cols] = 1.0
    rhs[m + pairs_j, cols] = -1.0
    x = factor.solve(rhs)
    return [
        _drive_solution_from_potential(x[:, k], int(pairs_i[k]), int(pairs_j[k]), m, voltage)
        for k in cols
    ]


def solve_all_drives(
    resistance: np.ndarray, voltage: float = 5.0
) -> list[DriveSolution]:
    """``solve_drive`` for every endpoint pair (row-major order).

    All ``m * n`` drives share one cached factorisation and one
    stacked multi-RHS back-substitution — no Python loop over pairs
    touches the linear algebra.
    """
    return _batched_drive_solutions(resistance, voltage)


def solve_all_drives_shared(
    resistance: np.ndarray, voltage: float = 5.0
) -> list[DriveSolution]:
    """Every drive solution from ONE Laplacian factorisation.

    Historical alias of :func:`solve_all_drives`: the batched
    multi-RHS path *is* now the only path (superposition against the
    shared factor), so both names run identical code.  Kirchhoff L1
    holds to machine precision (``L L⁺ (e_i - e_{m+j}) = e_i - e_{m+j}``
    exactly on a connected graph), and results match the historical
    per-pair Dirichlet reference to solver precision — this is the
    campaign-pipeline fast path for seeding the joint solver's
    voltages.
    """
    return _batched_drive_solutions(resistance, voltage)


def measure(resistance: np.ndarray, voltage: float = 5.0) -> np.ndarray:
    """The device's measurement: the ``(m, n)`` matrix of ``Z_ij``.

    Equivalent to ``effective_resistance_matrix`` (one global solve);
    ``voltage`` does not affect Z for a linear network but is accepted
    to mirror the physical protocol.
    """
    del voltage  # linear network: Z is drive-independent
    return effective_resistance_matrix(resistance)


def residual_current_at_wires(
    resistance: np.ndarray, sol: DriveSolution
) -> np.ndarray:
    """Kirchhoff-L1 residual (net current) at every wire node.

    Zero (to numerical precision) except at the two driven nodes,
    where it equals ±total_current.  Used by tests as the definition
    of "the solution satisfies Kirchhoff's first law".
    """
    lap = crossbar_laplacian(resistance)
    potentials = np.concatenate([sol.h_voltages, sol.v_voltages])
    return lap @ potentials
