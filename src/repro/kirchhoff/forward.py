"""Exact forward solver for crossbar MEAs (the ground-truth oracle).

Electrically, an ``m x n`` crossbar with ideal wires collapses to a
graph with one node per wire and one conductance ``G_ij = 1/R_ij`` per
crossing (see :func:`repro.mea.graph.wire_graph`).  Everything the
device can measure is then classical linear circuit theory:

* the measured pairwise resistance ``Z_ij`` is the *effective
  resistance* between nodes ``H_i`` and ``V_j``, computed from the
  pseudo-inverse of the weighted graph Laplacian:
  ``Z_ij = L+_ii + L+_jj - 2 L+_ij``;
* the internal wire voltages for a drive ``U_ij`` across ``(H_i, V_j)``
  come from the same solve, and are exactly the paper's ``Ua``/``Ub``
  unknowns (§IV-A).

This module is the *forward* direction (R -> Z); Parma inverts it.
Because the collapsed graph has only ``m + n`` nodes (≤ 200 for the
paper's largest device), a dense symmetric solve is both exact and
cheap; a sparse path is provided for very wide devices.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.utils.validation import require_positive, require_positive_array


def crossbar_laplacian(resistance: np.ndarray) -> np.ndarray:
    """Weighted Laplacian of the collapsed wire graph.

    ``resistance`` is the ``(m, n)`` array of ``R_ij`` (any consistent
    unit).  Node order: ``H_0..H_{m-1}, V_0..V_{n-1}``.  The Laplacian
    has the block form ``[[diag(Gr), -G], [-G^T, diag(Gc)]]`` with
    ``G = 1/R`` — assembled fully vectorised.
    """
    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    g = 1.0 / r
    lap = np.zeros((m + n, m + n), dtype=np.float64)
    lap[:m, m:] = -g
    lap[m:, :m] = -g.T
    lap[np.arange(m), np.arange(m)] = g.sum(axis=1)
    lap[np.arange(m, m + n), np.arange(m, m + n)] = g.sum(axis=0)
    return lap


def effective_resistance_matrix(resistance: np.ndarray) -> np.ndarray:
    """All ``m * n`` pairwise measured resistances ``Z`` in one solve.

    Uses the Moore–Penrose pseudo-inverse of the Laplacian; with
    ``P = L^+``, ``Z_ij = P[H_i, H_i] + P[V_j, V_j] - 2 P[H_i, V_j]``,
    evaluated for every pair with broadcasting (no Python loops).  The
    pseudo-inverse comes from the process-wide factorisation cache, so
    repeated evaluations at the same field (e.g. residual + Jacobian
    within one solver iteration, or warm-started consecutive campaign
    timepoints) factorise only once.
    """
    r = np.asarray(resistance, dtype=np.float64)
    m, n = r.shape
    pinv = laplacian_pinv_cached(r)
    dh = np.diag(pinv)[:m]
    dv = np.diag(pinv)[m:]
    cross = pinv[:m, m:]
    return dh[:, None] + dv[None, :] - 2.0 * cross


def _laplacian_pinv(lap: np.ndarray) -> np.ndarray:
    """Pseudo-inverse of a connected-graph Laplacian.

    Exploits the known one-dimensional null space (the all-ones
    vector): ``L^+ = (L + J/N)^{-1} - J/N`` with ``J`` the all-ones
    matrix.  This is a plain symmetric positive-definite solve —
    much faster and better conditioned than a generic SVD ``pinv``.
    """
    nnodes = lap.shape[0]
    shift = 1.0 / nnodes
    shifted = lap + shift
    inv = scipy.linalg.inv(shifted, overwrite_a=False)
    return inv - shift


# -- factorisation cache ------------------------------------------------------


@dataclass
class LaplacianCacheStats:
    """Observable counters of the Laplacian-factorisation cache."""

    name: str = "laplacian-pinv"
    entries: int = 0
    hits: int = 0
    misses: int = 0
    bytes_resident: int = 0
    build_seconds: float = 0.0

    def snapshot(self) -> "LaplacianCacheStats":
        return LaplacianCacheStats(
            name=self.name,
            entries=self.entries,
            hits=self.hits,
            misses=self.misses,
            bytes_resident=self.bytes_resident,
            build_seconds=self.build_seconds,
        )


_PINV_LOCK = threading.Lock()
_PINV_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_PINV_MAXSIZE = 8
_PINV_STATS = LaplacianCacheStats()


def laplacian_pinv_cached(resistance: np.ndarray) -> np.ndarray:
    """``L^+`` of the crossbar Laplacian, memoised on the field bytes.

    A small LRU (size 8): the solvers evaluate residual and Jacobian
    at the *same* field within an iteration, and warm-started campaign
    timepoints start exactly where the previous solve ended, so one
    factorisation serves several O(n^3) consumers.  The returned array
    is read-only and must not be mutated.
    """
    r = np.ascontiguousarray(resistance, dtype=np.float64)
    key = (r.shape, hashlib.blake2b(r.tobytes(), digest_size=16).digest())
    with _PINV_LOCK:
        pinv = _PINV_CACHE.get(key)
        if pinv is not None:
            _PINV_CACHE.move_to_end(key)
            _PINV_STATS.hits += 1
            return pinv
    start = time.perf_counter()
    pinv = _laplacian_pinv(crossbar_laplacian(r))
    pinv.setflags(write=False)
    elapsed = time.perf_counter() - start
    with _PINV_LOCK:
        if key not in _PINV_CACHE:
            _PINV_CACHE[key] = pinv
            _PINV_STATS.bytes_resident += pinv.nbytes
            while len(_PINV_CACHE) > _PINV_MAXSIZE:
                _, evicted = _PINV_CACHE.popitem(last=False)
                _PINV_STATS.bytes_resident -= evicted.nbytes
        _PINV_STATS.misses += 1
        _PINV_STATS.entries = len(_PINV_CACHE)
        _PINV_STATS.build_seconds += elapsed
        return _PINV_CACHE[key]


def laplacian_cache_stats() -> LaplacianCacheStats:
    """Snapshot of the factorisation-cache counters for this process."""
    with _PINV_LOCK:
        return _PINV_STATS.snapshot()


def clear_laplacian_cache() -> None:
    """Drop cached factorisations and reset the counters (tests)."""
    with _PINV_LOCK:
        _PINV_CACHE.clear()
        _PINV_STATS.entries = 0
        _PINV_STATS.hits = 0
        _PINV_STATS.misses = 0
        _PINV_STATS.bytes_resident = 0
        _PINV_STATS.build_seconds = 0.0


@dataclass(frozen=True)
class DriveSolution:
    """Internal state for one driven endpoint pair.

    Voltages follow the paper's convention for pair ``(i, j)``: the
    driven vertical wire is ground (``V_j = 0``) and the driven
    horizontal wire sits at ``U_ij = voltage``.

    Attributes
    ----------
    h_voltages, v_voltages:
        Potentials of every horizontal / vertical wire (length m / n).
    total_current:
        Current delivered by the source.
    z:
        Measured resistance ``voltage / total_current``.
    """

    row: int
    col: int
    voltage: float
    h_voltages: np.ndarray
    v_voltages: np.ndarray
    total_current: float

    @property
    def z(self) -> float:
        return self.voltage / self.total_current

    def ua(self) -> np.ndarray:
        """The paper's ``Ua_{ij k'}``: voltages of vertical wires k != j,
        in k-ascending order (k' = k for k < j, k-1 for k > j)."""
        return np.delete(self.v_voltages, self.col)

    def ub(self) -> np.ndarray:
        """The paper's ``Ub_{ij m'}``: voltages of horizontal wires
        m != i, in m-ascending order."""
        return np.delete(self.h_voltages, self.row)


def solve_drive(
    resistance: np.ndarray, row: int, col: int, voltage: float = 5.0
) -> DriveSolution:
    """Solve the network with ``voltage`` applied across ``(H_row, V_col)``.

    Dirichlet conditions pin the two driven nodes; the reduced
    symmetric system for the remaining ``m + n - 2`` free nodes is
    solved directly.  The source current is read off the driven row of
    the full Laplacian, so Kirchhoff L1 holds to solver precision at
    every node — the property tests rely on this.
    """
    r = require_positive_array(resistance, "resistance")
    voltage = require_positive(voltage, "voltage")
    m, n = r.shape
    if not (0 <= row < m and 0 <= col < n):
        raise IndexError(f"pair ({row}, {col}) out of range for {m}x{n}")
    lap = crossbar_laplacian(r)
    nnodes = m + n
    src = row  # H_row
    snk = m + col  # V_col
    free = np.setdiff1d(np.arange(nnodes), [src, snk], assume_unique=False)
    potentials = np.zeros(nnodes, dtype=np.float64)
    potentials[src] = voltage
    if free.size:
        a = lap[np.ix_(free, free)]
        b = -lap[np.ix_(free, [src, snk])] @ np.array([voltage, 0.0])
        potentials[free] = scipy.linalg.solve(a, b, assume_a="pos")
    total_current = float(lap[src] @ potentials)
    return DriveSolution(
        row=row,
        col=col,
        voltage=voltage,
        h_voltages=potentials[:m].copy(),
        v_voltages=potentials[m:].copy(),
        total_current=total_current,
    )


def solve_all_drives(
    resistance: np.ndarray, voltage: float = 5.0
) -> list[DriveSolution]:
    """``solve_drive`` for every endpoint pair (row-major order)."""
    r = np.asarray(resistance, dtype=np.float64)
    m, n = r.shape
    return [
        solve_drive(r, i, j, voltage=voltage) for i in range(m) for j in range(n)
    ]


def solve_all_drives_shared(
    resistance: np.ndarray, voltage: float = 5.0
) -> list[DriveSolution]:
    """Every drive solution from ONE Laplacian factorisation.

    :func:`solve_all_drives` performs ``m * n`` independent Dirichlet
    solves (each re-assembling and re-factorising the reduced system);
    by superposition the same potentials follow from a single cached
    pseudo-inverse: injecting ``I = U / Z_ij`` at ``H_i`` and drawing
    it at ``V_j`` gives ``v = I · L^+ (e_i - e_{m+j})``, shifted so the
    driven vertical wire is ground.  Kirchhoff L1 holds to machine
    precision (``L L^+ (e_i - e_{m+j}) = e_i - e_{m+j}`` exactly on a
    connected graph), so results match the per-pair reference to
    solver precision at a fraction of the cost — this is the
    campaign-pipeline fast path for seeding the joint solver's
    voltages.
    """
    r = require_positive_array(resistance, "resistance")
    voltage = require_positive(voltage, "voltage")
    m, n = r.shape
    pinv = laplacian_pinv_cached(r)
    dh = np.diag(pinv)[:m]
    dv = np.diag(pinv)[m:]
    z = dh[:, None] + dv[None, :] - 2.0 * pinv[:m, m:]
    current = voltage / z  # (m, n)
    # diff[node, i, j] = P[node, H_i] - P[node, V_j]
    diff = pinv[:, :m, None] - pinv[:, None, m:]
    v = diff * current[None, :, :]  # (m + n, m, n)
    # Ground each pair's driven vertical wire: subtract v[V_j, i, j]
    # (copied first — the row is part of the slab being shifted).
    for j in range(n):
        v[:, :, j] -= v[m + j, :, j].copy()[None, :]
    return [
        DriveSolution(
            row=i,
            col=j,
            voltage=voltage,
            h_voltages=np.ascontiguousarray(v[:m, i, j]),
            v_voltages=np.ascontiguousarray(v[m:, i, j]),
            total_current=float(current[i, j]),
        )
        for i in range(m)
        for j in range(n)
    ]


def measure(resistance: np.ndarray, voltage: float = 5.0) -> np.ndarray:
    """The device's measurement: the ``(m, n)`` matrix of ``Z_ij``.

    Equivalent to ``effective_resistance_matrix`` (one global solve);
    ``voltage`` does not affect Z for a linear network but is accepted
    to mirror the physical protocol.
    """
    del voltage  # linear network: Z is drive-independent
    return effective_resistance_matrix(resistance)


def residual_current_at_wires(
    resistance: np.ndarray, sol: DriveSolution
) -> np.ndarray:
    """Kirchhoff-L1 residual (net current) at every wire node.

    Zero (to numerical precision) except at the two driven nodes,
    where it equals ±total_current.  Used by tests as the definition
    of "the solution satisfies Kirchhoff's first law".
    """
    lap = crossbar_laplacian(resistance)
    potentials = np.concatenate([sol.h_voltages, sol.v_voltages])
    return lap @ potentials
