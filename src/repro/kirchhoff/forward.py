"""Exact forward solver for crossbar MEAs (the ground-truth oracle).

Electrically, an ``m x n`` crossbar with ideal wires collapses to a
graph with one node per wire and one conductance ``G_ij = 1/R_ij`` per
crossing (see :func:`repro.mea.graph.wire_graph`).  Everything the
device can measure is then classical linear circuit theory:

* the measured pairwise resistance ``Z_ij`` is the *effective
  resistance* between nodes ``H_i`` and ``V_j``, computed from the
  pseudo-inverse of the weighted graph Laplacian:
  ``Z_ij = L+_ii + L+_jj - 2 L+_ij``;
* the internal wire voltages for a drive ``U_ij`` across ``(H_i, V_j)``
  come from the same solve, and are exactly the paper's ``Ua``/``Ub``
  unknowns (§IV-A).

This module is the *forward* direction (R -> Z); Parma inverts it.
Because the collapsed graph has only ``m + n`` nodes (≤ 200 for the
paper's largest device), a dense symmetric solve is both exact and
cheap; a sparse path is provided for very wide devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.utils.validation import require_positive, require_positive_array


def crossbar_laplacian(resistance: np.ndarray) -> np.ndarray:
    """Weighted Laplacian of the collapsed wire graph.

    ``resistance`` is the ``(m, n)`` array of ``R_ij`` (any consistent
    unit).  Node order: ``H_0..H_{m-1}, V_0..V_{n-1}``.  The Laplacian
    has the block form ``[[diag(Gr), -G], [-G^T, diag(Gc)]]`` with
    ``G = 1/R`` — assembled fully vectorised.
    """
    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    g = 1.0 / r
    lap = np.zeros((m + n, m + n), dtype=np.float64)
    lap[:m, m:] = -g
    lap[m:, :m] = -g.T
    lap[np.arange(m), np.arange(m)] = g.sum(axis=1)
    lap[np.arange(m, m + n), np.arange(m, m + n)] = g.sum(axis=0)
    return lap


def effective_resistance_matrix(resistance: np.ndarray) -> np.ndarray:
    """All ``m * n`` pairwise measured resistances ``Z`` in one solve.

    Uses the Moore–Penrose pseudo-inverse of the Laplacian; with
    ``P = L^+``, ``Z_ij = P[H_i, H_i] + P[V_j, V_j] - 2 P[H_i, V_j]``,
    evaluated for every pair with broadcasting (no Python loops).
    """
    r = np.asarray(resistance, dtype=np.float64)
    m, n = r.shape
    lap = crossbar_laplacian(r)
    pinv = _laplacian_pinv(lap)
    dh = np.diag(pinv)[:m]
    dv = np.diag(pinv)[m:]
    cross = pinv[:m, m:]
    return dh[:, None] + dv[None, :] - 2.0 * cross


def _laplacian_pinv(lap: np.ndarray) -> np.ndarray:
    """Pseudo-inverse of a connected-graph Laplacian.

    Exploits the known one-dimensional null space (the all-ones
    vector): ``L^+ = (L + J/N)^{-1} - J/N`` with ``J`` the all-ones
    matrix.  This is a plain symmetric positive-definite solve —
    much faster and better conditioned than a generic SVD ``pinv``.
    """
    nnodes = lap.shape[0]
    shift = 1.0 / nnodes
    shifted = lap + shift
    inv = scipy.linalg.inv(shifted, overwrite_a=False)
    return inv - shift


@dataclass(frozen=True)
class DriveSolution:
    """Internal state for one driven endpoint pair.

    Voltages follow the paper's convention for pair ``(i, j)``: the
    driven vertical wire is ground (``V_j = 0``) and the driven
    horizontal wire sits at ``U_ij = voltage``.

    Attributes
    ----------
    h_voltages, v_voltages:
        Potentials of every horizontal / vertical wire (length m / n).
    total_current:
        Current delivered by the source.
    z:
        Measured resistance ``voltage / total_current``.
    """

    row: int
    col: int
    voltage: float
    h_voltages: np.ndarray
    v_voltages: np.ndarray
    total_current: float

    @property
    def z(self) -> float:
        return self.voltage / self.total_current

    def ua(self) -> np.ndarray:
        """The paper's ``Ua_{ij k'}``: voltages of vertical wires k != j,
        in k-ascending order (k' = k for k < j, k-1 for k > j)."""
        return np.delete(self.v_voltages, self.col)

    def ub(self) -> np.ndarray:
        """The paper's ``Ub_{ij m'}``: voltages of horizontal wires
        m != i, in m-ascending order."""
        return np.delete(self.h_voltages, self.row)


def solve_drive(
    resistance: np.ndarray, row: int, col: int, voltage: float = 5.0
) -> DriveSolution:
    """Solve the network with ``voltage`` applied across ``(H_row, V_col)``.

    Dirichlet conditions pin the two driven nodes; the reduced
    symmetric system for the remaining ``m + n - 2`` free nodes is
    solved directly.  The source current is read off the driven row of
    the full Laplacian, so Kirchhoff L1 holds to solver precision at
    every node — the property tests rely on this.
    """
    r = require_positive_array(resistance, "resistance")
    voltage = require_positive(voltage, "voltage")
    m, n = r.shape
    if not (0 <= row < m and 0 <= col < n):
        raise IndexError(f"pair ({row}, {col}) out of range for {m}x{n}")
    lap = crossbar_laplacian(r)
    nnodes = m + n
    src = row  # H_row
    snk = m + col  # V_col
    free = np.setdiff1d(np.arange(nnodes), [src, snk], assume_unique=False)
    potentials = np.zeros(nnodes, dtype=np.float64)
    potentials[src] = voltage
    if free.size:
        a = lap[np.ix_(free, free)]
        b = -lap[np.ix_(free, [src, snk])] @ np.array([voltage, 0.0])
        potentials[free] = scipy.linalg.solve(a, b, assume_a="pos")
    total_current = float(lap[src] @ potentials)
    return DriveSolution(
        row=row,
        col=col,
        voltage=voltage,
        h_voltages=potentials[:m].copy(),
        v_voltages=potentials[m:].copy(),
        total_current=total_current,
    )


def solve_all_drives(
    resistance: np.ndarray, voltage: float = 5.0
) -> list[DriveSolution]:
    """``solve_drive`` for every endpoint pair (row-major order)."""
    r = np.asarray(resistance, dtype=np.float64)
    m, n = r.shape
    return [
        solve_drive(r, i, j, voltage=voltage) for i in range(m) for j in range(n)
    ]


def measure(resistance: np.ndarray, voltage: float = 5.0) -> np.ndarray:
    """The device's measurement: the ``(m, n)`` matrix of ``Z_ij``.

    Equivalent to ``effective_resistance_matrix`` (one global solve);
    ``voltage`` does not affect Z for a linear network but is accepted
    to mirror the physical protocol.
    """
    del voltage  # linear network: Z is drive-independent
    return effective_resistance_matrix(resistance)


def residual_current_at_wires(
    resistance: np.ndarray, sol: DriveSolution
) -> np.ndarray:
    """Kirchhoff-L1 residual (net current) at every wire node.

    Zero (to numerical precision) except at the two driven nodes,
    where it equals ±total_current.  Used by tests as the definition
    of "the solution satisfies Kirchhoff's first law".
    """
    lap = crossbar_laplacian(resistance)
    potentials = np.concatenate([sol.h_voltages, sol.v_voltages])
    return lap @ potentials
