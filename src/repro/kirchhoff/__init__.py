"""Circuit-theory substrate: Kirchhoff laws, forward solver, baselines.

* :mod:`repro.kirchhoff.laws` — L1/L2 systems on arbitrary resistive
  graphs, nodal analysis, independence counts (§II-A).
* :mod:`repro.kirchhoff.mesh` — loop-current analysis driven by the
  fundamental cycle basis (the topology ↔ physics bridge).
* :mod:`repro.kirchhoff.forward` — exact crossbar solver: R → Z and
  internal wire voltages (the ground-truth oracle for Parma).
* :mod:`repro.kirchhoff.paths` / :mod:`repro.kirchhoff.pathsystem` —
  the exponential all-paths baseline the paper replaces (§II-C, [15]).
"""

from repro.kirchhoff.forward import (
    DriveSolution,
    clear_laplacian_cache,
    crossbar_laplacian,
    effective_resistance_matrix,
    laplacian_cache_stats,
    laplacian_pinv_cached,
    measure,
    solve_all_drives,
    solve_all_drives_shared,
    solve_drive,
)
from repro.kirchhoff.laws import Circuit, CircuitSolution, ResistorEdge
from repro.kirchhoff.mesh import MeshSolution, solve_mesh
from repro.kirchhoff.paths import (
    CrossbarPath,
    count_paths_exact,
    count_paths_paper,
    enumerate_paths,
    total_paths_exact,
    total_paths_paper,
)
from repro.kirchhoff.sensitivity import (
    aggregate_sensitivity,
    locality_profile,
    normalized_sensitivity,
    self_sensitivity_fraction,
    sensitivity_map,
)
from repro.kirchhoff.pathsystem import (
    PathSystem,
    build_path_system,
    solve_path_system,
)

__all__ = [
    "Circuit",
    "aggregate_sensitivity",
    "locality_profile",
    "normalized_sensitivity",
    "self_sensitivity_fraction",
    "sensitivity_map",
    "CircuitSolution",
    "CrossbarPath",
    "DriveSolution",
    "MeshSolution",
    "PathSystem",
    "ResistorEdge",
    "build_path_system",
    "clear_laplacian_cache",
    "count_paths_exact",
    "count_paths_paper",
    "crossbar_laplacian",
    "effective_resistance_matrix",
    "enumerate_paths",
    "laplacian_cache_stats",
    "laplacian_pinv_cached",
    "measure",
    "solve_all_drives",
    "solve_all_drives_shared",
    "solve_drive",
    "solve_mesh",
    "solve_path_system",
    "total_paths_exact",
    "total_paths_paper",
]
