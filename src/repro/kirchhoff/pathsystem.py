"""The path-based nonlinear system — baseline formulation of [15]/§II-C.

Every endpoint pair ``(i, j)`` contributes one equation

    ``Z_ij^{-1} = Σ_k P_k(R)^{-1}``

where ``P_k(R)`` is the series resistance along the k-th enumerated
path.  Two facts reproduced here, both load-bearing for the paper's
motivation:

* the equation *count* is polynomial but each equation has an
  exponential number of terms, so building the system is exponential —
  infeasible for ``n > 6`` (the benchmark measures the blow-up);
* the parallel-paths aggregation is exact only when paths share no
  resistor (true at ``n = 2``) and an approximation above that — the
  test suite quantifies the model error against the exact forward
  solver, which is useful context the paper leaves implicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.kirchhoff.forward import measure
from repro.kirchhoff.paths import CrossbarPath, enumerate_paths
from repro.mea.device import MEAGrid
from repro.utils.validation import require_positive_array


@dataclass(frozen=True)
class PathSystem:
    """The assembled baseline system for a square device.

    ``paths[(i, j)]`` holds every path for that pair; the unknown
    vector is the flattened ``(n, n)`` resistance field.
    """

    grid: MEAGrid
    paths: dict[tuple[int, int], tuple[CrossbarPath, ...]]

    @property
    def num_equations(self) -> int:
        return len(self.paths)

    @property
    def num_terms(self) -> int:
        """Total path terms across all equations (the exponential part)."""
        return sum(len(ps) for ps in self.paths.values())

    def predicted_z(self, resistance: np.ndarray) -> np.ndarray:
        """Model measurement ``Z̃`` from the parallel-paths formula."""
        r = require_positive_array(resistance, "resistance")
        m, n = self.grid.m, self.grid.n
        out = np.empty((m, n), dtype=np.float64)
        for (i, j), ps in self.paths.items():
            inv = 0.0
            for p in ps:
                inv += 1.0 / p.resistance(r)
            out[i, j] = 1.0 / inv
        return out

    def residual(self, r_flat: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Admittance-scale residual ``1/Z̃ - 1/Z`` (flattened).

        The admittance scale keeps magnitudes comparable across pairs
        of very different Z, which conditions the solve.
        """
        r = r_flat.reshape(self.grid.m, self.grid.n)
        pred = self.predicted_z(r)
        return (1.0 / pred - 1.0 / np.asarray(z)).ravel()


def build_path_system(grid: MEAGrid) -> PathSystem:
    """Enumerate all paths for every pair (exponential; keep n small)."""
    paths: dict[tuple[int, int], tuple[CrossbarPath, ...]] = {}
    for i in range(grid.m):
        for j in range(grid.n):
            paths[(i, j)] = tuple(enumerate_paths(grid, i, j))
    return PathSystem(grid=grid, paths=paths)


def solve_path_system(
    system: PathSystem,
    z: np.ndarray,
    r0: np.ndarray | None = None,
    max_nfev: int = 2000,
) -> np.ndarray:
    """Recover R from Z under the path model (Levenberg–Marquardt).

    Positivity is enforced by optimizing ``log R`` (so LM needs no
    bounds; trust-region-reflective was observed to stall on the flat
    admittance surface).  Returns the ``(m, n)`` estimate.  This is the
    *baseline* solver: accurate for ``n = 2`` (exact model) and
    approximate beyond.
    """
    z = require_positive_array(z, "z")
    m, n = system.grid.m, system.grid.n
    if z.shape != (m, n):
        raise ValueError(f"z has shape {z.shape}, expected {(m, n)}")
    if r0 is None:
        # The direct resistor dominates each measurement, so Z itself
        # is a serviceable starting field.
        r0 = z.copy()
    x0 = np.log(np.asarray(r0, dtype=np.float64).ravel())

    def fun(x: np.ndarray) -> np.ndarray:
        return system.residual(np.exp(x), z)

    result = scipy.optimize.least_squares(
        fun, x0, method="lm", max_nfev=max_nfev
    )
    return np.exp(result.x).reshape(m, n)


def model_error_vs_exact(grid: MEAGrid, resistance: np.ndarray) -> float:
    """Max relative deviation of the path-model Z from the exact Z.

    0 (to machine precision) for 2 x 2 devices; grows with n — the
    structural approximation error of the baseline formulation.
    """
    system = build_path_system(grid)
    exact = measure(resistance)
    approx = system.predicted_z(resistance)
    return float(np.max(np.abs(approx - exact) / exact))
