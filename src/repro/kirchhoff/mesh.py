"""Mesh (loop-current) analysis from the fundamental cycle basis.

The topological route to Kirchhoff L2: assign one unknown circulating
current per fundamental cycle (``|E| - |V| + 1`` of them — the Betti
number of the circuit graph) and solve ``(B R B^T) x = B v_src``.
Edge currents are superpositions of the loop currents flowing through
them.  Agreement with nodal analysis (:mod:`repro.kirchhoff.laws`) is
a strong end-to-end check that the homology machinery identifies
exactly the independent loops the physics needs — the premise of the
paper's parallelization.

Sources are handled by the standard trick of adding the source branch
as a zero-resistance edge carrying a known EMF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np
import scipy.linalg

from repro.kirchhoff.laws import Circuit, ResistorEdge
from repro.utils.validation import require_positive

Vertex = Hashable


@dataclass(frozen=True)
class MeshSolution:
    """Result of a mesh analysis."""

    loop_currents: np.ndarray
    edge_currents: np.ndarray  # aligned with augmented edge order
    total_current: float
    effective_resistance: float
    num_loops: int


def solve_mesh(
    circuit: Circuit, source: Vertex, sink: Vertex, voltage: float
) -> MeshSolution:
    """Solve ``circuit`` with an ideal EMF across source/sink by meshes.

    The EMF branch is appended as an extra edge with a tiny series
    resistance (1e-9 of the smallest resistor — numerically invisible
    but keeps ``B R B^T`` positive definite).  The loop system is
    symmetric positive definite, solved directly.
    """
    require_positive(voltage, "voltage")
    if source == sink:
        raise ValueError("source and sink coincide")
    eps = 1e-9 * min(e.ohms for e in circuit.edges)
    augmented = Circuit(
        list(circuit.edges) + [ResistorEdge(a=sink, b=source, ohms=eps)]
    )
    src_edge = augmented.num_edges - 1
    b = augmented.cycle_matrix()
    if b.shape[0] == 0:
        raise ValueError(
            "circuit with source attached has no loops: no current can flow"
        )
    r_diag = np.array([e.ohms for e in augmented.edges])
    # EMF vector: the source edge carries `voltage` in its a->b
    # direction (sink -> source inside the source, i.e. a battery).
    emf = np.zeros(augmented.num_edges)
    emf[src_edge] = voltage
    lhs = (b * r_diag) @ b.T
    rhs = b @ emf
    loop_currents = scipy.linalg.solve(lhs, rhs, assume_a="pos")
    edge_currents = b.T @ loop_currents
    total = float(edge_currents[src_edge])
    if abs(total) < 1e-300:
        raise ArithmeticError("no current flows between source and sink")
    return MeshSolution(
        loop_currents=loop_currents,
        edge_currents=edge_currents,
        total_current=total,
        effective_resistance=voltage / total - eps,
        num_loops=b.shape[0],
    )


def mesh_vs_nodal_gap(
    circuit: Circuit, source: Vertex, sink: Vertex, voltage: float = 5.0
) -> float:
    """|Z_mesh - Z_nodal| / Z_nodal — should be ~1e-9 (the EMF eps)."""
    nodal = circuit.solve_nodal(source, sink, voltage)
    mesh = solve_mesh(circuit, source, sink, voltage)
    z_nodal = nodal.effective_resistance()
    return abs(mesh.effective_resistance - z_nodal) / z_nodal
