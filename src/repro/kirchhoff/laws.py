"""Kirchhoff's laws on arbitrary resistive graphs.

This is the general-circuit substrate behind §II-A of the paper:

* **L1 (current law)** — one equation per vertex; exactly ``|V| - 1``
  of them are independent (the all-vertex sum telescopes to zero).
* **L2 (voltage law)** — one equation per independent loop; there are
  ``|E| - |V| + c`` of them (Maxwell's cyclomatic number), and they
  are jointly independent of the L1 set.

:class:`Circuit` builds both systems explicitly (incidence and
cycle-basis matrices), exposes the independence counts the paper
quotes, and solves the network by nodal analysis so the two law sets
can be verified numerically on the solution.  Edges are resistors;
ideal voltage sources are modelled by pinning node potentials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np
import scipy.linalg

from repro.topology.cycles import CycleBasis, fundamental_cycles
from repro.utils.validation import require_positive

Vertex = Hashable


@dataclass(frozen=True)
class ResistorEdge:
    """A resistor between ``a`` and ``b`` with value ``ohms``.

    Current direction convention: positive current flows a -> b.
    """

    a: Vertex
    b: Vertex
    ohms: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"resistor shorts node {self.a!r} to itself")
        require_positive(self.ohms, "ohms")


class Circuit:
    """A connected resistive circuit with explicit L1/L2 systems."""

    def __init__(self, edges: Sequence[ResistorEdge]) -> None:
        if not edges:
            raise ValueError("circuit needs at least one resistor")
        self.edges = tuple(edges)
        nodes: dict[Vertex, int] = {}
        for e in self.edges:
            nodes.setdefault(e.a, len(nodes))
            nodes.setdefault(e.b, len(nodes))
        self.node_index = nodes
        self.nodes: tuple[Vertex, ...] = tuple(nodes)
        self._cycles: CycleBasis | None = None

    # -- structural counts -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def num_l1_equations(self) -> int:
        """|V| equations of the current law (one per vertex)."""
        return self.num_nodes

    def num_independent_l1(self) -> int:
        """``|V| - 1`` — any one vertex equation is redundant."""
        return self.num_nodes - 1

    def num_independent_l2(self) -> int:
        """``|E| - |V| + 1`` for a connected circuit (Maxwell)."""
        return self.num_edges - self.num_nodes + 1

    # -- matrices ------------------------------------------------------------

    def incidence_matrix(self) -> np.ndarray:
        """Oriented incidence matrix ``A`` (|V| x |E|): row v, column e,
        entry +1 if e leaves v (v == e.a), -1 if it enters (v == e.b).

        ``A @ currents = injected`` *is* Kirchhoff L1.
        """
        a = np.zeros((self.num_nodes, self.num_edges), dtype=np.float64)
        for col, e in enumerate(self.edges):
            a[self.node_index[e.a], col] = 1.0
            a[self.node_index[e.b], col] = -1.0
        return a

    def cycle_basis(self) -> CycleBasis:
        """Fundamental cycle basis of the *simple* underlying graph.

        Parallel resistors collapse to one edge here; the multigraph-
        aware loop system used for mesh analysis is
        :meth:`cycle_matrix`, which works on edge indices directly.
        """
        if self._cycles is None:
            vertices = list(self.nodes)
            pairs = [(e.a, e.b) for e in self.edges]
            self._cycles = fundamental_cycles(vertices, pairs)
        return self._cycles

    def cycle_matrix(self) -> np.ndarray:
        """Signed cycle-edge matrix ``B`` (|cycles| x |E|).

        Row c gives the orientation (+1/-1/0) of each edge as the cycle
        is traversed; ``B @ (R * currents) = 0`` *is* Kirchhoff L2.

        Multigraph-aware: edges are identified by index, so parallel
        resistors each get their own fundamental cycle (a non-tree
        parallel edge closes a 2-edge loop with its twin).  Exactly
        ``|E| - |V| + c`` rows for ``c`` connected components.
        """
        # BFS spanning forest over edge indices.
        adj: dict[Vertex, list[tuple[int, Vertex]]] = {v: [] for v in self.nodes}
        for idx, e in enumerate(self.edges):
            adj[e.a].append((idx, e.b))
            adj[e.b].append((idx, e.a))
        # parent[v] = (parent node, edge index, sign of edge when
        # traversed parent -> v); sign +1 means the edge's a -> b
        # direction points parent -> v.
        parent: dict[Vertex, tuple[Vertex, int, int] | None] = {}
        tree_edges: set[int] = set()
        from collections import deque

        for root in self.nodes:
            if root in parent:
                continue
            parent[root] = None
            queue = deque([root])
            while queue:
                u = queue.popleft()
                for idx, w in adj[u]:
                    if w in parent or idx in tree_edges:
                        continue
                    sign = +1 if self.edges[idx].a == u else -1
                    parent[w] = (u, idx, sign)
                    tree_edges.add(idx)
                    queue.append(w)

        def root_path(v: Vertex) -> list[tuple[Vertex, int, int]]:
            """Steps (child, edge idx, sign parent->child) up to root."""
            steps = []
            while parent[v] is not None:
                u, idx, sign = parent[v]  # type: ignore[misc]
                steps.append((v, idx, sign))
                v = u
            return steps

        chords = [i for i in range(self.num_edges) if i not in tree_edges]
        b = np.zeros((len(chords), self.num_edges), dtype=np.float64)
        for row, chord in enumerate(chords):
            e = self.edges[chord]
            b[row, chord] = 1.0  # traverse chord a -> b
            path_a = root_path(e.a)
            path_b = root_path(e.b)
            # Trim common suffix (shared ancestry near the root).
            while path_a and path_b and path_a[-1] == path_b[-1]:
                path_a.pop()
                path_b.pop()
            # Continue b -> ... -> lca: each step is child -> parent,
            # i.e. *against* the recorded parent->child sign; then
            # lca -> ... -> a re-descends path_a in parent -> child
            # direction, *with* the recorded sign.
            for _, idx, sign in path_b:
                b[row, idx] += -sign
            for _, idx, sign in path_a:
                b[row, idx] += sign
        return b

    # -- solving ------------------------------------------------------------

    def solve_nodal(
        self, source: Vertex, sink: Vertex, voltage: float
    ) -> "CircuitSolution":
        """Node potentials and edge currents with ``voltage`` across
        ``source``/``sink`` (sink grounded)."""
        require_positive(voltage, "voltage")
        if source not in self.node_index or sink not in self.node_index:
            raise KeyError("source/sink must be circuit nodes")
        if source == sink:
            raise ValueError("source and sink coincide")
        nv = self.num_nodes
        lap = np.zeros((nv, nv), dtype=np.float64)
        for e in self.edges:
            g = 1.0 / e.ohms
            ia, ib = self.node_index[e.a], self.node_index[e.b]
            lap[ia, ia] += g
            lap[ib, ib] += g
            lap[ia, ib] -= g
            lap[ib, ia] -= g
        s, t = self.node_index[source], self.node_index[sink]
        free = np.setdiff1d(np.arange(nv), [s, t])
        potentials = np.zeros(nv)
        potentials[s] = voltage
        if free.size:
            a = lap[np.ix_(free, free)]
            rhs = -lap[np.ix_(free, [s])] @ np.array([voltage])
            potentials[free] = scipy.linalg.solve(a, rhs, assume_a="pos")
        currents = np.array(
            [
                (potentials[self.node_index[e.a]] - potentials[self.node_index[e.b]])
                / e.ohms
                for e in self.edges
            ]
        )
        injected = lap @ potentials
        return CircuitSolution(
            circuit=self,
            potentials=potentials,
            currents=currents,
            source=source,
            sink=sink,
            total_current=float(injected[s]),
        )

    def __repr__(self) -> str:
        return f"Circuit(|V|={self.num_nodes}, |E|={self.num_edges})"


@dataclass(frozen=True)
class CircuitSolution:
    """Solved network state, with law-residual accessors for testing."""

    circuit: Circuit
    potentials: np.ndarray
    currents: np.ndarray
    source: Vertex
    sink: Vertex
    total_current: float

    def l1_residual(self) -> np.ndarray:
        """Net current at each node minus the source injection (≈ 0)."""
        a = self.circuit.incidence_matrix()
        injected = np.zeros(self.circuit.num_nodes)
        injected[self.circuit.node_index[self.source]] = self.total_current
        injected[self.circuit.node_index[self.sink]] = -self.total_current
        return a @ self.currents - injected

    def l2_residual(self) -> np.ndarray:
        """Loop voltage sums over the fundamental cycle basis (≈ 0)."""
        b = self.circuit.cycle_matrix()
        drops = self.currents * np.array([e.ohms for e in self.circuit.edges])
        return b @ drops

    def effective_resistance(self) -> float:
        src = self.circuit.node_index[self.source]
        snk = self.circuit.node_index[self.sink]
        return float(
            (self.potentials[src] - self.potentials[snk]) / self.total_current
        )
