"""Exponential all-path enumeration — the baseline the paper replaces.

§II-C formulates MEA parametrization over *every* conduction path
between an endpoint pair.  In the collapsed wire graph a path from
``H_i`` to ``V_j`` alternates horizontal and vertical wires without
revisiting any wire, crossing one resistor per hop.  This module:

* enumerates those paths exactly (iterative DFS, deterministic order);
* counts them in closed form without enumeration;
* reports the paper's ``n^(n-1)`` / ``n^(n+1)`` estimates alongside the
  exact counts (the estimates coincide at ``n = 3`` — the paper's
  worked example — and diverge slowly above; EXPERIMENTS.md quantifies
  this), and
* measures the storage cost that makes the approach infeasible for
  ``n > 6`` on commodity hardware, reproducing the observation of [15].
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial
from typing import Iterator

import numpy as np

from repro.mea.device import MEAGrid
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class CrossbarPath:
    """One conduction path between endpoint pair (row, col).

    ``resistors`` is the hop sequence as (row, col) resistor indices:
    the first hop leaves the driven horizontal wire, the last arrives
    at the driven vertical wire.  ``wires`` records the alternating
    wire sequence ('H', idx) / ('V', idx) including both endpoints.
    """

    resistors: tuple[tuple[int, int], ...]
    wires: tuple[tuple[str, int], ...]

    @property
    def length(self) -> int:
        return len(self.resistors)

    def resistance(self, r: np.ndarray) -> float:
        """Series resistance of the path under resistance field ``r``."""
        rows = [p[0] for p in self.resistors]
        cols = [p[1] for p in self.resistors]
        return float(np.asarray(r)[rows, cols].sum())

    def storage_bytes(self) -> int:
        """Bytes to store the joint sequence (2 int32 per hop + wires).

        This is the per-path cost behind the paper's "the required
        space is even larger than the n exponential" remark.
        """
        return 8 * len(self.resistors) + 8 * len(self.wires)


def enumerate_paths(
    grid: MEAGrid, row: int, col: int, max_paths: int | None = None
) -> list[CrossbarPath]:
    """All simple alternating paths from ``H_row`` to ``V_col``.

    Deterministic order: depth-first, branching to vertical wires in
    ascending index order then horizontal wires ascending.  With
    ``max_paths`` the enumeration aborts early (for storage-growth
    experiments that only need a prefix).
    """
    grid._check_pos(row, col)
    m, n = grid.m, grid.n
    out: list[CrossbarPath] = []
    # Stack entries: (current wire ('H'/'V', idx), used_h mask, used_v mask,
    #                 resistor trail, wire trail)
    start = ("H", row)
    stack: list[tuple[tuple[str, int], int, int, tuple, tuple]] = [
        (start, 1 << row, 0, (), (start,))
    ]
    while stack:
        (kind, idx), used_h, used_v, trail, wires = stack.pop()
        if kind == "H":
            # Hop across any unused vertical wire.
            for v in range(n - 1, -1, -1):
                if used_v >> v & 1:
                    continue
                hop = ((idx, v),)
                new_wires = wires + (("V", v),)
                if v == col:
                    out.append(
                        CrossbarPath(resistors=trail + hop, wires=new_wires)
                    )
                    if max_paths is not None and len(out) >= max_paths:
                        return out
                else:
                    stack.append(
                        (("V", v), used_h, used_v | 1 << v, trail + hop, new_wires)
                    )
        else:
            # From a vertical wire, hop to any unused horizontal wire.
            for h in range(m - 1, -1, -1):
                if used_h >> h & 1:
                    continue
                hop = ((h, idx),)
                stack.append(
                    (
                        ("H", h),
                        used_h | 1 << h,
                        used_v,
                        trail + hop,
                        wires + (("H", h),),
                    )
                )
    return out


def count_paths_exact(m: int, n: int) -> int:
    """Exact number of alternating simple paths for one endpoint pair.

    A path visits ``t >= 0`` intermediate vertical wires and ``t``
    intermediate horizontal wires in order, drawn without replacement
    from the ``n - 1`` / ``m - 1`` not being driven:

    ``sum_t  P(n-1, t) * P(m-1, t)``  with ``P(a, t) = a!/(a-t)!``.

    Matches brute-force enumeration for all tested sizes, and equals
    the paper's ``n^(n-1)`` at n = 3 (both give 9).
    """
    m = require_positive_int(m, "m")
    n = require_positive_int(n, "n")
    total = 0
    t = 0
    while t <= min(m - 1, n - 1):
        total += (
            factorial(n - 1)
            // factorial(n - 1 - t)
            * (factorial(m - 1) // factorial(m - 1 - t))
        )
        t += 1
    return total


def count_paths_paper(n: int) -> int:
    """The paper's §II-C estimate for one pair of a square device:
    ``n^(n-1)``."""
    n = require_positive_int(n, "n")
    return n ** (n - 1)


def total_paths_exact(m: int, n: int) -> int:
    """Exact all-pairs path count: ``m * n`` pairs by symmetry."""
    return m * n * count_paths_exact(m, n)


def total_paths_paper(n: int) -> int:
    """The paper's all-pairs estimate ``n^(n+1)`` (square devices)."""
    n = require_positive_int(n, "n")
    return n ** (n + 1)


def storage_estimate_bytes(n: int) -> int:
    """Storage to hold all paths of a square device, from closed forms.

    Average path length is estimated from the exact length
    distribution; per-hop cost matches
    :meth:`CrossbarPath.storage_bytes`.  Used by the path-explosion
    benchmark to extrapolate past what can actually be enumerated.
    """
    n = require_positive_int(n, "n")
    total_bytes = 0
    t = 0
    while t <= n - 1:
        count = (factorial(n - 1) // factorial(n - 1 - t)) ** 2
        hops = 2 * t + 1
        wires = hops + 1
        total_bytes += count * (8 * hops + 8 * wires)
        t += 1
    return total_bytes * n * n


def path_length_histogram(paths: list[CrossbarPath]) -> dict[int, int]:
    """Histogram of hop counts (odd lengths 1, 3, 5, ...)."""
    hist: dict[int, int] = {}
    for p in paths:
        hist[p.length] = hist.get(p.length, 0) + 1
    return dict(sorted(hist.items()))


def iter_all_pairs_paths(
    grid: MEAGrid, max_total: int | None = None
) -> Iterator[tuple[int, int, CrossbarPath]]:
    """Stream (row, col, path) over all endpoint pairs, row-major."""
    emitted = 0
    for i in range(grid.m):
        for j in range(grid.n):
            for p in enumerate_paths(grid, i, j):
                yield i, j, p
                emitted += 1
                if max_total is not None and emitted >= max_total:
                    return
