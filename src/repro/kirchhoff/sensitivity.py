"""Measurement sensitivity maps: which resistors does a reading see?

From the analytic derivative behind the nested solver
(:func:`repro.core.solver.nested_jacobian`):

    ``∂Z_st / ∂R_ab = (x_st^T L⁺ b_ab)² / R_ab²``

— the squared *transfer potential* across resistor (a, b) when unit
current is driven through pair (s, t).  Normalized per pair this is a
probability-like map of where the measurement's information lives:

* the driven pair's own resistor dominates;
* sensitivity decays away from the driven wires — the physical basis
  for the paper's §IV-B locality/manifold argument;
* the aggregate map over all pairs shows the device's blind spots
  (corners are seen by fewer low-resistance paths).

Used by the examples to visualize devices, and by tests to pin the
locality structure quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_positive_array


def sensitivity_map(resistance: np.ndarray, row: int, col: int) -> np.ndarray:
    """``∂Z_row,col / ∂R`` over every resistor, shape (m, n).

    Entries are non-negative (Rayleigh monotonicity) and carry units
    of (measured Ω) per (resistor Ω).
    """
    from repro.core.solver import nested_jacobian

    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    if not (0 <= row < m and 0 <= col < n):
        raise IndexError(f"pair ({row}, {col}) out of range for {m}x{n}")
    jac = nested_jacobian(r)  # dZ/d(log R), rows = pairs, cols = resistors
    pair = row * n + col
    # dZ/dR = dZ/dθ / R.
    return (jac[pair] / r.ravel()).reshape(m, n)


def normalized_sensitivity(
    resistance: np.ndarray, row: int, col: int
) -> np.ndarray:
    """Sensitivity map scaled to sum to 1 (information distribution)."""
    s = sensitivity_map(resistance, row, col)
    total = s.sum()
    if total <= 0:  # pragma: no cover - impossible for positive R
        raise ArithmeticError("degenerate sensitivity")
    return s / total


def aggregate_sensitivity(resistance: np.ndarray) -> np.ndarray:
    """Sum of normalized maps over all pairs: device coverage.

    Uniform coverage would be flat at ``m * n / (m * n) = 1`` after
    dividing by the pair count; structure reveals which resistors are
    well- or poorly-observed.
    """
    from repro.core.solver import nested_jacobian

    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    jac = nested_jacobian(r) / r.ravel()[None, :]
    jac = jac / jac.sum(axis=1, keepdims=True)
    return jac.sum(axis=0).reshape(m, n) / (m * n) * (m * n)


def locality_profile(
    resistance: np.ndarray, row: int, col: int
) -> np.ndarray:
    """Mean normalized sensitivity vs Chebyshev distance to (row, col).

    Decreasing profile = the measurement is local — §IV-B's premise.
    Returns an array indexed by distance 0..max_dist.
    """
    s = normalized_sensitivity(resistance, row, col)
    m, n = s.shape
    rows, cols = np.mgrid[0:m, 0:n]
    dist = np.maximum(np.abs(rows - row), np.abs(cols - col))
    out = []
    for d in range(int(dist.max()) + 1):
        mask = dist == d
        out.append(float(s[mask].mean()))
    return np.array(out)


def self_sensitivity_fraction(resistance: np.ndarray) -> np.ndarray:
    """Per pair: fraction of sensitivity on the pair's own resistor.

    The diagonal-dominance structure that makes ``R0 = Z``-style
    initializations work.
    """
    from repro.core.solver import nested_jacobian

    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    jac = nested_jacobian(r) / r.ravel()[None, :]
    own = np.diagonal(jac)
    return (own / jac.sum(axis=1)).reshape(m, n)
