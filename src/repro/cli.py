"""Command-line interface: ``parma <subcommand>``.

Subcommands mirror the wet-lab workflow:

``simulate``
    Generate a synthetic measurement campaign (the wet-lab stand-in)
    and write it as a measurement text file.
``solve``
    Parametrize one timepoint of a campaign file: form the joint
    constraints (optionally persisting them), recover R, report
    anomalies.
``monitor``
    Run the whole campaign with drift analysis (§II-C monitoring).
``screen``
    Quality-control screening: recover R for one timepoint and flag
    open/shorted crossings (manufacturing defects).
``convert``
    Convert a lab workbook directory (CSV sheets) to the measurement
    text format — the paper's "Excel files converted into text".
``selftest``
    Run the library's core-invariant checks (installation sanity).
``chaos``
    Fault-injection smoke: kill workers, corrupt streamed blocks,
    dirty measurements, force solver rungs — and verify every
    recovery path produces the fault-free answer.
``scale``
    Elastic campaign dispatch + the strategy × rank scaling sweep:
    run a quiet and a churn formation campaign (SIGKILL one worker,
    shrink then grow the pool mid-run), verify bit-identical part
    files, then sweep the simulated cluster clock to ``--ranks``
    (default 1,024) and optionally write the ``BENCH_scaling.json``
    shape with ``--out``.
``info``
    Print device/topology/accounting facts for a given n.
``trace``
    Inspect observability artifacts: ``parma trace summarize DIR``
    prints the phase rollup, metrics and environment of a traced run
    (``parma solve/monitor --trace DIR``); ``--json`` emits the same
    flattened record the run catalog ingests.
``runs``
    The SQLite run catalog (docs/OBSERVABILITY.md): ``ingest``
    manifest directories, ``list``/``show``/``query``/``stats`` them,
    ``regress`` bench-tagged runs against the committed BENCH_*.json
    trajectories, and ``watch`` a live ``parma serve`` instance.
``serve``
    Run the persistent solve service on a unix-domain socket: a
    long-lived engine pool with warm formation/pinv caches, request
    batching, bounded admission and graceful SIGTERM drain
    (docs/SERVING.md).
``submit``
    Submit one timepoint to a running ``parma serve`` instance and
    print its result; exit status mirrors ``parma solve`` (plus 75
    for retriable admission rejections).

All output is plain text; exit status is nonzero on failure.  Invoke
as ``parma ...`` (console script) or ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np


def _make_observer(args: argparse.Namespace):
    """Build + install the run Observer for ``--trace`` / ``--metrics``.

    Returns None when neither flag was given (the global observer stays
    the zero-overhead no-op).
    """
    trace_dir = getattr(args, "trace", None)
    if trace_dir is None:
        if getattr(args, "catalog", None) is not None:
            raise ValueError(
                "--catalog requires --trace DIR (the catalog ingests the "
                "run manifest written there)"
            )
        if getattr(args, "bench_tag", None):
            raise ValueError(
                "--bench-tag requires --trace DIR (the tag is stamped into "
                "the run manifest)"
            )
    if trace_dir is None and not getattr(args, "metrics", False):
        return None
    from repro.observe import Observer, set_observer

    obs = Observer(trace_dir=trace_dir)
    set_observer(obs)  # low layers (atomio, checkpoint) report globally
    return obs


def _finish_observer(obs, args: argparse.Namespace, config: dict, memory=None) -> None:
    """Finalize artifacts and/or print the metrics table, then uninstall."""
    if obs is None:
        return
    from repro.observe import set_observer
    from repro.observe.observer import MANIFEST_FILE_NAME

    try:
        if obs.trace_dir is not None:
            extra = None
            if getattr(args, "bench_tag", None):
                extra = {"bench": args.bench_tag}
            manifest = obs.finalize(config=config, memory=memory, extra=extra)
            print(
                f"trace: {manifest['num_spans']} span(s) -> {obs.trace_dir} "
                f"(run {manifest['run_id']}; open trace.chrome.json in "
                "Perfetto, or `parma trace summarize "
                f"{obs.trace_dir}`)"
            )
            print(f"manifest: {obs.trace_dir / MANIFEST_FILE_NAME}")
            catalog_path = getattr(args, "catalog", None)
            if catalog_path is not None:
                from repro.observe.catalog import Catalog

                with Catalog(catalog_path) as catalog:
                    report = catalog.ingest([obs.trace_dir])
                    print(
                        f"catalog: {report.summary()} -> {catalog_path} "
                        f"({catalog.count()} run(s) total)"
                    )
        if getattr(args, "metrics", False):
            from repro.instrument.report import metrics_table
            from repro.observe.metrics import sync_cache_gauges

            if obs.trace_dir is None:
                # finalize() already mirrored the cache gauges above.
                sync_cache_gauges(obs.metrics)
            print(metrics_table(obs.metrics.snapshot()).render())
    finally:
        set_observer(None)


def _drop_observer(obs) -> None:
    """Uninstall the global observer on an error path (no artifacts)."""
    if obs is not None:
        from repro.observe import set_observer

        set_observer(None)


def _add_observe_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", type=Path, default=None, metavar="DIR",
                        help="write trace.jsonl, trace.chrome.json and "
                             "manifest.json for this run to DIR")
    parser.add_argument("--metrics", action="store_true",
                        help="print the run's metrics table")
    parser.add_argument("--catalog", type=Path, default=None, metavar="DB",
                        help="also ingest this run's manifest into the "
                             "SQLite run catalog at DB (requires --trace; "
                             "query it with `parma runs`)")
    parser.add_argument("--bench-tag", default=None, metavar="NAME",
                        help="stamp extra.bench=NAME into the manifest so "
                             "`parma runs regress` gates this run against "
                             "the committed BENCH_*.json trajectory "
                             "(requires --trace)")


def _add_deadline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole run; on "
                             "expiry in-flight workers are killed and the "
                             f"exit status is {_DEADLINE_EXIT} (partial "
                             "results are reported, not discarded)")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="heartbeat watchdog: kill a formation worker "
                             "silent this long and salvage its completed "
                             "blocks")


# Mirrored from repro.resilience.supervise.DEADLINE_EXIT_CODE without
# importing it at module load (the CLI keeps imports lazy per command).
_DEADLINE_EXIT = 94


def _deadline_failure(exc, obs, args, config) -> None:
    """Report a blown deadline: finalize artifacts, print the salvage."""
    _finish_observer(obs, args, {**config, "status": "deadline"})
    print(f"error: {exc}", file=sys.stderr)
    partial = getattr(exc, "partial", None)
    if partial is not None and hasattr(partial, "summary"):
        print("partial results before the deadline:")
        print(partial.summary())


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io.textformat import save_campaign
    from repro.mea.synthetic import paper_like_spec
    from repro.mea.wetlab import WetLabConfig, run_campaign

    spec = paper_like_spec(args.n, num_anomalies=args.anomalies, seed=args.seed)
    config = WetLabConfig(noise_rel=args.noise)
    run = run_campaign(spec, config, seed=args.seed)
    save_campaign(run.campaign, args.out)
    if args.truth_out:
        np.save(args.truth_out, np.stack(run.ground_truth))
    print(
        f"wrote {len(run.campaign)} timepoints of a {args.n}x{args.n} "
        f"campaign (noise {args.noise:.3%}) to {args.out}"
    )
    if args.truth_out:
        print(f"wrote ground-truth fields to {args.truth_out}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.engine import ParmaEngine
    from repro.io.textformat import load_campaign
    from repro.mea.dataset import MeasurementValidationError
    from repro.resilience.degrade import SolverDegradationError
    from repro.resilience.faults import FaultPlan
    from repro.resilience.supervise import DEADLINE_EXIT_CODE, DeadlineExceeded

    campaign = load_campaign(args.campaign)
    try:
        meas = campaign.at_hour(args.hour)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    faults = None
    if args.inject_fail_rungs:
        faults = FaultPlan(
            fail_rungs=tuple(
                r.strip() for r in args.inject_fail_rungs.split(",") if r.strip()
            )
        )
    obs = _make_observer(args)
    engine = ParmaEngine(
        strategy=args.strategy,
        num_workers=args.workers,
        solver=args.solver,
        backend=args.backend,
        threshold_sigmas=args.threshold,
        formation=args.formation,
        validate=args.validate,
        faults=faults,
        observer=obs,
        deadline=args.deadline,
        stall_timeout=args.stall_timeout,
    )
    solver_kwargs = (
        {"lam": args.lam} if args.solver == "regularized" else None
    )
    config = {
        "command": "solve",
        "n": int(meas.z_kohm.shape[0]),
        "hour": float(meas.hour),
        "strategy": args.strategy,
        "workers": args.workers,
        "solver": args.solver,
        "backend": args.backend,
        "formation": args.formation,
        "validate": args.validate,
    }
    memory = None
    try:
        if obs is not None:
            from repro.instrument.memory import MemorySampler

            with MemorySampler(interval=0.02) as sampler, obs.span(
                "run", command="solve", n=int(meas.z_kohm.shape[0])
            ):
                result = engine.parametrize(
                    meas,
                    output_dir=args.equations_dir,
                    solver_kwargs=solver_kwargs,
                )
            memory = sampler.summary()
        else:
            result = engine.parametrize(
                meas, output_dir=args.equations_dir, solver_kwargs=solver_kwargs
            )
    except DeadlineExceeded as exc:
        # Finalize (don't drop) so the manifest records the salvage
        # counters accumulated before the budget ran out.
        _deadline_failure(exc, obs, args, config)
        return DEADLINE_EXIT_CODE
    except SolverDegradationError as exc:
        _drop_observer(obs)
        print(
            f"error: solve failed on every degradation rung: {exc}",
            file=sys.stderr,
        )
        return 1
    except MeasurementValidationError as exc:
        _drop_observer(obs)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    degraded = result.degradation is not None and result.degradation.degraded
    unconverged = degraded and not result.solve.converged
    # Stamped before finalize so the manifest (and the run catalog's
    # `status` column) records the outcome, not just the knobs.
    config["status"] = (
        "unconverged" if unconverged else "degraded" if degraded else "ok"
    )
    _finish_observer(obs, args, config, memory=memory)
    print(result.summary())
    for event in result.events:
        print(f"  resilience: {event}")
    if result.degradation is not None and result.degradation.degraded:
        print(f"  degradation: {result.degradation.describe()}")
        if not result.solve.converged:
            print(
                "error: solve did not converge even after degradation "
                f"({result.degradation.describe()})",
                file=sys.stderr,
            )
            return 1
    if args.show:
        from repro.instrument.heatmap import render_field

        print(render_field(result.resistance, mask=result.detection.mask))
    for region in result.detection.regions:
        print(
            f"  region {region.label}: {region.size} site(s), centroid "
            f"({region.centroid[0]:.1f}, {region.centroid[1]:.1f}), "
            f"peak {region.peak_resistance:.0f} kΩ"
        )
    if args.field_out:
        np.save(args.field_out, result.resistance)
        print(f"wrote recovered field to {args.field_out}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.engine import ParmaEngine
    from repro.core.pipeline import run_pipeline
    from repro.io.textformat import load_campaign
    from repro.resilience.retry import RetryPolicy
    from repro.resilience.supervise import DEADLINE_EXIT_CODE, DeadlineExceeded

    campaign = load_campaign(args.campaign)
    retry = (
        RetryPolicy(max_retries=args.max_retries)
        if args.max_retries is not None
        else None
    )
    obs = _make_observer(args)
    engine = ParmaEngine(
        strategy=args.strategy,
        num_workers=args.workers,
        backend=args.backend,
        threshold_sigmas=args.threshold,
        formation=args.formation,
        retry=retry,
        observer=obs,
        stall_timeout=args.stall_timeout,
    )
    config = {
        "command": "monitor",
        "timepoints": len(campaign),
        "strategy": args.strategy,
        "workers": args.workers,
        "formation": args.formation,
        "backend": args.backend,
        "warm_start": not args.no_warm_start,
    }
    memory = None
    try:
        if obs is not None:
            from repro.instrument.memory import MemorySampler

            with MemorySampler(interval=0.02) as sampler, obs.span(
                "run", command="monitor", timepoints=len(campaign)
            ):
                out = run_pipeline(
                    campaign,
                    engine=engine,
                    growth_threshold=args.growth,
                    warm_start=not args.no_warm_start,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=not args.no_resume,
                    observer=obs,
                    deadline=args.deadline,
                )
            memory = sampler.summary()
        else:
            out = run_pipeline(
                campaign,
                engine=engine,
                growth_threshold=args.growth,
                warm_start=not args.no_warm_start,
                checkpoint_dir=args.checkpoint_dir,
                resume=not args.no_resume,
                deadline=args.deadline,
            )
    except DeadlineExceeded as exc:
        _deadline_failure(exc, obs, args, config)
        return DEADLINE_EXIT_CODE
    config["status"] = (
        "degraded"
        if any(
            r.degradation is not None and r.degradation.degraded
            for r in out.results
        )
        else "ok"
    )
    _finish_observer(obs, args, config, memory=memory)
    print(out.summary())
    resumed = sum(
        1 for r in out.results if r.formation.strategy.startswith("resumed:")
    )
    if resumed:
        print(f"  {resumed} timepoint(s) restored from checkpoint "
              f"{args.checkpoint_dir}")
    if args.show and out.drift_detection is not None:
        from repro.instrument.heatmap import render_comparison

        print(render_comparison(
            out.results[0].resistance,
            out.results[-1].resistance,
            labels=(f"{out.hours[0]:g} h", f"{out.hours[-1]:g} h"),
        ))
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.core.solver import solve_nested
    from repro.instrument.heatmap import render_mask
    from repro.io.textformat import load_campaign
    from repro.mea.defects import classify_crossings, healthy_band_violations

    campaign = load_campaign(args.campaign)
    try:
        meas = campaign.at_hour(args.hour)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = solve_nested(meas.z_kohm, voltage=meas.voltage, max_iter=200)
    defects = classify_crossings(result.r_estimate)
    print(
        f"screened {meas.z_kohm.shape[0]}x{meas.z_kohm.shape[1]} device at "
        f"hour {meas.hour:g}: {defects.num_opens} open(s), "
        f"{defects.num_shorts} short(s)"
    )
    for site in defects.open_sites():
        print(f"  OPEN  at crossing {site}")
    for site in defects.short_sites():
        print(f"  SHORT at crossing {site}")
    suspects = healthy_band_violations(result.r_estimate)
    suspects &= defects.codes == 0
    if suspects.any():
        print(f"  {int(suspects.sum())} crossing(s) outside the healthy "
              "band (suspect calibration):")
        print(render_mask(suspects, on="?"))
    return 0 if defects.num_defects == 0 else 1


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.io.workbook import convert_workbook

    campaign = convert_workbook(args.workbook, args.out)
    print(
        f"converted {args.workbook} -> {args.out}: "
        f"{len(campaign)} timepoints at hours {campaign.hours}"
    )
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.core.selftest import run_selftest

    report = run_selftest(n=args.n)
    print(report.render())
    return 0 if report.passed else 1


#: ``parma chaos --include`` keys, in execution order.
CHAOS_CHECKS = (
    "kill", "hang", "slow", "signal", "stream", "campaign", "dirty", "ladder",
    "elastic", "serve", "fleet",
)


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection smoke test: every recovery path, one command.

    Each check injects a specific fault and asserts the recovered
    output equals the fault-free reference — recovery that silently
    changes answers is worse than crashing.
    """
    import signal as signal_mod
    import tempfile

    import numpy as np

    from repro.core.engine import ParmaEngine
    from repro.core.pipeline import run_pipeline
    from repro.core.streaming import stream_to_file
    from repro.mea.dataset import MeasurementValidationError
    from repro.mea.synthetic import paper_like_spec
    from repro.mea.wetlab import run_campaign
    from repro.observe import Observer
    from repro.parallel.pymp import ParallelError, fork_available
    from repro.resilience import (
        FaultPlan,
        InjectedAbort,
        RetryPolicy,
        stream_to_file_checkpointed,
    )
    from repro.resilience.supervise import Supervisor

    include = None
    if args.include:
        include = tuple(
            name.strip() for name in args.include.split(",") if name.strip()
        )
        unknown = sorted(set(include) - set(CHAOS_CHECKS))
        if unknown:
            print(
                f"error: unknown chaos check(s) {', '.join(unknown)} "
                f"(known: {', '.join(CHAOS_CHECKS)})",
                file=sys.stderr,
            )
            return 2

    def want(name: str) -> bool:
        return include is None or name in include

    n, seed = args.n, args.seed
    run = run_campaign(paper_like_spec(n, seed=seed), seed=seed)
    campaign = run.campaign
    meas = campaign.measurements[0]
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, ok, detail))
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail else ""))

    obs = _make_observer(args)
    # Supervision checks assert on observer counters, so they need a
    # live metrics registry even when the user asked for no artifacts.
    sup_obs = obs if obs is not None else Observer()

    def counter(name: str) -> float:
        return sup_obs.metrics.snapshot().get(name, {}).get("value", 0.0)

    selected = include or CHAOS_CHECKS
    print(
        f"chaos smoke on a {n}x{n} device (seed {seed}; "
        f"checks: {', '.join(selected)})"
    )

    clean = None
    if fork_available() and any(
        want(c) for c in ("kill", "hang", "slow", "signal")
    ):
        clean = ParmaEngine(strategy="pymp", num_workers=3).form(meas)

    # 1. Worker kill mid-formation -> bounded retry reproduces the
    #    fault-free formation checksum.
    if want("kill"):
        if fork_available():
            engine = ParmaEngine(
                strategy="pymp",
                num_workers=3,
                faults=FaultPlan(seed=seed, kill_workers=(1,), kill_attempts=1),
                retry=RetryPolicy(max_retries=2),
            )
            result = engine.parametrize(meas)
            check(
                "worker kill -> retry",
                bool(result.events)
                and np.isclose(result.formation.checksum, clean.checksum),
                f"{len(result.events)} event(s), checksum matches",
            )
        else:  # pragma: no cover - fork always available on test platforms
            check("worker kill -> retry", True, "skipped (no fork)")

    # 2. Hung worker -> heartbeat watchdog kills it, parent salvages
    #    its completed blocks and re-forms only the missing tail.
    if want("hang"):
        if fork_available():
            engine = ParmaEngine(
                strategy="pymp",
                num_workers=3,
                faults=FaultPlan(seed=seed, hang_workers=(1,), hang_after_items=1),
                stall_timeout=1.5,
                observer=sup_obs,
            )
            result = engine.parametrize(meas)
            f = result.formation
            check(
                "hung worker -> watchdog + salvage",
                np.isclose(f.checksum, clean.checksum)
                and f.stalled_ranks == (1,)
                and f.blocks_salvaged > 0
                and f.blocks_reformed > 0,
                f"rank 1 killed after heartbeat stall; {f.blocks_salvaged} "
                f"block(s) salvaged, {f.blocks_reformed} re-formed; "
                "checksum matches",
            )
        else:  # pragma: no cover
            check("hung worker -> watchdog + salvage", True, "skipped (no fork)")

    # 3. Slow worker -> straggler speculation fires (tail re-formed in
    #    the parent) while the worker itself survives to completion.
    if want("slow"):
        if fork_available():
            before = counter("supervise.stragglers")
            engine = ParmaEngine(
                strategy="pymp",
                num_workers=3,
                faults=FaultPlan(
                    seed=seed, slow_workers=(1,), slow_seconds_per_item=0.5
                ),
                supervise=Supervisor(
                    stall_timeout=30.0, straggler_age=0.25, observer=sup_obs
                ),
                observer=sup_obs,
            )
            result = engine.parametrize(meas)
            fired = counter("supervise.stragglers") - before
            check(
                "slow worker -> straggler speculation",
                np.isclose(result.formation.checksum, clean.checksum)
                and fired >= 1
                and not result.formation.stalled_ranks,
                f"speculation fired for {int(fired)} rank(s); no worker "
                "killed; checksum matches",
            )
        else:  # pragma: no cover
            check("slow worker -> straggler speculation", True,
                  "skipped (no fork)")

    # 4. Signal death -> the join reports *negative* exit codes (the
    #    signal number), on both the raising and serial-degraded paths.
    if want("signal"):
        if fork_available():
            sig = int(signal_mod.SIGTERM)
            plan = FaultPlan(
                seed=seed, kill_workers=(1,), kill_signal=sig, kill_attempts=99
            )
            engine = ParmaEngine(strategy="pymp", num_workers=3, faults=plan)
            try:
                engine.form(meas)
                check("signal death -> negative exit code", False,
                      "no ParallelError raised")
            except ParallelError as exc:
                print(
                    f"  worker death report: ranks {exc.failed_ranks}, "
                    f"exit codes {exc.exit_codes}"
                )
                check(
                    "signal death -> negative exit code",
                    exc.failed_ranks == (1,) and exc.exit_codes == (-sig,),
                    f"exit code {exc.exit_codes[0]} = -SIGTERM",
                )
            engine = ParmaEngine(
                strategy="pymp",
                num_workers=3,
                faults=plan,
                retry=RetryPolicy(max_retries=1),
            )
            result = engine.parametrize(meas)
            check(
                "signal death -> serial degradation",
                result.formation.strategy == "single-thread"
                and np.isclose(result.formation.checksum, clean.checksum)
                and any(str(-sig) in e for e in result.events),
                f"degraded to single-thread; events record exit code {-sig}",
            )
        else:  # pragma: no cover
            check("signal death -> negative exit code", True,
                  "skipped (no fork)")

    with tempfile.TemporaryDirectory() as td:
        td = Path(td)
        # 5. Corrupt + dropped stream blocks -> checksum verification
        #    re-forms them; resumed file is byte-identical.
        if want("stream"):
            ref_path = td / "clean.bin"
            stream_to_file(meas.z_kohm, ref_path, voltage=meas.voltage)
            chaos_dir = td / "stream"
            corrupt = n + 2
            plan = FaultPlan(
                seed=seed,
                corrupt_blocks=(corrupt,),
                drop_blocks=(3 * n + 1,),
                abort_after_blocks=(n * n) // 2,
            )
            try:
                stream_to_file_checkpointed(
                    meas.z_kohm, chaos_dir, voltage=meas.voltage, faults=plan
                )
            except InjectedAbort:
                pass
            cp, resume_report, _ = stream_to_file_checkpointed(
                meas.z_kohm, chaos_dir, voltage=meas.voltage
            )
            identical = cp.data_path.read_bytes() == ref_path.read_bytes()
            check(
                "block corruption/drop -> checkpointed resume",
                cp.complete and identical and resume_report.blocks_discarded > 0,
                f"discarded {resume_report.blocks_discarded} "
                f"({resume_report.first_bad_reason}); file byte-identical",
            )

        # 6. Campaign abort between timepoints -> resume from manifest,
        #    fields identical to the fault-free day.
        if want("campaign"):
            ref = run_pipeline(campaign, engine=ParmaEngine(strategy="single"))
            ck = td / "campaign"
            try:
                run_pipeline(
                    campaign,
                    engine=ParmaEngine(strategy="single"),
                    checkpoint_dir=ck,
                    faults=FaultPlan(seed=seed, abort_after_timepoints=2),
                )
            except InjectedAbort:
                pass
            resumed = run_pipeline(
                campaign, engine=ParmaEngine(strategy="single"), checkpoint_dir=ck
            )
            fields_equal = all(
                np.array_equal(a.resistance, b.resistance)
                for a, b in zip(ref.results, resumed.results)
            )
            restored = sum(
                1
                for r in resumed.results
                if r.formation.strategy.startswith("resumed:")
            )
            check(
                "campaign kill -> resume",
                fields_equal and restored == 2,
                f"{restored} timepoint(s) restored, fields identical",
            )

    # 7. Dirty measurement: strict rejects naming the channel; repair
    #    imputes and completes.
    if want("dirty"):
        dirty_plan = FaultPlan(seed=seed, nan_sites=((1, 2),), dead_rows=(0,))
        strict = ParmaEngine(strategy="single", faults=dirty_plan, validate="strict")
        try:
            strict.parametrize(meas)
            check("dirty measurement -> strict reject", False, "no error raised")
        except MeasurementValidationError as exc:
            check(
                "dirty measurement -> strict reject",
                "z_kohm[" in str(exc),
                str(exc)[:80],
            )
        repair = ParmaEngine(strategy="single", faults=dirty_plan, validate="repair")
        result = repair.parametrize(meas)
        check(
            "dirty measurement -> repair",
            any("repaired" in e for e in result.events)
            and np.all(np.isfinite(result.resistance)),
            "imputed bad sites, solve finished",
        )

    # 8. Forced rung failures engage the ladder in order.
    if want("ladder"):
        engine = ParmaEngine(
            strategy="single",
            faults=FaultPlan(seed=seed, fail_rungs=("primary", "regularized")),
        )
        result = engine.parametrize(meas)
        deg = result.degradation
        check(
            "solver ladder",
            deg is not None
            and deg.rung_used == "bounded"
            and deg.rungs_tried == ("primary", "regularized", "bounded"),
            deg.describe() if deg else "no degradation report",
        )

    # 9. Elastic dispatch: a churn campaign (one worker SIGKILLed, the
    #    pool shrunk then grown mid-run) must commit part files
    #    byte-identical to a quiet run's, with the lease reassignment
    #    and both resizes visible as elastic.* counters.
    if want("elastic"):
        if fork_available():
            from repro.parallel.elastic import (
                part_files_identical,
                run_elastic_formation,
            )

            with tempfile.TemporaryDirectory() as ed:
                ed = Path(ed)
                quiet = run_elastic_formation(
                    meas.z_kohm,
                    workers=3,
                    chunk_items=16,
                    output_dir=ed / "quiet",
                    lease_timeout=30.0,
                )
                chunks = quiet.chunks_total
                before_reassigned = counter("elastic.lease_reassigned")
                before_resized = counter("elastic.pool_resized")
                run_elastic_formation(
                    meas.z_kohm,
                    workers=3,
                    chunk_items=16,
                    output_dir=ed / "churn",
                    lease_timeout=30.0,
                    faults=FaultPlan(
                        seed=seed,
                        kill_workers=(1,),
                        kill_signal=int(signal_mod.SIGKILL),
                    ),
                    resize_schedule=[
                        (max(1, chunks // 3), 2),
                        (max(2, 2 * chunks // 3), 3),
                    ],
                    observer=sup_obs,
                )
                identical, detail = part_files_identical(
                    ed / "quiet", ed / "churn"
                )
                reassigned = (
                    counter("elastic.lease_reassigned") - before_reassigned
                )
                resized = counter("elastic.pool_resized") - before_resized
                check(
                    "elastic: churn -> bit-identical part files",
                    identical and reassigned >= 1 and resized >= 2,
                    f"{detail}; {int(reassigned)} lease(s) reassigned, "
                    f"{int(resized)} resize(s)",
                )
        else:  # pragma: no cover - fork always available on test platforms
            check("elastic: churn -> bit-identical part files", True,
                  "skipped (no fork)")

    # 10. Serve chaos: kill/hang/corrupt/drop an executor worker under
    #    the solve service; every recovered answer must be bit-identical
    #    to a standalone solve, and the service must stay up throughout.
    if want("serve"):
        if fork_available():
            from repro.serve import ServiceConfig, SolveClient, SolveService

            serve_ref = ParmaEngine(
                strategy="single", threshold_sigmas=3.0
            ).parametrize(meas)

            def serve_check(
                name: str,
                plan: FaultPlan,
                *,
                requests: int = 1,
                max_salvage: int = 1,
                stall_timeout: float = 30.0,
            ) -> None:
                with tempfile.TemporaryDirectory() as sd:
                    sd = Path(sd)
                    config = ServiceConfig(
                        socket_path=sd / "chaos.sock",
                        results_dir=sd / "results",
                        linger=0.0,
                        executor="subprocess",
                        serve_workers=1,
                        term_grace=0.2,
                        stall_timeout=stall_timeout,
                        max_salvage=max_salvage,
                        faults=plan,
                    )
                    svc = SolveService(config)
                    svc.start()
                    try:
                        client = SolveClient(
                            config.socket_path,
                            timeout=120.0,
                            retries=3,
                            backoff=0.05,
                        )
                        client.wait_ready(timeout=10.0)
                        responses = [
                            client.solve(meas.z_kohm, id=f"{name}-{i}")
                            for i in range(requests)
                        ]
                        identical = all(
                            r.ok
                            and np.array_equal(
                                r.resistance_array(), serve_ref.resistance
                            )
                            for r in responses
                        )
                        alive = client.ping()["kind"] == "pong"
                        respawns = svc.pool.respawns
                        salvaged = svc.pool.salvaged
                    finally:
                        svc.stop()
                check(
                    name,
                    identical and alive and respawns >= 1,
                    f"{respawns} respawn(s), {salvaged} salvaged; service "
                    "up; recovered fields bit-identical to standalone",
                )

            serve_check(
                "serve: executor kill -> salvage",
                FaultPlan(seed=seed, serve_kill_requests=(1,)),
                requests=3,
            )
            serve_check(
                "serve: worker lost -> client retry",
                FaultPlan(seed=seed, serve_kill_requests=(0,)),
                max_salvage=0,
            )
            serve_check(
                "serve: hung executor -> stall watchdog",
                FaultPlan(seed=seed, serve_hang_requests=(0,)),
                stall_timeout=1.0,
            )
            serve_check(
                "serve: corrupt result frame -> respawn",
                FaultPlan(seed=seed, serve_corrupt_frames=(0,)),
            )
            serve_check(
                "serve: dropped executor connection -> respawn",
                FaultPlan(seed=seed, serve_drop_connections=(0,)),
            )
        else:  # pragma: no cover - fork always available on test platforms
            check("serve: executor chaos", True, "skipped (no fork)")

    # 11. Fleet chaos: SIGKILL the routed shard process right before a
    #    forward; the front must walk the ring to another shard, the
    #    watchdog must respawn the dead one, and every answer must stay
    #    bit-identical to a standalone solve.
    if want("fleet"):
        if fork_available():
            from repro.serve import SolveClient
            from repro.serve.fleet import FleetConfig, SolveFleet

            fleet_ref = ParmaEngine(
                strategy="single", threshold_sigmas=3.0
            ).parametrize(meas)
            with tempfile.TemporaryDirectory() as fd:
                fd = Path(fd)
                fleet = SolveFleet(FleetConfig(
                    listen=fd / "front.sock",
                    results_dir=fd / "results",
                    shards=2,
                    linger=0.0,
                    term_grace=0.2,
                    faults=FaultPlan(seed=seed, fleet_kill_requests=(2,)),
                ))
                fleet.start()
                try:
                    client = SolveClient(
                        fd / "front.sock",
                        timeout=120.0,
                        retries=3,
                        backoff=0.05,
                    )
                    responses = [
                        client.solve(meas.z_kohm, id=f"fleet-{i}")
                        for i in range(3)
                    ]
                    identical = all(
                        r.ok
                        and np.array_equal(
                            r.resistance_array(), fleet_ref.resistance
                        )
                        for r in responses
                    )
                    respawned = False
                    wait_until = time.monotonic() + 10.0
                    while time.monotonic() < wait_until:
                        fstats = client.stats()["fleet"]
                        if (
                            fstats["shard_respawns"] >= 1
                            and len(fstats["alive"]) == 2
                        ):
                            respawned = True
                            break
                        time.sleep(0.2)
                    reroutes = client.stats()["fleet"]["reroutes"]
                finally:
                    fleet.stop()
            check(
                "fleet: shard kill -> reroute + respawn",
                identical and respawned and reroutes >= 1,
                f"{reroutes} reroute(s), shard respawned; recovered "
                "fields bit-identical to standalone",
            )
        else:  # pragma: no cover - fork always available on test platforms
            check("fleet: shard chaos", True, "skipped (no fork)")

    _finish_observer(
        obs, args,
        {"command": "chaos", "n": n, "seed": seed, "checks": ",".join(selected)},
    )
    failed = [name for name, ok, _ in checks if not ok]
    if failed:
        print(f"chaos: {len(failed)}/{len(checks)} check(s) FAILED: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"chaos: all {len(checks)} checks passed")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Elastic campaign + strategy × rank scaling sweep.

    Two halves, mirroring ``BENCH_scaling.json``:

    1. A *real* elastic formation campaign on this host — a quiet run,
       then (unless ``--no-churn``) a churn run with one worker
       SIGKILLed and the pool shrunk-then-grown mid-campaign.  The
       churn run must commit part files byte-identical to the quiet
       run's; the elapsed ratio is the measured churn overhead.
    2. A *simulated* strategy × rank-count sweep on the deterministic
       cluster clock (powers of two up to ``--ranks``), plus failover
       and heterogeneous-awareness reference points.
    """
    import contextlib
    import signal as signal_mod
    import tempfile

    from repro.core.partition import make_items
    from repro.core.strategies import calibrate_sec_per_term
    from repro.parallel.elastic import (
        part_files_identical,
        run_elastic_formation,
        sweep_scaling_curves,
    )
    from repro.parallel.heterogeneous import HeterogeneousCluster
    from repro.parallel.pymp import fork_available
    from repro.parallel.simcluster import HPC_FDR, simulate_with_failures
    from repro.parallel.workstealing import simulate_stealing_with_failures
    from repro.instrument.report import ResultTable
    from repro.mea.synthetic import paper_like_spec
    from repro.mea.wetlab import run_campaign
    from repro.resilience.faults import FaultPlan
    from repro.resilience.supervise import Deadline, DeadlineExceeded

    n, seed = args.n, args.seed
    try:
        obs = _make_observer(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = {
        "command": "scale",
        "n": n,
        "seed": seed,
        "workers": args.workers,
        "chunk_items": args.chunk_items,
        "max_ranks": args.ranks,
        "churn": not args.no_churn,
    }
    deadline = Deadline.coerce(args.deadline)
    # --stall-timeout maps onto the lease watchdog: a worker silent
    # longer than this loses its lease (and is killed + replaced).
    lease_timeout = (
        args.stall_timeout if args.stall_timeout is not None else 30.0
    )
    meas = run_campaign(
        paper_like_spec(n, seed=seed), seed=seed
    ).campaign.measurements[0]

    campaign: dict[str, object] = {"ran": False}
    try:
        if fork_available():
            span = (
                obs.span("formation", strategy="elastic", n=n)
                if obs is not None
                else contextlib.nullcontext()
            )
            with tempfile.TemporaryDirectory() as td, span:
                td = Path(td)
                quiet = run_elastic_formation(
                    meas.z_kohm,
                    workers=args.workers,
                    chunk_items=args.chunk_items,
                    output_dir=td / "quiet",
                    lease_timeout=lease_timeout,
                    observer=obs,
                    deadline=deadline,
                )
                print(
                    f"quiet campaign: {quiet.chunks_completed}/"
                    f"{quiet.chunks_total} chunk(s), "
                    f"{quiet.terms_formed} terms in "
                    f"{quiet.elapsed_seconds:.3f}s "
                    f"({quiet.workers_spawned} worker(s))"
                )
                campaign = {
                    "ran": True,
                    "chunks": quiet.chunks_total,
                    "quiet_seconds": quiet.elapsed_seconds,
                }
                if not args.no_churn:
                    chunks = quiet.chunks_total
                    churn = run_elastic_formation(
                        meas.z_kohm,
                        workers=args.workers,
                        chunk_items=args.chunk_items,
                        output_dir=td / "churn",
                        lease_timeout=lease_timeout,
                        faults=FaultPlan(
                            seed=seed,
                            kill_workers=(1,),
                            kill_signal=int(signal_mod.SIGKILL),
                        ),
                        resize_schedule=[
                            (max(1, chunks // 3), max(1, args.workers - 1)),
                            (max(2, 2 * chunks // 3), args.workers),
                        ],
                        observer=obs,
                        deadline=deadline,
                    )
                    identical, detail = part_files_identical(
                        td / "quiet", td / "churn"
                    )
                    if not identical:
                        print(
                            f"error: churn campaign diverged from the "
                            f"quiet run ({detail})",
                            file=sys.stderr,
                        )
                        _finish_observer(
                            obs, args, {**config, "status": "diverged"}
                        )
                        return 1
                    overhead = (
                        churn.elapsed_seconds / quiet.elapsed_seconds - 1.0
                    )
                    print(
                        f"churn campaign: {detail}; "
                        f"{churn.leases_reassigned} lease(s) reassigned, "
                        f"{churn.pool_resizes} resize(s), "
                        f"{churn.workers_respawned} respawn(s); "
                        f"overhead {overhead * 100:+.1f}% vs quiet"
                    )
                    campaign.update(
                        churn_seconds=churn.elapsed_seconds,
                        churn_overhead=overhead,
                        leases_reassigned=churn.leases_reassigned,
                        pool_resizes=churn.pool_resizes,
                        workers_respawned=churn.workers_respawned,
                        part_files_identical=True,
                    )
        else:
            print("elastic campaign skipped: fork unavailable on this host")

        # -- the simulated sweep (rank counts beyond the host) -------------
        rank_counts = []
        r = 1
        while r <= args.ranks:
            rank_counts.append(r)
            r *= 2
        sec_per_term = calibrate_sec_per_term(n)
        curves = sweep_scaling_curves(
            n, rank_counts, sec_per_term=sec_per_term
        )
        table = ResultTable(
            f"simulated strong scaling, n={n} "
            f"(sec/term {sec_per_term:.2e})",
            ("strategy", "ranks", "seconds", "speedup", "efficiency"),
        )
        for curve in curves.values():
            for i, ranks in enumerate(curve.rank_counts):
                if ranks not in (curve.rank_counts[0], curve.rank_counts[-1]):
                    continue
                table.add_row(
                    curve.strategy,
                    ranks,
                    f"{curve.total_seconds[i]:.4f}",
                    f"{curve.speedup[i]:.1f}",
                    f"{curve.efficiency[i]:.3f}",
                )
        print(table.render())

        items = make_items(n)
        costs = np.array([it.cost for it in items], dtype=np.float64)
        costs *= sec_per_term
        failover_ranks = min(256, max(2, args.ranks))
        recovery = simulate_with_failures(
            costs,
            failover_ranks,
            HPC_FDR,
            failed_ranks=(1,),
            observer=obs,
        )
        steal = simulate_stealing_with_failures(
            costs,
            num_workers=8,
            death_times={1: float(costs.sum()) / 16.0},
            observer=obs,
        )
        hetero_ranks = min(64, max(2, args.ranks))
        hetero = HeterogeneousCluster(
            {
                "old": (hetero_ranks // 2, 1.0),
                "new": (hetero_ranks - hetero_ranks // 2, 1.8),
            },
            HPC_FDR,
        )
        awareness = hetero.awareness_gain(costs)
        print(
            f"failover at {failover_ranks} ranks: "
            f"{recovery.total / recovery.baseline_total - 1.0:+.1%} over "
            f"the quiet makespan ({recovery.tasks_redispatched} task(s) "
            f"redispatched); stealing failover reran {steal.tasks_rerun} "
            f"task(s); heterogeneous awareness gain at {hetero_ranks} "
            f"ranks: {awareness:.2f}x"
        )
    except DeadlineExceeded as exc:
        _deadline_failure(exc, obs, args, config)
        return _DEADLINE_EXIT

    if args.out is not None:
        sizes = []
        if campaign.get("ran"):
            total = float(campaign["quiet_seconds"]) + float(
                campaign.get("churn_seconds", 0.0)
            )
            sizes.append({"n": n, "elastic_formation_seconds": total})
        payload = {
            "benchmark": "elastic_scaling",
            "n": n,
            "seed": seed,
            "sec_per_term": sec_per_term,
            "campaign": campaign,
            "curves": {
                name: {
                    "rank_counts": list(c.rank_counts),
                    "total_seconds": list(c.total_seconds),
                    "speedup": list(c.speedup),
                    "efficiency": list(c.efficiency),
                }
                for name, c in curves.items()
            },
            "failover": {
                "ranks": failover_ranks,
                "baseline_seconds": recovery.baseline_total,
                "recovered_seconds": recovery.total,
                "tasks_redispatched": recovery.tasks_redispatched,
                "stealing_tasks_rerun": steal.tasks_rerun,
            },
            "heterogeneous": {
                "ranks": hetero_ranks,
                "awareness_gain": awareness,
            },
            "sizes": sizes,
        }
        args.out.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")

    _finish_observer(obs, args, config)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``parma trace summarize DIR``: digest a traced run's artifacts."""
    from repro.instrument.report import (
        human_seconds,
        metrics_table,
        trace_phase_table,
    )
    from repro.observe import load_manifest, phase_total_seconds
    from repro.observe.observer import MANIFEST_FILE_NAME, TRACE_JSONL_NAME
    from repro.observe.tracing import build_span_tree, read_jsonl

    directory = Path(args.dir)
    manifest_path = directory / MANIFEST_FILE_NAME
    if not manifest_path.exists():
        print(f"error: no {MANIFEST_FILE_NAME} in {directory}", file=sys.stderr)
        return 2
    manifest = load_manifest(manifest_path)
    if args.json:
        # Same serializer the run catalog ingests through, so scripted
        # consumers and `parma runs` always agree on derived fields.
        from repro.observe.catalog import summarize_run

        print(json.dumps(
            summarize_run(manifest, source_path=str(manifest_path)),
            indent=2, sort_keys=True, default=str,
        ))
        return 0
    env = manifest["environment"]
    print(f"run {manifest['run_id']}")
    print(
        f"  wall {human_seconds(manifest['wall_seconds'])}, "
        f"cpu {human_seconds(manifest['cpu_seconds'])}, "
        f"{manifest.get('num_spans', 0)} span(s)"
    )
    print(
        f"  host {env.get('host')} ({env.get('platform')}); "
        f"python {env.get('python')}, numpy {env.get('numpy')} "
        f"[{env.get('blas')}]; git {env.get('git')}"
    )
    if manifest.get("config"):
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(manifest["config"].items()))
        print(f"  config: {knobs}")
    if manifest.get("memory"):
        from repro.instrument.report import human_bytes

        mem = manifest["memory"]
        print(
            f"  memory: peak {human_bytes(mem.get('peak', 0))}, "
            f"p50 {human_bytes(mem.get('p50', 0))}, "
            f"p90 {human_bytes(mem.get('p90', 0))}"
        )
    covered = phase_total_seconds(manifest)
    wall = manifest["wall_seconds"]
    if wall > 0:
        print(f"  phase coverage: {covered / wall:.1%} of wall time traced")
    print(trace_phase_table(manifest["phases"]).render())
    print(metrics_table(manifest["metrics"]).render())
    trace_path = directory / TRACE_JSONL_NAME
    if args.tree and trace_path.exists():
        spans = read_jsonl(trace_path)
        roots = build_span_tree([s for s in spans if s.kind == "span"])

        def show(node, depth):
            span = node.span
            print(
                "  " + "  " * depth
                + f"{span.name} {human_seconds(span.dur)}"
                + (f" [pid {span.pid}]" if depth == 0 else "")
            )
            for child in node.children:
                if child.span.kind == "span":
                    show(child, depth + 1)

        print("span tree:")
        for root in roots:
            show(root, 0)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.categories import (
        total_equations,
        total_terms,
        total_unknowns,
    )
    from repro.core.equations import SystemStats
    from repro.instrument.report import human_bytes
    from repro.kirchhoff.paths import total_paths_paper
    from repro.mea.device import MEAGrid
    from repro.mea.graph import expected_betti, mesh_count

    n = args.n
    grid = MEAGrid(n)
    print(f"{n}x{n} MEA device")
    print(f"  wires: {n} horizontal + {n} vertical")
    print(f"  resistors: {grid.num_resistors}; joints: {grid.num_joints}")
    print(f"  conduction paths (paper estimate n^(n+1)): "
          f"{total_paths_paper(n):.3e}" if n > 12 else
          f"  conduction paths (paper estimate n^(n+1)): "
          f"{total_paths_paper(n)}")
    beta = expected_betti(grid)
    print(f"  topology: beta_0 = {beta[0]}, beta_1 = {beta[1]} holes "
          f"(= {mesh_count(grid)} meshes = parallelism budget)")
    print("joint-constraint system (Parma):")
    print(f"  equations: {total_equations(n)}  (2 n^3)")
    print(f"  unknowns:  {total_unknowns(n)}  ((2n-1) n^2)")
    print(f"  flow terms: {total_terms(n)}  (2 n^4)")
    stats = SystemStats.for_device(n)
    print(f"  memory estimate: {human_bytes(stats.bytes_estimate)}")
    from repro.core.templates import get_template
    from repro.instrument.report import cache_stats_table
    from repro.observe.metrics import all_cache_stats

    # Exercise the formation template once (second call is the hit).
    get_template(n)
    get_template(n)
    # all_cache_stats() is the same single source the run manifest's
    # cache gauges are mirrored from, so both surfaces always agree.
    print(cache_stats_table(all_cache_stats()).render())
    from repro.core.solver_backends import backend_status

    status = backend_status()
    numba_note = (
        f"numba {status['numba_version']}"
        if status["numba_available"]
        else "numba absent -> compiled requests fall back to numpy"
    )
    print("solver backends:")
    print(
        f"  modes: {', '.join(status['modes'])} "
        f"(default {status['default']}); {numba_note}"
    )
    from repro.resilience.degrade import LADDER_RUNGS

    print("resilience:")
    print(f"  degradation ladder: {' -> '.join(LADDER_RUNGS)}")
    print("  checkpoints: campaign manifests (per-timepoint field + "
          "SHA-256), stream journals (per-block checksum)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent solve service until SIGTERM/SIGINT drains it."""
    import signal as signal_mod

    from repro.observe import Observer
    from repro.serve import ServiceConfig, SolveService

    obs = Observer(trace_dir=args.trace)
    config = ServiceConfig(
        socket_path=args.socket,
        results_dir=args.results,
        tcp=args.tcp,
        max_queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        linger=args.linger,
        serve_workers=args.serve_workers,
        strategy=args.strategy,
        num_workers=args.workers,
        max_deadline=args.max_deadline,
        executor=args.executor,
        stall_timeout=args.stall_timeout,
        max_queue_seconds=args.max_queue_seconds,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        catalog_path=args.catalog,
        observer=obs,
    )
    service = SolveService(config)
    service.start()

    def _on_signal(signum, frame) -> None:
        service.request_drain()

    signal_mod.signal(signal_mod.SIGTERM, _on_signal)
    signal_mod.signal(signal_mod.SIGINT, _on_signal)
    tcp_note = ""
    if service.tcp_address is not None:
        host, port = service.tcp_address
        tcp_note = f" + tcp {host}:{port}"
    print(
        f"serving on {args.socket}{tcp_note} "
        f"({service.executor_mode} executors; "
        f"results under {args.results}; "
        f"batch<= {args.max_batch}, queue<= {args.queue_depth}; "
        "SIGTERM drains)",
        flush=True,
    )
    try:
        while not service.wait(timeout=0.5):
            pass
    finally:
        service.stop()
    if obs.trace_dir is not None:
        manifest = obs.finalize(
            config={
                "command": "serve",
                "socket": str(args.socket),
                "executor": service.executor_mode,
                "status": "ok",  # the drain completed
                "worker_respawns": (
                    service.pool.respawns if service.pool is not None else 0
                ),
                "requests_salvaged": (
                    service.pool.salvaged if service.pool is not None else 0
                ),
            },
            extra={"bench": args.bench_tag} if args.bench_tag else None,
        )
        print(f"service manifest: {args.trace}/manifest.json "
              f"(run {manifest['run_id']})")
        if args.catalog is not None:
            from repro.observe.catalog import Catalog

            with Catalog(args.catalog) as catalog:
                report = catalog.ingest([obs.trace_dir])
                print(
                    f"catalog: {report.summary()} -> {args.catalog} "
                    f"({catalog.count()} run(s) total)"
                )
    if args.metrics and obs.metrics is not None:
        from repro.instrument.report import metrics_table

        print(metrics_table(obs.metrics.snapshot()).render())
    print("drained; all in-flight requests completed")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run a sharded solve fleet until SIGTERM/SIGINT drains it."""
    import signal as signal_mod

    from repro.observe import Observer
    from repro.serve.fleet import FleetConfig, SolveFleet

    obs = Observer(trace_dir=args.trace)
    config = FleetConfig(
        listen=args.listen,
        results_dir=args.results,
        shards=args.shards,
        max_queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        linger=args.linger,
        serve_workers=args.serve_workers,
        strategy=args.strategy,
        num_workers=args.workers,
        max_deadline=args.max_deadline,
        shard_executor=args.shard_executor,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_inflight_per_shard=args.max_inflight,
        shard_stall_timeout=args.shard_stall_timeout,
        catalog_path=args.catalog,
        observer=obs,
    )
    fleet = SolveFleet(config)
    fleet.start()

    def _on_signal(signum, frame) -> None:
        fleet.request_drain()

    signal_mod.signal(signal_mod.SIGTERM, _on_signal)
    signal_mod.signal(signal_mod.SIGINT, _on_signal)
    where = str(args.listen)
    if fleet.tcp_address is not None:
        host, port = fleet.tcp_address
        where = f"{host}:{port}"
    print(
        f"fleet front on {where} ({args.shards} shard(s) keyed on "
        f"(n, formation); results under {args.results}; SIGTERM drains)",
        flush=True,
    )
    try:
        while not fleet.wait(timeout=0.5):
            pass
    finally:
        fleet.stop()
    if obs.trace_dir is not None:
        manifest = obs.finalize(
            config={
                "command": "fleet",
                "listen": where,
                "shards": args.shards,
                "status": "ok",  # the drain completed
                "requests": fleet.requests,
                "reroutes": fleet.reroutes,
                "shard_respawns": fleet.respawns,
            },
            extra={"bench": args.bench_tag} if args.bench_tag else None,
        )
        print(f"fleet manifest: {args.trace}/manifest.json "
              f"(run {manifest['run_id']})")
        if args.catalog is not None:
            from repro.observe.catalog import Catalog

            with Catalog(args.catalog) as catalog:
                report = catalog.ingest([obs.trace_dir])
                print(
                    f"catalog: {report.summary()} -> {args.catalog} "
                    f"({catalog.count()} run(s) total)"
                )
    if args.metrics and obs.metrics is not None:
        from repro.instrument.report import metrics_table

        print(metrics_table(obs.metrics.snapshot()).render())
    print("drained; all shards retired cleanly")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Send one timepoint to a running service and print the result."""
    from repro.io.textformat import load_campaign
    from repro.serve import ServeConnectionError, SolveClient
    from repro.serve.protocol import RETRIABLE_EXIT_CODE

    campaign = load_campaign(args.campaign)
    try:
        meas = campaign.at_hour(args.hour)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    target = args.tcp if args.tcp is not None else args.socket
    if target is None:
        print("error: give --socket PATH or --tcp HOST:PORT",
              file=sys.stderr)
        return 2
    client = SolveClient(
        target,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
    )
    try:
        response = client.solve(
            meas.z_kohm,
            voltage=meas.voltage,
            hour=meas.hour,
            solver=args.solver,
            formation=args.formation,
            backend=args.backend,
            threshold_sigmas=args.threshold,
            validate=args.validate,
            deadline=args.deadline,
            priority=args.priority,
            client_id=args.client_id,
            solver_kwargs=(
                {"lam": args.lam} if args.solver == "regularized" else {}
            ),
            want_field=args.field_out is not None or args.show,
        )
    except ServeConnectionError as exc:
        hint = (
            "request never reached the service"
            if exc.safe_to_retry
            else "outcome unknown (request may have been executed)"
        )
        print(f"error: {exc} [{hint}]", file=sys.stderr)
        return RETRIABLE_EXIT_CODE
    if response.retriable:
        print(
            f"rejected ({response.status}): {response.error} — safe to "
            "resubmit (or raise --retries)",
            file=sys.stderr,
        )
        # Per-priority queue depths tell the operator *which* class is
        # backed up (a full batch lane with an idle interactive lane
        # means "resubmit with --priority interactive", not "back off").
        try:
            stats = client.stats()
        except ServeConnectionError:
            stats = {}
        depths = stats.get("queue_depths") or {}
        if depths:
            per_class = ", ".join(
                f"{name} {count}" for name, count in sorted(depths.items())
            )
            print(
                f"  queue depth {stats.get('queue_depth', 0)} "
                f"({per_class}), estimated wait "
                f"{stats.get('estimated_queue_seconds', 0.0):.1f}s",
                file=sys.stderr,
            )
        return response.exit_status
    if not response.ok:
        print(f"error: {response.status}: {response.error}", file=sys.stderr)
        return response.exit_status
    print(response.summary)
    print(
        f"  served: batch of {response.batch_size}, "
        f"{'warm' if response.cache_warm else 'cold'} caches, "
        f"queued {response.queue_seconds:.3f}s, "
        f"ran {response.elapsed_seconds:.3f}s"
    )
    for event in response.events:
        print(f"  resilience: {event}")
    if response.manifest_path:
        print(f"  manifest: {response.manifest_path}")
    field = response.resistance_array()
    if args.show and field is not None:
        from repro.instrument.heatmap import render_field

        print(render_field(field))
    if args.field_out is not None and field is not None:
        np.save(args.field_out, field)
        print(f"wrote recovered field to {args.field_out}")
    return response.exit_status


# -- `parma runs`: the SQLite run catalog -------------------------------------

#: Default catalog database (override with ``--db``).
DEFAULT_CATALOG_DB = Path("runs-catalog.sqlite")


def _runs_filters(args: argparse.Namespace) -> dict:
    """Shared ``runs`` filter flags -> :meth:`Catalog._filters` knobs."""
    from repro.observe.catalog import parse_since

    filters: dict = {}
    if getattr(args, "kind", None):
        filters["kind"] = args.kind
    if getattr(args, "status", None):
        filters["status"] = args.status
    if getattr(args, "bench", None):
        filters["bench"] = args.bench
    if getattr(args, "since", None):
        filters["since"] = parse_since(args.since)
    if getattr(args, "min_rung", None) is not None:
        filters["min_rung"] = args.min_rung
    if getattr(args, "grep", None):
        filters["search"] = args.grep
    if getattr(args, "where", None):
        filters["where"] = args.where
    return filters


def _cmd_runs_ingest(args: argparse.Namespace) -> int:
    from repro.observe.catalog import Catalog

    with Catalog(args.db) as catalog:
        report = catalog.ingest(args.paths)
        for path, error in report.errors:
            print(f"rejected {path}: {error}", file=sys.stderr)
        print(report.summary())
        print(f"catalog: {args.db} ({catalog.count()} run(s) total)")
    return 1 if report.errors else 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.instrument.report import ResultTable
    from repro.observe.catalog import Catalog

    with Catalog(args.db, readonly=True) as catalog:
        rows = catalog.list_runs(limit=args.limit, **_runs_filters(args))
    if args.json:
        print(json.dumps([dict(r) for r in rows], indent=2, default=str))
        return 0
    table = ResultTable(
        f"runs ({len(rows)} shown, newest first)",
        ("run", "kind", "status", "n", "backend", "rung", "started",
         "wall s", "solve s", "bench"),
    )
    for row in rows:
        started = (
            time.strftime("%m-%d %H:%M:%S", time.localtime(row["started_unix"]))
            if row["started_unix"]
            else "-"
        )
        table.add_row(
            row["run_id"][:17],
            row["kind"],
            row["status"],
            row["n"] if row["n"] is not None else "-",
            row["backend"] or "-",
            row["rung_name"] if row["degradation_rung"] else "-",
            started,
            f"{row['wall_seconds']:.3f}" if row["wall_seconds"] else "-",
            (
                f"{row['solve_seconds']:.3f}"
                if row["solve_seconds"] is not None
                else "-"
            ),
            row["bench"] or "-",
        )
    print(table.render())
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.instrument.report import ResultTable, human_bytes, human_seconds
    from repro.observe.catalog import Catalog

    with Catalog(args.db, readonly=True) as catalog:
        run, phases, metrics = catalog.get_run(args.run_id)
    if args.json:
        print(json.dumps(
            {
                "run": dict(run),
                "phases": [dict(p) for p in phases],
                "metrics": [dict(m) for m in metrics],
            },
            indent=2, default=str,
        ))
        return 0
    print(f"run {run['run_id']} [{run['kind']}] status={run['status']}")
    knobs = ", ".join(
        f"{key}={run[key]}"
        for key in ("n", "hour", "strategy", "workers", "solver", "backend",
                    "formation", "validate", "timepoints")
        if run[key] is not None
    )
    if knobs:
        print(f"  config: {knobs}")
    print(
        f"  wall {human_seconds(run['wall_seconds'] or 0)}, "
        f"cpu {human_seconds(run['cpu_seconds'] or 0)}, "
        f"{run['num_spans'] or 0} span(s); "
        f"rung {run['degradation_rung']} ({run['rung_name']})"
    )
    if run["bench"]:
        print(f"  bench tag: {run['bench']}")
    if run["mem_peak_bytes"]:
        print(
            f"  memory: peak {human_bytes(run['mem_peak_bytes'])}, "
            f"p50 {human_bytes(run['mem_p50_bytes'] or 0)}, "
            f"p90 {human_bytes(run['mem_p90_bytes'] or 0)}"
        )
    rates = [
        f"{label} {run[column]:.1%}"
        for label, column in (
            ("template", "template_hit_rate"),
            ("laplacian", "laplacian_hit_rate"),
            ("jacobian", "jacobian_hit_rate"),
        )
        if run[column] is not None
    ]
    if rates:
        print(f"  cache hit rates: {', '.join(rates)}")
    if run["source_path"]:
        print(f"  manifest: {run['source_path']}")
    table = ResultTable("phases", ("phase", "count", "total s", "self s"))
    for phase in phases:
        table.add_row(
            phase["name"], phase["count"],
            f"{phase['total_seconds']:.4f}", f"{phase['self_seconds']:.4f}",
        )
    if phases:
        print(table.render())
    return 0


def _cmd_runs_query(args: argparse.Namespace) -> int:
    from repro.instrument.report import ResultTable
    from repro.observe.catalog import Catalog

    with Catalog(args.db, readonly=True) as catalog:
        columns, rows = catalog.query(args.sql)
    if args.json:
        print(json.dumps(
            [dict(zip(columns, row)) for row in rows], indent=2, default=str
        ))
        return 0
    table = ResultTable(f"query ({len(rows)} row(s))", tuple(columns) or ("?",))
    for row in rows:
        table.add_row(*[value if value is not None else "-" for value in row])
    print(table.render())
    return 0


def _cmd_runs_stats(args: argparse.Namespace) -> int:
    from repro.instrument.report import ResultTable
    from repro.observe.catalog import Catalog

    group_by = tuple(
        g.strip() for g in args.group_by.split(",") if g.strip()
    )
    with Catalog(args.db, readonly=True) as catalog:
        entries = catalog.stats(
            group_by=group_by, metric=args.metric, **_runs_filters(args)
        )
    if args.json:
        print(json.dumps(entries, indent=2, default=str))
        return 0
    table = ResultTable(
        f"{args.metric} by {', '.join(group_by) or 'all'}",
        (*group_by, "count", "p50", "p95", "mean", "max"),
    )
    for entry in entries:
        table.add_row(
            *[entry[g] if entry[g] is not None else "-" for g in group_by],
            entry["count"],
            f"{entry['p50']:.4f}",
            f"{entry['p95']:.4f}",
            f"{entry['mean']:.4f}",
            f"{entry['max']:.4f}",
        )
    print(table.render())
    return 0


def _cmd_runs_regress(args: argparse.Namespace) -> int:
    from repro.observe.catalog import Catalog

    default_benches = {
        "solver": Path("BENCH_solver.json"),
        "formation": Path("BENCH_formation.json"),
        "scaling": Path("BENCH_scaling.json"),
        "serve": Path("BENCH_serve.json"),
    }
    bench_paths = args.bench
    if bench_paths is None and args.kind is not None:
        path = default_benches[args.kind]
        if not path.exists():
            print(f"error: {path} not found for --kind {args.kind}",
                  file=sys.stderr)
            return 2
        bench_paths = [path]
    if bench_paths is None:
        bench_paths = [p for p in default_benches.values() if p.exists()]
    if not bench_paths:
        print(
            "error: no benchmark trajectories (pass --bench PATH or run "
            "from a checkout with BENCH_solver.json / BENCH_formation.json "
            "/ BENCH_scaling.json / BENCH_serve.json)",
            file=sys.stderr,
        )
        return 2
    with Catalog(args.db, readonly=True) as catalog:
        report = catalog.regress(bench_paths, threshold=args.threshold)
    print(report.render())
    if not report.checks:
        # An empty gate passes nothing; surface it as a failure so CI
        # can't silently stop gating when tagging breaks.
        print(
            "error: no bench-tagged runs matched any trajectory "
            "(run with --trace DIR --catalog DB --bench-tag solver|formation)",
            file=sys.stderr,
        )
        return 1
    return 0 if report.ok else 1


def _watch_render(stats: dict, previous: dict | None) -> str:
    """One dashboard frame from a serve stats reply (+ the previous one)."""
    from repro.instrument.report import human_seconds
    from repro.observe.metrics import histogram_quantile

    elapsed = None
    if previous is not None:
        delta = stats.get("server_monotonic", 0.0) - previous.get(
            "server_monotonic", 0.0
        )
        if delta > 0:
            elapsed = delta

    def rate(current: float, key: str) -> str:
        if elapsed is None:
            return ""
        per_second = (current - (previous or {}).get(key, 0)) / elapsed
        return f" ({per_second:+.2f}/s)"

    lines = [
        f"parma serve — up {human_seconds(stats.get('uptime_seconds', 0.0))}"
        f" | executor {stats.get('executor', '?')}"
        f" | {'DRAINING' if stats.get('draining') else 'serving'}"
    ]
    requests = stats.get("requests", 0)
    lines.append(
        f"requests {requests}{rate(requests, 'requests')}"
        f" | idempotent hits {stats.get('idempotent_hits', 0)}"
        f" | respawns {stats.get('worker_respawns', 0)}"
        f" | salvaged {stats.get('requests_salvaged', 0)}"
    )
    depths = stats.get("queue_depths", {}) or {}
    per_class = ", ".join(f"{k} {v}" for k, v in sorted(depths.items()))
    lines.append(
        f"queue depth {stats.get('queue_depth', 0)}"
        + (f" ({per_class})" if per_class else "")
        + f" | est wait {stats.get('estimated_queue_seconds', 0.0):.2f}s"
    )
    shed = stats.get("shed", {}) or {}
    shed_text = ", ".join(f"{k} {v}" for k, v in sorted(shed.items())) or "none"
    lines.append(
        f"shed: {shed_text}"
        f" | quota rejections {stats.get('quota_rejections', 0)}"
    )
    fleet = stats.get("fleet")
    if isinstance(fleet, dict):
        alive = fleet.get("alive", [])
        routed = fleet.get("routed", [])
        lines.append(
            f"fleet: {len(alive)}/{fleet.get('shards', '?')} shards up"
            f" | routed {routed}"
            f" | reroutes {fleet.get('reroutes', 0)}"
            f" | shard respawns {fleet.get('shard_respawns', 0)}"
        )
    metrics = stats.get("metrics", {}) or {}
    for label, name in (
        ("latency warm", "serve.latency.warm_seconds"),
        ("latency cold", "serve.latency.cold_seconds"),
        ("queue wait", "serve.queue_wait_seconds"),
    ):
        entry = metrics.get(name)
        if not isinstance(entry, dict) or not entry.get("count"):
            continue
        lines.append(
            f"{label}: n={entry['count']} "
            f"p50 {histogram_quantile(entry, 0.50) * 1e3:.1f}ms "
            f"p95 {histogram_quantile(entry, 0.95) * 1e3:.1f}ms"
        )
    if elapsed is not None:
        lines.append(f"rates over the last {elapsed:.1f}s")
    return "\n".join(lines)


def _cmd_runs_watch(args: argparse.Namespace) -> int:
    """Poll a running ``parma serve`` and render a live text dashboard."""
    from repro.serve import ServeConnectionError, SolveClient

    client = SolveClient(args.socket, timeout=args.timeout)
    previous = None
    frames = 0
    try:
        while True:
            try:
                stats = client.stats()
            except ServeConnectionError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if not args.no_clear and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(_watch_render(stats, previous), flush=True)
            previous = stats
            frames += 1
            if args.iterations is not None and frames >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parma",
        description="Parma: topological parametrization of MEA data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a synthetic campaign")
    p_sim.add_argument("--n", type=int, default=12, help="device side")
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--anomalies", type=int, default=1)
    p_sim.add_argument("--noise", type=float, default=0.002,
                       help="relative instrument noise")
    p_sim.add_argument("--out", type=Path, required=True,
                       help="campaign text file to write")
    p_sim.add_argument("--truth-out", type=Path, default=None,
                       help="optional .npy for ground-truth fields")
    p_sim.set_defaults(func=_cmd_simulate)

    p_solve = sub.add_parser("solve", help="parametrize one timepoint")
    p_solve.add_argument("campaign", type=Path)
    p_solve.add_argument("--hour", type=float, default=0.0)
    p_solve.add_argument("--strategy", default="pymp",
                         choices=["single", "parallel", "balanced",
                                  "pymp", "pymp-dynamic"])
    p_solve.add_argument("--workers", type=int, default=4)
    p_solve.add_argument("--solver", default="nested",
                         choices=["nested", "full", "regularized", "bounded"])
    p_solve.add_argument("--lam", type=float, default=1e-3,
                         help="Tikhonov weight for --solver regularized")
    p_solve.add_argument("--backend", default="numpy",
                         choices=["numpy", "compiled"],
                         help="solver compute backend (compiled = numba "
                              "kernels; falls back to numpy when absent)")
    p_solve.add_argument("--validate", default="strict",
                         choices=["strict", "repair", "off"],
                         help="measurement boundary policy: reject bad "
                              "channels, impute them, or skip the audit")
    p_solve.add_argument("--inject-fail-rungs", default=None, metavar="RUNGS",
                         help="chaos: comma-separated solver rungs to fail "
                              "(e.g. primary,regularized)")
    p_solve.add_argument("--threshold", type=float, default=3.0,
                         help="anomaly threshold in robust sigmas")
    p_solve.add_argument("--formation", default="cached",
                         choices=["cached", "legacy"],
                         help="equation-formation path (template cache "
                              "or per-pair reference)")
    p_solve.add_argument("--equations-dir", type=Path, default=None,
                         help="persist formed equations here")
    p_solve.add_argument("--field-out", type=Path, default=None,
                         help="write recovered R field (.npy)")
    p_solve.add_argument("--show", action="store_true",
                         help="render the recovered field as a heatmap")
    _add_observe_args(p_solve)
    _add_deadline_args(p_solve)
    p_solve.set_defaults(func=_cmd_solve)

    p_mon = sub.add_parser("monitor", help="full-campaign drift analysis")
    p_mon.add_argument("campaign", type=Path)
    p_mon.add_argument("--strategy", default="pymp",
                       choices=["single", "parallel", "balanced",
                                "pymp", "pymp-dynamic"])
    p_mon.add_argument("--workers", type=int, default=4)
    p_mon.add_argument("--formation", default="cached",
                       choices=["cached", "legacy"],
                       help="equation-formation path (template cache "
                            "or per-pair reference)")
    p_mon.add_argument("--backend", default="numpy",
                       choices=["numpy", "compiled"],
                       help="solver compute backend (compiled = numba "
                            "kernels; falls back to numpy when absent)")
    p_mon.add_argument("--threshold", type=float, default=3.0)
    p_mon.add_argument("--growth", type=float, default=0.25,
                       help="relative growth flag level")
    p_mon.add_argument("--no-warm-start", action="store_true")
    p_mon.add_argument("--checkpoint-dir", type=Path, default=None,
                       help="persist per-timepoint checkpoints here and "
                            "resume from them")
    p_mon.add_argument("--no-resume", action="store_true",
                       help="ignore existing checkpoints (recompute all)")
    p_mon.add_argument("--max-retries", type=int, default=None,
                       help="bounded formation retries on worker failure")
    p_mon.add_argument("--show", action="store_true",
                       help="render first/last recovered fields")
    _add_observe_args(p_mon)
    _add_deadline_args(p_mon)
    p_mon.set_defaults(func=_cmd_monitor)

    p_scr = sub.add_parser("screen", help="defect screening (QC)")
    p_scr.add_argument("campaign", type=Path)
    p_scr.add_argument("--hour", type=float, default=0.0)
    p_scr.set_defaults(func=_cmd_screen)

    p_conv = sub.add_parser("convert",
                            help="workbook dir -> measurement text")
    p_conv.add_argument("workbook", type=Path)
    p_conv.add_argument("--out", type=Path, required=True)
    p_conv.set_defaults(func=_cmd_convert)

    p_self = sub.add_parser("selftest", help="core-invariant checks")
    p_self.add_argument("--n", type=int, default=5)
    p_self.set_defaults(func=_cmd_selftest)

    p_chaos = sub.add_parser("chaos",
                             help="fault-injection smoke (recovery checks)")
    p_chaos.add_argument("--n", type=int, default=10, help="device side")
    p_chaos.add_argument("--seed", type=int, default=7)
    p_chaos.add_argument("--include", default=None, metavar="CHECKS",
                         help="comma-separated subset of checks to run "
                              f"({', '.join(CHAOS_CHECKS)}); default all")
    _add_observe_args(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_scale = sub.add_parser(
        "scale",
        help="elastic campaign + strategy x rank scaling sweep",
    )
    p_scale.add_argument("--n", type=int, default=20, help="device side")
    p_scale.add_argument("--seed", type=int, default=7)
    p_scale.add_argument("--workers", type=int, default=3,
                         help="elastic pool size for the real campaign")
    p_scale.add_argument("--chunk-items", type=int, default=16,
                         help="items leased per work chunk")
    p_scale.add_argument("--ranks", type=int, default=1024,
                         help="largest simulated rank count (the sweep "
                              "covers powers of two up to this)")
    p_scale.add_argument("--no-churn", action="store_true",
                         help="skip the churn campaign (quiet run only)")
    p_scale.add_argument("--out", type=Path, default=None,
                         help="write the BENCH_scaling.json-shaped report "
                              "here")
    _add_observe_args(p_scale)
    _add_deadline_args(p_scale)
    p_scale.set_defaults(func=_cmd_scale)

    p_srv = sub.add_parser("serve",
                           help="persistent solve service (unix socket)")
    p_srv.add_argument("--socket", type=Path, required=True,
                       help="unix-domain socket path to listen on")
    p_srv.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="also listen on a TCP address (same framed "
                            "protocol; port 0 picks an ephemeral port; "
                            "bind loopback unless the network is trusted "
                            "— the protocol has no authentication)")
    p_srv.add_argument("--results", type=Path, required=True,
                       help="directory for per-request run manifests "
                            "(req-<id>/manifest.json)")
    p_srv.add_argument("--queue-depth", type=int, default=64,
                       help="admission bound; beyond it requests are "
                            "rejected retriably (exit 75 at the client)")
    p_srv.add_argument("--max-batch", type=int, default=8,
                       help="max compatible requests (same n, same "
                            "formation) coalesced into one formation pass")
    p_srv.add_argument("--linger", type=float, default=0.05,
                       metavar="SECONDS",
                       help="how long a batch head waits for compatible "
                            "followers before executing")
    p_srv.add_argument("--serve-workers", type=int, default=1,
                       help="executor threads (keep 1 unless solves are "
                            "short and BLAS contention is acceptable)")
    p_srv.add_argument("--strategy", default="single",
                       choices=["single", "parallel", "balanced",
                                "pymp", "pymp-dynamic"],
                       help="formation strategy for served requests "
                            "(single avoids forking from a threaded server)")
    p_srv.add_argument("--workers", type=int, default=4,
                       help="region width for multi-worker strategies")
    p_srv.add_argument("--max-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="cap every per-request deadline (and impose "
                            "one on requests that asked for none)")
    p_srv.add_argument("--executor", default="subprocess",
                       choices=["subprocess", "thread"],
                       help="execution host: forked subprocess workers "
                            "(crash-isolated, falls back to thread where "
                            "fork is unavailable) or in-process threads")
    p_srv.add_argument("--stall-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="heartbeat age after which a subprocess "
                            "executor is killed and respawned")
    p_srv.add_argument("--max-queue-seconds", type=float, default=None,
                       metavar="SECONDS",
                       help="shed lowest-priority work when estimated "
                            "queue wait exceeds this bound")
    p_srv.add_argument("--quota-rate", type=float, default=None,
                       metavar="REQ_PER_SEC",
                       help="per-client token-bucket refill; omit to "
                            "disable quotas (anonymous clients are exempt)")
    p_srv.add_argument("--quota-burst", type=float, default=8.0,
                       help="token-bucket capacity per client id")
    _add_observe_args(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser("fleet",
                             help="sharded multi-process solve fleet "
                                  "behind one TCP/unix front")
    p_fleet.add_argument("--listen", required=True, metavar="ADDR",
                         help="front address: HOST:PORT (TCP; port 0 "
                              "picks an ephemeral port) or a unix "
                              "socket path")
    p_fleet.add_argument("--results", type=Path, required=True,
                         help="fleet root; shard i serves on "
                              "<results>/shard-i/shard.sock and writes "
                              "its manifests there")
    p_fleet.add_argument("--shards", type=int, default=2,
                         help="worker processes; requests shard by "
                              "(n, formation) on a consistent-hash ring")
    p_fleet.add_argument("--queue-depth", type=int, default=64,
                         help="per-shard admission bound")
    p_fleet.add_argument("--max-batch", type=int, default=8,
                         help="per-shard batch coalescing bound")
    p_fleet.add_argument("--linger", type=float, default=0.05,
                         metavar="SECONDS",
                         help="per-shard batch linger window")
    p_fleet.add_argument("--serve-workers", type=int, default=1,
                         help="executor slots inside each shard")
    p_fleet.add_argument("--strategy", default="single",
                         choices=["single", "parallel", "balanced",
                                  "pymp", "pymp-dynamic"],
                         help="formation strategy inside each shard")
    p_fleet.add_argument("--workers", type=int, default=4,
                         help="region width for multi-worker strategies")
    p_fleet.add_argument("--max-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="cap every per-request deadline fleet-wide")
    p_fleet.add_argument("--shard-executor", default="thread",
                         choices=["thread", "subprocess"],
                         help="execution host inside each shard (the "
                              "shard process is already the crash-"
                              "isolation boundary, so thread is the "
                              "default; subprocess nests executor "
                              "isolation within each shard)")
    p_fleet.add_argument("--quota-rate", type=float, default=None,
                         metavar="REQ_PER_SEC",
                         help="per-client token-bucket refill, enforced "
                              "at the front (anonymous clients exempt)")
    p_fleet.add_argument("--quota-burst", type=float, default=8.0,
                         help="front token-bucket capacity per client id")
    p_fleet.add_argument("--max-inflight", type=int, default=8,
                         help="per-shard in-flight bound beyond which "
                              "batch-priority work is shed at the front "
                              "(interactive is still admitted)")
    p_fleet.add_argument("--shard-stall-timeout", type=float, default=15.0,
                         metavar="SECONDS",
                         help="heartbeat age after which a shard is "
                              "declared dead and respawned")
    _add_observe_args(p_fleet)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_sub = sub.add_parser("submit",
                           help="submit one timepoint to a running serve")
    p_sub.add_argument("campaign", type=Path)
    p_sub.add_argument("--socket", type=Path, default=None,
                       help="unix socket of the running `parma serve`")
    p_sub.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="TCP address of a `parma fleet` front or a "
                            "`parma serve --tcp` service (alternative "
                            "to --socket)")
    p_sub.add_argument("--hour", type=float, default=0.0)
    p_sub.add_argument("--solver", default="nested",
                       choices=["nested", "full", "regularized", "bounded"])
    p_sub.add_argument("--lam", type=float, default=1e-3,
                       help="Tikhonov weight for --solver regularized")
    p_sub.add_argument("--formation", default="cached",
                       choices=["cached", "legacy"],
                       help="equation-formation path; also the batching "
                            "compatibility key together with n")
    p_sub.add_argument("--backend", default="numpy",
                       choices=["numpy", "compiled"],
                       help="solver compute backend; part of the batching "
                            "compatibility key")
    p_sub.add_argument("--threshold", type=float, default=3.0,
                       help="anomaly threshold in robust sigmas")
    p_sub.add_argument("--validate", default="strict",
                       choices=["strict", "repair", "off"],
                       help="measurement boundary policy applied server-side")
    p_sub.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock budget (exit 94 when "
                            "blown, like `parma solve --deadline`)")
    p_sub.add_argument("--timeout", type=float, default=300.0,
                       help="client socket timeout (queue wait + solve)")
    p_sub.add_argument("--retries", type=int, default=0,
                       help="resubmit this many times on retriable "
                            "rejections (queue full, quota, worker lost) "
                            "and connection failures; all attempts share "
                            "one idempotency id")
    p_sub.add_argument("--backoff", type=float, default=0.1,
                       metavar="SECONDS",
                       help="base retry backoff (exponential, with "
                            "deterministic per-request jitter)")
    p_sub.add_argument("--priority", default="batch",
                       choices=["interactive", "batch"],
                       help="admission class; interactive dequeues first "
                            "and batch is shed first under overload")
    p_sub.add_argument("--client-id", default="",
                       help="quota accounting id (empty = exempt from "
                            "per-client quotas)")
    p_sub.add_argument("--field-out", type=Path, default=None,
                       help="write recovered R field (.npy)")
    p_sub.add_argument("--show", action="store_true",
                       help="render the recovered field as a heatmap")
    p_sub.set_defaults(func=_cmd_submit)

    p_info = sub.add_parser("info", help="device/system accounting")
    p_info.add_argument("--n", type=int, default=10)
    p_info.set_defaults(func=_cmd_info)

    p_trace = sub.add_parser("trace", help="inspect observability artifacts")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize", help="phase/metrics digest of a traced run directory"
    )
    p_tsum.add_argument("dir", type=Path,
                        help="directory written by --trace")
    p_tsum.add_argument("--tree", action="store_true",
                        help="also print the reconstructed span tree")
    p_tsum.add_argument("--json", action="store_true",
                        help="emit the flattened run record as JSON (the "
                             "same serializer `parma runs ingest` indexes)")
    p_tsum.set_defaults(func=_cmd_trace)

    p_runs = sub.add_parser(
        "runs", help="SQLite run catalog over manifest directories"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    def _add_db(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", type=Path, default=DEFAULT_CATALOG_DB,
                       help="catalog database path "
                            f"(default {DEFAULT_CATALOG_DB})")

    def _add_filters(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kind", default=None,
                       help="filter: run kind (solve, monitor, serve, "
                            "serve-request, chaos, ...)")
        p.add_argument("--status", default=None,
                       help="filter: exit status (ok, degraded, unconverged, "
                            "deadline, failed, exhausted)")
        p.add_argument("--bench", default=None,
                       help="filter: bench tag (solver, formation, ...)")
        p.add_argument("--since", default=None, metavar="AGE|ISO",
                       help="filter: started within a relative age (12h, 7d, "
                            "2w) or after an ISO date")
        p.add_argument("--min-rung", type=int, default=None, metavar="K",
                       help="filter: degradation ladder reached rung >= K "
                            "(1 = any degradation)")
        p.add_argument("--grep", default=None, metavar="TEXT",
                       help="filter: free-text search over config/"
                            "environment/extra (FTS5 when available)")
        p.add_argument("--where", default=None, metavar="SQL",
                       help="filter: raw SQL condition over runs columns, "
                            "e.g. \"n >= 20 AND solver = 'nested'\"")

    p_ringest = runs_sub.add_parser(
        "ingest", help="index manifest files/directories (idempotent)"
    )
    p_ringest.add_argument("paths", type=Path, nargs="+",
                           help="manifest.json files or directories to "
                                "scan recursively")
    _add_db(p_ringest)
    p_ringest.set_defaults(func=_cmd_runs_ingest)

    p_rlist = runs_sub.add_parser("list", help="tabulate cataloged runs")
    _add_db(p_rlist)
    _add_filters(p_rlist)
    p_rlist.add_argument("--limit", type=int, default=50)
    p_rlist.add_argument("--json", action="store_true",
                         help="emit rows as JSON")
    p_rlist.set_defaults(func=_cmd_runs_list)

    p_rshow = runs_sub.add_parser(
        "show", help="one run's columns, phases and metrics"
    )
    p_rshow.add_argument("run_id", help="full run id or unique prefix")
    _add_db(p_rshow)
    p_rshow.add_argument("--json", action="store_true")
    p_rshow.set_defaults(func=_cmd_runs_show)

    p_rquery = runs_sub.add_parser(
        "query", help="read-only SQL over the catalog (SELECT only)"
    )
    p_rquery.add_argument("sql", help="a SELECT/WITH statement; tables: "
                                      "runs, phases, metrics")
    _add_db(p_rquery)
    p_rquery.add_argument("--json", action="store_true")
    p_rquery.set_defaults(func=_cmd_runs_query)

    p_rstats = runs_sub.add_parser(
        "stats", help="percentile aggregates (p50/p95/mean/max) of a column"
    )
    _add_db(p_rstats)
    _add_filters(p_rstats)
    p_rstats.add_argument("--group-by", default="n,backend", metavar="COLS",
                          help="comma-separated runs columns to group by")
    p_rstats.add_argument("--metric", default="solve_seconds",
                          help="runs column to aggregate "
                               "(solve_seconds, formation_seconds, "
                               "wall_seconds, mem_peak_bytes, ...)")
    p_rstats.add_argument("--json", action="store_true")
    p_rstats.set_defaults(func=_cmd_runs_stats)

    p_rregress = runs_sub.add_parser(
        "regress", help="gate bench-tagged runs against BENCH_*.json "
                        "(exit 1 past threshold)"
    )
    _add_db(p_rregress)
    p_rregress.add_argument("--bench", type=Path, action="append",
                            default=None, metavar="PATH",
                            help="benchmark trajectory JSON (repeatable; "
                                 "default: every committed BENCH_*.json "
                                 "present in the working directory)")
    p_rregress.add_argument("--kind", default=None,
                            choices=["solver", "formation", "scaling",
                                     "serve"],
                            help="gate only this benchmark family's "
                                 "default BENCH_*.json (ignored when "
                                 "--bench is given)")
    p_rregress.add_argument("--threshold", type=float, default=1.5,
                            help="fail when observed > threshold x baseline")
    p_rregress.set_defaults(func=_cmd_runs_regress)

    p_rwatch = runs_sub.add_parser(
        "watch", help="live dashboard over a running `parma serve`"
    )
    p_rwatch.add_argument("--socket", required=True, metavar="ADDR",
                          help="unix socket of a running `parma serve`, "
                               "or HOST:PORT of a `parma fleet` front")
    p_rwatch.add_argument("--interval", type=float, default=2.0,
                          help="seconds between polls")
    p_rwatch.add_argument("--iterations", type=int, default=None,
                          help="stop after this many frames (default: "
                               "until interrupted)")
    p_rwatch.add_argument("--timeout", type=float, default=5.0,
                          help="per-poll socket timeout")
    p_rwatch.add_argument("--no-clear", action="store_true",
                          help="append frames instead of clearing the "
                               "screen (useful for logs)")
    p_rwatch.set_defaults(func=_cmd_runs_watch)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
