"""Structured, low-overhead logging for library internals.

Design constraints (from the HPC guides and the fork-based runtime):

* **cheap when off** — hot loops may hold a logger call; the level
  check is one integer compare and no string formatting happens unless
  the record is emitted;
* **fork-safe** — forked PyMP workers inherit the logger; each record
  carries the PID so interleaved worker output stays attributable;
* **machine-greppable** — records are single ``key=value`` lines
  (``ts=.. pid=.. level=.. event=.. k1=v1 ...``), not prose.

The library logs nothing by default; enable with
``configure(level="info")`` or the ``REPRO_LOG`` environment variable
(``off`` | ``info`` | ``debug``), which the CLI reads at startup.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, TextIO

_LEVELS = {"off": 0, "info": 1, "debug": 2}

_state = {
    "level": _LEVELS.get(os.environ.get("REPRO_LOG", "off").lower(), 0),
    "stream": sys.stderr,
}


def configure(level: str = "info", stream: TextIO | None = None) -> None:
    """Set the global log level (and optionally the output stream)."""
    try:
        _state["level"] = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; use off/info/debug"
        ) from None
    if stream is not None:
        _state["stream"] = stream


def level_name() -> str:
    for name, value in _LEVELS.items():
        if value == _state["level"]:
            return name
    return "off"  # pragma: no cover


def enabled(level: str = "info") -> bool:
    """Cheap guard for call sites that build expensive fields."""
    return _state["level"] >= _LEVELS.get(level, 1)


def _emit(level: str, event: str, fields: dict[str, Any]) -> None:
    parts = [
        f"ts={time.time():.6f}",
        f"pid={os.getpid()}",
        f"level={level}",
        f"event={event}",
    ]
    for key, value in fields.items():
        text = str(value)
        if " " in text or "=" in text:
            text = repr(text)
        parts.append(f"{key}={text}")
    print(" ".join(parts), file=_state["stream"], flush=True)


def info(event: str, **fields: Any) -> None:
    """Emit an info record (no-op below level info)."""
    if _state["level"] >= 1:
        _emit("info", event, fields)


def debug(event: str, **fields: Any) -> None:
    """Emit a debug record (no-op below level debug)."""
    if _state["level"] >= 2:
        _emit("debug", event, fields)


class log_span:
    """Context manager emitting begin/end records with elapsed time.

    ``with log_span("formation", n=40): ...`` — emits nothing when
    logging is off; otherwise an ``event=formation.begin`` and an
    ``event=formation.end elapsed=..`` pair.
    """

    __slots__ = ("_event", "_fields", "_start")

    def __init__(self, event: str, **fields: Any) -> None:
        self._event = event
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "log_span":
        if _state["level"] >= 1:
            _emit("info", f"{self._event}.begin", self._fields)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if _state["level"] >= 1:
            fields = dict(self._fields)
            fields["elapsed"] = f"{time.perf_counter() - self._start:.6f}"
            if exc_type is not None:
                fields["error"] = exc_type.__name__
            _emit("info", f"{self._event}.end", fields)
