"""Argument-validation helpers shared across the library.

All raise ``ValueError``/``TypeError`` with messages that name the
offending parameter, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def require_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Return ``value`` as int after checking ``value >= minimum``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def require_positive(value: float, name: str) -> float:
    """Return ``value`` as float after checking strict positivity."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def require_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Check ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value


def require_shape(arr: np.ndarray, shape: Sequence[int | None], name: str) -> np.ndarray:
    """Check ``arr.shape`` against ``shape`` (``None`` = any size).

    Returns ``arr`` unchanged so the call can be used inline.
    """
    arr = np.asarray(arr)
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim} "
            f"(shape {arr.shape})"
        )
    for axis, (got, want) in enumerate(zip(arr.shape, shape)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} has shape {arr.shape}; expected size {want} on axis {axis}"
            )
    return arr


def require_positive_array(arr: np.ndarray, name: str) -> np.ndarray:
    """Check every entry of ``arr`` is finite and > 0."""
    arr = np.asarray(arr, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(arr <= 0.0):
        raise ValueError(f"{name} must be strictly positive everywhere")
    return arr
