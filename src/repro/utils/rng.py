"""Deterministic random-number policy.

Every stochastic component in the library (synthetic R fields, noise
models, randomized property tests) draws from a generator obtained
here, so a single integer seed reproduces an entire experiment,
including experiments that fan out across worker processes.

The seed-derivation scheme uses :class:`numpy.random.SeedSequence`,
which is designed exactly for this purpose: child streams derived from
the same parent are statistically independent, and the derivation is a
pure function of ``(seed, key)`` so worker *k* of a parallel region
draws the same stream regardless of scheduling order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Library-wide default seed used when the caller passes ``seed=None``
#: to synthetic-data constructors.  Fixed (not entropy-based) so that
#: "I didn't pass a seed" still reproduces across runs, which is what a
#: benchmark harness wants.
DEFAULT_SEED = 20220530  # IPPS 2022 conference date.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to :data:`DEFAULT_SEED` rather than OS entropy; pass
    an explicit seed for independent replications.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(np.random.SeedSequence(seed))


def derive_seed(seed: int | None, *key: int | str) -> int:
    """Derive a child seed from ``seed`` and a structured ``key``.

    The key is hashed through ``SeedSequence.spawn_key`` semantics:
    strings are folded to stable 64-bit integers first.  Two distinct
    keys give independent child streams; the same key always gives the
    same child.
    """
    if seed is None:
        seed = DEFAULT_SEED
    folded = tuple(_fold(k) for k in key)
    child = np.random.SeedSequence(seed, spawn_key=folded)
    return int(child.generate_state(1, dtype=np.uint64)[0])


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Used by parallel regions: worker ``k`` takes stream ``k`` and the
    result is identical for any worker count and interleaving.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if seed is None:
        seed = DEFAULT_SEED
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(c) for c in children]


def _fold(part: int | str) -> int:
    """Fold a key component to a non-negative 64-bit integer."""
    if isinstance(part, (int, np.integer)):
        return int(part) & 0xFFFF_FFFF_FFFF_FFFF
    # FNV-1a over the UTF-8 bytes: stable across processes and Python
    # versions (the builtin hash() is salted per process).
    acc = 0xCBF29CE484222325
    for byte in str(part).encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFF_FFFF_FFFF_FFFF
    return acc


def permutation_streams(
    seed: int | None, labels: Iterable[str]
) -> dict[str, np.random.Generator]:
    """Map each label to an independent generator derived from ``seed``."""
    out: dict[str, np.random.Generator] = {}
    for label in labels:
        out[label] = np.random.default_rng(derive_seed(seed, label))
    return out


def check_seed_vector(seeds: Sequence[int]) -> None:
    """Validate a user-supplied seed vector (all distinct ints)."""
    if len(set(int(s) for s in seeds)) != len(seeds):
        raise ValueError("seed vector contains duplicates")
