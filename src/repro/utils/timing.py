"""Wall-clock and virtual-clock timing primitives.

Two clocks coexist in this library:

* real timers (:class:`Timer`, :class:`Stopwatch`) wrap
  :func:`time.perf_counter` and back the measured benchmarks, and

* :class:`VirtualClock` is a deterministic simulated clock used by
  :mod:`repro.parallel.simcluster` to replay measured per-task costs on
  a simulated machine with an arbitrary rank count.  The simulated
  scalability experiments (paper Fig. 7/9/10) advance this clock
  instead of sleeping, so they are exact and instantaneous.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.elapsed``."""

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Useful for phase breakdowns (formation vs I/O vs solve) inside a
    single pipeline run; the lap dict is what
    :mod:`repro.instrument.report` tabulates.
    """

    laps: dict[str, float] = field(default_factory=dict)
    _running: dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        if name in self._running:
            raise RuntimeError(f"lap {name!r} already running")
        self._running[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        try:
            begin = self._running.pop(name)
        except KeyError:
            raise RuntimeError(f"lap {name!r} was never started") from None
        delta = time.perf_counter() - begin
        self.laps[name] = self.laps.get(name, 0.0) + delta
        return delta

    def lap(self, name: str):
        """Context manager form: ``with sw.lap("formation"): ...``."""
        return _Lap(self, name)

    def total(self) -> float:
        return sum(self.laps.values())


class _Lap:
    __slots__ = ("_sw", "_name")

    def __init__(self, sw: Stopwatch, name: str) -> None:
        self._sw = sw
        self._name = name

    def __enter__(self) -> None:
        self._sw.start(self._name)

    def __exit__(self, *exc) -> None:
        self._sw.stop(self._name)


class VirtualClock:
    """A deterministic clock that only moves when told to.

    The simulated-cluster runtime gives each rank one of these; `advance`
    models compute, and synchronisation primitives take the max across
    ranks.  Times are plain floats in seconds.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"


def measure(fn: Callable[[], object], repeats: int = 3) -> float:
    """Return the best-of-``repeats`` wall time of ``fn()`` in seconds.

    Best-of (not mean) follows the standard timeit rationale: external
    jitter only ever adds time, so the minimum is the least-noisy
    estimate of intrinsic cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
