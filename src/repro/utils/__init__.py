"""Shared utilities: deterministic RNG policy, timers, validation, logging.

These helpers are deliberately small and dependency-free so every other
subpackage (topology, mea, kirchhoff, core, parallel, ...) can rely on
them without import cycles.
"""

from repro.utils.rng import default_rng, derive_seed, spawn_rngs
from repro.utils.timing import Stopwatch, Timer, VirtualClock
from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
    require_shape,
)

__all__ = [
    "Stopwatch",
    "Timer",
    "VirtualClock",
    "default_rng",
    "derive_seed",
    "require_in_range",
    "require_positive",
    "require_positive_int",
    "require_shape",
    "spawn_rngs",
]
