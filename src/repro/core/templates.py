"""Template-cached equation formation — the formation fast path.

:func:`repro.core.equations.form_pair_block` rebuilds the *entire*
term layout of a pair's equations from scratch for every one of the
``n^2`` endpoint pairs.  But for a fixed ``n`` almost all of that work
is pair-invariant: the equation ids, signs, voltage-node codes,
category codes and rhs mask are literally identical for every pair,
and the resistor row/col arrays differ only through the driven pair
``(i, j)`` — term ``t`` reads either the driven index itself or the
``q``-th *other* index, a relationship that does not depend on which
pair is driven (see ``docs/THEORY.md``, "Pair-invariance of the term
layout").

So formation splits into *structure* (computed once per ``(n,
categories)`` and cached, a :class:`PairTemplate`) and *values*
(stamped per pair with two table gathers plus one rhs scale — no
Python-level layout work at all).  The same split is the backbone of
resistor-network inverse solvers that re-assemble the same sparsity
pattern every iteration; here it also feeds the batched path
:func:`form_all_pairs`, which fills one preallocated
structure-of-arrays (:class:`PairBlockBatch`) for many pairs in single
vectorised numpy operations.

The legacy per-pair implementation stays as the reference: templates
are *built from it* (probe pair ``(0, 0)``, unit drive), and the
property tests assert the stamped output is bit-identical to it for
every pair and category subset.

Encoding of the per-pair resistor indices
-----------------------------------------

For the probe pair ``(0, 0)`` the sorted "other" indices are
``1..n-1``, so the reference block's own ``r_row``/``r_col`` arrays
*are* the pair-invariant codes: code ``0`` means "the driven index",
code ``q >= 1`` means "the ``q``-th other index".  Stamping pair
``(i, j)`` is then a gather through the per-index lookup table
``lookup[d] = [d, others(d)...]``::

    r_row = lookup[i][rrow_code]      # one np.take
    r_col = lookup[j][rcol_code]      # one np.take
    rhs   = rhs_unit * (U / Z_ij)     # one scalar multiply

Cache statistics (template hits, bytes resident, build time) are kept
per process and surface through :func:`cache_stats`, the
``parma info`` CLI subcommand, and
:func:`repro.instrument.report.cache_stats_table`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.categories import Category
from repro.core.equations import (
    ALL_CATEGORIES,
    PairBlock,
    form_pair_block,
)
from repro.utils.validation import require_positive, require_positive_int

#: Valid values for the ``formation=`` knob threaded through the
#: strategies, streaming, distributed and engine layers.
FORMATION_MODES = ("cached", "legacy")


def check_formation_mode(formation: str) -> str:
    if formation not in FORMATION_MODES:
        raise ValueError(
            f"unknown formation mode {formation!r}; use 'cached' or 'legacy'"
        )
    return formation


@dataclass(frozen=True)
class PairTemplate:
    """All pair-invariant structure of a pair's equations for one n.

    Built once from the reference implementation (probe pair
    ``(0, 0)``, unit voltage and impedance) and stamped out per pair by
    pure value arithmetic.  All arrays are read-only; stamped blocks
    share them.
    """

    n: int
    categories: tuple[Category, ...]
    eq_id: np.ndarray  # int32 (T,), shared by every stamped block
    sign: np.ndarray  # int8 (T,), shared
    v_plus: np.ndarray  # int16 (T,), shared
    v_minus: np.ndarray  # int16 (T,), shared
    category: np.ndarray  # int8 (E,), shared
    rhs_unit: np.ndarray  # float64 (E,): 1.0 on SOURCE/DEST rows else 0.0
    rrow_code: np.ndarray  # intp (T,): 0 = driven row, q = q-th other
    rcol_code: np.ndarray  # intp (T,): 0 = driven col, q = q-th other
    lookup: np.ndarray  # int32 (n, n): lookup[d] = [d, others(d)...]
    checksum_weight: np.ndarray  # float64 (T,): sign (v+ + 1) (v- + 3)
    checksum_table: np.ndarray  # float64 (n, n): every pair's checksum
    build_seconds: float

    @property
    def num_terms(self) -> int:
        return len(self.eq_id)

    @property
    def num_equations(self) -> int:
        return len(self.rhs_unit)

    def nbytes(self) -> int:
        return sum(
            a.nbytes
            for a in (
                self.eq_id,
                self.sign,
                self.v_plus,
                self.v_minus,
                self.category,
                self.rhs_unit,
                self.rrow_code,
                self.rcol_code,
                self.lookup,
                self.checksum_weight,
                self.checksum_table,
            )
        )

    # -- stamping -----------------------------------------------------------

    def stamp(
        self, row: int, col: int, z: float, voltage: float = 5.0
    ) -> PairBlock:
        """The :class:`PairBlock` of pair ``(row, col)`` — bit-identical
        to :func:`repro.core.equations.form_pair_block`."""
        n = self.n
        if not (0 <= row < n and 0 <= col < n):
            raise IndexError(f"pair ({row}, {col}) out of range for n={n}")
        require_positive(z, "z")
        require_positive(voltage, "voltage")
        r_row = np.take(self.lookup[row], self.rrow_code, mode="clip")
        r_col = np.take(self.lookup[col], self.rcol_code, mode="clip")
        return PairBlock(
            n=n,
            row=row,
            col=col,
            voltage=voltage,
            z=float(z),
            eq_id=self.eq_id,
            sign=self.sign,
            r_row=r_row,
            r_col=r_col,
            v_plus=self.v_plus,
            v_minus=self.v_minus,
            rhs=self.rhs_unit * (voltage / z),
            category=self.category,
        )

    def stamp_batch(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        z: np.ndarray,
        voltage: float = 5.0,
    ) -> "PairBlockBatch":
        """Fill one structure-of-arrays for many pairs at once.

        The only per-pair arrays are ``r_row``/``r_col`` (two batched
        ``np.take`` gathers into preallocated ``(P, T)`` buffers) and
        ``rhs`` (one outer product); everything else is the shared
        template structure.
        """
        n = self.n
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        z = np.asarray(z, dtype=np.float64)
        if not (rows.ndim == cols.ndim == z.ndim == 1):
            raise ValueError("rows, cols and z must be 1-D")
        if not (len(rows) == len(cols) == len(z)):
            raise ValueError("rows, cols and z must have equal length")
        if len(rows) and not (
            (rows >= 0).all()
            and (rows < n).all()
            and (cols >= 0).all()
            and (cols < n).all()
        ):
            raise IndexError(f"pair indices out of range for n={n}")
        if len(z) and not (z > 0).all():
            raise ValueError("z must be positive")
        require_positive(voltage, "voltage")
        p = len(rows)
        t = self.num_terms
        r_row = np.empty((p, t), dtype=np.int32)
        r_col = np.empty((p, t), dtype=np.int32)
        np.take(self.lookup[rows], self.rrow_code, axis=1, out=r_row, mode="clip")
        np.take(self.lookup[cols], self.rcol_code, axis=1, out=r_col, mode="clip")
        rhs = (voltage / z)[:, None] * self.rhs_unit[None, :]
        return PairBlockBatch(
            template=self,
            rows=rows,
            cols=cols,
            z=z,
            voltage=float(voltage),
            r_row=r_row,
            r_col=r_col,
            rhs=rhs,
        )


@dataclass(frozen=True)
class PairBlockBatch:
    """Structure-of-arrays equations for a batch of endpoint pairs.

    ``r_row``/``r_col`` are ``(P, T)``; ``rhs`` is ``(P, E)``; all
    remaining structure lives on the shared :class:`PairTemplate`.
    :meth:`block` materialises one pair as a zero-copy
    :class:`PairBlock` view (row slices of the batch buffers), so
    serialization and checksums of individual pairs behave exactly as
    in the per-pair path.
    """

    template: PairTemplate
    rows: np.ndarray  # intp (P,)
    cols: np.ndarray  # intp (P,)
    z: np.ndarray  # float64 (P,)
    voltage: float
    r_row: np.ndarray  # int32 (P, T)
    r_col: np.ndarray  # int32 (P, T)
    rhs: np.ndarray  # float64 (P, E)

    @property
    def num_pairs(self) -> int:
        return len(self.rows)

    @property
    def num_terms(self) -> int:
        """Total terms across the batch."""
        return self.num_pairs * self.template.num_terms

    @property
    def num_equations(self) -> int:
        """Total equations across the batch."""
        return self.num_pairs * self.template.num_equations

    def nbytes(self) -> int:
        """Batch-owned bytes (template structure counted separately)."""
        return (
            self.r_row.nbytes
            + self.r_col.nbytes
            + self.rhs.nbytes
            + self.rows.nbytes
            + self.cols.nbytes
            + self.z.nbytes
        )

    def checksums(self) -> np.ndarray:
        """Per-pair :meth:`PairBlock.checksum` values, batched.

        Served from the template's precomputed ``(n, n)`` checksum
        table in O(1) per pair.  Exact (not merely close): every
        partial sum in the table's construction is an integer
        representable in float64, so each entry equals the reference
        term-by-term sum bit-for-bit.
        """
        return self.template.checksum_table[self.rows, self.cols]

    def checksum(self) -> float:
        return float(self.checksums().sum())

    def block(self, p: int) -> PairBlock:
        """Zero-copy :class:`PairBlock` view of batch entry ``p``."""
        tpl = self.template
        return PairBlock(
            n=tpl.n,
            row=int(self.rows[p]),
            col=int(self.cols[p]),
            voltage=self.voltage,
            z=float(self.z[p]),
            eq_id=tpl.eq_id,
            sign=tpl.sign,
            r_row=self.r_row[p],
            r_col=self.r_col[p],
            v_plus=tpl.v_plus,
            v_minus=tpl.v_minus,
            rhs=self.rhs[p],
            category=tpl.category,
        )

    def __iter__(self) -> Iterator[PairBlock]:
        for p in range(self.num_pairs):
            yield self.block(p)


# -- the process-wide template cache -----------------------------------------


@dataclass
class TemplateCacheStats:
    """Observable counters of one formation-structure cache."""

    name: str
    entries: int = 0
    hits: int = 0
    misses: int = 0
    bytes_resident: int = 0
    build_seconds: float = 0.0

    def snapshot(self) -> "TemplateCacheStats":
        return TemplateCacheStats(
            name=self.name,
            entries=self.entries,
            hits=self.hits,
            misses=self.misses,
            bytes_resident=self.bytes_resident,
            build_seconds=self.build_seconds,
        )


_CACHE: dict[tuple[int, tuple[Category, ...]], PairTemplate] = {}
_CACHE_LOCK = threading.Lock()
_STATS = TemplateCacheStats(name="pair-template")


def _build_template(
    n: int, categories: tuple[Category, ...]
) -> PairTemplate:
    """Derive the template from the reference implementation.

    The probe block for pair ``(0, 0)`` at unit voltage and impedance
    provides everything: its ``r_row``/``r_col`` arrays are the
    pair-invariant codes (the sorted other-indices of 0 are
    ``1..n-1``), and its ``rhs`` is exactly the 0/1 mask.
    """
    start = time.perf_counter()
    probe = form_pair_block(n, 0, 0, 1.0, voltage=1.0, categories=categories)
    lookup = np.empty((n, n), dtype=np.int32)
    base = np.arange(n, dtype=np.int32)
    for d in range(n):
        lookup[d, 0] = d
        lookup[d, 1:d + 1] = base[:d]
        lookup[d, d + 1:] = base[d + 1:]
    checksum_weight = (
        probe.sign.astype(np.float64)
        * (probe.v_plus.astype(np.float64) + 1.0)
        * (probe.v_minus.astype(np.float64) + 3.0)
    )
    # The checksum is bilinear in the lookup rows:
    #   sum_t w_t (L[row, a_t] + 1) (L[col, b_t] + 1)
    # so aggregating the weights onto their (a, b) code cell gives every
    # pair's checksum as one (n, n) table.  All intermediate sums are
    # integers well below 2^53, so the table is exact, not approximate.
    weight_by_code = np.zeros((n, n), dtype=np.float64)
    np.add.at(
        weight_by_code,
        (probe.r_row.astype(np.intp), probe.r_col.astype(np.intp)),
        checksum_weight,
    )
    shifted = lookup.astype(np.float64) + 1.0
    checksum_table = shifted @ weight_by_code @ shifted.T
    arrays = dict(
        eq_id=probe.eq_id,
        sign=probe.sign,
        v_plus=probe.v_plus,
        v_minus=probe.v_minus,
        category=probe.category,
        rhs_unit=probe.rhs,
        rrow_code=probe.r_row.astype(np.intp),
        rcol_code=probe.r_col.astype(np.intp),
        lookup=lookup,
        checksum_weight=checksum_weight,
        checksum_table=checksum_table,
    )
    for arr in arrays.values():
        arr.setflags(write=False)
    return PairTemplate(
        n=n,
        categories=categories,
        build_seconds=time.perf_counter() - start,
        **arrays,
    )


def get_template(
    n: int, categories: Sequence[Category] = ALL_CATEGORIES
) -> PairTemplate:
    """The cached :class:`PairTemplate` for ``(n, categories)``."""
    n = require_positive_int(n, "n", minimum=2)
    key = (n, tuple(categories))
    if len(set(key[1])) != len(key[1]):
        raise ValueError("duplicate categories")
    with _CACHE_LOCK:
        tpl = _CACHE.get(key)
        if tpl is not None:
            _STATS.hits += 1
            return tpl
    tpl = _build_template(n, key[1])
    with _CACHE_LOCK:
        raced = _CACHE.get(key)
        if raced is not None:  # pragma: no cover - build race
            _STATS.hits += 1
            return raced
        _CACHE[key] = tpl
        _STATS.misses += 1
        _STATS.entries = len(_CACHE)
        _STATS.bytes_resident += tpl.nbytes()
        _STATS.build_seconds += tpl.build_seconds
    return tpl


def cache_stats() -> TemplateCacheStats:
    """A snapshot of the template-cache counters for this process."""
    with _CACHE_LOCK:
        return _STATS.snapshot()


def has_template(
    n: int, categories: Sequence[Category] = ALL_CATEGORIES
) -> bool:
    """Whether the template for ``(n, categories)`` is already resident.

    A pure peek: no counters move and nothing is built.  The solve
    service uses this to label a request's latency as cache-warm or
    cache-cold *before* executing it.
    """
    with _CACHE_LOCK:
        return (int(n), tuple(categories)) in _CACHE


def clear_template_cache() -> None:
    """Drop every cached template and reset the counters (tests)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        _STATS.entries = 0
        _STATS.hits = 0
        _STATS.misses = 0
        _STATS.bytes_resident = 0
        _STATS.build_seconds = 0.0


def warm_template_cache(
    n: int, categories_list: Sequence[Sequence[Category]] = (ALL_CATEGORIES,)
) -> None:
    """Prebuild templates (e.g. before forking parallel workers, so
    children inherit them copy-on-write instead of each building its
    own)."""
    for cats in categories_list:
        get_template(n, cats)


# -- the fast formation entry points -----------------------------------------


def stamp_pair_block(
    n: int,
    row: int,
    col: int,
    z: float,
    voltage: float = 5.0,
    categories: Sequence[Category] = ALL_CATEGORIES,
) -> PairBlock:
    """Drop-in fast twin of :func:`repro.core.equations.form_pair_block`.

    Same signature, bit-identical output; structure comes from the
    template cache instead of being rebuilt.
    """
    return get_template(n, categories).stamp(row, col, z, voltage=voltage)


def form_all_pairs(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    z: np.ndarray,
    voltage: float = 5.0,
    categories: Sequence[Category] = ALL_CATEGORIES,
) -> PairBlockBatch:
    """Batched formation of many pairs in one vectorised fill.

    ``rows``/``cols``/``z`` are parallel 1-D arrays (one entry per
    pair).  This is the path a parallel worker uses for its whole
    partition share: one preallocated structure-of-arrays instead of
    an item-deep Python loop.
    """
    return get_template(n, categories).stamp_batch(
        rows, cols, z, voltage=voltage
    )


#: Pairs per internal batch of :func:`iter_pair_blocks_cached` —
#: bounds transient memory at ~chunk * 2n^2 terms regardless of device
#: size, preserving the streaming-mode O(small) footprint.
_ITER_CHUNK_TERMS = 1 << 21


def iter_pair_batches(
    z: np.ndarray, voltage: float = 5.0
) -> Iterator[PairBlockBatch]:
    """Row-major device coverage as bounded-size batches.

    Each batch holds at most ``~_ITER_CHUNK_TERMS`` terms, so peak
    transient memory is independent of device size (the streaming-mode
    guarantee) while every fill stays a single vectorised operation.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2 or z.shape[0] != z.shape[1]:
        raise ValueError("z must be square (n, n)")
    n = z.shape[0]
    tpl = get_template(n)
    chunk = max(1, _ITER_CHUNK_TERMS // tpl.num_terms)
    num_pairs = n * n
    flat_rows = np.arange(num_pairs, dtype=np.intp) // n
    flat_cols = np.arange(num_pairs, dtype=np.intp) % n
    flat_z = z.ravel()
    for s in range(0, num_pairs, chunk):
        yield tpl.stamp_batch(
            flat_rows[s : s + chunk],
            flat_cols[s : s + chunk],
            flat_z[s : s + chunk],
            voltage=voltage,
        )


def iter_pair_blocks_cached(
    z: np.ndarray, voltage: float = 5.0
) -> Iterator[PairBlock]:
    """Fast twin of :func:`repro.core.equations.iter_pair_blocks`.

    Streams every pair's block in row-major order, stamping from the
    cached template in bounded-size internal batches.  Yielded blocks
    are views into the current batch, so sinks must not retain them
    (the same contract the streaming module already imposes).
    """
    for batch in iter_pair_batches(z, voltage=voltage):
        yield from batch


def form_worker_share(
    n: int,
    items: Sequence,
    item_indices: np.ndarray,
    z: np.ndarray,
    voltage: float = 5.0,
) -> tuple[dict[Category, PairBlockBatch], dict[int, tuple[Category, int]]]:
    """Batched formation of one worker's partition share.

    ``items`` are :class:`repro.core.partition.WorkItem`-likes (with
    ``row``/``col``/``category``); ``item_indices`` selects this
    worker's share.  Items are grouped per category — one
    :func:`form_all_pairs` call each — while ``placement`` maps every
    item index back to ``(category, position)`` so callers can emit
    blocks in the original deterministic item order (part files stay
    byte-identical to the legacy path).
    """
    by_cat: dict[Category, list[int]] = {}
    for idx in item_indices:
        by_cat.setdefault(items[idx].category, []).append(int(idx))
    batches: dict[Category, PairBlockBatch] = {}
    placement: dict[int, tuple[Category, int]] = {}
    for cat, idxs in by_cat.items():
        rows = np.array([items[i].row for i in idxs], dtype=np.intp)
        cols = np.array([items[i].col for i in idxs], dtype=np.intp)
        batches[cat] = form_all_pairs(
            n, rows, cols, z[rows, cols], voltage=voltage, categories=(cat,)
        )
        for pos, i in enumerate(idxs):
            placement[i] = (cat, pos)
    return batches, placement
