"""Work decomposition for parallel equation formation (paper §IV).

The schedulable atom is a :class:`WorkItem` — "form the equations of
category ``c`` for endpoint pair ``(i, j)``" — whose cost is known
ahead of time (``n`` terms for SOURCE/DEST, ``n (n-1)`` for UA/UB).
Three decompositions mirror the paper's three strategies:

* :func:`partition_by_category` — 4 work units, one per category
  (*Parallel*): maximally coarse and maximally skewed.
* :func:`partition_balanced` — deterministic LPT over the
  ``4 n^2`` items (*Balanced Parallel*): any worker count, computed
  ahead of time (§IV-C.1's deterministic "work stealing").
* :func:`partition_betti` — the Betti-number-aware decomposition
  (*PyMP*): items are first grouped into the ``(n-1)^2`` homology
  holes of the device complex (each hole collects the pairs whose
  resistor anchors its mesh cell), and holes are dealt round-robin to
  workers.  The hole count is the theoretical parallelism budget of
  §IV-B; partitioning cannot beneficially exceed it, which the
  ablation benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.categories import Category
from repro.parallel.workstealing import Assignment, lpt_schedule
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class WorkItem:
    """One schedulable formation task."""

    row: int
    col: int
    category: Category
    cost: float  # term count — exact, not an estimate

    @property
    def pair_index_in(self) -> int:
        return self.row


@dataclass(frozen=True)
class Partition:
    """A complete decomposition: items and their worker assignment."""

    n: int
    num_workers: int
    scheme: str
    items: tuple[WorkItem, ...]
    worker_of: np.ndarray  # int64, item -> worker

    def items_of(self, worker: int) -> list[WorkItem]:
        return [
            self.items[i] for i in np.flatnonzero(self.worker_of == worker)
        ]

    def loads(self) -> np.ndarray:
        loads = np.zeros(self.num_workers)
        for item, w in zip(self.items, self.worker_of):
            loads[w] += item.cost
        return loads

    def makespan(self) -> float:
        return float(self.loads().max(initial=0.0))

    def imbalance(self) -> float:
        loads = self.loads()
        mean = float(loads.mean()) if len(loads) else 0.0
        return float(loads.max(initial=0.0) / mean) if mean > 0 else 1.0

    def total_cost(self) -> float:
        return float(sum(it.cost for it in self.items))


def make_items(n: int) -> tuple[WorkItem, ...]:
    """All ``4 n^2`` (pair, category) items with exact term costs."""
    n = require_positive_int(n, "n", minimum=2)
    items: list[WorkItem] = []
    light = float(n)  # SOURCE/DEST: n terms
    heavy = float(n * (n - 1))  # UA/UB: n (n-1) terms
    for row in range(n):
        for col in range(n):
            items.append(WorkItem(row, col, Category.SOURCE, light))
            items.append(WorkItem(row, col, Category.DEST, light))
            items.append(WorkItem(row, col, Category.UA, heavy))
            items.append(WorkItem(row, col, Category.UB, heavy))
    return tuple(items)


def partition_by_category(n: int) -> Partition:
    """The *Parallel* strategy: worker = category (always 4 workers)."""
    items = make_items(n)
    worker_of = np.array([int(it.category) for it in items], dtype=np.int64)
    return Partition(
        n=n, num_workers=4, scheme="category", items=items, worker_of=worker_of
    )


def partition_balanced(n: int, num_workers: int) -> Partition:
    """The *Balanced Parallel* strategy: deterministic LPT plan."""
    require_positive_int(num_workers, "num_workers")
    items = make_items(n)
    plan: Assignment = lpt_schedule([it.cost for it in items], num_workers)
    return Partition(
        n=n,
        num_workers=num_workers,
        scheme="balanced",
        items=items,
        worker_of=plan.worker_of,
    )


def hole_of_pair(row: int, col: int, n: int) -> int:
    """Map pair (row, col) to a hole id in [0, (n-1)^2).

    Hole ``(a, b)`` is the mesh cell whose top-left resistor is
    ``(a, b)``; pair ``(i, j)`` anchors to cell
    ``(min(i, n-2), min(j, n-2))`` so boundary pairs fold into the last
    cell of their row/column.
    """
    a = min(row, n - 2)
    b = min(col, n - 2)
    return a * (n - 1) + b


def partition_betti(n: int, num_workers: int) -> Partition:
    """The *PyMP* strategy: Betti-aware fine-grained decomposition.

    Items are grouped by homology hole; holes are assigned to workers
    round-robin in hole order (deterministic).  Every item of a hole
    lands on the hole's worker, keeping the spatial locality that the
    manifold argument of §IV-B assumes while spreading the heavy UA/UB
    items evenly (each hole contains the same category mix).
    """
    require_positive_int(num_workers, "num_workers")
    items = make_items(n)
    num_holes = (n - 1) * (n - 1)
    worker_of = np.empty(len(items), dtype=np.int64)
    for idx, item in enumerate(items):
        hole = hole_of_pair(item.row, item.col, n)
        worker_of[idx] = hole % num_workers
    return Partition(
        n=n,
        num_workers=num_workers,
        scheme="betti",
        items=items,
        worker_of=worker_of,
    )


def effective_parallelism(n: int, num_workers: int) -> int:
    """min(workers, holes): the §IV-B bound on useful workers."""
    return min(num_workers, (n - 1) * (n - 1))


def partition(n: int, num_workers: int, scheme: str) -> Partition:
    """Dispatch by scheme name: 'category' | 'balanced' | 'betti'."""
    if scheme == "category":
        return partition_by_category(n)
    if scheme == "balanced":
        return partition_balanced(n, num_workers)
    if scheme == "betti":
        return partition_betti(n, num_workers)
    raise ValueError(f"unknown scheme {scheme!r}")
