"""Tikhonov-regularized recovery for noisy measurements.

The paper's introduction names the field's core numerical difficulty:
the inverse problem is *ill-posed* — "the solution is largely
dependent on the input and results in an unacceptable variance" — and
cites Tikhonov regularization among the conventional responses
[12-14].  The plain nested solver inherits that sensitivity: our
measurements show ~10x noise amplification into the recovered field
(EXPERIMENTS.md E9).

:func:`solve_regularized` adds the classical remedy on top of the
variable-projection formulation: a smoothness prior on ``θ = log R``
penalising the discrete Laplacian of the log-field,

    minimize ‖(Z̃(θ) − Z)/Z‖² + λ ‖L θ‖²,

solved by damped Gauss–Newton on the stacked system.  λ = 0 recovers
the exact solver; :func:`l_curve` sweeps λ and reports the data-misfit
/ prior-norm trade-off so callers can pick the corner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.solver import SolveResult, _scaled_jacobian, predict_z
from repro.core.solver_backends import resolve_backend
from repro.utils.validation import require_positive_array


def log_laplacian_operator(m: int, n: int) -> np.ndarray:
    """Discrete 5-point Laplacian on the ``m x n`` resistor lattice.

    Rows = lattice sites (row-major), columns = sites; Neumann
    boundary (degree-adjusted diagonal), so constant fields are in the
    null space — the prior penalizes *variation*, not level.
    """
    size = m * n
    lap = np.zeros((size, size), dtype=np.float64)
    for r in range(m):
        for c in range(n):
            i = r * n + c
            for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                if 0 <= rr < m and 0 <= cc < n:
                    j = rr * n + cc
                    lap[i, i] += 1.0
                    lap[i, j] -= 1.0
    return lap


@dataclass(frozen=True)
class LCurvePoint:
    """One λ sample of the regularization trade-off."""

    lam: float
    data_misfit: float  # ||(Z̃ - Z)/Z||
    prior_norm: float  # ||L θ||
    result: SolveResult


def solve_regularized(
    z: np.ndarray,
    lam: float,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 100,
    backend: str = "numpy",
    observer=None,
) -> SolveResult:
    """Smoothness-regularized variable-projection solve.

    ``lam`` is the Tikhonov weight (0 = unregularized).  Returns a
    :class:`~repro.core.solver.SolveResult` with method
    ``"regularized"``.

    The data block of the stacked system ``[J_data; √λ L]`` is
    assembled by the backend's blocked/compiled kernel with the
    row scaling fused in (:mod:`repro.core.solver_backends`) — bit
    identical to the historical two-pass assembly, so the Levenberg
    trajectory is unchanged.  The normal equations deliberately stay
    in stacked form: splitting them as ``J_dataᵀJ_data + λ LᵀL``
    perturbs the last bits of ``JᵀJ``, and near the optimum the
    accept-on-cost-decrease test resolves below double precision, so
    last-bit perturbations flip razor-edge convergence verdicts.
    """
    from repro.observe.observer import as_observer

    z = require_positive_array(z, "z")
    if lam < 0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    obs = as_observer(observer)
    backend = resolve_backend(backend, obs)
    m, n = z.shape
    start = time.perf_counter()
    if r0 is None:
        r_unif = float(np.median(z) * m * n / (m + n - 1))
        r0 = np.full((m, n), r_unif)
    theta = np.log(require_positive_array(r0, "r0")).ravel()
    z_flat = z.ravel()
    lop = log_laplacian_operator(m, n)
    sqrt_lam = np.sqrt(lam)

    def cost_parts(th):
        r = np.exp(th).reshape(m, n)
        res = (predict_z(r).ravel() - z_flat) / z_flat
        prior = sqrt_lam * (lop @ th)
        return res, prior, r

    res, prior, r_cur = cost_parts(theta)
    cost = 0.5 * float(res @ res + prior @ prior)
    damping = 0.0
    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        iter_start = time.perf_counter()
        jac_data = _scaled_jacobian(r_cur, z, backend)
        jac = np.concatenate([jac_data, sqrt_lam * lop], axis=0)
        full_res = np.concatenate([res, prior])
        grad = jac.T @ full_res
        if np.max(np.abs(grad)) < tol:
            converged = True
            break
        jtj = jac.T @ jac
        diag_base = np.diag(jtj).copy()
        diag_idx = np.diag_indices_from(jtj)
        accepted = False
        for _ in range(25):
            jtj[diag_idx] = diag_base + damping * diag_base + 1e-300
            try:
                step = np.linalg.solve(jtj, -grad)
            except np.linalg.LinAlgError:
                damping = max(damping * 10.0, 1e-8)
                continue
            new_res, new_prior, new_r = cost_parts(theta + step)
            new_cost = 0.5 * float(new_res @ new_res + new_prior @ new_prior)
            if new_cost < cost:
                theta = theta + step
                res, prior, r_cur = new_res, new_prior, new_r
                cost = new_cost
                damping = damping / 3.0 if damping > 1e-12 else 0.0
                accepted = True
                break
            damping = max(damping * 10.0, 1e-8)
        obs.observe_hist(
            "solver.iteration.seconds", time.perf_counter() - iter_start
        )
        if not accepted:
            break
        if np.max(np.abs(step)) < 1e-14:
            converged = True
            break
    return SolveResult(
        r_estimate=r_cur,
        method="regularized",
        iterations=iterations,
        residual_norm=float(np.linalg.norm(res)),
        elapsed_seconds=time.perf_counter() - start,
        converged=converged,
        backend=backend,
    )


def l_curve(
    z: np.ndarray,
    lams: np.ndarray | list[float],
    voltage: float = 5.0,
) -> list[LCurvePoint]:
    """Sweep λ and collect (misfit, prior-norm) points.

    The classical L-curve: pick the corner where misfit stops
    improving and the prior norm starts exploding.
    """
    z = require_positive_array(z, "z")
    m, n = z.shape
    lop = log_laplacian_operator(m, n)
    out: list[LCurvePoint] = []
    for lam in lams:
        result = solve_regularized(z, float(lam), voltage=voltage)
        theta = np.log(result.r_estimate).ravel()
        misfit = float(
            np.linalg.norm((predict_z(result.r_estimate) - z) / z)
        )
        out.append(
            LCurvePoint(
                lam=float(lam),
                data_misfit=misfit,
                prior_norm=float(np.linalg.norm(lop @ theta)),
                result=result,
            )
        )
    return out


def pick_lambda_by_discrepancy(
    points: list[LCurvePoint], noise_rel: float, n_measurements: int
) -> LCurvePoint:
    """Morozov discrepancy principle: the largest λ whose misfit stays
    within the expected noise level ``noise_rel * sqrt(#measurements)``.

    Falls back to the smallest-λ point if none qualifies.
    """
    target = noise_rel * np.sqrt(n_measurements)
    qualifying = [p for p in points if p.data_misfit <= target]
    if not qualifying:
        return min(points, key=lambda p: p.lam)
    return max(qualifying, key=lambda p: p.lam)
