"""Execution strategies for equation formation (paper §IV-A/§IV-C/§V).

The four systems the paper evaluates, mapped 1:1:

* :class:`SingleThread` — the serialized baseline of [15];
* :class:`ParallelStrategy` — 4 workers, one constraint category each
  (*Parallel*, §IV-A): capped at 4 and skewed;
* :class:`BalancedParallel` — deterministic LPT plan over the
  ``4 n^2`` (pair, category) items (*Balanced Parallel*, §IV-C.1);
* :class:`PyMPStrategy` — fine-grained Betti-aware decomposition with
  static (hole round-robin) or dynamic (shared-counter) scheduling
  (*PyMP-k*, §IV-C.2).

All strategies *really execute*: workers are forked PyMP-style
processes forming real term arrays (optionally serializing them to
per-worker part files, the Fig. 9 path) and reporting their share
through shared memory.  On a many-core box the wall-clock elapsed in
the report is the paper's measured quantity; on this 1-core container
the elapsed is serial-ish, and the scaling *figures* instead feed the
strategies' exact per-item costs into the calibrated cluster model
(:mod:`repro.parallel.simcluster`) — see DESIGN.md §2.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.categories import Category
from repro.core.equations import form_pair_block, iter_pair_blocks
from repro.core.partition import (
    Partition,
    WorkItem,
    partition_balanced,
    partition_betti,
    partition_by_category,
)
from repro.core.templates import (
    check_formation_mode,
    form_worker_share,
    get_template,
    iter_pair_batches,
    stamp_pair_block,
    warm_template_cache,
)
from repro.io.equations_io import write_block_binary, write_block_text
from repro.observe.observer import NULL_SPAN as _NO_SPAN
from repro.observe.observer import as_observer
from repro.parallel import pymp
from repro.resilience.atomio import AtomicFile
from repro.resilience.faults import as_injector
from repro.resilience.supervise import Deadline
from repro.utils.validation import require_positive, require_positive_int

#: Minimum items formed per heartbeat under supervision.  Supervised
#: workers form their share in contiguous chunks so the watchdog sees
#: progress at sub-share granularity; the chunks are consecutive
#: slices of the same sorted share, so part files stay byte-identical
#: to the unsupervised single-call path.
_SUPERVISED_CHUNK = 32

#: Upper bound on chunks per worker share: per-chunk overhead (extra
#: ``form_worker_share`` calls) must stay a constant fraction of the
#: share no matter its size, or supervision would tax large devices.
_SUPERVISED_CHUNKS_PER_SHARE = 4


def _heartbeat_chunk(share_items: int) -> int:
    """Chunk size balancing watchdog granularity against call overhead."""
    return max(_SUPERVISED_CHUNK, -(-share_items // _SUPERVISED_CHUNKS_PER_SHARE))


@dataclass(frozen=True)
class FormationReport:
    """What one formation run did, and what it cost."""

    strategy: str
    n: int
    num_workers: int
    elapsed_seconds: float
    terms_formed: int
    checksum: float
    per_worker_terms: np.ndarray
    bytes_written: int = 0
    part_files: tuple[str, ...] = field(default_factory=tuple)
    #: Items kept from surviving workers after a worker loss (verified
    #: against the template checksum table), items re-formed in the
    #: parent, and which ranks the heartbeat watchdog killed.  All zero
    #: / empty on a fault-free run.
    blocks_salvaged: int = 0
    blocks_reformed: int = 0
    stalled_ranks: tuple[int, ...] = field(default_factory=tuple)

    def terms_per_second(self) -> float:
        """Formation throughput (the paper's Fig. 5/6 y-axis unit)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.terms_formed / self.elapsed_seconds


def _validate_z(z: np.ndarray) -> np.ndarray:
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2 or z.shape[0] != z.shape[1]:
        raise ValueError("z must be a square (n, n) matrix")
    if z.shape[0] < 2:
        raise ValueError("device must be at least 2x2")
    return z


class SingleThread:
    """Serial formation of every pair block (baseline [15]).

    ``formation="cached"`` (default) stamps blocks from the per-n
    template cache; ``"legacy"`` is the original from-scratch per-pair
    path, kept as the reference implementation.
    """

    name = "single-thread"
    num_workers = 1

    def __init__(self, formation: str = "cached") -> None:
        self.formation = check_formation_mode(formation)

    def run(
        self,
        z: np.ndarray,
        voltage: float = 5.0,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
        faults=None,
        observer=None,
        supervise=None,
        deadline=None,
    ) -> FormationReport:
        """Form all ``2n³`` joint-constraint terms for one measurement.

        ``z`` is the (n, n) pairwise-resistance matrix in kΩ;
        ``output_dir`` (optional) streams the equations to disk in
        ``fmt`` ("binary" or "text").  ``faults``, ``observer``,
        ``supervise`` and ``deadline`` hook in fault injection,
        tracing/metrics, heartbeat supervision and the shared
        wall-clock budget — all optional, all free when absent.
        Returns a :class:`FormationReport`.
        """
        z = _validate_z(z)
        require_positive(voltage, "voltage")
        obs = as_observer(observer)
        tracing = obs.enabled
        deadline = _resolve_deadline(deadline, supervise)
        n = z.shape[0]
        start = time.perf_counter()
        terms = 0
        checksum = 0.0
        bytes_written = 0
        parts: tuple[str, ...] = ()
        writer, fh = _open_writer(output_dir, fmt, worker=0)
        ok = False
        try:
            with obs.span("formation", strategy=self.name, n=n, workers=1):
                if self.formation == "cached":
                    for batch in iter_pair_batches(z, voltage=voltage):
                        if deadline is not None:
                            deadline.check("serial formation")
                        with obs.span("form.batch", pairs=batch.num_pairs):
                            terms += batch.num_terms
                            checksum += float(batch.checksums().sum())
                            if writer is not None:
                                for block in batch:
                                    bytes_written += writer(block, fh)
                else:
                    for block in iter_pair_blocks(z, voltage=voltage):
                        if deadline is not None:
                            deadline.check("serial formation")
                        if tracing:
                            with obs.span(
                                "form", pair=(block.row, block.col)
                            ):
                                terms += block.num_terms
                                checksum += block.checksum()
                                if writer is not None:
                                    bytes_written += writer(block, fh)
                        else:
                            terms += block.num_terms
                            checksum += block.checksum()
                            if writer is not None:
                                bytes_written += writer(block, fh)
            ok = True
        finally:
            if fh is not None:
                _close_writer(fh, ok)
                parts = (fh.name,)
        report = FormationReport(
            strategy=self.name,
            n=n,
            num_workers=1,
            elapsed_seconds=time.perf_counter() - start,
            terms_formed=terms,
            checksum=checksum,
            per_worker_terms=np.array([terms], dtype=np.int64),
            bytes_written=bytes_written,
            part_files=parts,
        )
        obs.record_formation(report)
        return report


class _PartitionedStrategy:
    """Shared machinery: execute a static :class:`Partition` with PyMP."""

    name = "partitioned"

    def __init__(self, num_workers: int, formation: str = "cached") -> None:
        self.num_workers = require_positive_int(num_workers, "num_workers")
        self.formation = check_formation_mode(formation)

    def _partition(self, n: int) -> Partition:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(
        self,
        z: np.ndarray,
        voltage: float = 5.0,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
        faults=None,
        observer=None,
        supervise=None,
        deadline=None,
    ) -> FormationReport:
        """Form the constraints in parallel over this strategy's partition.

        Same contract as :meth:`SingleThread.run`; the work is dealt
        to ``num_workers`` forked PyMP workers per the subclass's
        partition, each writing a part file that the parent merges
        (order-independent checksum, byte-identical equations).
        """
        z = _validate_z(z)
        require_positive(voltage, "voltage")
        injector = as_injector(faults)
        obs = as_observer(observer)
        tracing = obs.enabled
        sup = supervise
        deadline = _resolve_deadline(deadline, sup)
        if deadline is not None:
            deadline.check("formation")
        n = z.shape[0]
        part = self._partition(n)
        workers = part.num_workers
        items = part.items
        worker_of = part.worker_of
        per_worker_terms = pymp.shared_array((workers,), dtype=np.int64)
        per_worker_checksum = pymp.shared_array((workers,), dtype=np.float64)
        per_worker_bytes = pymp.shared_array((workers,), dtype=np.int64)
        if self.formation == "cached":
            # Build the per-category templates in the parent so forked
            # workers inherit them copy-on-write instead of each paying
            # the build cost (and each missing the shared cache).
            warm_template_cache(
                n, [(cat,) for cat in sorted({it.category for it in items})]
            )
        # Speculative tail shares formed in the parent by the straggler
        # hook: rank -> (head_count, batches, placement).  Only the
        # cached path speculates (formation is deterministic, so the
        # speculative result is identical to what the worker would
        # produce — the checksum verification in _salvage is the dedup).
        spec: dict[int, tuple[int, dict, dict]] = {}

        def _on_straggler(rank: int, items_done: int) -> None:
            if rank in spec or (deadline is not None and deadline.expired):
                return
            mine_r = np.flatnonzero(worker_of == rank)
            tail = mine_r[items_done:]
            if len(tail) == 0:
                return
            batches, placement = form_worker_share(
                n, items, tail, z, voltage=voltage
            )
            spec[rank] = (int(items_done), batches, placement)

        if sup is not None:
            sup.begin_region(
                workers,
                total_items=len(items),
                observer=obs,
                on_straggler=(
                    _on_straggler if self.formation == "cached" else None
                ),
            )
        if tracing:
            # The spool directory must exist before the fork so every
            # region member inherits the same path; ``mark`` keeps
            # children from re-spooling inherited pre-fork spans.
            obs.ensure_spool()
        mark = obs.mark()
        start = time.perf_counter()
        salvage_stats = (0, 0)
        stalled_ranks: tuple[int, ...] = ()
        try:
            with obs.span(
                "formation", strategy=self.name, n=n, workers=workers
            ), pymp.Parallel(workers, supervisor=sup) as p:
                me = p.thread_num
                if injector is not None:
                    injector.maybe_kill_worker(me)
                writer, fh = _open_writer(output_dir, fmt, worker=me)
                my_terms = 0
                my_checksum = 0.0
                my_bytes = 0
                ok = False
                try:
                    mine = np.flatnonzero(worker_of == me)
                    if sup is not None:
                        sup.assign(me, len(mine))
                    with obs.span(
                        "formation.worker", worker=me, items=len(mine)
                    ):
                        if self.formation == "cached":
                            # Unsupervised: one batched call per worker.
                            # Supervised: the same share in contiguous
                            # chunks, heartbeating per chunk (output is
                            # byte-identical; see _SUPERVISED_CHUNK).
                            chunk = (
                                _heartbeat_chunk(len(mine))
                                if sup is not None or injector is not None
                                else max(1, len(mine))
                            )
                            done = 0
                            for lo in range(0, len(mine), chunk):
                                sub = mine[lo : lo + chunk]
                                with obs.span("form.share", worker=me):
                                    batches, placement = form_worker_share(
                                        n, items, sub, z, voltage=voltage
                                    )
                                my_terms += sum(
                                    b.num_terms for b in batches.values()
                                )
                                my_checksum += sum(
                                    float(b.checksums().sum())
                                    for b in batches.values()
                                )
                                if writer is not None:
                                    # Emit in original item order so part
                                    # files are byte-identical to the
                                    # legacy per-item loop.
                                    with obs.span("form.write", worker=me):
                                        for idx in sub:
                                            cat, pos = placement[int(idx)]
                                            my_bytes += writer(
                                                batches[cat].block(pos), fh
                                            )
                                done += len(sub)
                                if sup is not None:
                                    sup.tick(me, advance=len(sub))
                                if injector is not None:
                                    injector.on_progress(me, done)
                        else:
                            for k, idx in enumerate(mine):
                                item = items[idx]
                                with obs.span(
                                    "form",
                                    pair=(item.row, item.col),
                                    category=int(item.category),
                                ) if tracing else _NO_SPAN:
                                    block = form_pair_block(
                                        n,
                                        item.row,
                                        item.col,
                                        z[item.row, item.col],
                                        voltage=voltage,
                                        categories=[item.category],
                                    )
                                    my_terms += block.num_terms
                                    my_checksum += block.checksum()
                                    if writer is not None:
                                        my_bytes += writer(block, fh)
                                if sup is not None:
                                    sup.tick(me)
                                if injector is not None:
                                    injector.on_progress(me, k + 1)
                    ok = True
                finally:
                    _close_writer(fh, ok)
                    if me != 0:
                        # Forked children exit via os._exit: their span
                        # buffers die with them unless spooled here.
                        obs.worker_flush(since=mark, worker=me)
                per_worker_terms[me] = my_terms
                per_worker_checksum[me] = my_checksum
                per_worker_bytes[me] = my_bytes
        except pymp.ParallelError as exc:
            if (
                sup is None
                or not sup.salvage
                or self.formation != "cached"
                or not exc.failed_ranks
            ):
                raise
            salvage_stats = _salvage_lost_shares(
                exc,
                n=n,
                items=items,
                worker_of=worker_of,
                z=z,
                voltage=voltage,
                output_dir=output_dir,
                fmt=fmt,
                per_worker_terms=per_worker_terms,
                per_worker_checksum=per_worker_checksum,
                per_worker_bytes=per_worker_bytes,
                spec=spec,
                obs=obs,
                deadline=deadline,
            )
            stalled_ranks = tuple(
                sorted(getattr(exc, "last_progress", {}) or ())
            )
        obs.merge_workers()
        elapsed = time.perf_counter() - start
        parts = _part_files(output_dir, fmt, workers)
        report = FormationReport(
            strategy=self.name,
            n=n,
            num_workers=workers,
            elapsed_seconds=elapsed,
            terms_formed=int(per_worker_terms.sum()),
            checksum=float(per_worker_checksum.sum()),
            per_worker_terms=per_worker_terms.copy(),
            bytes_written=int(per_worker_bytes.sum()),
            part_files=parts,
            blocks_salvaged=salvage_stats[0],
            blocks_reformed=salvage_stats[1],
            stalled_ranks=stalled_ranks,
        )
        obs.record_formation(report)
        return report


class ParallelStrategy(_PartitionedStrategy):
    """The paper's *Parallel*: exactly 4 workers, one per category."""

    name = "parallel"

    def __init__(self, formation: str = "cached") -> None:
        super().__init__(4, formation=formation)

    def _partition(self, n: int) -> Partition:
        return partition_by_category(n)


class BalancedParallel(_PartitionedStrategy):
    """The paper's *Balanced Parallel*: deterministic LPT plan."""

    name = "balanced-parallel"

    def _partition(self, n: int) -> Partition:
        return partition_balanced(n, self.num_workers)


class PyMPStrategy(_PartitionedStrategy):
    """The paper's *PyMP-k*: Betti-aware fine-grained multiprocessing.

    ``schedule="static"`` deals homology holes round-robin
    (deterministic); ``schedule="dynamic"`` pulls items from a shared
    counter (OpenMP ``dynamic``), trading determinism for adaptivity.
    """

    name = "pymp"

    def __init__(
        self, num_workers: int, schedule: str = "static", formation: str = "cached"
    ) -> None:
        super().__init__(num_workers, formation=formation)
        if schedule not in ("static", "dynamic"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.schedule = schedule

    def _partition(self, n: int) -> Partition:
        return partition_betti(n, self.num_workers)

    def run(
        self,
        z: np.ndarray,
        voltage: float = 5.0,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
        faults=None,
        observer=None,
        supervise=None,
        deadline=None,
    ) -> FormationReport:
        """Form the constraints with PyMP-k over the Betti partition.

        ``schedule="static"`` runs the shared partitioned path
        (:meth:`_PartitionedStrategy.run`); ``"dynamic"`` pulls hole
        indices from a shared atomic counter instead, so faster
        workers take more work (non-deterministic shares, identical
        merged output).
        """
        if self.schedule == "static":
            return super().run(
                z,
                voltage=voltage,
                output_dir=output_dir,
                fmt=fmt,
                faults=faults,
                observer=observer,
                supervise=supervise,
                deadline=deadline,
            )
        return self._run_dynamic(
            z, voltage, output_dir, fmt, faults, observer, supervise, deadline
        )

    def _run_dynamic(
        self,
        z: np.ndarray,
        voltage: float,
        output_dir: str | Path | None,
        fmt: str,
        faults=None,
        observer=None,
        supervise=None,
        deadline=None,
    ) -> FormationReport:
        z = _validate_z(z)
        require_positive(voltage, "voltage")
        injector = as_injector(faults)
        obs = as_observer(observer)
        tracing = obs.enabled
        sup = supervise
        deadline = _resolve_deadline(deadline, sup)
        if deadline is not None:
            deadline.check("formation")
        n = z.shape[0]
        part = self._partition(n)  # for the item list only
        items = part.items
        workers = self.num_workers
        per_worker_terms = pymp.shared_array((workers,), dtype=np.int64)
        per_worker_checksum = pymp.shared_array((workers,), dtype=np.float64)
        per_worker_bytes = pymp.shared_array((workers,), dtype=np.int64)
        if self.formation == "cached":
            warm_template_cache(
                n, [(cat,) for cat in sorted({it.category for it in items})]
            )
        if sup is not None:
            # Dynamic assignment has no per-rank share to salvage; the
            # supervisor still heartbeats (via p.xrange ticks) and the
            # watchdog converts a hang into a WorkerStalled that the
            # retry ladder can handle.
            sup.begin_region(workers, total_items=len(items), observer=obs)
        if tracing:
            obs.ensure_spool()
        mark = obs.mark()
        start = time.perf_counter()
        with obs.span(
            "formation", strategy=f"{self.name}-dynamic", n=n, workers=workers
        ), pymp.Parallel(workers, supervisor=sup) as p:
            me = p.thread_num
            if injector is not None:
                injector.maybe_kill_worker(me)
            writer, fh = _open_writer(output_dir, fmt, worker=me)
            my_terms = 0
            my_checksum = 0.0
            my_bytes = 0
            my_items = 0
            ok = False
            try:
                # Dynamic schedule pulls items one at a time from the
                # shared counter, so stamping stays per-item (the cached
                # template still skips all index recomputation).
                with obs.span("formation.worker", worker=me):
                    for idx in p.xrange(len(items)):
                        item = items[idx]
                        my_items += 1
                        if injector is not None:
                            injector.on_progress(me, my_items)
                        with obs.span(
                            "form",
                            pair=(item.row, item.col),
                            category=int(item.category),
                        ) if tracing else _NO_SPAN:
                            if self.formation == "cached":
                                block = stamp_pair_block(
                                    n,
                                    item.row,
                                    item.col,
                                    z[item.row, item.col],
                                    voltage=voltage,
                                    categories=(item.category,),
                                )
                            else:
                                block = form_pair_block(
                                    n,
                                    item.row,
                                    item.col,
                                    z[item.row, item.col],
                                    voltage=voltage,
                                    categories=[item.category],
                                )
                            my_terms += block.num_terms
                            my_checksum += block.checksum()
                            if writer is not None:
                                my_bytes += writer(block, fh)
                ok = True
            finally:
                _close_writer(fh, ok)
                if me != 0:
                    obs.worker_flush(since=mark, worker=me)
            per_worker_terms[me] = my_terms
            per_worker_checksum[me] = my_checksum
            per_worker_bytes[me] = my_bytes
        obs.merge_workers()
        elapsed = time.perf_counter() - start
        parts = _part_files(output_dir, fmt, workers)
        report = FormationReport(
            strategy=f"{self.name}-dynamic",
            n=n,
            num_workers=workers,
            elapsed_seconds=elapsed,
            terms_formed=int(per_worker_terms.sum()),
            checksum=float(per_worker_checksum.sum()),
            per_worker_terms=per_worker_terms.copy(),
            bytes_written=int(per_worker_bytes.sum()),
            part_files=parts,
        )
        obs.record_formation(report)
        return report


def _resolve_deadline(deadline, supervise):
    """One shared Deadline for the run: explicit wins, else supervisor's.

    When only one side carries a budget the other is synchronised to
    it, so the in-region watchdog and the between-stage checks drain
    the same clock.
    """
    deadline = Deadline.coerce(deadline)
    if supervise is None:
        return deadline
    if deadline is None:
        return supervise.deadline
    if supervise.deadline is None:
        supervise.deadline = deadline
    return deadline


def _expected_share(n, items, mine_r, tables):
    """(terms, checksum) a rank's share must total, from the O(1) table."""
    terms = 0
    checksum = 0.0
    for i in mine_r:
        item = items[int(i)]
        terms += int(item.cost)
        checksum += float(tables[item.category][item.row, item.col])
    return terms, checksum


def _salvage_lost_shares(
    exc,
    *,
    n,
    items,
    worker_of,
    z,
    voltage,
    output_dir,
    fmt,
    per_worker_terms,
    per_worker_checksum,
    per_worker_bytes,
    spec,
    obs,
    deadline,
):
    """Keep verified survivor shares; re-form only the lost ones.

    Called in the parent after a supervised region lost workers
    (crash, injected kill, or watchdog kill).  Every rank's reported
    (terms, checksum) is verified against the exact per-category
    template checksum tables; verified shares are *salvaged* as-is
    (their part files committed atomically before the loss), while
    missing or mismatched shares are re-formed here — reusing any
    speculative tail the straggler hook already formed — and their
    part files written by the parent, so the final output is
    bit-identical to a fault-free run.  Returns
    ``(blocks_salvaged, blocks_reformed)`` in work items.
    """
    failed = set(exc.failed_ranks)
    workers = len(per_worker_terms)
    tables = {
        cat: get_template(n, (cat,)).checksum_table
        for cat in sorted({it.category for it in items})
    }
    salvaged = 0
    reformed = 0
    for rank in range(workers):
        mine_r = np.flatnonzero(worker_of == rank)
        expected_terms, expected_checksum = _expected_share(
            n, items, mine_r, tables
        )
        intact = (
            rank not in failed
            and int(per_worker_terms[rank]) == expected_terms
            and math.isclose(
                float(per_worker_checksum[rank]),
                expected_checksum,
                rel_tol=1e-9,
                abs_tol=1e-6,
            )
        )
        if intact:
            salvaged += len(mine_r)
            continue
        if deadline is not None:
            deadline.check("salvage re-formation")
        # Reuse the speculative tail if the straggler hook got there
        # first; only the head still needs forming.
        head = mine_r
        shares = []
        if rank in spec:
            head_count, tail_batches, tail_placement = spec[rank]
            head = mine_r[:head_count]
            shares.append((tail_batches, tail_placement))
            salvaged += len(mine_r) - head_count
        if len(head):
            shares.append(form_worker_share(n, items, head, z, voltage=voltage))
            reformed += len(head)
        my_terms = sum(
            b.num_terms for batches, _ in shares for b in batches.values()
        )
        my_checksum = sum(
            float(b.checksums().sum())
            for batches, _ in shares
            for b in batches.values()
        )
        my_bytes = 0
        writer, fh = _open_writer(output_dir, fmt, worker=rank)
        ok = False
        try:
            if writer is not None:
                for idx in mine_r:
                    for batches, placement in shares:
                        if int(idx) in placement:
                            cat, pos = placement[int(idx)]
                            my_bytes += writer(batches[cat].block(pos), fh)
                            break
            ok = True
        finally:
            _close_writer(fh, ok)
        per_worker_terms[rank] = my_terms
        per_worker_checksum[rank] = my_checksum
        per_worker_bytes[rank] = my_bytes
        obs.event(
            "supervise.blocks_salvaged",
            rank=rank,
            reformed_items=int(len(head)),
            reused_speculative=rank in spec,
        )
    obs.count("supervise.blocks_salvaged", salvaged)
    obs.count("supervise.blocks_reformed", reformed)
    return salvaged, reformed


def _open_writer(output_dir, fmt, worker):
    """(writer function, atomic part file) or (None, None).

    Part files are written atomically (:class:`AtomicFile`:
    tmp+fsync+rename on commit), so a worker that dies mid-run leaves
    at most a ``*.tmp`` orphan — never a truncated part file under the
    canonical name that a later reader would consume.
    """
    if output_dir is None:
        return None, None
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    if fmt == "binary":
        part = AtomicFile(out / f"equations-part{worker:04d}.bin", "wb")
        return write_block_binary, part
    if fmt == "text":
        part = AtomicFile(
            out / f"equations-part{worker:04d}.txt", "w", encoding="utf-8"
        )
        return write_block_text, part
    raise ValueError(f"unknown format {fmt!r}; use 'binary' or 'text'")


def _close_writer(part, ok: bool) -> None:
    if part is not None:
        if ok:
            part.commit()
        else:
            part.abort()


def _part_files(output_dir, fmt, workers) -> tuple[str, ...]:
    if output_dir is None:
        return ()
    ext = "bin" if fmt == "binary" else "txt"
    return tuple(
        str(Path(output_dir) / f"equations-part{w:04d}.{ext}")
        for w in range(workers)
        if (Path(output_dir) / f"equations-part{w:04d}.{ext}").exists()
    )


def make_strategy(
    name: str, num_workers: int = 4, formation: str = "cached"
) -> "SingleThread | _PartitionedStrategy":
    """Factory by paper name: 'single' | 'parallel' | 'balanced' | 'pymp'."""
    formation = check_formation_mode(formation)
    if name in ("single", "single-thread"):
        return SingleThread(formation=formation)
    if name == "parallel":
        return ParallelStrategy(formation=formation)
    if name in ("balanced", "balanced-parallel"):
        return BalancedParallel(num_workers, formation=formation)
    if name == "pymp":
        return PyMPStrategy(num_workers, formation=formation)
    if name == "pymp-dynamic":
        return PyMPStrategy(num_workers, schedule="dynamic", formation=formation)
    raise ValueError(f"unknown strategy {name!r}")


# -- cost calibration for the simulated-cluster figures ----------------------


def calibrate_sec_per_term(
    n: int,
    voltage: float = 5.0,
    sample_pairs: int = 64,
    seed_z: float = 1000.0,
    formation: str = "legacy",
) -> float:
    """Measured seconds per formed term on this machine.

    Forms ``sample_pairs`` representative full pair blocks and divides
    elapsed time by terms produced.  Formation cost is data-independent
    (pure index arithmetic), so a constant Z is fine.  The default
    calibrates the legacy path (the cost model the scaling figures were
    fit against); pass ``formation="cached"`` to measure the template
    fast path instead (template build time is excluded by warming the
    cache before the clock starts).
    """
    require_positive_int(n, "n", minimum=2)
    formation = check_formation_mode(formation)
    count = min(sample_pairs, n * n)
    sample = np.linspace(0, n * n - 1, count).astype(np.int64)
    if formation == "cached":
        warm_template_cache(n)
    former = stamp_pair_block if formation == "cached" else form_pair_block
    start = time.perf_counter()
    terms = 0
    for p in sample:
        row, col = divmod(int(p), n)
        block = former(n, row, col, seed_z, voltage=voltage)
        terms += block.num_terms
    elapsed = time.perf_counter() - start
    return elapsed / max(terms, 1)


def item_costs_seconds(partition_obj: Partition, sec_per_term: float) -> np.ndarray:
    """Per-item wall costs: exact term counts × measured sec/term."""
    return np.array([it.cost for it in partition_obj.items]) * sec_per_term
