"""Distributed (MPI-style) equation formation — paper §V-F's deployment.

Runs the Betti-aware decomposition across message-passing ranks using
:mod:`repro.parallel.mpi`.  Rank ``r`` forms the work items of its
partition share (optionally writing a per-rank part file, as the
cluster experiments do on GPFS), then the ranks allreduce their term
counts and checksums so every rank — and the launcher — can verify
that the union of shares is exactly the full system.

The same SPMD program structure would run unchanged on real mpi4py
(the ``Comm`` surface matches); here it runs on forked local ranks.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.core.equations import form_pair_block
from repro.core.partition import partition_betti
from repro.core.strategies import FormationReport
from repro.core.templates import (
    check_formation_mode,
    form_worker_share,
    warm_template_cache,
)
from repro.io.equations_io import write_block_binary
from repro.observe.observer import as_observer
from repro.parallel.mpi import Comm, MPITimeout, run_mpi
from repro.resilience.supervise import Deadline, DeadlineExceeded
from repro.utils.validation import require_positive, require_positive_int


def _rank_program(
    comm: Comm,
    z: np.ndarray,
    voltage: float,
    output_dir: str | None,
    formation: str = "cached",
):
    """SPMD body: form my share, reduce totals, report my stats."""
    t0 = time.perf_counter()
    rank, size = comm.Get_rank(), comm.Get_size()
    n = z.shape[0]
    part = partition_betti(n, size)
    my_terms = 0
    my_checksum = 0.0
    my_bytes = 0
    fh = None
    if output_dir is not None:
        path = Path(output_dir) / f"equations-rank{rank:04d}.bin"
        fh = open(path, "wb")
    try:
        mine = np.flatnonzero(part.worker_of == rank)
        if formation == "cached":
            batches, placement = form_worker_share(
                n, part.items, mine, z, voltage=voltage
            )
            my_terms = sum(b.num_terms for b in batches.values())
            my_checksum = sum(float(b.checksums().sum()) for b in batches.values())
            if fh is not None:
                # Original item order keeps rank files byte-identical
                # to the legacy per-item loop.
                for idx in mine:
                    cat, pos = placement[int(idx)]
                    my_bytes += write_block_binary(batches[cat].block(pos), fh)
        else:
            for idx in mine:
                item = part.items[idx]
                block = form_pair_block(
                    n,
                    item.row,
                    item.col,
                    z[item.row, item.col],
                    voltage=voltage,
                    categories=[item.category],
                )
                my_terms += block.num_terms
                my_checksum += block.checksum()
                if fh is not None:
                    my_bytes += write_block_binary(block, fh)
    finally:
        if fh is not None:
            fh.close()
    totals = comm.allreduce(np.array([my_terms, my_checksum, my_bytes]))
    return {
        "rank": rank,
        "terms": my_terms,
        "checksum": my_checksum,
        "bytes": my_bytes,
        "total_terms": int(totals[0]),
        "total_checksum": float(totals[1]),
        "total_bytes": int(totals[2]),
        # perf_counter is CLOCK_MONOTONIC on Linux, so the launcher can
        # place this rank's work window on its own trace timeline.
        "t0": t0,
        "t1": time.perf_counter(),
        "pid": os.getpid(),
    }


class MPIFormation:
    """Formation strategy executing on ``size`` message-passing ranks.

    API-compatible with the strategies of
    :mod:`repro.core.strategies` (``run(z, ...) -> FormationReport``).
    """

    name = "mpi"

    def __init__(self, size: int, formation: str = "cached") -> None:
        self.num_workers = require_positive_int(size, "size")
        self.formation = check_formation_mode(formation)

    def run(
        self,
        z: np.ndarray,
        voltage: float = 5.0,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
        observer=None,
        deadline: Deadline | float | None = None,
    ) -> FormationReport:
        z = np.asarray(z, dtype=np.float64)
        if z.ndim != 2 or z.shape[0] != z.shape[1]:
            raise ValueError("z must be a square (n, n) matrix")
        if z.shape[0] < 2:
            raise ValueError("device must be at least 2x2")
        require_positive(voltage, "voltage")
        if fmt != "binary":
            raise ValueError("MPI formation persists binary part files only")
        deadline = Deadline.coerce(deadline)
        if deadline is not None:
            deadline.check("MPI formation launch")
        out = None
        if output_dir is not None:
            out = Path(output_dir)
            out.mkdir(parents=True, exist_ok=True)
        if self.formation == "cached":
            # Warm the per-category templates in the launcher so forked
            # ranks inherit them copy-on-write.
            part = partition_betti(z.shape[0], self.num_workers)
            warm_template_cache(
                z.shape[0],
                [(cat,) for cat in sorted({it.category for it in part.items})],
            )
        obs = as_observer(observer)
        with obs.span(
            "formation",
            strategy=self.name,
            n=z.shape[0],
            workers=self.num_workers,
        ):
            start = time.perf_counter()
            try:
                results = run_mpi(
                    _rank_program,
                    self.num_workers,
                    args=(
                        z,
                        voltage,
                        str(out) if out is not None else None,
                        self.formation,
                    ),
                    timeout=deadline,
                )
            except MPITimeout as exc:
                raise DeadlineExceeded(
                    f"deadline of {deadline.seconds:g}s expired during "
                    f"MPI formation: {exc}",
                    deadline=deadline,
                ) from exc
            elapsed = time.perf_counter() - start
            # Cross-rank consistency: every rank saw the same totals.
            totals = {
                (r["total_terms"], round(r["total_checksum"], 6)) for r in results
            }
            if len(totals) != 1:  # pragma: no cover - runtime invariant
                raise RuntimeError("ranks disagree on reduced totals")
            ordered = sorted(results, key=lambda r: r["rank"])
            if obs.enabled:
                # Ranks never see the tracer (they cross a pickle
                # boundary), so their reported work windows become
                # synthesized child spans on the launcher's timeline.
                for r in ordered:
                    obs.add_span(
                        "formation.rank",
                        ts=r["t0"],
                        dur=max(0.0, r["t1"] - r["t0"]),
                        pid=r.get("pid"),
                        tid=r["rank"],
                        rank=r["rank"],
                        terms=r["terms"],
                        bytes=r["bytes"],
                    )
            per_worker = np.array([r["terms"] for r in ordered], dtype=np.int64)
            parts = ()
            if out is not None:
                parts = tuple(
                    str(out / f"equations-rank{r:04d}.bin")
                    for r in range(self.num_workers)
                    if (out / f"equations-rank{r:04d}.bin").exists()
                )
            report = FormationReport(
                strategy=self.name,
                n=z.shape[0],
                num_workers=self.num_workers,
                elapsed_seconds=elapsed,
                terms_formed=results[0]["total_terms"],
                checksum=results[0]["total_checksum"],
                per_worker_terms=per_worker,
                bytes_written=results[0]["total_bytes"],
                part_files=parts,
            )
        obs.record_formation(report)
        return report
