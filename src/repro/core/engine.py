"""ParmaEngine — the library's front door.

Binds together everything §V's prototype does: take a measurement,
form the joint-constraint system with a chosen parallelization
strategy, optionally persist the equations, recover the resistance
field, and localize anomalies.

    >>> from repro import ParmaEngine
    >>> from repro.mea import run_campaign, paper_like_spec
    >>> run = run_campaign(paper_like_spec(10, seed=7), seed=7)
    >>> engine = ParmaEngine(strategy="pymp", num_workers=4)
    >>> result = engine.parametrize(run.campaign.measurements[0])
    >>> result.detection.num_regions
    ...

The engine is stateless between calls (strategies hold no run state),
so one engine can serve a whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.anomaly.detect import DetectionResult, detect_anomalies
from repro.core.solver import SolveResult, solve
from repro.core.strategies import FormationReport, make_strategy
from repro.mea.dataset import Measurement
from repro.utils import logging as rlog
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class ParmaResult:
    """Everything one parametrization produced."""

    measurement: Measurement
    formation: FormationReport
    solve: SolveResult
    detection: DetectionResult
    laps: dict[str, float]

    @property
    def resistance(self) -> np.ndarray:
        return self.solve.r_estimate

    def summary(self) -> str:
        n = self.measurement.z_kohm.shape[0]
        return (
            f"Parma {n}x{n}: formed {self.formation.terms_formed} terms "
            f"({self.formation.strategy}, k={self.formation.num_workers}) "
            f"in {self.laps.get('formation', 0.0):.3f}s; solve "
            f"{self.solve.method} converged={self.solve.converged} in "
            f"{self.laps.get('solve', 0.0):.3f}s; "
            f"{self.detection.num_regions} anomaly region(s)"
        )


class ParmaEngine:
    """High-level MEA parametrization pipeline.

    Parameters
    ----------
    strategy:
        Formation strategy name: ``"single"``, ``"parallel"``,
        ``"balanced"``, ``"pymp"`` or ``"pymp-dynamic"``.
    num_workers:
        Region width for the multi-worker strategies (ignored by
        ``single``; forced to 4 by ``parallel``).
    solver:
        ``"nested"`` (recommended) or ``"full"``.
    threshold_sigmas / min_region_size:
        Anomaly-detection knobs (see :mod:`repro.anomaly.detect`).
    formation:
        ``"cached"`` (default) forms equations from the per-n template
        cache; ``"legacy"`` uses the original per-pair reference path.
    """

    def __init__(
        self,
        strategy: str = "pymp",
        num_workers: int = 4,
        solver: str = "nested",
        threshold_sigmas: float = 4.0,
        min_region_size: int = 1,
        formation: str = "cached",
    ) -> None:
        self._strategy = make_strategy(strategy, num_workers, formation=formation)
        self.formation = self._strategy.formation
        self.solver = solver
        self.threshold_sigmas = threshold_sigmas
        self.min_region_size = min_region_size

    @property
    def strategy_name(self) -> str:
        return self._strategy.name

    def form(
        self,
        measurement: Measurement,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
    ) -> FormationReport:
        """Run only the equation-formation stage."""
        return self._strategy.run(
            measurement.z_kohm,
            voltage=measurement.voltage,
            output_dir=output_dir,
            fmt=fmt,
        )

    def parametrize(
        self,
        measurement: Measurement,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
        solver_kwargs: dict | None = None,
    ) -> ParmaResult:
        """Full pipeline: form → (persist) → solve → detect."""
        sw = Stopwatch()
        n = measurement.z_kohm.shape[0]
        with sw.lap("formation"), rlog.log_span(
            "parma.formation", n=n, strategy=self.strategy_name
        ):
            formation = self.form(measurement, output_dir=output_dir, fmt=fmt)
        with sw.lap("solve"):
            solve_result = solve(
                measurement.z_kohm,
                voltage=measurement.voltage,
                method=self.solver,
                **(solver_kwargs or {}),
            )
        rlog.info(
            "parma.solved",
            n=n,
            method=solve_result.method,
            converged=solve_result.converged,
            iterations=solve_result.iterations,
        )
        with sw.lap("detect"):
            detection = detect_anomalies(
                solve_result.r_estimate,
                threshold_sigmas=self.threshold_sigmas,
                min_size=self.min_region_size,
            )
        return ParmaResult(
            measurement=measurement,
            formation=formation,
            solve=solve_result,
            detection=detection,
            laps=dict(sw.laps),
        )
