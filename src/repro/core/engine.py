"""ParmaEngine — the library's front door.

Binds together everything §V's prototype does: take a measurement,
form the joint-constraint system with a chosen parallelization
strategy, optionally persist the equations, recover the resistance
field, and localize anomalies.

    >>> from repro import ParmaEngine
    >>> from repro.mea import run_campaign, paper_like_spec
    >>> run = run_campaign(paper_like_spec(10, seed=7), seed=7)
    >>> engine = ParmaEngine(strategy="pymp", num_workers=4)
    >>> result = engine.parametrize(run.campaign.measurements[0])
    >>> result.detection.num_regions
    ...

The engine is stateless between calls (strategies hold no run state),
so one engine can serve a whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.anomaly.detect import DetectionResult, detect_anomalies
from repro.core.solver import SolveResult, solve
from repro.core.solver_backends import check_backend_mode
from repro.core.strategies import FormationReport, make_strategy
from repro.mea.dataset import Measurement, repair_z, validate_z
from repro.observe.observer import as_observer
from repro.resilience.degrade import DegradationReport, solve_with_degradation
from repro.resilience.faults import as_injector
from repro.resilience.retry import RetryPolicy, form_with_recovery
from repro.resilience.supervise import Deadline, Supervisor
from repro.utils import logging as rlog
from repro.utils.timing import Stopwatch

#: Accepted values for :class:`ParmaEngine`'s ``validate`` knob.
VALIDATE_MODES = ("strict", "repair", "off")


@dataclass(frozen=True)
class ParmaResult:
    """Everything one parametrization produced.

    ``degradation`` records the solver-ladder walk when the engine ran
    with degradation enabled (the default); ``events`` lists
    human-readable resilience events — formation retries, fallbacks,
    measurement repairs — that occurred on the way to this result.
    """

    measurement: Measurement
    formation: FormationReport
    solve: SolveResult
    detection: DetectionResult
    laps: dict[str, float]
    degradation: DegradationReport | None = None
    events: tuple[str, ...] = ()

    @property
    def resistance(self) -> np.ndarray:
        return self.solve.r_estimate

    def summary(self) -> str:
        n = self.measurement.z_kohm.shape[0]
        text = (
            f"Parma {n}x{n}: formed {self.formation.terms_formed} terms "
            f"({self.formation.strategy}, k={self.formation.num_workers}) "
            f"in {self.laps.get('formation', 0.0):.3f}s; solve "
            f"{self.solve.method} converged={self.solve.converged} in "
            f"{self.laps.get('solve', 0.0):.3f}s; "
            f"{self.detection.num_regions} anomaly region(s)"
        )
        if self.degradation is not None:
            text += f"; rung={self.degradation.rung_used}"
        if self.formation.stalled_ranks:
            text += (
                f"; watchdog killed rank(s) "
                f"{tuple(self.formation.stalled_ranks)}"
            )
        if self.formation.blocks_salvaged or self.formation.blocks_reformed:
            text += (
                f"; salvage: {self.formation.blocks_salvaged} block(s) kept, "
                f"{self.formation.blocks_reformed} re-formed"
            )
        if self.events:
            text += f"; {len(self.events)} resilience event(s)"
        return text


class ParmaEngine:
    """High-level MEA parametrization pipeline.

    Parameters
    ----------
    strategy:
        Formation strategy name: ``"single"``, ``"parallel"``,
        ``"balanced"``, ``"pymp"`` or ``"pymp-dynamic"``.
    num_workers:
        Region width for the multi-worker strategies (ignored by
        ``single``; forced to 4 by ``parallel``).
    solver:
        ``"nested"`` (recommended) or ``"full"``.
    backend:
        Solver compute backend: ``"numpy"`` (default) or
        ``"compiled"`` (numba-jit dense kernels; bit-identical
        results, degrades to numpy with a recorded metric when numba
        is absent — see :mod:`repro.core.solver_backends`).
    threshold_sigmas / min_region_size:
        Anomaly-detection knobs (see :mod:`repro.anomaly.detect`).
    formation:
        ``"cached"`` (default) forms equations from the per-n template
        cache; ``"legacy"`` uses the original per-pair reference path.
    degradation:
        When True (default) the solve walks the resilience ladder
        (primary → cold-start → regularized → bounded) instead of
        crashing on numerical failure; the rung used is recorded in
        :attr:`ParmaResult.degradation`.
    validate:
        Boundary policy for raw measurements: ``"strict"`` rejects
        non-finite / non-positive / saturated / non-square Z with an
        error naming the offending channel; ``"repair"`` imputes bad
        sites from healthy neighbours and records the repair as a
        resilience event; ``"off"`` skips the audit.
    faults:
        A :class:`repro.resilience.FaultPlan` (or injector) for chaos
        testing — worker kills, dirty measurements, forced rung
        failures.  None (default) injects nothing.
    retry:
        A :class:`repro.resilience.RetryPolicy` for the formation
        stage.  When set (or when ``faults`` is), formation runs under
        bounded retries with a serial re-dispatch fallback.
    observer:
        A :class:`repro.observe.Observer` receiving spans, metrics and
        resilience events from every stage.  None (default) defers to
        the global observer (:func:`repro.observe.get_observer`),
        which is a zero-overhead no-op unless installed.
    deadline:
        Wall-clock budget in seconds (or a started
        :class:`repro.resilience.supervise.Deadline`) for everything
        this engine runs.  The budget starts ticking at construction
        and is shared by every stage — formation regions, salvage,
        solve — raising
        :class:`repro.resilience.supervise.DeadlineExceeded` (and
        killing any in-flight workers) when spent.
    stall_timeout:
        Seconds a region worker may go without a heartbeat before the
        watchdog declares it hung (SIGTERM → SIGKILL) and the parent
        salvages its share.  None (default) disables the watchdog.
    supervise:
        A preconfigured :class:`repro.resilience.supervise.Supervisor`
        overriding the one built from ``deadline``/``stall_timeout``.
    """

    def __init__(
        self,
        strategy: str = "pymp",
        num_workers: int = 4,
        solver: str = "nested",
        backend: str = "numpy",
        threshold_sigmas: float = 4.0,
        min_region_size: int = 1,
        formation: str = "cached",
        degradation: bool = True,
        validate: str = "strict",
        faults=None,
        retry: RetryPolicy | None = None,
        saturation_kohm: float = 1e6,
        observer=None,
        deadline: Deadline | float | None = None,
        stall_timeout: float | None = None,
        supervise: Supervisor | None = None,
    ) -> None:
        self._strategy = make_strategy(strategy, num_workers, formation=formation)
        self.formation = self._strategy.formation
        self.solver = solver
        self.backend = check_backend_mode(backend)
        self.threshold_sigmas = threshold_sigmas
        self.min_region_size = min_region_size
        self.degradation = bool(degradation)
        if validate not in VALIDATE_MODES:
            raise ValueError(
                f"validate must be one of {VALIDATE_MODES}, got {validate!r}"
            )
        self.validate = validate
        self._injector = as_injector(faults)
        self.retry = retry
        self.saturation_kohm = float(saturation_kohm)
        self.observer = observer
        self.deadline = Deadline.coerce(deadline)
        self.stall_timeout = stall_timeout
        if supervise is not None:
            self.supervisor: Supervisor | None = supervise
            if self.deadline is None:
                self.deadline = supervise.deadline
        elif stall_timeout is not None or self.deadline is not None:
            self.supervisor = Supervisor(
                stall_timeout=stall_timeout,
                deadline=self.deadline,
                observer=observer,
            )
        else:
            self.supervisor = None

    @property
    def strategy_name(self) -> str:
        return self._strategy.name

    def _prepare_measurement(
        self,
        measurement: Measurement | np.ndarray,
        voltage: float | None = None,
        hour: float | None = None,
    ) -> tuple[Measurement, tuple[str, ...]]:
        """Apply fault injection and the boundary-validation policy.

        Accepts either a finished :class:`Measurement` or a raw Z
        ndarray (dirty acquisitions cannot survive Measurement's own
        invariants, so raw arrays are the entry point for repair).
        ``voltage``/``hour`` annotate the raw-array case — e.g. a
        serve request whose dirty payload could not be wrapped in a
        Measurement client-side — and are ignored for finished
        measurements, which already carry their own.
        """
        events: list[str] = []
        if isinstance(measurement, Measurement):
            z = measurement.z_kohm
            voltage, hour, meta = (
                measurement.voltage,
                measurement.hour,
                dict(measurement.meta),
            )
        else:
            z = np.asarray(measurement, dtype=np.float64)
            voltage = 5.0 if voltage is None else float(voltage)
            hour = 0.0 if hour is None else float(hour)
            meta = {}
        dirtied = False
        if self._injector is not None and self._injector.plan.any_measurement_faults():
            z = self._injector.dirty_measurement(z)
            dirtied = True
        if self.validate == "strict":
            z = validate_z(z, saturation_kohm=self.saturation_kohm)
        elif self.validate == "repair":
            z, audit = repair_z(z, saturation_kohm=self.saturation_kohm)
            if not audit.clean:
                events.append(f"repaired measurement: {audit.describe()}")
                obs = as_observer(self.observer)
                obs.event(
                    "measurement.repaired",
                    bad_sites=audit.num_bad_sites,
                    detail=audit.describe(),
                )
                obs.count("measurement.repairs")
                rlog.info(
                    "resilience.measurement_repaired",
                    bad_sites=audit.num_bad_sites,
                    detail=audit.describe(),
                )
        if isinstance(measurement, Measurement) and not dirtied and not events:
            return measurement, tuple(events)
        return (
            Measurement(z_kohm=z, voltage=voltage, hour=hour, meta=meta),
            tuple(events),
        )

    def form(
        self,
        measurement: Measurement,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
    ) -> FormationReport:
        """Run only the equation-formation stage."""
        return self._strategy.run(
            measurement.z_kohm,
            voltage=measurement.voltage,
            output_dir=output_dir,
            fmt=fmt,
            faults=self._injector,
            observer=self.observer,
            supervise=self.supervisor,
            deadline=self.deadline,
        )

    def warm(self, n: int) -> None:
        """Prebuild the formation structures for device side ``n``.

        Populates the process-wide :class:`repro.core.templates.
        PairTemplate` cache so the first real request at this ``n``
        pays only stamping, not template construction.  The solve
        service calls this from its batch pass; a long-lived embedder
        can call it at startup for its expected device sizes.  The
        Laplacian-pinv LRU cannot be prewarmed (it is keyed by
        measurement values), but it is process-global and warms itself
        on first use.
        """
        if self.formation == "cached":
            from repro.core.templates import warm_template_cache

            warm_template_cache(n)

    def parametrize(
        self,
        measurement: Measurement | np.ndarray,
        output_dir: str | Path | None = None,
        fmt: str = "binary",
        solver_kwargs: dict | None = None,
        voltage: float | None = None,
        hour: float | None = None,
    ) -> ParmaResult:
        """Full pipeline: validate → form → (persist) → solve → detect.

        ``measurement`` may be a raw Z ndarray, which goes through the
        engine's ``validate`` policy before entering the pipeline;
        ``voltage``/``hour`` annotate that raw-array case (ignored for
        a finished :class:`Measurement`).
        """
        measurement, events = self._prepare_measurement(
            measurement, voltage=voltage, hour=hour
        )
        events = list(events)
        obs = as_observer(self.observer)
        sw = Stopwatch()
        n = measurement.z_kohm.shape[0]
        if self.deadline is not None:
            self.deadline.check("parametrization")
        with sw.lap("formation"), rlog.log_span(
            "parma.formation", n=n, strategy=self.strategy_name
        ):
            if self.retry is not None or self._injector is not None:
                formation, form_events = form_with_recovery(
                    self._strategy,
                    measurement.z_kohm,
                    voltage=measurement.voltage,
                    output_dir=output_dir,
                    fmt=fmt,
                    policy=self.retry,
                    faults=self._injector,
                    observer=obs,
                    supervise=self.supervisor,
                    deadline=self.deadline,
                )
                events.extend(form_events)
            else:
                formation = self.form(measurement, output_dir=output_dir, fmt=fmt)
        if formation.stalled_ranks:
            events.append(
                f"watchdog killed hung worker(s) "
                f"{tuple(formation.stalled_ranks)} after heartbeat stall"
            )
        if formation.blocks_salvaged or formation.blocks_reformed:
            events.append(
                f"salvaged {formation.blocks_salvaged} completed block(s), "
                f"re-formed {formation.blocks_reformed} in the parent"
            )
        if self.deadline is not None:
            self.deadline.check("solve")
        degradation = None
        with sw.lap("solve"), obs.span(
            "solve",
            n=n,
            method=self.solver,
            backend=self.backend,
            degradation=self.degradation,
        ):
            if self.degradation:
                solve_result, degradation = solve_with_degradation(
                    measurement.z_kohm,
                    voltage=measurement.voltage,
                    method=self.solver,
                    backend=self.backend,
                    solver_kwargs=solver_kwargs,
                    faults=self._injector,
                    observer=obs,
                )
            else:
                solve_result = solve(
                    measurement.z_kohm,
                    voltage=measurement.voltage,
                    method=self.solver,
                    backend=self.backend,
                    observer=obs,
                    **(solver_kwargs or {}),
                )
        obs.record_degradation(degradation)
        rlog.info(
            "parma.solved",
            n=n,
            method=solve_result.method,
            converged=solve_result.converged,
            iterations=solve_result.iterations,
        )
        if self.deadline is not None:
            self.deadline.check("anomaly detection")
        with sw.lap("detect"), obs.span("detect", n=n):
            detection = detect_anomalies(
                solve_result.r_estimate,
                threshold_sigmas=self.threshold_sigmas,
                min_size=self.min_region_size,
            )
        return ParmaResult(
            measurement=measurement,
            formation=formation,
            solve=solve_result,
            detection=detection,
            laps=dict(sw.laps),
            degradation=degradation,
            events=tuple(events),
        )
