"""R-recovery solvers: invert the measurement map Z(R).

Two complementary solvers, both enforcing R > 0 via ``θ = log R``:

* :func:`solve_nested` — *variable projection*: the per-pair voltages
  are always the exact solution of the inner linear circuit, so the
  outer problem is just ``Z̃(R) = Z`` over the ``n^2`` resistances.
  The outer Jacobian is analytic and beautifully compact: with
  ``P = L^+`` (Laplacian pseudo-inverse) and incidence vector ``b_ab``
  of resistor (a, b),

      ``∂Z_st / ∂R_ab = (x_st^T P b_ab)^2 / R_ab^2``

  (the squared transfer potential), computed for *all* pair/resistor
  combinations with one broadcast expression.  This is the scalable,
  recommended solver.

* :func:`solve_full` — the paper's formulation taken literally: one
  joint nonlinear system over the ``(2n-1) n^2`` unknowns
  ``(θ, Ua, Ub)``, solved by trust-region least squares with the
  analytic sparse Jacobian of :mod:`repro.core.residual`.

Both return a :class:`SolveResult`; the test suite checks they agree
with each other and with the ground truth on noise-free data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.core.residual import JointSystem
from repro.kirchhoff.forward import (
    effective_resistance_matrix,
    laplacian_pinv_cached,
)
from repro.utils.validation import require_positive, require_positive_array


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an R-recovery solve."""

    r_estimate: np.ndarray
    method: str
    iterations: int
    residual_norm: float
    elapsed_seconds: float
    converged: bool

    def max_relative_error(self, r_true: np.ndarray) -> float:
        r_true = np.asarray(r_true, dtype=np.float64)
        return float(np.max(np.abs(self.r_estimate - r_true) / r_true))

    def mean_relative_error(self, r_true: np.ndarray) -> float:
        r_true = np.asarray(r_true, dtype=np.float64)
        return float(np.mean(np.abs(self.r_estimate - r_true) / r_true))


def predict_z(r: np.ndarray) -> np.ndarray:
    """The forward map Z(R) (alias of the exact crossbar solver)."""
    return effective_resistance_matrix(r)


def nested_jacobian(r: np.ndarray) -> np.ndarray:
    """Analytic ``∂Z_st/∂θ_ab`` (θ = log R), shape (n^2, n^2).

    Rows index measurement pairs (s, t) row-major; columns index
    resistors (a, b) row-major.  Derivation: ``Z = x^T L^+ x``,
    ``∂L/∂G_ab = b b^T`` ⇒ ``∂Z/∂G_ab = -(x^T L^+ b)^2``; with
    ``G = e^{-θ}``, ``∂Z/∂θ_ab = (x^T L^+ b)^2 G_ab``.
    """
    r = require_positive_array(r, "r")
    m, n = r.shape
    # Cached: within one Gauss-Newton iteration the residual already
    # factorised this same field, so this is usually a cache hit.
    pinv = laplacian_pinv_cached(r)
    hh = pinv[:m, :m]  # P[H_s, H_a]
    hv = pinv[:m, m:]  # P[H_s, V_b]
    vv = pinv[m:, m:]  # P[V_t, V_b]
    # t[s, t, a, b] = P[Hs,Ha] - P[Hs,Vb] - P[Vt,Ha] + P[Vt,Vb]
    transfer = (
        hh[:, None, :, None]
        - hv[:, None, None, :]
        - hv.T[None, :, :, None]
        + vv[None, :, None, :]
    )
    jac = transfer**2 / r[None, None, :, :]
    return jac.reshape(m * n, m * n)


def solve_nested(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> SolveResult:
    """Variable-projection solve of Z(R) = Z_measured.

    Damped Gauss–Newton on ``θ = log R`` with residuals
    ``(Z̃ - Z)/Z`` and the analytic Jacobian above; falls back to
    halving steps when a full step does not reduce the cost.
    """
    z = require_positive_array(z, "z")
    require_positive(voltage, "voltage")
    m, n = z.shape
    start = time.perf_counter()
    if r0 is None:
        r_unif = float(np.median(z) * m * n / (m + n - 1))
        r0 = np.full((m, n), r_unif)
    theta = np.log(require_positive_array(r0, "r0")).ravel()
    z_flat = z.ravel()

    def cost_and_res(th: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        r = np.exp(th).reshape(m, n)
        pred = predict_z(r).ravel()
        res = (pred - z_flat) / z_flat
        return 0.5 * float(res @ res), res, r

    cost, res, r_cur = cost_and_res(theta)
    iterations = 0
    converged = False
    lam = 0.0  # Levenberg damping, raised on rejected steps
    for iterations in range(1, max_iter + 1):
        jac = nested_jacobian(r_cur) / z_flat[:, None]
        grad = jac.T @ res
        if np.max(np.abs(res)) < tol:
            converged = True
            break
        jtj = jac.T @ jac
        step = None
        for _ in range(25):
            try:
                step = np.linalg.solve(
                    jtj + lam * np.diag(np.diag(jtj)) + 1e-300 * np.eye(len(grad)),
                    -grad,
                )
            except np.linalg.LinAlgError:
                lam = max(lam * 10.0, 1e-8)
                continue
            new_cost, new_res, new_r = cost_and_res(theta + step)
            if new_cost < cost:
                theta = theta + step
                cost, res, r_cur = new_cost, new_res, new_r
                lam = lam / 3.0 if lam > 1e-12 else 0.0
                break
            lam = max(lam * 10.0, 1e-8)
        else:
            break  # no acceptable step found
        if step is not None and np.max(np.abs(step)) < 1e-15:
            converged = True
            break
    if np.max(np.abs(res)) < tol:
        converged = True
    return SolveResult(
        r_estimate=r_cur,
        method="nested",
        iterations=iterations,
        residual_norm=float(np.linalg.norm(res)),
        elapsed_seconds=time.perf_counter() - start,
        converged=converged,
    )


def solve_full(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_nfev: int = 60,
) -> SolveResult:
    """Joint solve over (θ, Ua, Ub) — the paper's literal formulation.

    Trust-region reflective least squares with the analytic sparse
    Jacobian; ``tr_solver='lsmr'`` keeps memory at the Jacobian's
    O(n^4) nonzeros.
    """
    z = require_positive_array(z, "z")
    if z.shape[0] != z.shape[1]:
        raise ValueError("full solver requires a square device")
    n = z.shape[0]
    system = JointSystem(n=n, z=z, voltage=voltage)
    start = time.perf_counter()
    x0 = system.initial_state(r0)
    result = scipy.optimize.least_squares(
        system.residual,
        x0,
        jac=system.jacobian,
        method="trf",
        tr_solver="lsmr",
        xtol=tol,
        ftol=tol,
        gtol=tol,
        max_nfev=max_nfev,
    )
    r_est, _, _ = system.unpack(result.x)
    return SolveResult(
        r_estimate=r_est,
        method="full",
        iterations=int(result.nfev),
        residual_norm=float(np.linalg.norm(result.fun)),
        elapsed_seconds=time.perf_counter() - start,
        converged=bool(result.success),
    )


def solve_bounded(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_nfev: int = 200,
    spread: float = 6.0,
) -> SolveResult:
    """Box-bounded trust-region solve on ``θ = log R`` (safety net).

    The last rung of the degradation ladder
    (:mod:`repro.resilience.degrade`): when Gauss–Newton diverges —
    wildly inconsistent measurements, a poisoned warm start — this
    solve cannot run away, because every iterate is confined to
    ``θ ∈ [θ_unif - spread, θ_unif + spread]`` around the uniform-field
    estimate (±``spread`` natural-log units ≈ a factor ``e^spread`` in
    resistance, generous for any physical device).  Slower and less
    accurate than :func:`solve_nested`, but it always returns a finite
    field.
    """
    z = require_positive_array(z, "z")
    require_positive(voltage, "voltage")
    m, n = z.shape
    start = time.perf_counter()
    theta_unif = float(np.log(np.median(z) * m * n / (m + n - 1)))
    lo = theta_unif - spread
    hi = theta_unif + spread
    if r0 is None:
        theta0 = np.full(m * n, theta_unif)
    else:
        theta0 = np.log(require_positive_array(r0, "r0")).ravel()
    # least_squares requires a strictly interior start.
    margin = 1e-9 * max(1.0, abs(hi - lo))
    theta0 = np.clip(theta0, lo + margin, hi - margin)
    z_flat = z.ravel()

    def residual(th: np.ndarray) -> np.ndarray:
        r = np.exp(th).reshape(m, n)
        return (predict_z(r).ravel() - z_flat) / z_flat

    def jacobian(th: np.ndarray) -> np.ndarray:
        r = np.exp(th).reshape(m, n)
        return nested_jacobian(r) / z_flat[:, None]

    result = scipy.optimize.least_squares(
        residual,
        theta0,
        jac=jacobian,
        bounds=(lo, hi),
        method="trf",
        xtol=tol,
        ftol=tol,
        gtol=tol,
        max_nfev=max_nfev,
    )
    r_est = np.exp(result.x).reshape(m, n)
    return SolveResult(
        r_estimate=r_est,
        method="bounded",
        iterations=int(result.nfev),
        residual_norm=float(np.linalg.norm(result.fun)),
        elapsed_seconds=time.perf_counter() - start,
        converged=bool(result.success) and bool(np.all(np.isfinite(r_est))),
    )


def solve(
    z: np.ndarray,
    voltage: float = 5.0,
    method: str = "nested",
    **kwargs,
) -> SolveResult:
    """Dispatch to a solver by name.

    ``"nested"`` (recommended), ``"full"`` (the paper's joint system),
    ``"regularized"`` (Tikhonov-smoothed nested; pass ``lam=...``,
    default 1e-3 — see :mod:`repro.core.regularized`), or ``"bounded"``
    (box-constrained trust region, the degradation ladder's safety
    net).
    """
    if method == "nested":
        return solve_nested(z, voltage=voltage, **kwargs)
    if method == "full":
        return solve_full(z, voltage=voltage, **kwargs)
    if method == "regularized":
        from repro.core.regularized import solve_regularized

        kwargs.setdefault("lam", 1e-3)
        return solve_regularized(z, voltage=voltage, **kwargs)
    if method == "bounded":
        return solve_bounded(z, voltage=voltage, **kwargs)
    raise ValueError(
        f"unknown method {method!r}; use 'nested', 'full', 'regularized' "
        "or 'bounded'"
    )
